// E10 — ablation: surrogate sample-efficiency.
//
// The paper's benchmark rests on fitting surrogates from a "small but
// representative portion" (~5.2k models) of a 7.8e10-model space. This
// ablation sweeps the training-set size and reports held-out test tau/R2,
// locating the point of diminishing returns that justifies the paper's
// collection budget.

#include <cstdio>
#include <iostream>

#include "anb/anb/tuning.hpp"
#include "anb/ir/model_ir.hpp"
#include "anb/util/metrics.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E10: surrogate sample-efficiency", "DESIGN.md E10");

  const CollectedData data = bench::collect_datasets(/*with_perf=*/false);
  const Dataset full = data.accuracy_dataset();
  const DatasetSplits splits = bench::split_paper_style(full);
  std::printf("Test split: %zu rows (fixed across all training sizes)\n\n",
              splits.test.size());

  TextTable table({"train rows", "XGB tau", "XGB R2", "XGB MAE"});
  CsvWriter csv({"train_rows", "tau", "r2", "mae"});

  std::vector<int> sizes{250, 500, 1000, 2000, 4000};
  if (bench::fast_mode()) sizes = {200, 400, 800};
  for (int size : sizes) {
    const auto capped = std::min<std::size_t>(static_cast<std::size_t>(size),
                                              splits.train.size());
    Rng sub_rng(hash_combine(31, static_cast<std::uint64_t>(size)));
    const Dataset train =
        splits.train.subset(sub_rng.sample_indices(splits.train.size(), capped));
    auto model = make_default_surrogate(SurrogateKind::kXgb);
    Rng fit_rng(hash_combine(37, static_cast<std::uint64_t>(size)));
    model->fit(train, fit_rng);
    const FitMetrics m = model->evaluate(splits.test);
    table.add_row({std::to_string(capped), TextTable::num(m.kendall_tau, 3),
                   TextTable::num(m.r2, 3), TextTable::sci(m.mae, 2)});
    csv.add_row({std::to_string(capped), std::to_string(m.kendall_tau),
                 std::to_string(m.r2), std::to_string(m.mae)});
  }

  table.print(std::cout);

  // Context: trivial zero-cost proxies the surrogate must beat. FLOPs and
  // params correlate with accuracy (bigger is better on average) but miss
  // the op-level structure (paper SS1: they are poor device proxies AND
  // mediocre accuracy rankers).
  {
    TrainingSimulator sim = bench::make_simulator();
    std::vector<double> acc, flops, params;
    Rng prng(hash_combine(bench::kWorldSeed, 0xBA5E));
    for (int i = 0; i < 400; ++i) {
      const Architecture arch =
          MnasSpace::to_blocks(MnasSpace::instance().sample(prng));
      acc.push_back(sim.train(arch, canonical_p_star(), 0).top1);
      const ModelIR ir = build_ir(arch, 224);
      flops.push_back(ir.gflops());
      params.push_back(ir.mparams());
    }
    std::printf("\nZero-cost baselines on the same task (rank tau vs "
                "proxified accuracy):\n");
    std::printf("  FLOPs  as predictor: tau = %.3f\n",
                kendall_tau(flops, acc));
    std::printf("  params as predictor: tau = %.3f\n",
                kendall_tau(params, acc));
    std::printf("  (the fitted surrogate above reaches tau ~0.9 — the gap "
                "is the benchmark's value)\n");
  }

  std::printf("\nExpected shape: tau climbs with data and flattens by a few "
              "thousand rows —\nthe paper's ~5.2k collection sits past the "
              "knee (NB301-style 'unbiased surrogate' regime).\n");
  csv.save(bench::results_path("e10_ablation_datasize.csv"));
  std::printf("Series written to results/e10_ablation_datasize.csv\n");
  anb::bench::export_obs("e10_ablation_datasize");
  return 0;
}
