// E7 — Fig. 6: true re-evaluation of hand-picked Pareto models against
// known high-quality baselines.
//
// The picked models from each bi-objective search are trained with the
// reference scheme r and measured on the device, then compared against
// EfficientNet-B0, MobileNetV3-L, EfficientNet-EdgeTPU-S, and MnasNet-A1.
// The paper's headline: e.g. effnet-vck190-a achieves +1.8% accuracy and
// +55% throughput over EfficientNet-B0 on the VCK190.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "anb/anb/harness.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E7: true evaluation vs baselines", "Figure 6");

  PipelineOptions options;
  options.world_seed = bench::kWorldSeed;
  options.n_archs = bench::collection_size();
  const PipelineResult pipe = construct_benchmark(options);
  TrainingSimulator sim = bench::make_simulator();

  struct Panel {
    const char* label;
    const char* tag;
    DeviceKind device;
    PerfMetric metric;
  };
  const Panel panels[] = {
      {"(a) ZCU102 acc-latency", "zcu102-lat", DeviceKind::kZcu102,
       PerfMetric::kLatency},
      {"(b) ZCU102 acc-throughput", "zcu102", DeviceKind::kZcu102,
       PerfMetric::kThroughput},
      {"(c) VCK190 acc-throughput", "vck190", DeviceKind::kVck190,
       PerfMetric::kThroughput},
      {"(d) TPUv3 acc-throughput", "tpuv3", DeviceKind::kTpuV3,
       PerfMetric::kThroughput},
      {"(e) A100 acc-throughput", "a100", DeviceKind::kA100,
       PerfMetric::kThroughput},
      {"(f) RTX 3090 acc-throughput", "rtx3090", DeviceKind::kRtx3090,
       PerfMetric::kThroughput},
  };

  CsvWriter csv({"panel", "model", "ours", "top1_ref", "perf"});

  for (const auto& panel : panels) {
    ParetoSearchConfig config;
    config.key = {panel.device, panel.metric};
    config.n_targets = bench::fast_mode() ? 3 : 7;
    config.n_evals_per_target = bench::fast_mode() ? 100 : 250;
    config.n_picks = 3;
    config.seed = hash_combine(5, static_cast<std::uint64_t>(panel.device) * 2 +
                                      static_cast<std::uint64_t>(panel.metric));
    const ParetoOutcome outcome = pareto_search(pipe.bench, config);
    const auto rows = true_evaluation(outcome, sim, MetricKey{panel.device, panel.metric},
                                      panel.tag);
    const char* unit =
        panel.metric == PerfMetric::kThroughput ? "img/s" : "ms";

    std::printf("\n%s — reference-trained top-1 and measured %s\n",
                panel.label, unit);
    TextTable table({"model", "top-1 (r)", std::string("perf (") + unit + ")",
                     "ours"});
    for (const auto& row : rows) {
      table.add_row({row.name, TextTable::num(row.accuracy, 4),
                     TextTable::num(row.perf,
                                    panel.metric == PerfMetric::kLatency ? 2
                                                                         : 0),
                     row.is_ours ? "*" : ""});
      csv.add_row({panel.label, row.name, row.is_ours ? "1" : "0",
                   std::to_string(row.accuracy), std::to_string(row.perf)});
    }
    table.print(std::cout);

    // Headline comparison vs effnet-b0 (throughput panels only).
    if (panel.metric == PerfMetric::kThroughput) {
      const TrueEvalRow* b0 = nullptr;
      for (const auto& row : rows) {
        if (row.name == "effnet-b0") b0 = &row;
      }
      // Paper framing: a searched model that beats B0 on *both* axes.
      // Pick the fastest of our models that still matches B0's accuracy;
      // fall back to our most accurate model.
      const TrueEvalRow* best_ours = nullptr;
      for (const auto& row : rows) {
        if (!row.is_ours) continue;
        if (b0 != nullptr && row.accuracy >= b0->accuracy) {
          if (best_ours == nullptr || best_ours->accuracy < b0->accuracy ||
              row.perf > best_ours->perf) {
            best_ours = &row;
          }
        } else if (best_ours == nullptr ||
                   (best_ours->accuracy < (b0 ? b0->accuracy : 1.0) &&
                    row.accuracy > best_ours->accuracy)) {
          best_ours = &row;
        }
      }
      if (b0 != nullptr && best_ours != nullptr) {
        std::printf("  best pick vs effnet-b0: %+.1f%% top-1, %+.1f%% "
                    "throughput\n",
                    100.0 * (best_ours->accuracy - b0->accuracy),
                    100.0 * (best_ours->perf / b0->perf - 1.0));
      }
    }
  }

  std::printf("\n(paper example: effnet-vck190-a = +1.8%% top-1, +55%% "
              "throughput vs effnet-b0 on VCK190)\n");
  csv.save(bench::results_path("fig6_true_eval.csv"));
  std::printf("Rows written to results/fig6_true_eval.csv\n");
  anb::bench::export_obs("fig6_true_eval");
  return 0;
}
