// Microbenchmark for the parallel training engine (DESIGN.md "Parallel
// training & the binned matrix").
//
// Fits each tree-surrogate family (xgb / lgb / rf) on 1k/5k/20k-row
// datasets over the real 63-dim architecture encoding, once pinned to a
// single thread and once with all hardware threads, and reports the
// speedup. Doubles as a differential harness: the binary exits non-zero
// unless the serialized model fitted at every thread count is
// byte-identical to the single-threaded one — the determinism contract the
// engine is built on.
//
// Usage: fit_throughput [n_rows] [--trace]
//                                  (one size; default 1k/5k/20k sweep,
//                                   ANB_FAST=1 -> 1000 only)
// Output: results/fit_throughput.csv + fit_throughput_metrics.csv
//         (+ fit_throughput_trace.json with --trace / ANB_TRACE)

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "anb/searchspace/space.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/util/parallel.hpp"
#include "common.hpp"

namespace anb::bench {
namespace {

double seconds_of(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Same structured synthetic target as query_throughput: additive one-hot
/// weights plus sparse interactions, so fitted trees are realistically
/// deep without running the training simulator.
double synthetic_target(std::span<const double> x,
                        std::span<const double> w) {
  double y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) y += w[i] * x[i];
  y += 2.0 * x[0] * x[7] - 1.5 * x[3] * x[20] + x[11] * x[42];
  return y;
}

Dataset make_dataset(int n, std::uint64_t seed, std::span<const double> w,
                     std::size_t num_features) {
  Dataset ds(num_features);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const auto x = MnasSpace::instance().features(MnasSpace::instance().sample(rng));
    ds.add(x, synthetic_target(x, w));
  }
  return ds;
}

/// One family at one dataset size: fit wall-clock at 1 thread and at all
/// hardware threads, plus whether the two models serialize identically.
struct RowResult {
  std::string name;
  std::size_t rows = 0;
  unsigned threads = 1;
  double serial_secs = 0.0;
  double parallel_secs = 0.0;
  bool bit_identical = false;
};

/// Fits a fresh model from `make_model` with the given pinned thread count
/// and returns {seconds, serialized payload}. The fit seed is fixed per
/// call site, so any payload difference is a determinism violation.
template <typename MakeModel>
std::pair<double, std::string> fit_once(const MakeModel& make_model,
                                        const Dataset& train,
                                        std::uint64_t fit_seed,
                                        unsigned num_threads) {
  set_default_num_threads(num_threads);
  auto model = make_model();
  Rng rng(fit_seed);
  const double secs = seconds_of([&] { model.fit(train, rng); });
  set_default_num_threads(0);
  return {secs, model.to_json().dump()};
}

template <typename MakeModel>
RowResult bench_family(const std::string& name, const MakeModel& make_model,
                       const Dataset& train, std::uint64_t fit_seed) {
  RowResult r;
  r.name = name;
  r.rows = train.size();
  r.threads = std::max(1u, std::thread::hardware_concurrency());
  const auto [serial_secs, serial_json] =
      fit_once(make_model, train, fit_seed, 1);
  const auto [parallel_secs, parallel_json] =
      fit_once(make_model, train, fit_seed, r.threads);
  r.serial_secs = serial_secs;
  r.parallel_secs = parallel_secs;
  r.bit_identical = serial_json == parallel_json;
  return r;
}

void print_row(const RowResult& r) {
  std::printf("%-4s rows=%-6zu serial=%8.3fs  parallel=%8.3fs (%u threads, "
              "%5.2fx)  identical=%s\n",
              r.name.c_str(), r.rows, r.serial_secs, r.parallel_secs,
              r.threads, r.serial_secs / r.parallel_secs,
              r.bit_identical ? "yes" : "NO");
}

int run(int argc, char** argv) {
  parse_obs_flags(argc, argv);
  std::vector<int> sizes;
  if (argc > 1 && std::strcmp(argv[1], "--trace") != 0) {
    sizes = {std::atoi(argv[1])};
  } else if (fast_mode()) {
    sizes = {1000};
  } else {
    sizes = {1000, 5000, 20000};
  }
  for (const int n : sizes)
    ANB_CHECK(n >= 16, "fit_throughput: n_rows must be >= 16");
  print_header("fit throughput: serial vs parallel training",
               "parallel training engine (this repo's extension)");

  Rng probe_rng(1);
  const std::size_t num_features =
      MnasSpace::instance().features(MnasSpace::instance().sample(probe_rng)).size();
  std::vector<double> w(num_features);
  Rng wrng(hash_combine(kWorldSeed, 0xBEEF));
  for (double& v : w) v = wrng.normal();

  // Moderate ensemble sizes: large enough that histogram and per-tree
  // parallelism dominate, small enough for a sane CI runtime.
  GbdtParams xgb_params;
  xgb_params.n_estimators = 150;
  xgb_params.max_depth = 4;
  HistGbdtParams lgb_params;
  lgb_params.n_estimators = 200;
  lgb_params.max_leaves = 31;
  lgb_params.max_bins = 64;
  RandomForestParams rf_params;
  rf_params.n_trees = 64;
  rf_params.max_depth = 10;

  std::vector<RowResult> results;
  for (const int n : sizes) {
    const Dataset train = make_dataset(
        n, hash_combine(kWorldSeed, static_cast<std::uint64_t>(n)), w,
        num_features);
    results.push_back(bench_family(
        "xgb", [&] { return Gbdt(xgb_params); }, train, 11));
    print_row(results.back());
    results.push_back(bench_family(
        "lgb", [&] { return HistGbdt(lgb_params); }, train, 12));
    print_row(results.back());
    results.push_back(bench_family(
        "rf", [&] { return RandomForest(rf_params); }, train, 13));
    print_row(results.back());
  }

  const std::string path = results_path("fit_throughput.csv");
  std::string csv =
      "name,rows,threads,serial_secs,parallel_secs,speedup,bit_identical\n";
  for (const auto& r : results) {
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%zu,%u,%.4f,%.4f,%.3f,%s\n",
                  r.name.c_str(), r.rows, r.threads, r.serial_secs,
                  r.parallel_secs, r.serial_secs / r.parallel_secs,
                  r.bit_identical ? "yes" : "no");
    csv += line;
  }
  write_text_file(path, csv);
  std::printf("wrote %s\n", path.c_str());
  export_obs("fit_throughput");

  bool all_exact = true;
  for (const auto& r : results) all_exact = all_exact && r.bit_identical;
  if (!all_exact) {
    std::printf("FAILED: parallel fit diverged from the single-threaded "
                "model\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace anb::bench

int main(int argc, char** argv) { return anb::bench::run(argc, argv); }
