// E11 — ablation: true multi-objective search (NSGA-II) vs the paper's
// scalarized REINFORCE target sweep (§4.2), at an equal query budget.
//
// Both run entirely against the surrogates (zero-cost); front quality is
// compared by 2-D hypervolume w.r.t. a common reference point. The paper
// chose the REINFORCE sweep to stay comparable with MnasNet/EfficientNet;
// this ablation shows what a dedicated multi-objective optimizer buys.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "anb/anb/harness.hpp"
#include "anb/nas/nsga2.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/pareto.hpp"
#include "anb/util/stats.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E11: NSGA-II vs scalarized REINFORCE",
                      "DESIGN.md E11 (extends Fig. 4)");

  PipelineOptions options;
  options.world_seed = bench::kWorldSeed;
  options.n_archs = bench::collection_size();
  const PipelineResult pipe = construct_benchmark(options);

  const int budget = bench::fast_mode() ? 400 : 1750;  // = 7 targets x 250

  TextTable table({"device", "REINFORCE HV", "NSGA-II HV", "RF front",
                   "NSGA front"});
  CsvWriter csv({"device", "method", "hypervolume", "front_size"});

  for (DeviceKind device : {DeviceKind::kZcu102, DeviceKind::kVck190,
                            DeviceKind::kA100, DeviceKind::kTpuV3}) {
    // --- REINFORCE sweep (the paper's approach) -------------------------
    ParetoSearchConfig sweep;
    sweep.key = {device, PerfMetric::kThroughput};
    sweep.n_targets = bench::fast_mode() ? 4 : 7;
    sweep.n_evals_per_target = budget / sweep.n_targets;
    sweep.seed = 9;
    const ParetoOutcome reinforce = pareto_search(pipe.bench, sweep);

    // --- NSGA-II at the same budget --------------------------------------
    BiObjectiveOracle oracle = [&](const Arch& arch) {
      return std::pair<double, double>{
          pipe.bench.query_accuracy(arch),
          pipe.bench.query_perf(arch, MetricKey{device, PerfMetric::kThroughput})};
    };
    Nsga2 nsga;
    Rng rng(hash_combine(9, static_cast<std::uint64_t>(device)));
    const Nsga2Result nsga_result = nsga.run(oracle, budget, rng);

    // --- common hypervolume reference ------------------------------------
    double acc_ref = 1e18, perf_ref = 1e18;
    auto update_ref = [&](double a, double p) {
      acc_ref = std::min(acc_ref, a);
      perf_ref = std::min(perf_ref, p);
    };
    for (std::size_t i : reinforce.front)
      update_ref(reinforce.accuracy[i], reinforce.perf[i]);
    for (std::size_t i : nsga_result.front)
      update_ref(nsga_result.obj1[i], nsga_result.obj2[i]);
    acc_ref -= 1e-6;
    perf_ref -= 1e-3;

    auto hv = [&](const std::vector<double>& o1, const std::vector<double>& o2,
                  const std::vector<std::size_t>& front) {
      std::vector<ParetoPoint> points;
      for (std::size_t idx : front) points.push_back({o1[idx], o2[idx], idx});
      return hypervolume_2d(points, acc_ref, perf_ref);
    };
    const double hv_reinforce =
        hv(reinforce.accuracy, reinforce.perf, reinforce.front);
    const double hv_nsga = hv(nsga_result.obj1, nsga_result.obj2,
                              nsga_result.front);

    table.add_row({device_kind_name(device), TextTable::num(hv_reinforce, 1),
                   TextTable::num(hv_nsga, 1),
                   std::to_string(reinforce.front.size()),
                   std::to_string(nsga_result.front.size())});
    csv.add_row({device_kind_name(device), "reinforce",
                 std::to_string(hv_reinforce),
                 std::to_string(reinforce.front.size())});
    csv.add_row({device_kind_name(device), "nsga2", std::to_string(hv_nsga),
                 std::to_string(nsga_result.front.size())});
  }

  std::printf("\n(hypervolume in accuracy x img/s units w.r.t. the joint "
              "nadir; budget %d evals each)\n\n", budget);
  table.print(std::cout);
  std::printf("\nExpected shape: comparable hypervolume; NSGA-II yields a "
              "denser front without\nneeding a target sweep, supporting the "
              "benchmark's use for multi-objective optimizers.\n");
  csv.save(bench::results_path("e11_nsga2_vs_reinforce.csv"));
  std::printf("Rows written to results/e11_nsga2_vs_reinforce.csv\n");
  anb::bench::export_obs("e11_nsga2_vs_reinforce");
  return 0;
}
