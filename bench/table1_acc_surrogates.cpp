// E3 — Table 1: surrogate test performance on ANB-Acc.
//
// Collects the ~5.2k-architecture accuracy dataset with p*, splits
// 0.8/0.1/0.1, SMAC-tunes each candidate surrogate family on train/val and
// reports R2 / Kendall tau / MAE on the held-out test split, exactly the
// protocol of §3.3.3. Paper reference values are printed alongside.

#include <cstdio>
#include <iostream>

#include "anb/anb/tuning.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E3: accuracy-surrogate comparison", "Table 1");

  const CollectedData data = bench::collect_datasets(/*with_perf=*/false);
  std::printf("Collected ANB-Acc: %zu architectures, %.0f simulated GPU-hours"
              " (paper: ~5.2k archs, ~17k GPU-hours)\n",
              data.archs.size(), data.total_gpu_hours);

  const DatasetSplits splits =
      bench::split_paper_style(data.accuracy_dataset());
  std::printf("Split: train %zu / val %zu / test %zu\n\n", splits.train.size(),
              splits.val.size(), splits.test.size());

  struct PaperRow {
    SurrogateKind kind;
    double r2, tau, mae;
  };
  const PaperRow paper[] = {
      {SurrogateKind::kXgb, 0.984, 0.922, 3.06e-3},
      {SurrogateKind::kLgb, 0.984, 0.922, 3.08e-3},
      {SurrogateKind::kRf, 0.869, 0.782, 8.88e-3},
      {SurrogateKind::kEpsSvr, 0.943, 0.886, 5.32e-3},
      {SurrogateKind::kNuSvr, 0.942, 0.881, 5.45e-3},
  };

  TextTable table({"Model", "R2", "KT tau", "MAE", "R2 (paper)",
                   "tau (paper)", "MAE (paper)"});
  CsvWriter csv({"model", "r2", "tau", "mae", "rmse"});

  TuneOptions options;
  options.n_trials = bench::fast_mode() ? 6 : 12;
  options.tuning_subsample = 1200;

  for (const auto& row : paper) {
    options.seed = hash_combine(11, static_cast<std::uint64_t>(row.kind));
    const TunedSurrogate tuned =
        tune_surrogate(row.kind, splits.train, splits.val, options);
    const FitMetrics m = tuned.model->evaluate(splits.test);
    table.add_row({surrogate_kind_label(row.kind), TextTable::num(m.r2, 3),
                   TextTable::num(m.kendall_tau, 3), TextTable::sci(m.mae, 2),
                   TextTable::num(row.r2, 3), TextTable::num(row.tau, 3),
                   TextTable::sci(row.mae, 2)});
    csv.add_row({surrogate_kind_name(row.kind), std::to_string(m.r2),
                 std::to_string(m.kendall_tau), std::to_string(m.mae),
                 std::to_string(m.rmse)});
    std::printf("tuned %-7s -> val RMSE %.5f, config %s\n",
                surrogate_kind_label(row.kind), tuned.val_metrics.rmse,
                tuned.config.to_string().c_str());
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nExpected shape: boosting (XGB/LGB) > SVR > RF in all three "
              "metrics.\n");
  csv.save(bench::results_path("table1_acc_surrogates.csv"));
  std::printf("Rows written to results/table1_acc_surrogates.csv\n");
  anb::bench::export_obs("table1_acc_surrogates");
  return 0;
}
