// E13 — generalizability study on a second search space.
//
// The paper points to its repository "for experiments with additional search
// spaces and datasets for generalizability studies" (§3.1). This harness
// runs the complete methodology against the FBNet-style layer-wise space
// (~10^17.7 models, 22 searchable layers):
//   1. proxy fidelity: tau between p*-trained and reference-trained ranks,
//   2. surrogate fidelity: Table-1-style XGB/LGB/SVR metrics on a fresh
//      accuracy dataset collected in that space,
//   3. device-performance surrogate on the ZCU102 (Table-2-style),
//   4. search shape: RE vs RS on the surrogate, Fig-5-style.

#include <cstdio>
#include <set>
#include <iostream>

#include "anb/anb/tuning.hpp"
#include "anb/fbnet/fbnet_sim.hpp"
#include "anb/nas/evolution.hpp"
#include "anb/nas/random_search.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/metrics.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E13: FBNet-space generalizability",
                      "DESIGN.md E13 (paper §3.1 pointer)");

  FbnetTrainingSimulator sim(bench::kWorldSeed);
  const TrainingScheme p_star = canonical_p_star();
  const int n_archs = bench::fast_mode() ? 800 : 2600;

  // --- 1. proxy fidelity on the new space --------------------------------
  Rng rng(hash_combine(bench::kWorldSeed, 0xFB13));
  std::vector<FbnetArchitecture> archs;
  std::vector<double> ref_acc, proxy_acc;
  double proxy_cost = 0.0, ref_cost = 0.0;
  for (int i = 0; i < 120; ++i) {
    const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(rng));
    archs.push_back(arch);
    ref_acc.push_back(sim.train(arch, reference_scheme(), 0).top1);
    const TrainResult run = sim.train(arch, p_star, 0);
    proxy_acc.push_back(run.top1);
    proxy_cost += run.gpu_hours;
    ref_cost += sim.training_cost_hours(arch, reference_scheme());
  }
  std::printf("\n[1/4] proxy fidelity on FBNet space (120 models):\n");
  std::printf("  tau(p*, r) = %.3f (MnasNet space: ~0.93; paper: 0.926)\n",
              kendall_tau(proxy_acc, ref_acc));
  std::printf("  cost reduction = %.1fx\n", ref_cost / proxy_cost);

  // --- 2. accuracy-surrogate fidelity -------------------------------------
  std::printf("\n[2/4] accuracy surrogates on %d FBNet architectures:\n",
              n_archs);
  Dataset acc_data(static_cast<std::size_t>(FbnetSpace::instance().feature_dim()));
  std::vector<FbnetArchitecture> collected;
  {
    Rng crng(hash_combine(bench::kWorldSeed, 0xFB14));
    std::set<std::uint64_t> seen;
    while (static_cast<int>(collected.size()) < n_archs) {
      const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(crng));
      if (!seen.insert(arch.hash()).second) continue;
      collected.push_back(arch);
      acc_data.add(FbnetSpace::features(arch),
                   sim.train(arch, p_star, collected.size()).top1);
    }
  }
  Rng split_rng(13);
  const DatasetSplits splits = acc_data.split(0.8, 0.1, split_rng);
  TextTable table({"Model", "R2", "KT tau", "MAE"});
  CsvWriter csv({"model", "r2", "tau", "mae"});
  for (SurrogateKind kind : {SurrogateKind::kXgb, SurrogateKind::kLgb,
                             SurrogateKind::kRf, SurrogateKind::kEpsSvr}) {
    auto model = make_default_surrogate(kind);
    Rng fit_rng(hash_combine(99, static_cast<std::uint64_t>(kind)));
    model->fit(splits.train, fit_rng);
    const FitMetrics m = model->evaluate(splits.test);
    table.add_row({surrogate_kind_label(kind), TextTable::num(m.r2, 3),
                   TextTable::num(m.kendall_tau, 3), TextTable::sci(m.mae, 2)});
    csv.add_row({surrogate_kind_name(kind), std::to_string(m.r2),
                 std::to_string(m.kendall_tau), std::to_string(m.mae)});
  }
  table.print(std::cout);

  // --- 3. device surrogate (ZCU102 throughput) ---------------------------
  std::printf("\n[3/4] ZCU102 throughput surrogate on the FBNet space:\n");
  const Device zcu = make_device(DeviceKind::kZcu102);
  Dataset thr_data(static_cast<std::size_t>(FbnetSpace::instance().feature_dim()));
  for (std::size_t i = 0; i < collected.size(); ++i) {
    const ModelIR ir = build_fbnet_ir(collected[i], 224);
    thr_data.add(FbnetSpace::features(collected[i]),
                 zcu.measure_throughput(ir, i));
  }
  Rng split2(14);
  const DatasetSplits thr_splits = thr_data.split(0.8, 0.1, split2);
  auto thr_model = make_default_surrogate(SurrogateKind::kXgb);
  Rng fit2(101);
  thr_model->fit(thr_splits.train, fit2);
  const FitMetrics tm = thr_model->evaluate(thr_splits.test);
  std::printf("  XGB: R2 %.3f, tau %.3f, MAE %.1f img/s "
              "(MnasNet-space Table 2 row: tau ~0.93)\n",
              tm.r2, tm.kendall_tau, tm.mae);

  // --- 4. search shape over the surrogate ---------------------------------
  std::printf("\n[4/4] search shape over the fitted accuracy surrogate:\n");
  auto acc_model = make_default_surrogate(SurrogateKind::kXgb);
  Rng fit3(102);
  acc_model->fit(splits.train, fit3);
  // Hand-rolled RS/RE loop over the typed FbnetArchitecture view (the
  // space-generic optimizers cover this path in bench/e14_cross_space).
  auto incumbent_curve = [&](bool evolutionary, std::uint64_t seed) {
    Rng search_rng(seed);
    std::vector<double> curve;
    std::vector<std::pair<FbnetArchitecture, double>> population;
    double best = -1.0;
    const int budget = bench::fast_mode() ? 150 : 300;
    for (int t = 0; t < budget; ++t) {
      FbnetArchitecture cand;
      if (!evolutionary || static_cast<int>(population.size()) < 30) {
        cand = FbnetSpace::to_ops(FbnetSpace::instance().sample(search_rng));
      } else {
        const auto& parent = [&]() -> const auto& {
          const auto& a = population[search_rng.uniform_index(population.size())];
          const auto& b = population[search_rng.uniform_index(population.size())];
          return a.second > b.second ? a : b;
        }();
        cand = FbnetSpace::mutate(parent.first, search_rng);
      }
      const double value = acc_model->predict(FbnetSpace::features(cand));
      best = std::max(best, value);
      curve.push_back(best);
      population.emplace_back(cand, value);
      if (evolutionary && population.size() > 30)
        population.erase(population.begin());
    }
    return curve;
  };
  const auto rs_curve = incumbent_curve(false, 7);
  const auto re_curve = incumbent_curve(true, 7);
  std::printf("  incumbent@end: RS %.4f | RE %.4f (RE should lead, as on "
              "MnasNet)\n",
              rs_curve.back(), re_curve.back());

  csv.save(bench::results_path("e13_generalizability.csv"));
  std::printf("\nSurrogate rows written to results/e13_generalizability.csv\n");
  anb::bench::export_obs("e13_generalizability");
  return 0;
}
