// E14b — cross-space generalizability of the whole benchmark stack.
//
// The api_redesign claim: every stage (collection, surrogate fit, query,
// NAS search) is generic over the registered search spaces. This harness
// measures it, per {space} x {device, metric}:
//
//  1. Surrogate quality — held-out R^2 and Kendall tau for every dataset
//     the pipeline fits, on MnasNet AND FBNet, over a fleet that includes
//     the two extension platforms (npu-mobile, cpu-server) and the
//     peak-memory extension metric.
//  2. NAS-trajectory fidelity — run Regularized Evolution against each
//     surrogate, then re-evaluate the visited architectures with the true
//     simulator/device model: Kendall tau between surrogate and true
//     values over the trajectory ("does zero-cost search explore the same
//     landscape real measurement would show it?").
//
// Results are committed to results/e14_cross_space.csv.

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "anb/anb/harness.hpp"
#include "anb/anb/space_sim.hpp"
#include "anb/fbnet/fbnet_space.hpp"
#include "anb/nas/evolution.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/metrics.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

namespace {

using namespace anb;

/// True value of one dataset's metric for one architecture: expected
/// (noise-free) accuracy at p*, or the device model's deterministic
/// expected reading at the collection resolution.
double true_value(const SpaceSim& sim, const TrainingScheme& p_star,
                  const std::string& dataset, const MetricKey* key,
                  const Arch& arch) {
  if (key == nullptr) return sim.expected_accuracy(arch, p_star);
  const ModelIR ir = sim.lower(arch, 224);
  const Device device = make_device(key->device);
  switch (key->metric) {
    case PerfMetric::kThroughput: return device.throughput_fps(ir);
    case PerfMetric::kLatency: return device.latency_ms(ir);
    case PerfMetric::kEnergy: return device.energy_mj_per_image(ir);
    case PerfMetric::kPeakMemory: return device.peak_memory_mb(ir);
  }
  throw Error("e14_cross_space: unknown metric for " + dataset);
}

struct Row {
  std::string space;
  std::string dataset;
  double r2 = 0.0;
  double tau = 0.0;
  double traj_tau = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E14b: cross-space surrogate + trajectory fidelity",
                      "DESIGN.md Search-space interface");
  register_builtin_spaces();

  const int n_evals = bench::fast_mode() ? 80 : 200;
  std::vector<Row> rows;

  for (const SpaceId space : {SpaceId::kMnasNet, SpaceId::kFbnet}) {
    const SearchSpace& sp = anb::space(space);
    std::printf("=== space: %s ===\n", sp.name());

    PipelineOptions options;
    options.world_seed = bench::kWorldSeed;
    options.space = space;
    options.n_archs = bench::collection_size();
    // The paper's A100 + ZCU102 plus both extension platforms; peak
    // memory on the whole fleet (PerfMetric::kPeakMemory extension).
    options.devices = {DeviceKind::kA100, DeviceKind::kZcu102,
                       DeviceKind::kMobileNpu, DeviceKind::kServerCpu};
    options.collect_peak_memory = true;
    const PipelineResult pipe = construct_benchmark(options);

    const std::unique_ptr<SpaceSim> sim =
        make_space_sim(space, bench::kWorldSeed);

    // One fidelity run per dataset: RE maximizes the surrogate (negated
    // for the lower-is-better metrics), the trajectory is re-scored with
    // the true model, and tau(surrogate, true) over the visited archs is
    // the fidelity number.
    for (const auto& [dataset, metrics] : pipe.test_metrics) {
      const bool is_accuracy = dataset == "ANB-Acc";
      MetricKey key{};
      if (!is_accuracy) key = MetricKey::parse(dataset);
      const bool lower_better =
          !is_accuracy && (key.metric == PerfMetric::kLatency ||
                           key.metric == PerfMetric::kEnergy ||
                           key.metric == PerfMetric::kPeakMemory);

      EvalOracle oracle = [&](const Arch& arch) {
        const double v = is_accuracy ? pipe.bench.query_accuracy(arch)
                                     : pipe.bench.query_perf(arch, key);
        return lower_better ? -v : v;
      };
      RegularizedEvolution re({}, sp);
      Rng rng(hash_combine(bench::kWorldSeed,
                           hash_combine(static_cast<std::uint64_t>(space),
                                        std::hash<std::string>{}(dataset))));
      const SearchTrajectory traj = re.run(oracle, n_evals, rng);

      std::vector<double> predicted, actual;
      predicted.reserve(traj.size());
      actual.reserve(traj.size());
      for (std::size_t i = 0; i < traj.size(); ++i) {
        predicted.push_back(lower_better ? -traj.values[i] : traj.values[i]);
        actual.push_back(true_value(*sim, pipe.p_star, dataset,
                                    is_accuracy ? nullptr : &key,
                                    traj.archs[i]));
      }
      Row row;
      row.space = std::string(sp.name());
      row.dataset = dataset;
      row.r2 = metrics.r2;
      row.tau = metrics.kendall_tau;
      row.traj_tau = kendall_tau(predicted, actual);
      rows.push_back(row);
    }
  }

  TextTable table({"space", "dataset", "test R^2", "test tau", "traj tau"});
  bool all_faithful = true;
  for (const Row& row : rows) {
    table.add_row({row.space, row.dataset, TextTable::num(row.r2, 3),
                   TextTable::num(row.tau, 3),
                   TextTable::num(row.traj_tau, 3)});
    all_faithful = all_faithful && row.traj_tau > 0.5;
  }
  table.print(std::cout);
  std::printf("\nall trajectories faithful (tau > 0.5): %s\n",
              all_faithful ? "yes" : "NO");
  std::printf("(same stack, two spaces, eight datasets each — the "
              "space-generic redesign at work)\n");

  CsvWriter csv({"space", "dataset", "test_r2", "test_kendall_tau",
                 "trajectory_kendall_tau"});
  for (const Row& row : rows) {
    csv.add_row({row.space, row.dataset, std::to_string(row.r2),
                 std::to_string(row.tau), std::to_string(row.traj_tau)});
  }
  csv.save(bench::results_path("e14_cross_space.csv"));
  std::printf("\nWritten to results/e14_cross_space.csv\n");
  anb::bench::export_obs("e14_cross_space");
  return 0;
}
