// E2 — Fig. 3: validation of the searched proxy p*.
//
// 120 random, previously unseen architectures are trained with both p* and
// the reference scheme r, three seeds each. The paper reports a validation
// rank correlation of tau = 0.926 between the seed-averaged accuracies.
// This harness prints the scatter series behind the figure and the tau.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "anb/util/csv.hpp"
#include "anb/util/metrics.hpp"
#include "anb/util/stats.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E2: validation of p* on unseen models", "Figure 3");

  TrainingSimulator sim = bench::make_simulator();
  const TrainingScheme p_star = canonical_p_star();
  const TrainingScheme ref = reference_scheme();

  const int n_models = 120;  // paper: 120 random unseen models
  const int n_seeds = 3;     // paper: three seeds per model

  Rng rng(hash_combine(bench::kWorldSeed, 0xF16));
  std::vector<double> mean_proxy, mean_ref, err_proxy, err_ref;
  CsvWriter csv({"arch", "acc_ref_mean", "acc_ref_std", "acc_proxy_mean",
                 "acc_proxy_std"});

  for (int m = 0; m < n_models; ++m) {
    const Architecture arch =
        MnasSpace::to_blocks(MnasSpace::instance().sample(rng));
    std::vector<double> proxy_runs, ref_runs;
    for (int s = 0; s < n_seeds; ++s) {
      proxy_runs.push_back(
          sim.train(arch, p_star, static_cast<std::uint64_t>(s)).top1);
      ref_runs.push_back(
          sim.train(arch, ref, static_cast<std::uint64_t>(s)).top1);
    }
    mean_proxy.push_back(mean(proxy_runs));
    mean_ref.push_back(mean(ref_runs));
    err_proxy.push_back(stddev(proxy_runs));
    err_ref.push_back(stddev(ref_runs));
    csv.add_row({arch.to_string(), std::to_string(mean_ref.back()),
                 std::to_string(err_ref.back()),
                 std::to_string(mean_proxy.back()),
                 std::to_string(err_proxy.back())});
  }

  const double tau = kendall_tau(mean_proxy, mean_ref);
  const double rho = spearman_rho(mean_proxy, mean_ref);

  std::printf("\n%d unseen models x %d seeds, trained with p* and r\n",
              n_models, n_seeds);
  std::printf("  validation Kendall tau : %.3f   (paper: 0.926)\n", tau);
  std::printf("  validation Spearman rho: %.3f\n", rho);
  std::printf("  reference acc range    : [%.3f, %.3f]\n",
              min_value(mean_ref), max_value(mean_ref));
  std::printf("  proxified acc range    : [%.3f, %.3f]\n",
              min_value(mean_proxy), max_value(mean_proxy));
  std::printf("  mean seed-noise (std)  : r %.4f | p* %.4f\n",
              mean(err_ref), mean(err_proxy));

  // Coarse ASCII rendition of the Fig. 3 scatter.
  std::printf("\nA_p* (y) vs A_r (x) scatter (120 points):\n");
  const double x_lo = min_value(mean_ref), x_hi = max_value(mean_ref);
  const double y_lo = min_value(mean_proxy), y_hi = max_value(mean_proxy);
  const int width = 64, height = 20;
  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (int m = 0; m < n_models; ++m) {
    const int cx = static_cast<int>((mean_ref[static_cast<std::size_t>(m)] - x_lo) /
                                    (x_hi - x_lo) * (width - 1));
    const int cy = static_cast<int>((mean_proxy[static_cast<std::size_t>(m)] - y_lo) /
                                    (y_hi - y_lo) * (height - 1));
    canvas[static_cast<std::size_t>(height - 1 - cy)]
          [static_cast<std::size_t>(cx)] = '*';
  }
  for (const auto& line : canvas) std::printf("|%s|\n", line.c_str());
  std::printf(" x: A_r in [%.3f, %.3f], y: A_p* in [%.3f, %.3f]\n", x_lo,
              x_hi, y_lo, y_hi);

  csv.save(bench::results_path("fig3_proxy_validation.csv"));
  std::printf("\nScatter data written to results/fig3_proxy_validation.csv\n");
  anb::bench::export_obs("fig3_proxy_validation");
  return 0;
}
