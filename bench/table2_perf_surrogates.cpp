// E4 — Table 2: XGB test performance on the eight on-device datasets
// ANB-{ZCU,VCK}-{Thr,Lat}, ANB-{TPUv2,TPUv3,A100,RTX}-Thr.
//
// Same protocol as Table 1 but fitting the winning family (XGB) per device
// dataset. Paper reference values printed alongside.

#include <cstdio>
#include <iostream>

#include "anb/anb/tuning.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E4: device-performance surrogates (XGB)", "Table 2");

  const CollectedData data = bench::collect_datasets(/*with_perf=*/true);
  std::printf("Collected %zu architectures x 8 device datasets\n\n",
              data.archs.size());

  struct PaperRow {
    DeviceKind device;
    PerfMetric metric;
    double r2, tau, mae;
  };
  const PaperRow paper[] = {
      {DeviceKind::kZcu102, PerfMetric::kThroughput, 0.990, 0.955, 13.2},
      {DeviceKind::kZcu102, PerfMetric::kLatency, 1.000, 0.987, 5.2e-2},
      {DeviceKind::kVck190, PerfMetric::kThroughput, 0.991, 0.949, 69.5},
      {DeviceKind::kVck190, PerfMetric::kLatency, 0.999, 0.980, 4.0e-2},
      {DeviceKind::kTpuV3, PerfMetric::kThroughput, 0.975, 0.905, 29.1},
      {DeviceKind::kTpuV2, PerfMetric::kThroughput, 0.994, 0.962, 14.4},
      {DeviceKind::kA100, PerfMetric::kThroughput, 0.995, 0.975, 159.7},
      {DeviceKind::kRtx3090, PerfMetric::kThroughput, 0.996, 0.968, 116.1},
  };

  TextTable table({"Dataset", "R2", "KT tau", "MAE", "R2 (paper)",
                   "tau (paper)", "MAE (paper)"});
  CsvWriter csv({"dataset", "r2", "tau", "mae", "rmse"});

  TuneOptions options;
  options.n_trials = bench::fast_mode() ? 4 : 6;
  options.tuning_subsample = 800;

  for (const auto& row : paper) {
    const MetricKey key{row.device, row.metric};
    const std::string name = dataset_name(key);
    const DatasetSplits splits =
        bench::split_paper_style(data.perf_dataset(key), name.size());
    options.seed = hash_combine(23, name.size() * 7);
    const TunedSurrogate tuned =
        tune_surrogate(SurrogateKind::kXgb, splits.train, splits.val, options);
    const FitMetrics m = tuned.model->evaluate(splits.test);
    table.add_row({name, TextTable::num(m.r2, 3),
                   TextTable::num(m.kendall_tau, 3),
                   m.mae < 1.0 ? TextTable::sci(m.mae, 2)
                               : TextTable::num(m.mae, 1),
                   TextTable::num(row.r2, 3), TextTable::num(row.tau, 3),
                   row.mae < 1.0 ? TextTable::sci(row.mae, 2)
                                 : TextTable::num(row.mae, 1)});
    csv.add_row({name, std::to_string(m.r2), std::to_string(m.kendall_tau),
                 std::to_string(m.mae), std::to_string(m.rmse)});
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nExpected shape: device performance is highly learnable from "
              "architecture encodings\n(tau >= 0.9 everywhere; latency "
              "easier than batched throughput).\n");
  csv.save(bench::results_path("table2_perf_surrogates.csv"));
  std::printf("Rows written to results/table2_perf_surrogates.csv\n");
  anb::bench::export_obs("table2_perf_surrogates");
  return 0;
}
