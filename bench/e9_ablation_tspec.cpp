// E9 — ablation: proxy fidelity vs the time budget t_spec, and grid vs
// random vs SMAC as the proxy-search optimizer.
//
// The paper fixes t_spec = 3 GPU-hours "based on available compute" and uses
// grid search "owing to the high degree of parallelism". This ablation maps
// the trade-off both choices sit on: (1) achievable tau as a function of the
// budget, (2) best-tau-found per optimizer at a matched evaluation budget.

#include <cstdio>
#include <iostream>

#include "anb/anb/proxy_search.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E9: t_spec and optimizer ablation", "DESIGN.md E9");

  TrainingSimulator sim = bench::make_simulator();
  ProxySearch search(sim);

  // --- 1. achievable tau vs budget --------------------------------------
  std::printf("\n[1/2] Best feasible tau as a function of t_spec\n");
  TextTable budget_table({"t_spec (h)", "best tau", "best scheme",
                          "speedup"});
  CsvWriter csv1({"t_spec_hours", "best_tau", "scheme", "speedup"});
  for (double t_spec : {0.5, 1.0, 2.0, 3.0, 5.0, 8.0}) {
    ProxySearchConfig config;
    config.n_models = bench::fast_mode() ? 10 : 20;
    config.t_spec_hours = t_spec;
    config.seed = 1;
    const ProxySearchOutcome outcome = search.run_grid(config);
    budget_table.add_row({TextTable::num(t_spec, 1),
                          TextTable::num(outcome.best_tau, 3),
                          outcome.best.to_string(),
                          TextTable::num(outcome.speedup, 1) + "x"});
    csv1.add_row({std::to_string(t_spec), std::to_string(outcome.best_tau),
                  outcome.best.to_string(), std::to_string(outcome.speedup)});
  }
  budget_table.print(std::cout);
  std::printf("Expected shape: tau rises steeply up to ~3h, then saturates —"
              "\nthe paper's t_spec sits at the knee.\n");

  // --- 2. optimizer comparison at a matched budget -----------------------
  std::printf("\n[2/2] Proxy-search optimizer comparison (40 scheme "
              "evaluations for random/smac; grid is exhaustive)\n");
  TextTable opt_table({"optimizer", "evals", "best tau", "best cost (h)"});
  CsvWriter csv2({"optimizer", "evals", "best_tau", "best_cost_hours"});
  for (const std::string optimizer : {"grid", "random", "smac"}) {
    ProxySearchConfig config;
    config.n_models = bench::fast_mode() ? 8 : 16;
    config.t_spec_hours = 3.0;
    config.seed = 2;
    const int budget = bench::fast_mode() ? 15 : 40;
    const ProxySearchOutcome outcome =
        search.run_with(optimizer, config, budget);
    opt_table.add_row({optimizer, std::to_string(outcome.trials.size()),
                       TextTable::num(outcome.best_tau, 3),
                       TextTable::num(outcome.best_cost_hours, 2)});
    csv2.add_row({optimizer, std::to_string(outcome.trials.size()),
                  std::to_string(outcome.best_tau),
                  std::to_string(outcome.best_cost_hours)});
  }
  opt_table.print(std::cout);
  std::printf("Expected shape: all three find a good scheme; grid is "
              "exhaustive,\nSMAC reaches comparable tau with far fewer "
              "evaluations.\n");

  csv1.save(bench::results_path("e9_ablation_tspec.csv"));
  csv2.save(bench::results_path("e9_ablation_optimizers.csv"));
  std::printf("\nSeries written to results/e9_ablation_{tspec,optimizers}.csv\n");
  anb::bench::export_obs("e9_ablation_tspec");
  return 0;
}
