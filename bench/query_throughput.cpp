// Microbenchmark for the batched query engine (DESIGN.md "Batched
// prediction & the query cache").
//
// Measures rows/sec of every surrogate family under three prediction
// paths — per-row predict(), serial predict_batch() over one flattened
// matrix, and parallel predict_matrix() — plus cold/warm batched queries
// through AccelNASBench's architecture-keyed cache. Doubles as a
// differential harness: the binary exits non-zero unless every batched
// value is bit-identical to the scalar path.
//
// Usage: query_throughput [n_rows]   (default 20000; ANB_FAST=1 -> 2000)
// Output: results/query_throughput.csv

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/flat_forest.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/util/error.hpp"
#include "anb/util/simd.hpp"
#include "common.hpp"

namespace anb::bench {
namespace {

double seconds_of(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Times `body` over enough repetitions to accumulate a measurable
/// interval, after one untimed warmup call. Returns seconds per call.
double time_per_call(const std::function<void()>& body) {
  body();  // warmup: touch caches, fault in pages
  int reps = 1;
  while (true) {
    const double secs = seconds_of([&] {
      for (int r = 0; r < reps; ++r) body();
    });
    if (secs > 0.05 || reps >= 1024) return secs / reps;
    reps *= 4;
  }
}

/// Synthetic-but-structured target over the real 63-dim architecture
/// encoding: additive one-hot weights plus a few pairwise interactions.
/// Trees fit this well, which keeps the fitted ensembles realistically
/// deep/full-sized without running the training simulator.
double synthetic_target(std::span<const double> x,
                        std::span<const double> w) {
  double y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) y += w[i] * x[i];
  y += 2.0 * x[0] * x[7] - 1.5 * x[3] * x[20] + x[11] * x[42];
  return y;
}

Dataset make_dataset(int n, std::uint64_t seed, std::span<const double> w,
                     std::size_t num_features) {
  Dataset ds(num_features);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const auto x = MnasSpace::instance().features(MnasSpace::instance().sample(rng));
    ds.add(x, synthetic_target(x, w));
  }
  return ds;
}

struct RowResult {
  std::string name;
  std::size_t rows = 0;
  double scalar_rps = 0.0;
  double batched_rps = 0.0;
  double parallel_rps = 0.0;
  bool bit_identical = false;
};

/// Benchmarks one fitted surrogate on the query matrix; verifies that the
/// batched and parallel outputs match the scalar path bit for bit.
RowResult bench_model(const std::string& name, const Surrogate& model,
                      std::span<const double> rows, std::size_t num_features) {
  const std::size_t n = rows.size() / num_features;
  std::vector<double> scalar_out(n), batch_out(n), matrix_out(n);

  RowResult result;
  result.name = name;
  result.rows = n;
  const double scalar_secs = time_per_call([&] {
    for (std::size_t i = 0; i < n; ++i)
      scalar_out[i] = model.predict(rows.subspan(i * num_features,
                                                 num_features));
  });
  const double batch_secs = time_per_call(
      [&] { model.predict_batch(rows, num_features, batch_out); });
  const double matrix_secs = time_per_call(
      [&] { model.predict_matrix(rows, num_features, matrix_out); });

  result.scalar_rps = static_cast<double>(n) / scalar_secs;
  result.batched_rps = static_cast<double>(n) / batch_secs;
  result.parallel_rps = static_cast<double>(n) / matrix_secs;
  result.bit_identical =
      std::memcmp(scalar_out.data(), batch_out.data(),
                  n * sizeof(double)) == 0 &&
      std::memcmp(scalar_out.data(), matrix_out.data(),
                  n * sizeof(double)) == 0;
  return result;
}

// ---------------------------------------------------------------------------
// Per-engine descent throughput (DESIGN.md "SIMD descent"). Each flat-
// forest family runs serial predict_batch under every forced descent
// engine; engines a fitted forest cannot support (shape outside the
// quantized/masked eligibility rules) are reported as unavailable rather
// than timed. Speedups are relative to the interleaved walk — the
// pre-SIMD baseline — which keeps them comparable across hosts even
// though absolute rows/sec are not.
// ---------------------------------------------------------------------------

struct PathResult {
  std::string model;
  std::string path;
  bool available = false;
  double rps = 0.0;
  double speedup = 0.0;  ///< vs the interleaved walk on the same host
  bool bit_identical = true;
};

std::vector<PathResult> bench_paths(const std::string& name,
                                    const Surrogate& model,
                                    std::span<const double> rows,
                                    std::size_t num_features) {
  const std::size_t n = rows.size() / num_features;
  std::vector<double> ref(n), out(n);
  {
    ScopedDescentPath sp(DescentPath::kInterleaved);
    model.predict_batch(rows, num_features, ref);
  }
  const DescentPath kPaths[] = {DescentPath::kInterleaved, DescentPath::kSimd,
                                DescentPath::kQuantized, DescentPath::kMasked};
  std::vector<PathResult> results;
  for (const DescentPath path : kPaths) {
    PathResult r;
    r.model = name;
    r.path = descent_path_name(path);
    ScopedDescentPath sp(path);
    try {
      model.predict_batch(rows, num_features, out);  // availability probe
    } catch (const Error&) {
      results.push_back(r);
      continue;
    }
    r.available = true;
    const double secs = time_per_call(
        [&] { model.predict_batch(rows, num_features, out); });
    r.rps = static_cast<double>(n) / secs;
    r.bit_identical =
        std::memcmp(ref.data(), out.data(), n * sizeof(double)) == 0;
    r.speedup = results.empty() ? 1.0 : r.rps / results.front().rps;
    results.push_back(r);
  }
  return results;
}

void print_path_row(const PathResult& r) {
  if (!r.available) {
    std::printf("  %-14s %-12s unavailable (forest shape outside "
                "eligibility)\n",
                r.model.c_str(), r.path.c_str());
    return;
  }
  std::printf("  %-14s %-12s %10.0f r/s  (%5.2fx interleaved)  exact=%s\n",
              r.model.c_str(), r.path.c_str(), r.rps, r.speedup,
              r.bit_identical ? "yes" : "NO");
}

void print_row(const RowResult& r) {
  std::printf("%-18s rows=%-6zu scalar=%10.0f r/s  batched=%10.0f r/s "
              "(%5.2fx)  parallel=%10.0f r/s (%5.2fx)  exact=%s\n",
              r.name.c_str(), r.rows, r.scalar_rps, r.batched_rps,
              r.batched_rps / r.scalar_rps, r.parallel_rps,
              r.parallel_rps / r.scalar_rps, r.bit_identical ? "yes" : "NO");
}

int run(int argc, char** argv) {
  parse_obs_flags(argc, argv);
  const bool has_rows_arg = argc > 1 && std::strcmp(argv[1], "--trace") != 0;
  const int n_rows = has_rows_arg ? std::atoi(argv[1])
                                  : (fast_mode() ? 2000 : 20000);
  ANB_CHECK(n_rows >= 1, "query_throughput: n_rows must be >= 1");
  print_header("query throughput: scalar vs batched prediction",
               "batched query engine (this repo's extension)");

  // Fitted models. Training size only shapes the trees; query cost is what
  // we measure, so a modest train set keeps setup fast.
  Rng probe_rng(1);
  const std::size_t num_features =
      MnasSpace::instance().features(MnasSpace::instance().sample(probe_rng)).size();
  std::vector<double> w(num_features);
  Rng wrng(hash_combine(kWorldSeed, 0xBEEF));
  for (double& v : w) v = wrng.normal();

  const int n_train = fast_mode() ? 400 : 1000;
  const Dataset train =
      make_dataset(n_train, hash_combine(kWorldSeed, 1), w, num_features);
  const Dataset svr_train = make_dataset(std::min(n_train, 500),
                                         hash_combine(kWorldSeed, 2), w,
                                         num_features);

  Rng fit_rng(hash_combine(kWorldSeed, 3));
  Gbdt gbdt;
  gbdt.fit(train, fit_rng);
  HistGbdt hist;
  hist.fit(train, fit_rng);
  RandomForest forest;
  forest.fit(train, fit_rng);
  Svr svr;
  svr.fit(svr_train, fit_rng);
  GbdtParams member_params;
  member_params.n_estimators = 300;
  EnsembleSurrogate ensemble(
      [member_params] { return std::make_unique<Gbdt>(member_params); },
      /*size=*/5);
  ensemble.fit(train, fit_rng);

  // Query matrix: n_rows freshly sampled architectures.
  Rng qrng(hash_combine(kWorldSeed, 4));
  std::vector<Arch> archs;
  archs.reserve(static_cast<std::size_t>(n_rows));
  std::vector<double> rows;
  rows.reserve(static_cast<std::size_t>(n_rows) * num_features);
  for (int i = 0; i < n_rows; ++i) {
    archs.push_back(MnasSpace::instance().sample(qrng));
    const auto x = MnasSpace::instance().features(archs.back());
    rows.insert(rows.end(), x.begin(), x.end());
  }

  std::vector<RowResult> results;
  results.push_back(bench_model("gbdt", gbdt, rows, num_features));
  results.push_back(bench_model("hist_gbdt", hist, rows, num_features));
  results.push_back(bench_model("random_forest", forest, rows, num_features));
  results.push_back(bench_model("svr", svr, rows, num_features));
  results.push_back(bench_model("ensemble_gbdt", ensemble, rows,
                                num_features));
  for (const auto& r : results) print_row(r);

  // Per-engine sweep over the flat-forest families (svr has no forest;
  // the ensemble delegates to its gbdt members, already covered).
  std::printf("\ndescent engines (forced, serial predict_batch, target=%s):\n",
              simd::target_name(simd::active_target()));
  const std::pair<const char*, const Surrogate*> kForestModels[] = {
      {"gbdt", &gbdt}, {"hist_gbdt", &hist}, {"random_forest", &forest}};
  std::vector<PathResult> path_results;
  for (const auto& [pname, pmodel] : kForestModels) {
    const std::vector<PathResult> rs =
        bench_paths(pname, *pmodel, rows, num_features);
    for (const PathResult& r : rs) print_path_row(r);
    path_results.insert(path_results.end(), rs.begin(), rs.end());
  }

  // Perf gate: on AVX2 hardware at full size, the masked engine must beat
  // the interleaved walk by >= 3x wherever it is available (the PR's
  // acceptance floor; ~7x measured on dev hardware, so 3x leaves headroom
  // for noisy CI neighbours). Skipped in fast/small runs where fixed
  // costs dominate, and on non-AVX2 hosts, where auto dispatch falls back
  // to the interleaved walk itself (>= 1x by construction).
  bool gate_ok = true;
  const bool gate_active = !fast_mode() && n_rows >= 4096 &&
                           simd::cpu_supports(simd::Target::kAvx2);
  for (const PathResult& r : path_results) {
    if (!r.available || r.path != "masked" || !gate_active) continue;
    if (r.speedup < 3.0) {
      std::printf("FAILED: %s masked engine %.2fx interleaved (< 3x floor)\n",
                  r.model.c_str(), r.speedup);
      gate_ok = false;
    }
  }

  // End-to-end benchmark queries through the architecture-keyed cache:
  // scalar loop with the cache disabled, then a cold batched call (all
  // misses) and a warm one (all hits).
  AccelNASBench nasbench;
  nasbench.set_accuracy_surrogate(surrogate_from_json(gbdt.to_json()));
  const std::size_t n = archs.size();
  std::vector<double> scalar_vals(n);

  nasbench.set_cache_enabled(false);
  const double scalar_secs = time_per_call([&] {
    for (std::size_t i = 0; i < n; ++i)
      scalar_vals[i] = nasbench.query_accuracy(archs[i]);
  });
  nasbench.set_cache_enabled(true);
  nasbench.clear_cache();

  std::vector<double> cold_vals, warm_vals;
  const double cold_secs =
      seconds_of([&] { cold_vals = nasbench.query_accuracy_batch(archs); });
  const QueryCacheStats after_cold = nasbench.cache_stats();
  const double warm_secs = time_per_call(
      [&] { warm_vals = nasbench.query_accuracy_batch(archs); });
  const QueryCacheStats after_warm = nasbench.cache_stats();

  const double scalar_rps = static_cast<double>(n) / scalar_secs;
  RowResult cold;
  cold.name = "bench_query_cold";
  cold.rows = n;
  cold.scalar_rps = scalar_rps;
  cold.batched_rps = static_cast<double>(n) / cold_secs;
  cold.parallel_rps = cold.batched_rps;
  cold.bit_identical =
      std::memcmp(scalar_vals.data(), cold_vals.data(),
                  n * sizeof(double)) == 0;
  RowResult warm;
  warm.name = "bench_query_warm";
  warm.rows = n;
  warm.scalar_rps = scalar_rps;
  warm.batched_rps = static_cast<double>(n) / warm_secs;
  warm.parallel_rps = warm.batched_rps;
  warm.bit_identical =
      std::memcmp(scalar_vals.data(), warm_vals.data(),
                  n * sizeof(double)) == 0;
  results.push_back(cold);
  results.push_back(warm);
  print_row(cold);
  print_row(warm);
  std::printf("cache: cold hits=%llu misses=%llu  (after warm: hits=%llu "
              "misses=%llu)\n",
              static_cast<unsigned long long>(after_cold.hits),
              static_cast<unsigned long long>(after_cold.misses),
              static_cast<unsigned long long>(after_warm.hits),
              static_cast<unsigned long long>(after_warm.misses));

  const std::string path = results_path("query_throughput.csv");
  std::string csv =
      "name,rows,scalar_rows_per_sec,batched_rows_per_sec,"
      "parallel_rows_per_sec,batched_speedup,parallel_speedup,"
      "bit_identical\n";
  for (const auto& r : results) {
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%zu,%.0f,%.0f,%.0f,%.3f,%.3f,%s\n",
                  r.name.c_str(), r.rows, r.scalar_rps, r.batched_rps,
                  r.parallel_rps, r.batched_rps / r.scalar_rps,
                  r.parallel_rps / r.scalar_rps,
                  r.bit_identical ? "yes" : "no");
    csv += line;
  }
  write_text_file(path, csv);
  std::printf("wrote %s\n", path.c_str());

  // Trajectory: append one row per (model, engine) so the committed CSV
  // records how engine speedups evolve across revisions. CI gates on the
  // speedup column — a same-host ratio, comparable across hardware —
  // not absolute rows/sec (tools/check_throughput_trajectory.py).
  const char* rev_env = std::getenv("ANB_GIT_REV");
  const std::string rev = rev_env != nullptr ? rev_env : "unknown";
  const std::string traj_path =
      results_path("query_throughput_trajectory.csv");
  std::string traj;
  if (std::filesystem::exists(traj_path)) traj = read_text_file(traj_path);
  if (traj.empty())
    traj = "git_rev,model,path,rows_per_sec,speedup_vs_interleaved\n";
  for (const PathResult& r : path_results) {
    if (!r.available) continue;
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%s,%s,%.0f,%.3f\n", rev.c_str(),
                  r.model.c_str(), r.path.c_str(), r.rps, r.speedup);
    traj += line;
  }
  write_text_file(traj_path, traj);
  std::printf("appended %s (rev %s)\n", traj_path.c_str(), rev.c_str());

  // rows/sec gauges: timing lives in the bench (the library never reads
  // the clock — see tools/anb_lint raw-timing rule), the registry carries
  // the last measured value for the metrics CSV.
  obs::gauge("anb.query.scalar_rows_per_sec").set(scalar_rps);
  obs::gauge("anb.query.batched_rows_per_sec").set(warm.batched_rps);
  export_obs("query_throughput");

  bool all_exact = true;
  for (const auto& r : results) all_exact = all_exact && r.bit_identical;
  for (const auto& r : path_results) all_exact = all_exact && r.bit_identical;
  if (!all_exact) {
    std::printf("FAILED: batched prediction diverged from the scalar path\n");
    return 1;
  }
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace anb::bench

int main(int argc, char** argv) { return anb::bench::run(argc, argv); }
