// E8 — microbenchmark: zero-cost query latency.
//
// §2.1 claims surrogate benchmarks answer accuracy/performance queries
// "within a few milliseconds without model training and on-device
// measurements". This google-benchmark binary measures the actual cost of
// AccelNASBench::query_* per surrogate family, plus the encoding and
// sampling primitives a NAS optimizer calls in its inner loop.

#include <benchmark/benchmark.h>

#include <optional>

#include "anb/anb/benchmark.hpp"
#include "anb/anb/tuning.hpp"
#include "anb/obs/obs.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/surrogate/flat_forest.hpp"
#include "anb/trainsim/simulator.hpp"
#include "anb/anb/pipeline.hpp"
#include "anb/util/simd.hpp"
#include "common.hpp"

namespace {

using namespace anb;

Dataset small_training_set() {
  TrainingSimulator sim(42);
  Rng rng(1);
  Dataset ds(static_cast<std::size_t>(MnasSpace::instance().feature_dim()));
  for (int i = 0; i < 800; ++i) {
    const Arch a = MnasSpace::instance().sample(rng);
    ds.add(MnasSpace::instance().features(a),
           sim.train(MnasSpace::to_blocks(a), canonical_p_star(), 0).top1);
  }
  return ds;
}


std::unique_ptr<Surrogate> fitted(SurrogateKind kind) {
  static const Dataset train = small_training_set();
  auto model = make_default_surrogate(kind);
  Rng rng(2);
  model->fit(train, rng);
  return model;
}

void BM_SampleArchitecture(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MnasSpace::instance().sample(rng));
  }
}
BENCHMARK(BM_SampleArchitecture);

void BM_EncodeFeatures(benchmark::State& state) {
  Rng rng(4);
  const Arch a = MnasSpace::instance().sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MnasSpace::instance().features(a));
  }
}
BENCHMARK(BM_EncodeFeatures);

void BM_QuerySurrogate(benchmark::State& state) {
  const auto kind = static_cast<SurrogateKind>(state.range(0));
  const auto model = fitted(kind);
  Rng rng(5);
  const auto x = MnasSpace::instance().features(MnasSpace::instance().sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict(x));
  }
  state.SetLabel(surrogate_kind_label(kind));
}
BENCHMARK(BM_QuerySurrogate)
    ->Arg(static_cast<int>(SurrogateKind::kXgb))
    ->Arg(static_cast<int>(SurrogateKind::kLgb))
    ->Arg(static_cast<int>(SurrogateKind::kRf))
    ->Arg(static_cast<int>(SurrogateKind::kEpsSvr));

void BM_BenchmarkEndToEndQuery(benchmark::State& state) {
  AccelNASBench bench;
  bench.set_accuracy_surrogate(fitted(SurrogateKind::kXgb));
  Rng rng(6);
  for (auto _ : state) {
    // Full zero-cost evaluation path: sample -> encode -> predict.
    benchmark::DoNotOptimize(bench.query_accuracy(MnasSpace::instance().sample(rng)));
  }
}
BENCHMARK(BM_BenchmarkEndToEndQuery);

// Overhead of the observability layer on the hot query path. The query
// counters are armed by default; the acceptance budget is < 2% between
// these two variants (compare their per-iteration times in the output).
// range(0) == 1 runs with metrics armed, == 0 with the registry disarmed.
void BM_QueryObsOverhead(benchmark::State& state) {
  AccelNASBench bench;
  bench.set_accuracy_surrogate(fitted(SurrogateKind::kXgb));
  Rng rng(8);
  const bool armed = state.range(0) != 0;
  obs::set_metrics_enabled(armed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.query_accuracy(MnasSpace::instance().sample(rng)));
  }
  obs::set_metrics_enabled(true);
  state.SetLabel(armed ? "obs_enabled" : "obs_disabled");
}
BENCHMARK(BM_QueryObsOverhead)->Arg(1)->Arg(0);

// SIMD vs scalar batched descent (DESIGN.md "SIMD descent"): one fitted
// hist-gbdt (masked-eligible by construction: max_leaves 8) predicts the
// same 4096-row matrix under auto dispatch — the masked SIMD engine on
// capable hosts — and under a pinned scalar target, where auto dispatch
// falls back to the interleaved walk. items_per_second is rows/sec;
// compare the two labels for the SIMD speedup on this host. The pair
// also populates the anb.query.simd.{rows,dispatch_target} metrics that
// main() exports below for the CI artifact.
void BM_PredictBatchDescent(benchmark::State& state) {
  const auto model = fitted(SurrogateKind::kLgb);
  constexpr std::size_t kRows = 4096;
  const auto d = static_cast<std::size_t>(MnasSpace::instance().feature_dim());
  Rng rng(9);
  std::vector<double> rows;
  rows.reserve(kRows * d);
  for (std::size_t i = 0; i < kRows; ++i) {
    const auto x = MnasSpace::instance().features(MnasSpace::instance().sample(rng));
    rows.insert(rows.end(), x.begin(), x.end());
  }
  std::vector<double> out(kRows);
  const bool simd_on = state.range(0) != 0;
  std::optional<simd::ScopedTarget> pin;
  if (!simd_on) pin.emplace(simd::Target::kScalar);
  for (auto _ : state) {
    model->predict_batch(rows, d, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
  state.SetLabel(simd_on ? "simd_auto" : "scalar_pinned");
}
BENCHMARK(BM_PredictBatchDescent)->Arg(1)->Arg(0);

// Contrast: the cost this zero-cost path replaces (simulated training run).
void BM_SimulatedTrainingEvaluation(benchmark::State& state) {
  TrainingSimulator sim(42);
  Rng rng(7);
  const TrainingScheme p = canonical_p_star();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.train(MnasSpace::to_blocks(MnasSpace::instance().sample(rng)),
                  p, 0));
  }
}
BENCHMARK(BM_SimulatedTrainingEvaluation);

}  // namespace

// Custom main instead of benchmark_main: after the run, export the obs
// registry as a metrics CSV (anb.query.simd.{rows,dispatch_target} from
// the batched-descent pair above, plus the query counters) so the CI
// tier-1 job can upload it with the other bench observability artifacts.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  obs::write_metrics_csv(
      anb::bench::results_path("micro_query_latency_metrics.csv"));
  return 0;
}
