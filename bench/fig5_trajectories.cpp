// E5 — Fig. 5: trajectory of uni-objective search, true vs simulated.
//
// Runs Regularized Evolution, Random Search, and REINFORCE (a) against the
// training simulator with scheme p* ("true", one run — it is expensive) and
// (b) against the Accel-NASBench accuracy surrogate ("simulated", five seeds
// averaged). The paper's observation: trajectories match, with RS
// stagnating early on the MnasNet space while RE/REINFORCE keep improving.

#include <cstdio>
#include <iostream>

#include "anb/anb/harness.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E5: uni-objective search trajectories", "Figure 5");

  PipelineOptions options;
  options.world_seed = bench::kWorldSeed;
  options.n_archs = bench::collection_size();
  options.collect_perf = false;
  const PipelineResult pipe = construct_benchmark(options);
  std::printf("Benchmark constructed: accuracy surrogate test tau = %.3f\n\n",
              pipe.test_metrics.at("ANB-Acc").kendall_tau);

  TrainingSimulator sim = bench::make_simulator();
  TrajectoryConfig config;
  config.n_evals = bench::fast_mode() ? 120 : 300;
  config.n_sim_seeds = 5;  // paper: simulated runs averaged over five seeds
  config.seed = 3;

  const auto comparisons =
      compare_trajectories(pipe.bench, sim, pipe.p_star, config);

  // Print incumbent curves at checkpoints.
  const std::vector<int> checkpoints = [&] {
    std::vector<int> c;
    for (int at = 10; at <= config.n_evals; at *= 2) c.push_back(at);
    if (c.empty() || c.back() != config.n_evals) c.push_back(config.n_evals);
    return c;
  }();

  for (const char* mode : {"true", "simulated"}) {
    std::printf("--- %s runs ---\n", mode);
    TextTable table([&] {
      std::vector<std::string> header{"optimizer"};
      for (int at : checkpoints)
        header.push_back("@" + std::to_string(at));
      return header;
    }());
    for (const auto& cmp : comparisons) {
      std::vector<std::string> row{cmp.optimizer};
      const auto& curve = std::string(mode) == "true"
                              ? cmp.true_incumbent
                              : cmp.sim_mean_incumbent;
      for (int at : checkpoints)
        row.push_back(TextTable::num(curve[static_cast<std::size_t>(at - 1)], 4));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  // Shape checks mirroring the paper's discussion.
  const auto& rs = comparisons[0];
  const auto& re = comparisons[1];
  const auto& reinforce = comparisons[2];
  std::printf("\nShape summary (final incumbents):\n");
  std::printf("  true:      RS %.4f | RE %.4f | REINFORCE %.4f\n",
              rs.true_incumbent.back(), re.true_incumbent.back(),
              reinforce.true_incumbent.back());
  std::printf("  simulated: RS %.4f | RE %.4f | REINFORCE %.4f\n",
              rs.sim_mean_incumbent.back(), re.sim_mean_incumbent.back(),
              reinforce.sim_mean_incumbent.back());
  const bool rs_lags_true =
      rs.true_incumbent.back() <= re.true_incumbent.back() &&
      rs.true_incumbent.back() <= reinforce.true_incumbent.back();
  const bool rs_lags_sim =
      rs.sim_mean_incumbent.back() <= re.sim_mean_incumbent.back() &&
      rs.sim_mean_incumbent.back() <= reinforce.sim_mean_incumbent.back();
  std::printf("  RS trails RE/REINFORCE: true=%s simulated=%s "
              "(paper: yes on both)\n",
              rs_lags_true ? "yes" : "NO", rs_lags_sim ? "yes" : "NO");

  CsvWriter csv({"optimizer", "eval", "true_incumbent", "sim_mean_incumbent"});
  for (const auto& cmp : comparisons) {
    for (std::size_t i = 0; i < cmp.true_incumbent.size(); ++i) {
      csv.add_row({cmp.optimizer, std::to_string(i + 1),
                   std::to_string(cmp.true_incumbent[i]),
                   std::to_string(cmp.sim_mean_incumbent[i])});
    }
  }
  csv.save(bench::results_path("fig5_trajectories.csv"));
  std::printf("\nCurves written to results/fig5_trajectories.csv\n");
  anb::bench::export_obs("fig5_trajectories");
  return 0;
}
