// E12 — extension: energy as a third objective.
//
// Accel-NASBench ships throughput/latency; HW-NAS-Bench additionally offers
// energy. This extension adds per-device energy datasets and surrogates on
// top of the paper's pipeline and runs an accuracy-energy bi-objective
// search on the ZCU102 edge FPGA — the deployment regime where joules per
// image, not img/s, is the binding constraint.

#include <cstdio>
#include <iostream>

#include "anb/anb/harness.hpp"
#include "anb/searchspace/zoo.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E12: energy extension", "DESIGN.md E12 (beyond paper)");

  // --- per-device energy of the reference models -------------------------
  std::printf("\nEnergy per image (mJ) of the baseline zoo:\n");
  TextTable zoo_table({"model", "tpuv2", "tpuv3", "a100", "rtx3090", "zcu102",
                       "vck190"});
  for (const auto& model : reference_zoo()) {
    std::vector<std::string> row{model.name};
    const ModelIR ir = build_ir(model.arch, 224);
    for (const auto& device : device_catalog())
      row.push_back(TextTable::num(device.energy_mj_per_image(ir), 1));
    zoo_table.add_row(std::move(row));
  }
  zoo_table.print(std::cout);

  // --- build a benchmark that includes energy surrogates ------------------
  PipelineOptions options;
  options.world_seed = bench::kWorldSeed;
  options.n_archs = bench::fast_mode() ? 800 : 2600;
  options.collect_energy = true;
  const PipelineResult pipe = construct_benchmark(options);
  std::printf("\nEnergy surrogate test metrics:\n");
  for (const auto& [name, metrics] : pipe.test_metrics) {
    if (name.find("-Enr") == std::string::npos) continue;
    std::printf("  %-14s R2 %.3f  tau %.3f  MAE %.3g mJ\n", name.c_str(),
                metrics.r2, metrics.kendall_tau, metrics.mae);
  }

  // --- accuracy-energy search on the edge FPGA ---------------------------
  ParetoSearchConfig config;
  config.key = {DeviceKind::kZcu102, PerfMetric::kEnergy};  // lower is better
  config.n_targets = bench::fast_mode() ? 3 : 6;
  config.n_evals_per_target = bench::fast_mode() ? 100 : 250;
  config.seed = 12;
  const ParetoOutcome outcome = pareto_search(pipe.bench, config);

  std::printf("\nZCU102 accuracy-energy Pareto front (%zu points from %d "
              "evals):\n",
              outcome.front.size(),
              config.n_targets * config.n_evals_per_target);
  TextTable front_table({"acc (pred)", "energy (pred, mJ)", "architecture"});
  CsvWriter csv({"acc_pred", "energy_mj_pred", "arch"});
  for (std::size_t k = 0; k < outcome.front.size(); ++k) {
    const std::size_t idx = outcome.front[k];
    if (outcome.front.size() > 10 && k % 2 == 1) continue;
    front_table.add_row({TextTable::num(outcome.accuracy[idx], 4),
                         TextTable::num(outcome.perf[idx], 1),
                         outcome.archs[idx].to_string()});
  }
  for (std::size_t idx : outcome.front) {
    csv.add_row({std::to_string(outcome.accuracy[idx]),
                 std::to_string(outcome.perf[idx]),
                 outcome.archs[idx].to_string()});
  }
  front_table.print(std::cout);

  csv.save(bench::results_path("e12_energy_front.csv"));
  std::printf("\nFront written to results/e12_energy_front.csv\n");
  anb::bench::export_obs("e12_energy_extension");
  return 0;
}
