// E14 — ablation: classic training-proxy search (successive halving on real
// training) vs zero-cost benchmark search, at matched simulated GPU-hours.
//
// §3.2 motivates training proxies via successive halving / hyperband. This
// harness quantifies what the *benchmark* buys over that classic approach:
// run SH against the training simulator (paying simulated GPU-hours), run
// plain random search with the same GPU-hour budget, and run regularized
// evolution against the surrogates (zero marginal cost once the benchmark
// exists). All winners are then re-trained with the reference scheme for a
// fair final comparison.

#include <cstdio>
#include <iostream>

#include "anb/anb/harness.hpp"
#include "anb/nas/evolution.hpp"
#include "anb/nas/successive_halving.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E14: successive halving vs zero-cost search",
                      "DESIGN.md E14 (motivated by paper §3.2)");

  TrainingSimulator sim = bench::make_simulator();

  // --- (a) successive halving on simulated real training ------------------
  SuccessiveHalvingParams sh_params;
  sh_params.initial_population = bench::fast_mode() ? 27 : 81;
  sh_params.eta = 3;
  sh_params.min_epochs = 5;
  sh_params.max_epochs = 45;
  SuccessiveHalving sh(sh_params);
  BudgetedOracle oracle = [&](const Arch& arch, int epochs) {
    TrainingScheme scheme = canonical_p_star();
    scheme.total_epochs = epochs;
    scheme.resize_finish_epoch =
        std::min(scheme.resize_finish_epoch, epochs);
    const TrainResult run =
        sim.train(MnasSpace::to_blocks(arch), scheme, /*run_seed=*/epochs);
    return BudgetedEval{run.top1, run.gpu_hours};
  };
  Rng sh_rng(hash_combine(bench::kWorldSeed, 0x5A));
  const auto sh_result = sh.run(oracle, sh_rng);
  std::printf("\nsuccessive halving: %d rounds, %zu trainings, %.0f "
              "sim-GPU-hours\n",
              sh_result.rounds, sh_result.evals.size(),
              sh_result.total_cost_hours);

  // --- (b) random search with the same GPU-hour budget -------------------
  Rng rs_rng(hash_combine(bench::kWorldSeed, 0x5B));
  Arch rs_best;
  double rs_best_acc = -1.0;
  double rs_cost = 0.0;
  int rs_trainings = 0;
  while (rs_cost < sh_result.total_cost_hours) {
    const Arch arch = MnasSpace::instance().sample(rs_rng);
    const TrainResult run =
        sim.train(MnasSpace::to_blocks(arch), canonical_p_star(), 0);
    rs_cost += run.gpu_hours;
    ++rs_trainings;
    if (run.top1 > rs_best_acc) {
      rs_best_acc = run.top1;
      rs_best = arch;
    }
  }
  std::printf("budget-matched random search: %d full p* trainings, %.0f "
              "sim-GPU-hours\n",
              rs_trainings, rs_cost);

  // --- (c) zero-cost search over the benchmark ----------------------------
  PipelineOptions options;
  options.world_seed = bench::kWorldSeed;
  options.n_archs = bench::collection_size();
  options.collect_perf = false;
  const PipelineResult pipe = construct_benchmark(options);
  RegularizedEvolution re;
  Rng re_rng(hash_combine(bench::kWorldSeed, 0x5C));
  EvalOracle zero_cost = [&](const Arch& arch) {
    return pipe.bench.query_accuracy(arch);
  };
  const auto re_traj = re.run(zero_cost, bench::fast_mode() ? 400 : 1000,
                              re_rng);
  std::printf("zero-cost RE over the benchmark: %zu queries, ~0 marginal "
              "GPU-hours\n\n",
              re_traj.size());

  // --- final fair comparison: reference-scheme retraining ------------------
  auto final_accuracy = [&](const Arch& arch) {
    return sim.train(MnasSpace::to_blocks(arch), reference_scheme(),
                     /*run_seed=*/99)
        .top1;
  };
  TextTable table({"method", "search cost (GPU-h)", "winner top-1 (ref)"});
  table.add_row({"successive halving (true training)",
                 TextTable::num(sh_result.total_cost_hours, 0),
                 TextTable::num(final_accuracy(sh_result.best), 4)});
  table.add_row({"random search (true training)",
                 TextTable::num(rs_cost, 0),
                 TextTable::num(final_accuracy(rs_best), 4)});
  table.add_row({"RE on Accel-NASBench (zero-cost)", "~0",
                 TextTable::num(final_accuracy(re_traj.best_arch()), 4)});
  table.print(std::cout);
  std::printf("\nExpected shape: the benchmark-backed search matches or "
              "beats SH's winner while\nspending no marginal GPU-hours — "
              "the sustainability argument of the paper's title.\n");
  anb::bench::export_obs("e14_sh_vs_benchmark");
  return 0;
}
