// Cold-start microbenchmark for the .anbb binary artifact (DESIGN.md
// "Binary artifact format").
//
// Measures how long it takes to get a queryable AccelNASBench from disk
// through the three load paths — JSON text parse, binary heap read, and
// zero-copy mmap open — and verifies the tri-modal differential contract:
// all three loaded benchmarks must produce bit-identical predictions for
// every installed surrogate, scalar and batched. The binary exits
// non-zero on any divergence, and (at full size) when the mmap open fails
// the >= 10x speedup target over the text parse.
//
// Usage: load_latency [n_probes]   (default 200; ANB_FAST=1 -> 50)
// Output: results/load_latency.csv

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/util/io.hpp"
#include "common.hpp"

namespace anb::bench {
namespace {

double seconds_of(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Seconds per call over enough repetitions to accumulate a measurable
/// interval, after one untimed warmup (page cache, allocator).
double time_per_call(const std::function<void()>& body) {
  body();
  int reps = 1;
  while (true) {
    const double secs = seconds_of([&] {
      for (int r = 0; r < reps; ++r) body();
    });
    if (secs > 0.05 || reps >= 1024) return secs / reps;
    reps *= 4;
  }
}

std::string scratch_path(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

/// A benchmark with every surrogate family installed; the tree counts are
/// what make the artifact realistically heavy (node arrays dominate).
AccelNASBench make_benchmark() {
  Rng drng(hash_combine(kWorldSeed, 1));
  const std::size_t num_features =
      MnasSpace::instance().features(MnasSpace::instance().sample(drng)).size();
  const int n_train = fast_mode() ? 300 : 1500;
  Dataset train(num_features);
  for (int i = 0; i < n_train; ++i) {
    const auto x = MnasSpace::instance().features(MnasSpace::instance().sample(drng));
    double y = 0.0;
    for (std::size_t k = 0; k < x.size(); ++k)
      y += x[k] * (k % 3 == 0 ? 0.5 : -0.25);
    train.add(x, y + drng.uniform() * 0.01);
  }
  const auto fitted = [&](std::unique_ptr<Surrogate> model) {
    Rng fit_rng(hash_combine(kWorldSeed, 2));
    model->fit(train, fit_rng);
    return model;
  };
  GbdtParams gp;
  gp.n_estimators = fast_mode() ? 40 : 400;
  HistGbdtParams hp;
  hp.n_estimators = fast_mode() ? 40 : 400;
  RandomForestParams fp;
  fp.n_trees = fast_mode() ? 20 : 150;
  SvrParams sp;
  sp.gamma = 0.25;

  AccelNASBench bench;
  bench.set_accuracy_surrogate(fitted(std::make_unique<EnsembleSurrogate>(
      [gp] { return std::make_unique<Gbdt>(gp); }, /*size=*/3)));
  bench.set_perf_surrogate(
      MetricKey{DeviceKind::kA100, PerfMetric::kThroughput},
      fitted(std::make_unique<Gbdt>(gp)));
  bench.set_perf_surrogate(
      MetricKey{DeviceKind::kZcu102, PerfMetric::kThroughput},
      fitted(std::make_unique<HistGbdt>(hp)));
  bench.set_perf_surrogate(
      MetricKey{DeviceKind::kZcu102, PerfMetric::kLatency},
      fitted(std::make_unique<RandomForest>(fp)));
  bench.set_perf_surrogate(
      MetricKey{DeviceKind::kVck190, PerfMetric::kThroughput},
      fitted(std::make_unique<Svr>(sp)));
  return bench;
}

/// Bit-compares predictions of `a` and `b` on `archs` over every query
/// path the benchmark offers.
bool identical_predictions(const AccelNASBench& a, const AccelNASBench& b,
                           std::span<const Arch> archs) {
  const auto batch_a = a.query_accuracy_batch(archs);
  const auto batch_b = b.query_accuracy_batch(archs);
  if (std::memcmp(batch_a.data(), batch_b.data(),
                  batch_a.size() * sizeof(double)) != 0) {
    return false;
  }
  for (const Arch& arch : archs) {
    if (a.query_accuracy(arch) != b.query_accuracy(arch)) return false;
    for (const MetricKey key : a.perf_targets())
      if (a.query_perf(arch, key) != b.query_perf(arch, key)) return false;
  }
  for (const MetricKey key : a.perf_targets()) {
    const auto pa = a.query_perf_batch(archs, key);
    const auto pb = b.query_perf_batch(archs, key);
    if (std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

struct Mode {
  std::string name;
  double seconds = 0.0;
  bool identical = false;
};

int run(int argc, char** argv) {
  parse_obs_flags(argc, argv);
  const bool has_arg = argc > 1 && std::strcmp(argv[1], "--trace") != 0;
  const int n_probes = has_arg ? std::atoi(argv[1]) : (fast_mode() ? 50 : 200);
  ANB_CHECK(n_probes >= 1, "load_latency: n_probes must be >= 1");
  print_header("benchmark load latency: text vs binary vs mmap",
               "zero-copy .anbb artifact (this repo's extension)");

  const AccelNASBench bench = make_benchmark();
  const std::string text_path = scratch_path("anb_load_latency.json");
  const std::string anbb_path = scratch_path("anb_load_latency.anbb");
  bench.save(text_path);
  bench.save_binary(anbb_path);
  const auto text_size = io::Buffer::read_file(text_path)->size();
  const auto anbb_size = io::Buffer::read_file(anbb_path)->size();
  std::printf("artifact sizes: text=%zu bytes, anbb=%zu bytes (%.2fx)\n",
              text_size, anbb_size,
              static_cast<double>(text_size) /
                  static_cast<double>(anbb_size));

  // Timed loads. Each call constructs a complete benchmark object; the
  // mmap path defers payload reads to first query, which is exactly the
  // cold-start cost a NAS run pays before its first query.
  Mode text{"text", 0.0, false};
  Mode heap{"binary_read", 0.0, false};
  Mode mapped{"binary_mmap", 0.0, false};
  text.seconds =
      time_per_call([&] { (void)AccelNASBench::load(text_path); });
  heap.seconds = time_per_call(
      [&] { (void)AccelNASBench::load_binary(anbb_path, io::MapMode::kCopy); });
  mapped.seconds = time_per_call(
      [&] { (void)AccelNASBench::open(anbb_path, io::MapMode::kMap); });

  // Tri-modal differential check on freshly loaded instances.
  Rng prng(hash_combine(kWorldSeed, 3));
  std::vector<Arch> probes;
  probes.reserve(static_cast<std::size_t>(n_probes));
  for (int i = 0; i < n_probes; ++i)
    probes.push_back(MnasSpace::instance().sample(prng));
  const AccelNASBench from_text = AccelNASBench::load(text_path);
  const AccelNASBench from_heap =
      AccelNASBench::load_binary(anbb_path, io::MapMode::kCopy);
  const AccelNASBench from_map =
      AccelNASBench::open(anbb_path, io::MapMode::kMap);
  text.identical = true;  // reference mode
  heap.identical = identical_predictions(from_text, from_heap, probes);
  mapped.identical = identical_predictions(from_text, from_map, probes);

  std::string csv = "mode,load_seconds,speedup_vs_text,identical\n";
  for (const Mode& m : {text, heap, mapped}) {
    std::printf("%-12s %12.6f s/load  %8.1fx vs text  identical=%s\n",
                m.name.c_str(), m.seconds, text.seconds / m.seconds,
                m.identical ? "yes" : "NO");
    char line[160];
    std::snprintf(line, sizeof(line), "%s,%.9f,%.3f,%s\n", m.name.c_str(),
                  m.seconds, text.seconds / m.seconds,
                  m.identical ? "yes" : "no");
    csv += line;
  }
  const std::string path = results_path("load_latency.csv");
  write_text_file(path, csv);
  std::printf("wrote %s\n", path.c_str());

  obs::gauge("anb.load.text_seconds").set(text.seconds);
  obs::gauge("anb.load.binary_seconds").set(heap.seconds);
  obs::gauge("anb.load.mmap_seconds").set(mapped.seconds);
  export_obs("load_latency");

  if (!heap.identical || !mapped.identical) {
    std::printf("FAILED: binary/mmap predictions diverged from text\n");
    return 1;
  }
  const double mmap_speedup = text.seconds / mapped.seconds;
  if (!fast_mode() && mmap_speedup < 10.0) {
    // The zero-copy promise: at realistic artifact sizes, mapping must
    // beat re-parsing by an order of magnitude. Smoke runs (tiny models,
    // timer noise) only check the differential contract.
    std::printf("FAILED: mmap open only %.1fx faster than text parse "
                "(target >= 10x)\n",
                mmap_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace anb::bench

int main(int argc, char** argv) { return anb::bench::run(argc, argv); }
