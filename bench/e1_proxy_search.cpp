// E1 — §3.2: search for the training proxy p*.
//
// Reproduces the headline result of the methodology section: a grid search
// over {b, e_t, e_s, e_f, res_s, res_f} finds a proxified training scheme
// that preserves architecture rankings (Kendall tau vs. the reference
// scheme) while cutting average per-model training cost by a large factor.
// Paper: tau = 0.94 at ~5.6x cost reduction under t_spec = 3 GPU-hours.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "anb/anb/proxy_search.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E1: training-proxy search", "Section 3.2 / Eq. (1)");

  TrainingSimulator sim = bench::make_simulator();
  ProxySearch search(sim);

  ProxySearchConfig config;
  config.n_models = 20;  // paper: uniform grid of n = 20 models
  config.t_spec_hours = 3.0;
  config.seed = 1;
  if (bench::fast_mode()) {
    config.domains.batch_size = {256, 512};
    config.domains.total_epochs = {10, 20, 30};
  }

  const ProxySearchOutcome outcome = search.run_grid(config);

  std::printf("\nEvaluated %zu candidate schemes on a %d-model grid "
              "(t_spec = %.1f sim-GPU-h)\n\n",
              outcome.trials.size(), config.n_models, config.t_spec_hours);

  TextTable top({"rank", "scheme p", "tau(A_p, A_r)", "t_p (h)", "feasible"});
  // Show the best 10 feasible schemes by tau.
  std::vector<const ProxyTrial*> feasible;
  for (const auto& trial : outcome.trials)
    if (trial.feasible) feasible.push_back(&trial);
  std::sort(feasible.begin(), feasible.end(),
            [](const ProxyTrial* a, const ProxyTrial* b) {
              return a->tau > b->tau;
            });
  for (std::size_t i = 0; i < feasible.size() && i < 10; ++i) {
    top.add_row({std::to_string(i + 1), feasible[i]->scheme.to_string(),
                 TextTable::num(feasible[i]->tau, 3),
                 TextTable::num(feasible[i]->cost_hours, 2), "yes"});
  }
  top.print(std::cout);

  std::printf("\nSearched proxy p* = %s\n", outcome.best.to_string().c_str());
  std::printf("  tau(A_p*, A_r)            : %.3f   (paper: 0.94)\n",
              outcome.best_tau);
  std::printf("  avg cost under p*         : %.2f sim-GPU-h\n",
              outcome.best_cost_hours);
  std::printf("  avg cost under reference r: %.2f sim-GPU-h\n",
              outcome.reference_cost_hours);
  std::printf("  cost reduction t_r / t_p* : %.1fx  (paper: ~5.6x)\n",
              outcome.speedup);

  CsvWriter csv({"scheme", "tau", "cost_hours", "feasible"});
  for (const auto& trial : outcome.trials) {
    csv.add_row({trial.scheme.to_string(), std::to_string(trial.tau),
                 std::to_string(trial.cost_hours),
                 trial.feasible ? "1" : "0"});
  }
  csv.save(bench::results_path("e1_proxy_search.csv"));
  std::printf("\nFull trial log written to results/e1_proxy_search.csv\n");
  anb::bench::export_obs("e1_proxy_search");
  return 0;
}
