// Serving throughput: QPS and latency percentiles of the anbd server as
// a function of connection count, with the coalescing micro-batch
// scheduler on vs off (DESIGN.md "Serving & micro-batch coalescing").
//
// Each configuration stands up an in-process Server and N blocking
// clients that hammer scalar accuracy queries; wall-clock QPS plus
// per-request p50/p99 come from the client side. Doubles as a
// differential harness: every response is compared bit-for-bit against a
// direct in-process query, and the binary exits non-zero on any
// divergence. At full size the coalescing win is gated: at >= 16
// connections batching must deliver >= 2x the uncoalesced QPS (the
// scheduler's reason to exist — batched SIMD descent amortized across
// clients).
//
// Usage: serve_throughput [requests_per_conn]
//        (default 400; ANB_FAST=1 -> 40 and no perf gate)
// Output: results/serve_throughput.csv

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/serve/client.hpp"
#include "anb/serve/server.hpp"
#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/flat_forest.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/util/error.hpp"
#include "anb/util/json.hpp"
#include "common.hpp"

namespace anb::bench {
namespace {

/// A deliberately heavy accuracy surrogate (full size: 10 x 1500-tree
/// GBDT ensemble, ~0.5ms scalar predict): serving is only interesting
/// when prediction dominates socket chatter, which is the regime a fitted
/// full-size benchmark lives in — and the regime where the coalescer's
/// batched SIMD descent (20x per-row over scalar, query_throughput.csv)
/// pays for its scheduling overhead.
AccelNASBench make_served_bench() {
  Rng probe_rng(1);
  const std::size_t num_features =
      MnasSpace::instance().features(MnasSpace::instance().sample(probe_rng)).size();
  Dataset train(num_features);
  Rng rng(hash_combine(kWorldSeed, 0x5EF));
  const int n_train = fast_mode() ? 200 : 600;
  for (int i = 0; i < n_train; ++i) {
    const auto x = MnasSpace::instance().features(MnasSpace::instance().sample(rng));
    double y = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) y += (j % 7 == 0 ? 2.0 : 0.5) * x[j];
    train.add(x, y + rng.normal(0.0, 0.01));
  }
  GbdtParams member_params;
  member_params.n_estimators = fast_mode() ? 200 : 1500;
  auto ensemble = std::make_unique<EnsembleSurrogate>(
      [member_params] { return std::make_unique<Gbdt>(member_params); },
      /*size=*/fast_mode() ? 3 : 10);
  Rng fit_rng(hash_combine(kWorldSeed, 0xF17));
  ensemble->fit(train, fit_rng);

  AccelNASBench bench;
  bench.set_accuracy_surrogate(std::move(ensemble));
  // The cache would turn the steady-state workload into pure lookups and
  // hide the prediction engine entirely; serving cost is what we measure.
  bench.set_cache_enabled(false);
  return bench;
}

struct ConfigResult {
  std::size_t connections = 0;
  bool coalescing = false;
  std::size_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t rows = 0;
  bool bit_identical = true;
};

ConfigResult run_config(const AccelNASBench& bench,
                        const std::vector<std::uint64_t>& pool,
                        const std::vector<double>& expected,
                        std::size_t connections, bool coalescing,
                        std::size_t requests_per_conn) {
  serve::ServeOptions options;
  options.coalescing = coalescing;
  serve::Server server(bench, options);
  server.start();

  std::vector<std::vector<double>> latencies(connections);
  std::vector<bool> exact(connections, true);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client(server.socket_path());
      client.hello(c, 0);
      latencies[c].reserve(requests_per_conn);
      for (std::size_t i = 0; i < requests_per_conn; ++i) {
        const std::size_t pick = (c + i) % pool.size();
        const auto start = std::chrono::steady_clock::now();
        const double got = client.query_accuracy(pool[pick]);
        const auto stop = std::chrono::steady_clock::now();
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(stop - start).count());
        if (got != expected[pick]) exact[c] = false;
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto wall_stop = std::chrono::steady_clock::now();
  server.stop();

  ConfigResult r;
  r.connections = connections;
  r.coalescing = coalescing;
  r.requests = connections * requests_per_conn;
  r.seconds = std::chrono::duration<double>(wall_stop - wall_start).count();
  r.qps = static_cast<double>(r.requests) / r.seconds;
  std::vector<double> all;
  all.reserve(r.requests);
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  r.p50_us = all[all.size() / 2];
  r.p99_us = all[(all.size() * 99) / 100];
  for (const bool e : exact) r.bit_identical = r.bit_identical && e;
  const serve::ServeReport report = server.report();
  r.batches = report.batches;
  r.rows = report.rows;
  return r;
}

void print_row(const ConfigResult& r) {
  std::printf("conns=%-3zu coalescing=%-3s %7zu req in %6.2fs  %8.0f q/s  "
              "p50=%7.1fus p99=%8.1fus  batches=%-6llu exact=%s\n",
              r.connections, r.coalescing ? "on" : "off", r.requests,
              r.seconds, r.qps, r.p50_us, r.p99_us,
              static_cast<unsigned long long>(r.batches),
              r.bit_identical ? "yes" : "NO");
}

int run(int argc, char** argv) {
  parse_obs_flags(argc, argv);
  const bool has_arg = argc > 1 && std::strcmp(argv[1], "--trace") != 0;
  const std::size_t requests_per_conn =
      has_arg ? static_cast<std::size_t>(std::atoi(argv[1]))
              : (fast_mode() ? 40 : 400);
  ANB_CHECK(requests_per_conn >= 1,
            "serve_throughput: requests_per_conn must be >= 1");
  print_header("serve throughput: coalescing micro-batch scheduler",
               "benchmark-as-a-service extension (anbd)");

  // Pin the batch engine to the interleaved walk: it is the dispatch
  // floor with a flat ~5-7x per-row win over scalar at ANY batch size,
  // whereas auto-dispatch hands n >= 8 to the masked engine, whose
  // per-call fixed cost only amortizes at batches (~64+) that blocking
  // clients structurally cannot produce (each has one request in
  // flight, so a flush carries at most one row per connection). All
  // engines are bit-identical (query_throughput's differential
  // contract), so this changes timing only.
  ScopedDescentPath interleaved(DescentPath::kInterleaved);

  const AccelNASBench bench = make_served_bench();
  const std::size_t pool_size = 64;
  std::vector<std::uint64_t> pool;
  std::vector<double> expected;
  Rng rng(hash_combine(kWorldSeed, 0xA9C));
  while (pool.size() < pool_size) {
    const Arch arch = MnasSpace::instance().sample(rng);
    pool.push_back(MnasSpace::instance().to_index(arch));
    expected.push_back(bench.query_accuracy(arch));
  }

  const std::vector<std::size_t> conn_counts =
      fast_mode() ? std::vector<std::size_t>{1, 4}
                  : std::vector<std::size_t>{1, 4, 16, 32};
  std::vector<ConfigResult> results;
  for (const std::size_t conns : conn_counts) {
    for (const bool coalescing : {false, true}) {
      results.push_back(run_config(bench, pool, expected, conns, coalescing,
                                   requests_per_conn));
      print_row(results.back());
    }
  }

  const std::string path = results_path("serve_throughput.csv");
  std::string csv =
      "connections,coalescing,requests,seconds,qps,p50_us,p99_us,"
      "batches,rows,bit_identical\n";
  for (const ConfigResult& r : results) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%zu,%s,%zu,%.4f,%.0f,%.1f,%.1f,%llu,%llu,%s\n",
                  r.connections, r.coalescing ? "on" : "off", r.requests,
                  r.seconds, r.qps, r.p50_us, r.p99_us,
                  static_cast<unsigned long long>(r.batches),
                  static_cast<unsigned long long>(r.rows),
                  r.bit_identical ? "yes" : "no");
    csv += line;
  }
  write_text_file(path, csv);
  std::printf("wrote %s\n", path.c_str());

  obs::gauge("anb.serve.bench_qps_coalesced").set(results.back().qps);
  export_obs("serve_throughput");

  bool ok = true;
  for (const ConfigResult& r : results) {
    if (!r.bit_identical) {
      std::printf("FAILED: served values diverged from direct queries "
                  "(conns=%zu coalescing=%s)\n",
                  r.connections, r.coalescing ? "on" : "off");
      ok = false;
    }
  }

  // Perf gate (full size only): at >= 16 connections the coalesced
  // configuration must at least double the uncoalesced QPS. Fixed costs
  // swamp tiny smoke runs, so ANB_FAST skips the floor (the smoke run
  // still enforces bit-exactness above).
  if (!fast_mode()) {
    bool met = false;
    double best = 0.0;
    for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
      const ConfigResult& off = results[i];
      const ConfigResult& on = results[i + 1];
      if (off.connections < 16) continue;
      const double ratio = on.qps / off.qps;
      best = std::max(best, ratio);
      std::printf("coalescing gain at %zu conns: %.2fx\n", off.connections,
                  ratio);
      if (ratio >= 2.0) met = true;
    }
    if (!met) {
      std::printf("FAILED: coalescing never reached the 2x QPS floor at "
                  ">= 16 connections (best %.2fx)\n", best);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace anb::bench

int main(int argc, char** argv) { return anb::bench::run(argc, argv); }
