#pragma once

// Shared setup for the reproduction harnesses. Every bench binary fixes the
// same world seed so all experiments run against the same simulated
// "reality", mirroring the paper's single physical testbed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "anb/anb/pipeline.hpp"
#include "anb/obs/obs.hpp"

namespace anb::bench {

/// Experiment artifacts are committed only under results/ (enforced by
/// .gitignore); route every CSV through here so nothing lands in the
/// repo root.
inline std::string results_path(const std::string& name) {
  std::filesystem::create_directories("results");
  return (std::filesystem::path("results") / name).string();
}

inline constexpr std::uint64_t kWorldSeed = 42;

/// Honors ANB_FAST=1 for quick smoke runs of the harnesses.
inline bool fast_mode() {
  const char* env = std::getenv("ANB_FAST");
  return env != nullptr && std::string(env) == "1";
}

/// Paper-scale dataset size (~5.2k architectures) unless fast mode.
inline int collection_size() { return fast_mode() ? 1000 : 5200; }

inline TrainingSimulator make_simulator() {
  return TrainingSimulator(kWorldSeed);
}

/// Collect the paper's datasets once (accuracy + all device metrics).
inline CollectedData collect_datasets(bool with_perf = true) {
  TrainingSimulator sim = make_simulator();
  DataCollector collector(sim, device_catalog());
  CollectionConfig config;
  config.n_archs = collection_size();
  config.seed = hash_combine(kWorldSeed, 0xC011EC7);
  config.scheme = canonical_p_star();
  config.collect_perf = with_perf;
  return collector.collect(config);
}

/// The paper's 0.8/0.1/0.1 split with a fixed seed.
inline DatasetSplits split_paper_style(const Dataset& data,
                                       std::uint64_t salt = 0) {
  Rng rng(hash_combine(13, salt));
  return data.split(0.8, 0.1, rng);
}

/// `--trace` turns on span recording for this run; `ANB_TRACE=path` does
/// the same through the environment (and names the output file). Call at
/// the top of a harness main().
inline void parse_obs_flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) obs::set_trace_enabled(true);
  }
}

/// Export the run's observability artifacts into results/: the registry
/// counters as <stem>_metrics.csv always, plus the chrome://tracing JSON
/// as <stem>_trace.json when tracing was on (--trace or ANB_TRACE; an
/// ANB_TRACE path takes precedence). Call once at the end of main().
inline void export_obs(const std::string& stem) {
  obs::write_metrics_csv(results_path(stem + "_metrics.csv"));
  if (obs::trace_enabled() && !obs::write_requested_trace())
    obs::write_trace(results_path(stem + "_trace.json"));
}

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("Accel-NASBench reproduction — %s\n", experiment);
  std::printf("Paper artifact: %s\n", paper_ref);
  std::printf("world_seed=%llu  scale=%s\n",
              static_cast<unsigned long long>(kWorldSeed),
              fast_mode() ? "fast (ANB_FAST=1)" : "paper (~5.2k archs)");
  std::printf("================================================================\n");
}

}  // namespace anb::bench
