// E6 — Fig. 4: bi-objective search using REINFORCE over the surrogates.
//
// (a) accuracy-latency search on the ZCU102 FPGA, and (b)-(f)
// accuracy-throughput searches on ZCU102, VCK190, TPUv3, A100, RTX 3090.
// For each target the harness prints the Pareto-optimal set found by the
// zero-cost (surrogate-backed) search plus the hand-picked "star" models.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "anb/anb/harness.hpp"
#include "anb/util/csv.hpp"
#include "anb/util/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  anb::bench::parse_obs_flags(argc, argv);
  using namespace anb;
  bench::print_header("E6: bi-objective REINFORCE search", "Figure 4");

  PipelineOptions options;
  options.world_seed = bench::kWorldSeed;
  options.n_archs = bench::collection_size();
  const PipelineResult pipe = construct_benchmark(options);
  std::printf("Benchmark constructed (9 surrogates).\n");

  struct Panel {
    const char* label;
    DeviceKind device;
    PerfMetric metric;
  };
  const Panel panels[] = {
      {"(a) ZCU102 acc-latency", DeviceKind::kZcu102, PerfMetric::kLatency},
      {"(b) ZCU102 acc-throughput", DeviceKind::kZcu102,
       PerfMetric::kThroughput},
      {"(c) VCK190 acc-throughput", DeviceKind::kVck190,
       PerfMetric::kThroughput},
      {"(d) TPUv3 acc-throughput", DeviceKind::kTpuV3,
       PerfMetric::kThroughput},
      {"(e) A100 acc-throughput", DeviceKind::kA100, PerfMetric::kThroughput},
      {"(f) RTX 3090 acc-throughput", DeviceKind::kRtx3090,
       PerfMetric::kThroughput},
  };

  CsvWriter csv({"panel", "arch", "acc_pred", "perf_pred", "on_front",
                 "picked"});

  for (const auto& panel : panels) {
    ParetoSearchConfig config;
    config.key = {panel.device, panel.metric};
    config.n_targets = bench::fast_mode() ? 3 : 7;
    config.n_evals_per_target = bench::fast_mode() ? 100 : 250;
    config.n_picks = 3;
    config.seed = hash_combine(5, static_cast<std::uint64_t>(panel.device) * 2 +
                                      static_cast<std::uint64_t>(panel.metric));

    const ParetoOutcome outcome = pareto_search(pipe.bench, config);
    const char* unit =
        panel.metric == PerfMetric::kThroughput ? "img/s" : "ms";

    std::printf("\n%s — %d evaluations, %zu-point Pareto front\n",
                panel.label,
                config.n_targets * config.n_evals_per_target,
                outcome.front.size());
    TextTable table({"front#", "architecture", "acc (pred)",
                     std::string("perf (pred, ") + unit + ")", "star"});
    for (std::size_t k = 0; k < outcome.front.size(); ++k) {
      const std::size_t idx = outcome.front[k];
      const bool picked = std::find(outcome.picks.begin(), outcome.picks.end(),
                                    idx) != outcome.picks.end();
      if (outcome.front.size() > 12 && !picked && k % 3 != 0)
        continue;  // compact printout for long fronts; CSV has everything
      table.add_row({std::to_string(k), outcome.archs[idx].to_string(),
                     TextTable::num(outcome.accuracy[idx], 4),
                     TextTable::num(outcome.perf[idx],
                                    panel.metric == PerfMetric::kLatency ? 2
                                                                         : 0),
                     picked ? "*" : ""});
    }
    table.print(std::cout);

    for (std::size_t i = 0; i < outcome.archs.size(); ++i) {
      const bool on_front = std::find(outcome.front.begin(),
                                      outcome.front.end(),
                                      i) != outcome.front.end();
      const bool picked = std::find(outcome.picks.begin(), outcome.picks.end(),
                                    i) != outcome.picks.end();
      if (!on_front) continue;  // keep the CSV at front-level granularity
      csv.add_row({panel.label, outcome.archs[i].to_string(),
                   std::to_string(outcome.accuracy[i]),
                   std::to_string(outcome.perf[i]), on_front ? "1" : "0",
                   picked ? "1" : "0"});
    }
  }

  csv.save(bench::results_path("fig4_biobjective.csv"));
  std::printf("\nFronts written to results/fig4_biobjective.csv\n");
  anb::bench::export_obs("fig4_biobjective");
  return 0;
}
