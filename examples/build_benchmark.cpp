// Full benchmark construction, serialization, and reload.
//
// Walks the paper's Fig. 2 pipeline end to end:
//   1. grid-search a training proxy p* under a GPU-hour budget (Eq. 1),
//   2. collect ANB-Acc and all ANB-{device}-{metric} datasets with p*,
//   3. fit XGB surrogates per dataset and report held-out test metrics,
//   4. save the finished benchmark to accel_nasbench.json and reload it.
//
// Pass --fast to shrink the proxy grid and the collection for a quick demo.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "anb/anb/pipeline.hpp"
#include "anb/obs/obs.hpp"

int main(int argc, char** argv) {
  using namespace anb;
  const bool fast =
      argc > 1 && std::strcmp(argv[1], "--fast") == 0;

  PipelineOptions options;
  options.n_archs = fast ? 600 : 2600;
  options.run_proxy_search = true;
  options.proxy.n_models = fast ? 8 : 20;
  options.proxy.t_spec_hours = 3.0;
  options.tune = true;  // SMAC-tune each surrogate before the final fit
  if (fast) {
    options.proxy.domains.batch_size = {512};
    options.proxy.domains.total_epochs = {15, 30, 50};
    options.proxy.domains.res_start = {160, 192};
    options.tuning.n_trials = 4;
    options.tuning.tuning_subsample = 300;
  }

  std::printf("[1/4] searching for the training proxy p*...\n");
  const PipelineResult result = construct_benchmark(options);
  std::printf("  p* = %s\n", result.p_star.to_string().c_str());
  std::printf("  tau = %.3f, %.1fx cheaper than the reference scheme\n",
              result.proxy.best_tau, result.proxy.speedup);

  std::printf("[2/4] collected %zu architectures (%.0f simulated "
              "GPU-hours)\n",
              result.data.archs.size(), result.data.total_gpu_hours);

  std::printf("[3/4] surrogate test metrics:\n");
  for (const auto& [name, metrics] : result.test_metrics) {
    std::printf("  %-14s R2 %.3f  tau %.3f  MAE %.3g\n", name.c_str(),
                metrics.r2, metrics.kendall_tau, metrics.mae);
  }

  const std::string path = "accel_nasbench.json";
  result.bench.save(path);
  const AccelNASBench reloaded = AccelNASBench::load(path);
  Rng rng(1);
  std::vector<Arch> probes;
  for (int i = 0; i < 16; ++i) probes.push_back(MnasSpace::instance().sample(rng));
  std::printf("[4/4] saved + reloaded %s; probe queries match: %s\n",
              path.c_str(),
              reloaded.query_accuracy_batch(probes) ==
                      result.bench.query_accuracy_batch(probes)
                  ? "yes"
                  : "NO");

  // Observability artifacts: the registry counters always land in
  // results/, and ANB_TRACE=<path> additionally dumps the span tree as
  // chrome://tracing JSON covering the proxy-search, collection, fitting,
  // and query phases above.
  std::filesystem::create_directories("results");
  obs::write_metrics_csv("results/build_benchmark_metrics.csv");
  if (obs::write_requested_trace())
    std::printf("trace written to %s (open in chrome://tracing)\n",
                obs::requested_trace_path()->c_str());
  return 0;
}
