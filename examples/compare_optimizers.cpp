// Scenario: you invented a NAS optimizer — evaluate it for free.
//
// This is the benchmark's raison d'être (§1): NAS-optimizer research without
// GPU clusters. We implement a toy "greedy local search" optimizer against
// the NasOptimizer interface and race it against the built-in RS / RE /
// REINFORCE baselines, all on zero-cost surrogate evaluations, with multiple
// seeds in seconds.

#include <cstdio>

#include "anb/anb/pipeline.hpp"
#include "anb/nas/evolution.hpp"
#include "anb/nas/random_search.hpp"
#include "anb/nas/reinforce.hpp"
#include "anb/util/stats.hpp"

namespace {

using namespace anb;

/// Toy optimizer: restart-on-plateau greedy hill-climbing over the
/// one-decision-change neighborhood.
class GreedyLocalSearch final : public NasOptimizer {
 public:
  std::string name() const override { return "GreedyLS"; }

  SearchTrajectory run(const EvalOracle& oracle, int n_evals,
                       Rng& rng) override {
    SearchTrajectory traj;
    Arch current = space().sample(rng);
    double current_value = oracle(current);
    traj.add(current, current_value);
    int stale = 0;
    while (static_cast<int>(traj.size()) < n_evals) {
      const Arch candidate = space().mutate(current, rng);
      const double value = oracle(candidate);
      traj.add(candidate, value);
      if (value > current_value) {
        current = candidate;
        current_value = value;
        stale = 0;
      } else if (++stale > 40) {  // restart when the neighborhood is dry
        current = space().sample(rng);
        if (static_cast<int>(traj.size()) >= n_evals) break;
        current_value = oracle(current);
        traj.add(current, current_value);
        stale = 0;
      }
    }
    return traj;
  }
};

}  // namespace

int main() {
  using namespace anb;

  PipelineOptions options;
  options.n_archs = 1200;
  options.collect_perf = false;
  const PipelineResult result = construct_benchmark(options);

  EvalOracle oracle = [&](const Arch& arch) {
    return result.bench.query_accuracy(arch);
  };

  const int n_evals = 400;
  const int n_seeds = 5;
  std::printf("racing optimizers: %d evaluations x %d seeds, all zero-cost\n\n",
              n_evals, n_seeds);

  std::vector<std::unique_ptr<NasOptimizer>> optimizers;
  optimizers.push_back(std::make_unique<RandomSearchNas>());
  optimizers.push_back(std::make_unique<RegularizedEvolution>());
  optimizers.push_back(std::make_unique<Reinforce>());
  optimizers.push_back(std::make_unique<GreedyLocalSearch>());

  std::printf("%-10s %-18s %-18s\n", "optimizer", "best@400 (mean)",
              "best@400 (std)");
  for (const auto& optimizer : optimizers) {
    std::vector<double> finals;
    for (int seed = 0; seed < n_seeds; ++seed) {
      Rng rng(hash_combine(77, static_cast<std::uint64_t>(seed)));
      finals.push_back(optimizer->run(oracle, n_evals, rng).best_value());
    }
    std::printf("%-10s %-18.4f %-18.4f\n", optimizer->name().c_str(),
                mean(finals), stddev(finals));
  }

  std::printf("\n(each row would have cost thousands of GPU-hours with real "
              "training;\nhere the whole table costs milliseconds of query "
              "time)\n");
  return 0;
}
