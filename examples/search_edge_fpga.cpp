// Scenario: ship an ImageNet classifier on a Zynq UltraScale+ ZCU102 edge
// board with a hard 4 ms latency budget.
//
// This is the deployment problem the paper's intro motivates: FLOPs is a
// poor proxy for DPU latency (SE blocks stall the pipeline, depthwise convs
// behave differently than on GPUs), so we search *against the device
// surrogate* directly — at zero cost — then verify the winner with a
// simulated reference-training run and an on-device measurement.

#include <algorithm>
#include <cstdio>

#include "anb/anb/harness.hpp"
#include "anb/anb/pipeline.hpp"
#include "anb/ir/model_ir.hpp"
#include "anb/searchspace/zoo.hpp"

int main() {
  using namespace anb;
  constexpr double kLatencyBudgetMs = 4.0;

  PipelineOptions options;
  options.n_archs = 1200;
  const PipelineResult result = construct_benchmark(options);
  std::printf("benchmark ready; searching under a %.1f ms ZCU102 budget\n\n",
              kLatencyBudgetMs);

  // Bi-objective accuracy-latency search (REINFORCE over surrogates).
  ParetoSearchConfig config;
  config.key = {DeviceKind::kZcu102, PerfMetric::kLatency};
  config.n_targets = 5;
  config.n_evals_per_target = 200;
  const ParetoOutcome outcome = pareto_search(result.bench, config);

  // Pick the most accurate front member inside the budget.
  const std::size_t* best = nullptr;
  for (const std::size_t& idx : outcome.front) {
    if (outcome.perf[idx] > kLatencyBudgetMs) continue;
    if (best == nullptr || outcome.accuracy[idx] > outcome.accuracy[*best])
      best = &idx;
  }
  if (best == nullptr) {
    std::printf("no front member met the budget — relax it or search more\n");
    return 1;
  }
  const Architecture winner = MnasSpace::to_blocks(outcome.archs[*best]);
  std::printf("winner: %s\n", winner.to_string().c_str());
  std::printf("  predicted: top-1 %.4f (proxy scale), latency %.2f ms\n",
              outcome.accuracy[*best], outcome.perf[*best]);

  // Verify: "train" it for real (reference scheme) and measure the board.
  TrainingSimulator sim(options.world_seed);
  const Device zcu = make_device(DeviceKind::kZcu102);
  const ModelIR ir = build_ir(winner, 224);
  const double true_acc = sim.train(winner, reference_scheme(), 0).top1;
  const double true_lat = zcu.measure_latency(ir, 7);
  std::printf("  verified:  top-1 %.4f (reference), latency %.2f ms, "
              "%.2f GFLOPs, %.1fM params\n",
              true_acc, true_lat, ir.gflops(), ir.mparams());

  // Context: the usual suspects on the same board.
  std::printf("\nbaselines on ZCU102:\n");
  for (const auto& model : reference_zoo()) {
    const ModelIR base_ir = build_ir(model.arch, 224);
    std::printf("  %-16s top-1 %.4f, latency %.2f ms\n", model.name.c_str(),
                sim.train(model.arch, reference_scheme(), 0).top1,
                zcu.measure_latency(base_ir, 7));
  }
  std::printf("\nwithin budget (%.1f ms): searched model %s\n",
              kLatencyBudgetMs,
              true_lat <= kLatencyBudgetMs ? "fits" : "does NOT fit");
  return 0;
}
