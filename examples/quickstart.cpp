// Quickstart: construct a (small) Accel-NASBench and ask it questions.
//
// In 40 lines: build the benchmark, query accuracy and device throughput
// for a hand-written architecture and for EfficientNet-B0, and show what
// the zero-cost evaluation replaces (simulated GPU-hours of training).

#include <cstdio>

#include "anb/anb/pipeline.hpp"
#include "anb/obs/obs.hpp"
#include "anb/searchspace/zoo.hpp"

int main() {
  using namespace anb;

  // 1. Construct the benchmark. n_archs is reduced from the paper's 5.2k so
  //    the quickstart finishes in seconds; see build_benchmark.cpp for the
  //    full-scale pipeline with SMAC tuning and save/load.
  PipelineOptions options;
  options.n_archs = 800;
  const PipelineResult result = construct_benchmark(options);
  std::printf("benchmark ready: accuracy surrogate test tau = %.3f\n",
              result.test_metrics.at("ANB-Acc").kendall_tau);
  std::printf("collection cost: %.0f simulated GPU-hours (queries below are "
              "zero-cost)\n\n",
              result.data.total_gpu_hours);

  // 2. Describe an architecture: 7 blocks x {expansion, kernel, layers, SE}.
  Architecture my_arch = Architecture::from_string(
      "e1k3L1s0-e6k3L2s0-e6k5L2s1-e6k3L3s1-e6k5L3s1-e6k5L3s1-e6k3L1s1");

  // 3. Zero-cost queries.
  const Architecture b0 = effnet_b0_like().arch;
  for (const auto& [name, arch] :
       {std::pair<const char*, Architecture>{"my_arch", my_arch},
        {"effnet-b0", b0}}) {
    std::printf("%-10s top-1(pred) = %.4f", name,
                result.bench.query_accuracy(arch));
    std::printf("  | A100 %.0f img/s | TPUv3 %.0f img/s | ZCU102 %.2f ms\n",
                result.bench.query_perf(arch, MetricKey{DeviceKind::kA100, PerfMetric::kThroughput}),
                result.bench.query_perf(arch, MetricKey{DeviceKind::kTpuV3, PerfMetric::kThroughput}),
                result.bench.query_perf(arch, MetricKey{DeviceKind::kZcu102, PerfMetric::kLatency}));
  }

  // 4. What one of those queries would have cost without the benchmark.
  TrainingSimulator sim(options.world_seed);
  std::printf("\nwithout the benchmark, evaluating my_arch would cost %.1f "
              "GPU-hours (proxy)\nor %.1f GPU-hours (reference scheme)\n",
              sim.training_cost_hours(my_arch, result.p_star),
              sim.training_cost_hours(my_arch, reference_scheme()));

  // 5. Persist and reopen. The .anbb extension selects the zero-copy
  //    binary container: open() mmaps the node arrays in place, so the
  //    reload below costs milliseconds instead of a full JSON re-parse
  //    (bench/load_latency measures ~40x at paper scale). open() sniffs
  //    the magic, so the same call also reads JSON artifacts.
  result.bench.save_binary("quickstart.anbb");
  const AccelNASBench reopened = AccelNASBench::open("quickstart.anbb");
  std::printf("\nreloaded quickstart.anbb: top-1(my_arch) = %.4f (identical "
              "to the in-memory benchmark)\n",
              reopened.query_accuracy(my_arch));

  // 6. ANB_TRACE=trace.json ./quickstart dumps the instrumented span tree
  //    (collection, fitting, queries) as chrome://tracing JSON.
  if (obs::write_requested_trace())
    std::printf("\ntrace written to %s (open in chrome://tracing)\n",
                obs::requested_trace_path()->c_str());
  return 0;
}
