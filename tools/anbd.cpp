// anbd — the Accel-NASBench daemon.
//
//   anbd --bench FILE [--socket PATH] [--no-coalescing]
//        [--batch-max N] [--wait-us N] [--queue N] [--workers N]
//
// Opens the benchmark artifact once (.anbb artifacts are memory-mapped,
// so the surrogate tables are shared, page-cache-resident state) and
// serves accuracy/performance queries to any number of local searcher
// processes over a unix-domain socket — the paper's "benchmark as a
// sustainable service" story: one warm process instead of N copies of
// the forests.
//
// The daemon prints the socket path on stdout (so wrappers can discover
// a --socket-less default) and blocks until a client sends the kShutdown
// frame (`anbench query-remote --socket PATH --shutdown`).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "anb/anb/benchmark.hpp"
#include "anb/serve/server.hpp"

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: anbd --bench FILE [--socket PATH] [--no-coalescing]\n"
               "            [--batch-max N] [--wait-us N] [--queue N] "
               "[--workers N]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench_path;
  anb::serve::ServeOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--bench") {
      bench_path = value();
    } else if (arg == "--socket") {
      options.socket_path = value();
    } else if (arg == "--no-coalescing") {
      options.coalescing = false;
    } else if (arg == "--batch-max") {
      options.scheduler.batch_max =
          static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (arg == "--wait-us") {
      options.scheduler.coalesce_wait_us =
          static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (arg == "--queue") {
      options.scheduler.queue_capacity =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--workers") {
      options.scheduler.worker_threads =
          static_cast<unsigned>(std::atoi(value().c_str()));
    } else {
      usage(("unknown argument " + arg).c_str());
    }
  }
  if (bench_path.empty()) usage("--bench is required");

  try {
    const anb::AccelNASBench bench = anb::AccelNASBench::open(bench_path);
    anb::serve::Server server(bench, options);
    server.start();
    std::printf("%s\n", server.socket_path().c_str());
    std::fflush(stdout);  // wrappers wait for the path line
    server.wait();

    const anb::serve::ServeReport report = server.report();
    std::fprintf(stderr,
                 "anbd: served %llu requests (%llu ok, %llu error, "
                 "%llu retry) over %llu connections, %llu batches / %llu "
                 "rows\n",
                 static_cast<unsigned long long>(report.requests_received),
                 static_cast<unsigned long long>(report.responses_ok),
                 static_cast<unsigned long long>(report.responses_error),
                 static_cast<unsigned long long>(report.retry_later),
                 static_cast<unsigned long long>(report.connections_accepted),
                 static_cast<unsigned long long>(report.batches),
                 static_cast<unsigned long long>(report.rows));
    return 0;
  } catch (const anb::Error& e) {
    std::fprintf(stderr, "anbd: error: %s\n", e.what());
    return 1;
  }
}
