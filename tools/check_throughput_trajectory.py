#!/usr/bin/env python3
"""Gate on descent-engine speedup regressions across revisions.

Usage: check_throughput_trajectory.py <trajectory.csv> <current_git_rev>

The query_throughput bench appends one row per (model, engine) to
results/query_throughput_trajectory.csv, stamped with ANB_GIT_REV. This
script compares every row belonging to <current_git_rev> against the most
recent earlier row for the same (model, path) pair and fails (exit 1) on
a drop of more than 10%.

The gated column is speedup_vs_interleaved, not rows_per_sec: absolute
throughput swings with whatever hardware CI lands on, while the speedup
is a same-host ratio against the interleaved baseline walk and stays
comparable across machines. rows_per_sec is recorded for trend reading
only.
"""

import csv
import sys

REGRESSION_TOLERANCE = 0.10


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip().splitlines()[2])
        return 2
    path, current_rev = sys.argv[1], sys.argv[2]

    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        print(f"{path}: no data rows")
        return 2

    # Last committed speedup per (model, path), taken from rows that
    # precede the current revision's block in file order.
    baseline = {}
    current = []
    for row in rows:
        key = (row["model"], row["path"])
        if row["git_rev"] == current_rev:
            current.append((key, row))
        else:
            baseline[key] = row

    if not current:
        print(f"{path}: no rows for rev {current_rev} — "
              "was the bench run with ANB_GIT_REV set?")
        return 2

    failed = False
    for key, row in current:
        new = float(row["speedup_vs_interleaved"])
        prev_row = baseline.get(key)
        if prev_row is None:
            print(f"  {key[0]}/{key[1]}: {new:.3f}x (no prior row, recorded)")
            continue
        prev = float(prev_row["speedup_vs_interleaved"])
        ratio = new / prev if prev > 0 else 1.0
        status = "ok"
        if ratio < 1.0 - REGRESSION_TOLERANCE:
            status = "REGRESSION"
            failed = True
        print(f"  {key[0]}/{key[1]}: {prev:.3f}x -> {new:.3f}x "
              f"({ratio:.2f} of prior, {status})")

    if failed:
        print(f"FAILED: engine speedup regressed more than "
              f"{REGRESSION_TOLERANCE:.0%} vs last committed row")
        return 1
    print("trajectory gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
