// anbench — command-line front end for Accel-NASBench.
//
//   anbench build  [--out FILE] [--archs N] [--tune] [--energy]
//                  [--proxy-search] [--seed S]
//       Construct a benchmark (Fig. 2 pipeline) and save it. The output
//       format follows the --out extension: .anbb writes the zero-copy
//       binary container, anything else writes JSON.
//
//   anbench convert --bench FILE --out FILE
//       Re-save a benchmark in the format implied by the --out extension
//       (.anbb binary container <-> JSON text).
//
//   anbench info   --bench FILE
//       List the surrogates a saved benchmark contains.
//
//   anbench query  --bench FILE --arch SPEC [--device D] [--metric M]
//       Zero-cost accuracy (default) or device-performance query.
//       SPEC uses the space's native compact format; for MnasNet e.g.
//       e1k3L1s0-e6k3L2s0-e6k5L2s1-e6k3L3s1-e6k5L3s1-e6k5L3s1-e6k3L1s1
//       and for FBNet a dash-separated op list (e.g. e6k3-skip-...).
//
//   anbench search --bench FILE --device D --metric M [--budget N]
//       Bi-objective REINFORCE search over the surrogates; prints the front.
//
//   anbench random --count N [--seed S]
//       Sample random architectures (useful to pipe into query).
//
//   anbench serve  --bench FILE [--socket PATH] [--no-coalescing]
//       Run the benchmark server in-process (thin wrapper over the anbd
//       daemon's core; see tools/anbd.cpp for the full option set).
//
//   anbench query-remote --socket PATH (--arch SPEC [--device D]
//                        [--metric M] | --shutdown)
//       Query a running server instead of opening an artifact, or ask it
//       to stop.
//
// Every subcommand that touches architectures takes --space
// {mnasnet,fbnet} (default mnasnet); query/search/serve validate it
// against the artifact's space.
//
// Devices: tpuv2 tpuv3 a100 rtx3090 zcu102 vck190 npu-mobile cpu-server;
// metrics: Thr Lat Enr Mem.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "anb/anb/harness.hpp"
#include "anb/anb/pipeline.hpp"
#include "anb/fbnet/fbnet_space.hpp"
#include "anb/serve/client.hpp"
#include "anb/serve/server.hpp"
#include "anb/util/table.hpp"

namespace {

using namespace anb;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: anbench <build|convert|info|query|search|serve|"
               "query-remote|random> [options]\n"
               "run with a command and no options for per-command help; see "
               "the header of tools/anbench.cpp for details.\n");
  std::exit(2);
}

/// Simple --key value / --flag argument map.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage(("unexpected argument " + key).c_str());
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int get_int(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  std::string require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end() || it->second.empty())
      usage(("missing --" + key).c_str());
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Resolve the --space flag (default mnasnet; exact-match names).
const SearchSpace& space_arg(const Args& args) {
  register_builtin_spaces();
  return space_from_name(args.get("space", "mnasnet"));
}

/// True when `path` names the zero-copy binary container format.
bool wants_binary(const std::string& path) {
  const std::string ext = ".anbb";
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

/// Save in the format the output extension asks for.
void save_as(const AccelNASBench& bench, const std::string& out) {
  if (wants_binary(out)) {
    bench.save_binary(out);
  } else {
    bench.save(out);
  }
}

int cmd_build(const Args& args) {
  PipelineOptions options;
  options.world_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  options.space = space_arg(args).id();
  options.n_archs = args.get_int("archs", 2600);
  options.tune = args.has("tune");
  options.collect_energy = args.has("energy");
  options.collect_peak_memory = args.has("memory");
  options.run_proxy_search = args.has("proxy-search");
  if (args.has("extended-devices")) {
    for (const Device& device : extended_device_catalog())
      options.devices.push_back(device.kind());
  }
  const std::string out = args.get("out", "accel_nasbench.json");

  std::printf("building benchmark: space=%s, %d archs, tune=%s, energy=%s, "
              "memory=%s, proxy-search=%s\n",
              space_name(options.space), options.n_archs,
              options.tune ? "yes" : "no",
              options.collect_energy ? "yes" : "no",
              options.collect_peak_memory ? "yes" : "no",
              options.run_proxy_search ? "yes" : "no");
  const PipelineResult result = construct_benchmark(options);
  std::printf("p* = %s\n", result.p_star.to_string().c_str());
  for (const auto& [name, metrics] : result.test_metrics) {
    std::printf("  %-14s R2 %.3f tau %.3f MAE %.3g\n", name.c_str(),
                metrics.r2, metrics.kendall_tau, metrics.mae);
  }
  save_as(result.bench, out);
  std::printf("saved %s\n", out.c_str());
  return 0;
}

int cmd_convert(const Args& args) {
  const std::string in = args.require("bench");
  const std::string out = args.require("out");
  const AccelNASBench bench = AccelNASBench::open(in);
  save_as(bench, out);
  std::printf("converted %s -> %s (%s)\n", in.c_str(), out.c_str(),
              wants_binary(out) ? "binary .anbb" : "JSON text");
  return 0;
}

int cmd_info(const Args& args) {
  const AccelNASBench bench = AccelNASBench::open(args.require("bench"));
  std::printf("accuracy surrogate: %s\n",
              bench.has_accuracy() ? "installed" : "missing");
  const auto targets = bench.perf_targets();
  std::printf("performance surrogates (%zu):\n", targets.size());
  for (const MetricKey key : targets)
    std::printf("  %s\n", dataset_name(key).c_str());
  register_builtin_spaces();
  const SearchSpace& sp = anb::space(bench.space());
  std::printf("search space: %s, %llu architectures, %d one-hot "
              "features\n",
              sp.name(), static_cast<unsigned long long>(sp.cardinality()),
              sp.feature_dim());
  return 0;
}

int cmd_query(const Args& args) {
  const AccelNASBench bench = AccelNASBench::open(args.require("bench"));
  const SearchSpace& sp = space_arg(args);
  if (sp.id() != bench.space()) {
    usage(("--space " + std::string(sp.name()) +
           " does not match the artifact's space " +
           space_name(bench.space()))
              .c_str());
  }
  const Arch arch = sp.arch_from_string(args.require("arch"));
  if (args.has("device")) {
    const MetricKey key{device_kind_from_name(args.require("device")),
                        perf_metric_from_name(args.get("metric", "Thr"))};
    std::printf("%s %s = %.4f\n", device_kind_name(key.device),
                perf_metric_name(key.metric), bench.query_perf(arch, key));
  } else {
    std::printf("top1 = %.4f\n", bench.query_accuracy(arch));
  }
  return 0;
}

int cmd_search(const Args& args) {
  const AccelNASBench bench = AccelNASBench::open(args.require("bench"));
  register_builtin_spaces();
  if (args.has("space") && space_arg(args).id() != bench.space()) {
    usage("--space does not match the artifact's space");
  }
  const SearchSpace& sp = anb::space(bench.space());
  ParetoSearchConfig config;
  config.key = MetricKey{device_kind_from_name(args.require("device")),
                         perf_metric_from_name(args.get("metric", "Thr"))};
  const int budget = args.get_int("budget", 1000);
  config.n_targets = 5;
  config.n_evals_per_target = std::max(1, budget / config.n_targets);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  const ParetoOutcome outcome = pareto_search(bench, config);
  TextTable table({"acc (pred)", "perf (pred)", "architecture"});
  for (std::size_t idx : outcome.front) {
    table.add_row({TextTable::num(outcome.accuracy[idx], 4),
                   TextTable::num(outcome.perf[idx], 2),
                   sp.arch_to_string(outcome.archs[idx])});
  }
  table.print(std::cout);
  return 0;
}

int cmd_serve(const Args& args) {
  const AccelNASBench bench = AccelNASBench::open(args.require("bench"));
  if (args.has("space") && space_arg(args).id() != bench.space()) {
    usage("--space does not match the artifact's space");
  }
  serve::ServeOptions options;
  options.socket_path = args.get("socket", "");
  options.coalescing = !args.has("no-coalescing");
  serve::Server server(bench, options);
  server.start();
  std::printf("%s\n", server.socket_path().c_str());
  std::fflush(stdout);
  server.wait();
  return 0;
}

int cmd_query_remote(const Args& args) {
  serve::Client client(args.require("socket"));
  if (args.has("shutdown")) {
    client.shutdown_server();
    std::printf("server shut down\n");
    return 0;
  }
  const SearchSpace& sp = space_arg(args);
  const Arch arch = sp.arch_from_string(args.require("arch"));
  const std::uint64_t index = sp.to_index(arch);
  if (args.has("device")) {
    const MetricKey key{device_kind_from_name(args.require("device")),
                        perf_metric_from_name(args.get("metric", "Thr"))};
    std::printf("%s %s = %.4f\n", device_kind_name(key.device),
                perf_metric_name(key.metric),
                client.query_perf(key, index, sp.id()));
  } else {
    std::printf("top1 = %.4f\n", client.query_accuracy(index, sp.id()));
  }
  return 0;
}

int cmd_random(const Args& args) {
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const SearchSpace& sp = space_arg(args);
  const int count = args.get_int("count", 5);
  for (int i = 0; i < count; ++i)
    std::printf("%s\n", sp.arch_to_string(sp.sample(rng)).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (command == "build") return cmd_build(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "info") return cmd_info(args);
    if (command == "query") return cmd_query(args);
    if (command == "search") return cmd_search(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "query-remote") return cmd_query_remote(args);
    if (command == "random") return cmd_random(args);
    usage(("unknown command " + command).c_str());
  } catch (const anb::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
