#!/usr/bin/env bash
# Run clang-tidy over all library translation units using the checked-in
# .clang-tidy config and the compile_commands.json exported by CMake.
#
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args...]
#
# Exit codes: 0 = clean, 1 = findings, 77 = clang-tidy unavailable (skip).
# The 77 convention lets CI mark the step as skipped on images without
# clang-tidy instead of failing the job.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
shift || true
if [ "${1:-}" = "--" ]; then shift; fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found on PATH; skipping (exit 77)" >&2
  exit 77
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing." >&2
  echo "Configure first: cmake -B '$BUILD_DIR' -S '$ROOT'" >&2
  exit 2
fi

# Library TUs only: tests/benches get their correctness coverage from the
# sanitizer jobs; tidy noise there mostly restates gtest idioms.
mapfile -t SOURCES < <(find "$ROOT/src" -name '*.cpp' | sort)
echo "run_clang_tidy: checking ${#SOURCES[@]} translation units" >&2

FAILED=0
for src in "${SOURCES[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet "$src" "$@"; then
    FAILED=1
  fi
done

if [ "$FAILED" -ne 0 ]; then
  echo "run_clang_tidy: findings detected" >&2
  exit 1
fi
echo "run_clang_tidy: clean" >&2
