// Determinism passes: the repo's core contract is that every result is
// bit-reproducible from explicit seeds. forbidden-randomness and
// raw-timing are ports from the original linter; deterministic-iteration
// and float-reduction are new token-level passes that catch the two
// nondeterminism sources the old substring scanner could not see —
// unordered-container iteration order leaking into order-sensitive
// sinks, and floating-point accumulation whose grouping depends on
// thread interleaving.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "anb_lint/passes.hpp"

namespace anb::lint {

namespace {

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

/// Matches tokens[i..] against the identifier/punct sequence in `parts`.
bool match_seq(const std::vector<Token>& tokens, std::size_t i,
               std::initializer_list<const char*> parts) {
  if (i + parts.size() > tokens.size()) return false;
  std::size_t k = i;
  for (const char* part : parts) {
    if (tokens[k].text != part) return false;
    ++k;
  }
  return true;
}

class ForbiddenRandomnessPass final : public FilePass {
 public:
  std::string_view name() const override { return "forbidden-randomness"; }
  std::string_view summary() const override {
    return "all randomness must flow through seeded anb::Rng";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (match_seq(t, i, {"std", "::", "rand"}) ||
          match_seq(t, i, {"std", "::", "srand"})) {
        diag.report(f, t[i].line,
                    "std::" + t[i + 2].text +
                        ": use anb::Rng (determinism contract)");
      } else if (is_ident(t[i], "random_device")) {
        diag.report(f, t[i].line,
                    "random_device: nondeterministic seed source; use "
                    "anb::Rng with an explicit seed");
      } else if (match_seq(t, i, {"time", "(", "nullptr", ")"}) ||
                 match_seq(t, i, {"time", "(", "NULL", ")"})) {
        diag.report(f, t[i].line,
                    "wall-clock seeding breaks reproducibility");
      }
    }
  }
};

/// Timing belongs to the observability layer: library and test code must
/// measure durations through obs::Span / ANB_SPAN so that spans nest, are
/// toggled by one switch, and export through one sink. Raw clock reads
/// are allowed only in src/obs (the layer itself) and bench/ (harnesses
/// that time phases the span tree does not model).
class RawTimingPass final : public FilePass {
 public:
  std::string_view name() const override { return "raw-timing"; }
  std::string_view summary() const override {
    return "time through obs::Span/ANB_SPAN, not raw clock reads";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (f.rel_path.rfind("src/obs/", 0) == 0) return;
    if (f.rel_path.rfind("bench/", 0) == 0) return;
    static const char* kClocks[] = {"steady_clock", "high_resolution_clock",
                                    "system_clock"};
    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      for (const char* clock : kClocks) {
        if (is_ident(t[i], clock) && t[i + 1].text == "::" &&
            is_ident(t[i + 2], "now")) {
          diag.report(f, t[i].line,
                      std::string(clock) +
                          "::now: time through obs::Span/ANB_SPAN (src/obs) "
                          "instead of raw clock reads");
        }
      }
    }
  }
};

bool is_unordered_type(std::string_view text) {
  return text == "unordered_map" || text == "unordered_set" ||
         text == "unordered_multimap" || text == "unordered_multiset";
}

/// Names declared in this file with an unordered-container type: the
/// identifier that follows the closing > of an unordered_* template id.
/// (Function names returning unordered containers count too — iterating
/// such a return value is just as order-unstable.)
std::set<std::string> collect_unordered_names(const std::vector<Token>& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i], "unordered_map") && !is_unordered_type(t[i].text)) {
      continue;
    }
    // Skip to the template argument list and balance it. `>>` closes two
    // levels at once.
    std::size_t j = i + 1;
    if (j >= t.size() || t[j].text != "<") continue;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (t[j].text == "<") depth += 1;
      if (t[j].text == ">") depth -= 1;
      if (t[j].text == ">>") depth -= 2;
      if (depth <= 0) break;
    }
    // The next identifier (skipping &, *, const) is the declared name.
    for (std::size_t k = j + 1; k < t.size() && k < j + 4; ++k) {
      if (t[k].kind == TokenKind::kIdentifier && t[k].text != "const") {
        names.insert(t[k].text);
        break;
      }
      if (t[k].text != "&" && t[k].text != "*" && t[k].text != "const") break;
    }
  }
  return names;
}

/// Range-for over an unordered container whose body feeds an
/// order-sensitive sink (stream insertion, scalar accumulation,
/// appends, seeding). The sanctioned collect-then-sort idiom stays
/// clean: an append-only body followed shortly by a sort() is skipped.
class DeterministicIterationPass final : public FilePass {
 public:
  std::string_view name() const override { return "deterministic-iteration"; }
  std::string_view summary() const override {
    return "no order-sensitive iteration over unordered containers";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.in_src && f.rel_path.rfind("tools/", 0) != 0) return;
    const std::vector<Token>& t = f.tokens;
    const std::set<std::string> unordered_names = collect_unordered_names(t);

    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i], "for") || t[i + 1].text != "(") continue;
      // Find the range-for ':' at parenthesis depth 1 and the closing ')'.
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") depth += 1;
        if (t[j].text == ")") {
          depth -= 1;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;  // classic for, or unclosed
      // Is the range expression an unordered container?
      bool unordered = false;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (is_unordered_type(t[j].text) ||
            (t[j].kind == TokenKind::kIdentifier &&
             unordered_names.count(t[j].text) > 0)) {
          unordered = true;
          break;
        }
      }
      if (!unordered) continue;
      // Body extent: a braced block or a single statement.
      std::size_t body_begin = close + 1, body_end = body_begin;
      if (body_begin < t.size() && t[body_begin].text == "{") {
        int braces = 0;
        for (std::size_t j = body_begin; j < t.size(); ++j) {
          if (t[j].text == "{") braces += 1;
          if (t[j].text == "}") {
            braces -= 1;
            if (braces == 0) {
              body_end = j;
              break;
            }
          }
        }
      } else {
        while (body_end < t.size() && t[body_end].text != ";") ++body_end;
      }
      if (!has_order_sensitive_sink(t, body_begin, body_end)) continue;
      // Collect-then-sort is the sanctioned idiom: an explicit sort right
      // after the loop restores a deterministic order.
      if (sorted_soon_after(t, body_end)) continue;
      diag.report(f, t[i].line,
                  "iteration over an unordered container feeds an "
                  "order-sensitive sink; iterate a sorted copy or an "
                  "ordered container");
    }
  }

  static bool has_order_sensitive_sink(const std::vector<Token>& t,
                                       std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end && j < t.size(); ++j) {
      const std::string& text = t[j].text;
      if (text == "<<" || text == "+=" || text == "-=") return true;
      if (t[j].kind != TokenKind::kIdentifier) continue;
      if (text == "push_back" || text == "emplace_back" || text == "append" ||
          text == "seed" || text == "Rng" || text == "hash_combine") {
        return true;
      }
    }
    return false;
  }

  static bool sorted_soon_after(const std::vector<Token>& t,
                                std::size_t body_end) {
    static constexpr std::size_t kWindow = 24;
    for (std::size_t j = body_end; j < t.size() && j < body_end + kWindow;
         ++j) {
      if (is_ident(t[j], "sort") || is_ident(t[j], "stable_sort")) return true;
    }
    return false;
  }
};

/// Floating-point reductions whose grouping depends on thread timing:
/// std::atomic<double/float> anywhere, and scalar += / -= on a float
/// declared outside a parallel_for extent from inside it. Deterministic
/// alternatives: per-item slots merged serially, or thread-local shards
/// merged in a fixed order (the obs registry pattern).
class FloatReductionPass final : public FilePass {
 public:
  std::string_view name() const override { return "float-reduction"; }
  std::string_view summary() const override {
    return "no unordered parallel floating-point accumulation";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.in_src) return;
    const std::vector<Token>& t = f.tokens;

    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (is_ident(t[i], "atomic") && t[i + 1].text == "<" &&
          (is_ident(t[i + 2], "double") || is_ident(t[i + 2], "float"))) {
        diag.report(f, t[i].line,
                    "std::atomic<" + t[i + 2].text +
                        ">: accumulation order is scheduling-dependent; "
                        "use per-item slots merged serially");
      }
    }

    // Token indices where a float scalar named X is declared.
    std::map<std::string, std::vector<std::size_t>> float_decls;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if ((is_ident(t[i], "double") || is_ident(t[i], "float")) &&
          t[i + 1].kind == TokenKind::kIdentifier) {
        float_decls[t[i + 1].text].push_back(i + 1);
      }
    }

    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i], "parallel_for") &&
          !is_ident(t[i], "parallel_for_chunks")) {
        continue;
      }
      if (t[i + 1].text != "(") continue;
      int depth = 0;
      std::size_t close = i + 1;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") depth += 1;
        if (t[j].text == ")") {
          depth -= 1;
          if (depth == 0) {
            close = j;
            break;
          }
        }
      }
      for (std::size_t j = i + 2; j < close; ++j) {
        if (t[j + 1].text != "+=" && t[j + 1].text != "-=") continue;
        if (t[j].kind != TokenKind::kIdentifier) continue;
        const auto decls = float_decls.find(t[j].text);
        if (decls == float_decls.end()) continue;
        // Outer-declared (before the call) and not shadowed inside it.
        bool outer = false, shadowed = false;
        for (const std::size_t d : decls->second) {
          if (d < i) outer = true;
          if (d > i && d < j) shadowed = true;
        }
        if (!outer || shadowed) continue;
        diag.report(f, t[j].line,
                    "'" + t[j].text +
                        "' accumulates a float across parallel_for "
                        "iterations; the reduction order is "
                        "scheduling-dependent");
      }
    }
  }
};

}  // namespace

void register_determinism_passes(PassList& out) {
  out.push_back(std::make_unique<ForbiddenRandomnessPass>());
  out.push_back(std::make_unique<RawTimingPass>());
  out.push_back(std::make_unique<DeterministicIterationPass>());
  out.push_back(std::make_unique<FloatReductionPass>());
}

}  // namespace anb::lint
