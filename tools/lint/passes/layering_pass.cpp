// Layering: src/ is a DAG of libraries and the include graph must
// respect it. The allowed-dependency table mirrors the CMake link
// graph (src/*/CMakeLists.txt), with obs at the bottom — it is the
// one subsystem everything may observe through, and it depends on
// nothing but the header-only util leaves. A cycle check over the
// in-tree header graph backstops the table: even an edge the table
// permits must never close a loop.

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "anb_lint/passes.hpp"

namespace anb::lint {

namespace {

/// Allowed include targets by layer, matching the CMake link graph.
const std::map<std::string, std::set<std::string>, std::less<>>& allowed() {
  static const std::map<std::string, std::set<std::string>, std::less<>> kMap =
      {
          {"obs", {}},
          {"util", {"obs"}},
          {"searchspace", {"util", "obs"}},
          {"ir", {"searchspace", "util", "obs"}},
          {"hwsim", {"ir", "searchspace", "util", "obs"}},
          {"trainsim", {"ir", "searchspace", "util", "obs"}},
          {"surrogate", {"util", "obs"}},
          {"hpo", {"surrogate", "util", "obs"}},
          {"nas", {"searchspace", "util", "obs"}},
          {"fbnet", {"trainsim", "ir", "searchspace", "util", "obs"}},
          // Space-registry edges: fbnet (the FBNet space implementation)
          // is reachable only from the pipeline layers that resolve spaces
          // (anb, serve) — never from util/obs/searchspace, which must stay
          // space-implementation-agnostic.
          {"anb",
           {"fbnet", "nas", "hpo", "surrogate", "hwsim", "trainsim", "ir",
            "searchspace", "util", "obs"}},
          {"serve",
           {"anb", "fbnet", "nas", "hpo", "surrogate", "hwsim", "trainsim",
            "ir", "searchspace", "util", "obs"}},
      };
  return kMap;
}

/// Header-only util leaves usable from any layer (including obs, which
/// sits below util in the link graph): vocabulary with no .cpp behind it.
bool is_header_only_leaf(std::string_view target) {
  return target == "anb/util/error.hpp" || target == "anb/util/mutex.hpp" ||
         target == "anb/util/thread_annotations.hpp";
}

/// Layer of an in-tree include target: "anb/<layer>/...".
std::string target_layer(std::string_view target) {
  if (target.rfind("anb/", 0) != 0) return std::string();
  const std::size_t slash = target.find('/', 4);
  if (slash == std::string_view::npos) return std::string();
  return std::string(target.substr(4, slash - 4));
}

class LayeringPass final : public Pass {
 public:
  std::string_view name() const override { return "layering"; }
  std::string_view summary() const override {
    return "src/ include graph must match the layer DAG, with no cycles";
  }

  void run(const Tree& tree, Diagnostics& diag) const override {
    check_layer_table(tree, diag);
    check_header_cycles(tree, diag);
  }

 private:
  static void check_layer_table(const Tree& tree, Diagnostics& diag) {
    for (const SourceFile& f : tree.files()) {
      if (!f.in_src || f.layer.empty()) continue;
      const auto it = allowed().find(f.layer);
      if (it == allowed().end()) {
        diag.report(f, 0,
                    "layer '" + f.layer +
                        "' is not in the layering table; add it to "
                        "tools/lint/passes/layering_pass.cpp");
        continue;
      }
      for (const Include& inc : f.includes) {
        if (inc.angled) continue;
        if (is_header_only_leaf(inc.target)) continue;
        const std::string dep = target_layer(inc.target);
        if (dep.empty() || dep == f.layer) continue;
        if (it->second.count(dep) > 0) continue;
        diag.report(f, inc.line,
                    "layer '" + f.layer + "' must not include '" +
                        inc.target + "' (layer '" + dep +
                        "'); the DAG allows only lower layers");
      }
    }
  }

  /// DFS over in-tree header->header edges; any back edge is a cycle
  /// regardless of what the layer table says.
  static void check_header_cycles(const Tree& tree, Diagnostics& diag) {
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::map<const SourceFile*, int> state;
    std::vector<const SourceFile*> stack;
    for (const SourceFile& f : tree.files()) {
      if (f.is_header) visit(tree, &f, state, stack, diag);
    }
  }

  static void visit(const Tree& tree, const SourceFile* f,
                    std::map<const SourceFile*, int>& state,
                    std::vector<const SourceFile*>& stack, Diagnostics& diag) {
    const int s = state[f];
    if (s == 2) return;
    if (s == 1) {
      std::string cycle;
      bool in_cycle = false;
      for (const SourceFile* node : stack) {
        if (node == f) in_cycle = true;
        if (in_cycle) cycle += node->rel_path + " -> ";
      }
      cycle += f->rel_path;
      diag.report(*f, 0, "header include cycle: " + cycle);
      return;
    }
    state[f] = 1;
    stack.push_back(f);
    for (const Include& inc : f->includes) {
      if (inc.angled) continue;
      const SourceFile* dep = tree.resolve_include(inc.target);
      if (dep != nullptr && dep->is_header) {
        visit(tree, dep, state, stack, diag);
      }
    }
    stack.pop_back();
    state[f] = 2;
  }
};

}  // namespace

void register_layering_pass(PassList& out) {
  out.push_back(std::make_unique<LayeringPass>());
}

}  // namespace anb::lint
