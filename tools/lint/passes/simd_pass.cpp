// raw-simd: vector intrinsics live in anb/util/simd.hpp and nowhere else.
//
// The SIMD surface (src/util/include/anb/util/simd.hpp) is the single
// home of raw AVX2/NEON intrinsics: kernels consume the Isa policy
// structs, the Avx2Isa type only exists in TUs compiled with -mavx2, and
// the runtime dispatcher guards every vector entry point behind a CPU
// probe. A stray intrinsic anywhere else in src/ re-opens the failure
// modes that layering closes — AVX2 instructions leaking into baseline
// code paths (SIGILL on older CPUs), or ad-hoc kernels skipping the
// exactness rules (-mno-fma, ordered compares) the wrapper documents —
// so outside the wrapper they are findings. Tests, benches, and tools
// stay out of scope like the other discipline passes.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "anb_lint/passes.hpp"

namespace anb::lint {

namespace {

/// NEON lane-type suffix (s8/u16/f64/p8...): the tail every NEON
/// intrinsic name ends with.
bool is_neon_lane_suffix(std::string_view s) {
  static constexpr std::string_view kSuffixes[] = {
      "s8",  "s16", "s32", "s64", "u8",  "u16", "u32",
      "u64", "f16", "f32", "f64", "p8",  "p16", "p64"};
  for (const std::string_view suf : kSuffixes)
    if (s == suf) return true;
  return false;
}

/// vaddq_s32, vld1q_u8, vreinterpretq_s8_u8, ...: starts with 'v',
/// carries the 128-bit 'q_' marker, and ends in a lane-type suffix.
bool is_neon_intrinsic_name(std::string_view s) {
  if (s.size() < 6 || s[0] != 'v') return false;
  if (s.find("q_") == std::string_view::npos) return false;
  const std::size_t us = s.rfind('_');
  if (us == std::string_view::npos) return false;
  return is_neon_lane_suffix(s.substr(us + 1));
}

/// int32x4_t, uint8x16_t, float64x2_t, ...: a NEON vector type name —
/// ends in "_t" with a <digits>x<digits> lane layout right before it.
bool is_neon_vector_type(std::string_view s) {
  if (s.size() < 7 || s.substr(s.size() - 2) != "_t") return false;
  const std::string_view body = s.substr(0, s.size() - 2);
  const std::size_t x = body.rfind('x');
  if (x == std::string_view::npos || x == 0 || x + 1 >= body.size())
    return false;
  auto all_digits = [](std::string_view d) {
    if (d.empty()) return false;
    for (const char c : d)
      if (c < '0' || c > '9') return false;
    return true;
  };
  // digits before the 'x' (the element width) and after it (the count).
  std::size_t w = x;
  while (w > 0 && body[w - 1] >= '0' && body[w - 1] <= '9') --w;
  return w < x && all_digits(body.substr(x + 1));
}

/// _mm_/ _mm256_/ _mm512_ intrinsics and the __m128/__m256i/__m512d
/// register types.
bool is_x86_vector_name(std::string_view s) {
  if (s.rfind("_mm", 0) == 0) return true;
  return s.rfind("__m", 0) == 0 && s.size() > 3 && s[3] >= '0' && s[3] <= '9';
}

class RawSimdPass final : public FilePass {
 public:
  std::string_view name() const override { return "raw-simd"; }
  std::string_view summary() const override {
    return "vector intrinsics confined to anb/util/simd.hpp";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.in_src) return;
    if (f.rel_path == "src/util/include/anb/util/simd.hpp") return;

    for (const Include& inc : f.includes) {
      if (inc.target == "arm_neon.h" ||
          inc.target.find("intrin.h") != std::string::npos) {
        diag.report(f, inc.line,
                    "#include <" + inc.target +
                        ">: raw SIMD headers belong in anb/util/simd.hpp "
                        "(use the Isa policy structs)");
      }
    }

    for (const Token& tok : f.tokens) {
      if (tok.kind != TokenKind::kIdentifier) continue;
      if (is_x86_vector_name(tok.text)) {
        diag.report(f, tok.line,
                    tok.text +
                        ": x86 vector intrinsics/types are confined to "
                        "anb/util/simd.hpp");
      } else if (is_neon_intrinsic_name(tok.text) ||
                 is_neon_vector_type(tok.text)) {
        diag.report(f, tok.line,
                    tok.text +
                        ": NEON intrinsics/types are confined to "
                        "anb/util/simd.hpp");
      }
    }
  }
};

}  // namespace

void register_simd_pass(PassList& out) {
  out.push_back(std::make_unique<RawSimdPass>());
}

}  // namespace anb::lint
