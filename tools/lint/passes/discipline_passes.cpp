// Error- and lock-discipline passes. throw-discipline and
// assert-coverage are ports from the original linter; lock-hygiene is
// new and enforces the thread-safety-annotation contract introduced
// alongside anb::Mutex: library code locks only through the annotated
// wrapper, and every wrapped mutex actually guards something Clang's
// -Wthread-safety can check.

#include <string>
#include <string_view>
#include <vector>

#include "anb_lint/passes.hpp"

namespace anb::lint {

namespace {

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

/// Library code throws anb::Error (usually via ANB_CHECK / ANB_ASSERT),
/// never raw std exceptions — callers catch one type and error messages
/// uniformly carry file:line.
class ThrowDisciplinePass final : public FilePass {
 public:
  std::string_view name() const override { return "throw-discipline"; }
  std::string_view summary() const override {
    return "library code throws only anb::Error";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.in_src) return;
    if (f.rel_path == "src/util/include/anb/util/error.hpp") return;
    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (is_ident(t[i], "throw") && is_ident(t[i + 1], "std")) {
        diag.report(f, t[i].line,
                    "library code must throw anb::Error (use "
                    "ANB_CHECK/ANB_ASSERT)");
      }
    }
  }
};

/// Public API boundaries validate their inputs. Proxy: every
/// non-trivial library translation unit must contain at least one
/// ANB_CHECK or ANB_ASSERT. Trivial TUs (< kMinLines physical lines)
/// are exempt, as are files carrying an explicit file-level allow.
class AssertCoveragePass final : public FilePass {
 public:
  std::string_view name() const override { return "assert-coverage"; }
  std::string_view summary() const override {
    return "non-trivial library TUs must validate inputs";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    static constexpr std::size_t kMinLines = 120;
    if (f.is_header || !f.in_src) return;
    if (f.lines.size() < kMinLines) return;
    for (const Token& t : f.tokens) {
      if (is_ident(t, "ANB_CHECK") || is_ident(t, "ANB_ASSERT")) return;
    }
    diag.report(f, 0,
                "no ANB_CHECK/ANB_ASSERT in a non-trivial library TU; "
                "validate public-API inputs or add "
                "ANB_LINT_ALLOW_FILE(assert-coverage)");
  }
};

/// Lock hygiene under the thread-safety-annotation contract:
///  (a) library code must not name the std locking vocabulary
///      (std::mutex, std::lock_guard, ...) or include <mutex> — it uses
///      anb::Mutex / anb::MutexLock so Clang's analysis can see every
///      critical section;
///  (b) a file that declares an anb::Mutex must also use
///      ANB_GUARDED_BY / ANB_REQUIRES at least once — an unannotated
///      mutex guards nothing the compiler can prove.
/// The wrapper header itself is the one sanctioned user of <mutex>.
class LockHygienePass final : public FilePass {
 public:
  std::string_view name() const override { return "lock-hygiene"; }
  std::string_view summary() const override {
    return "lock through annotated anb::Mutex, and annotate what it guards";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.in_src) return;
    if (f.rel_path == "src/util/include/anb/util/mutex.hpp") return;
    const std::vector<Token>& t = f.tokens;

    static const char* kStdLocking[] = {
        "mutex",          "timed_mutex", "recursive_mutex",
        "shared_mutex",   "lock_guard",  "unique_lock",
        "shared_lock",    "scoped_lock", "condition_variable",
        "condition_variable_any"};
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!is_ident(t[i], "std") || t[i + 1].text != "::") continue;
      for (const char* name : kStdLocking) {
        if (is_ident(t[i + 2], name)) {
          diag.report(f, t[i].line,
                      "std::" + std::string(name) +
                          ": use anb::Mutex/anb::MutexLock "
                          "(anb/util/mutex.hpp) so -Wthread-safety can "
                          "check the critical section");
        }
      }
    }
    for (const Include& inc : f.includes) {
      if (inc.angled && (inc.target == "mutex" ||
                         inc.target == "shared_mutex" ||
                         inc.target == "condition_variable")) {
        diag.report(f, inc.line,
                    "<" + inc.target +
                        ">: include anb/util/mutex.hpp instead");
      }
    }

    bool has_annotation = false;
    for (const Token& tok : t) {
      if (is_ident(tok, "ANB_GUARDED_BY") ||
          is_ident(tok, "ANB_PT_GUARDED_BY") || is_ident(tok, "ANB_REQUIRES")) {
        has_annotation = true;
        break;
      }
    }
    if (has_annotation) return;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      // `Mutex name ;` / `Mutex name ;`-with-initializer: a declared
      // mutex in a file with zero guard annotations.
      if (is_ident(t[i], "Mutex") &&
          t[i + 1].kind == TokenKind::kIdentifier &&
          (t[i + 2].text == ";" || t[i + 2].text == "{" ||
           t[i + 2].text == "=")) {
        diag.report(f, t[i].line,
                    "anb::Mutex '" + t[i + 1].text +
                        "' declared but nothing in this file is "
                        "ANB_GUARDED_BY it; annotate the guarded members");
      }
    }
  }
};

}  // namespace

void register_discipline_passes(PassList& out) {
  out.push_back(std::make_unique<ThrowDisciplinePass>());
  out.push_back(std::make_unique<AssertCoveragePass>());
  out.push_back(std::make_unique<LockHygienePass>());
}

}  // namespace anb::lint
