// raw-io: library file IO must flow through anb::io (anb/util/io.hpp),
// and raw sockets through anb::net (anb/util/net.hpp).
//
// The io wrapper is the one place that owns file descriptors, mmap
// lifetimes, and error wrapping (everything throws anb::Error with the
// path in the message). Scattered fopen/ifstream/mmap call sites are
// how short-read handling, EINTR retries, and SIGBUS-safe mapping rules
// silently diverge — so inside src/ they are findings. The same logic
// covers the socket syscalls the serving layer is built on: EINTR
// loops, partial sends, MSG_NOSIGNAL, and EOF-vs-error mapping live in
// exactly one TU, so every other library file speaks net::Socket /
// net::Listener.
//
// Exemptions, by layer position rather than waiver comments:
//   - src/util/io.cpp    — the sanctioned home of raw file IO.
//   - src/util/net.cpp   — the sanctioned home of raw socket IO.
//   - src/obs/           — the observability layer sits *below* util in
//                          the include DAG and cannot link up to the
//                          wrapper; its exporters keep their own streams.
// Tests, bench harnesses, and tools are out of scope: they are free to
// write fixtures and CSVs however they like.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "anb_lint/passes.hpp"

namespace anb::lint {

namespace {

/// Could this token qualify a `::` that follows it? Keywords lex as
/// identifiers, so `return ::open(...)` must not look qualified.
bool is_qualifier(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) return false;
  return t.text != "return" && t.text != "throw" && t.text != "co_return" &&
         t.text != "co_yield";
}

class RawIoPass final : public FilePass {
 public:
  std::string_view name() const override { return "raw-io"; }
  std::string_view summary() const override {
    return "file IO through anb::io, sockets through anb::net, not raw "
           "syscalls";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.in_src) return;
    if (f.rel_path == "src/util/io.cpp") return;
    if (f.rel_path == "src/util/net.cpp") return;
    if (f.rel_path.rfind("src/obs/", 0) == 0) return;

    for (const Include& inc : f.includes) {
      if (inc.target == "fstream" || inc.target == "sys/mman.h" ||
          inc.target == "fcntl.h") {
        diag.report(f, inc.line,
                    "#include <" + inc.target +
                        ">: file IO belongs in anb::io (anb/util/io.hpp)");
      } else if (inc.target == "sys/socket.h" || inc.target == "sys/un.h" ||
                 inc.target == "poll.h") {
        diag.report(f, inc.line,
                    "#include <" + inc.target +
                        ">: socket IO belongs in anb::net "
                        "(anb/util/net.hpp)");
      }
    }

    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) continue;
      // #include lines tokenize too; they are already covered above.
      const std::string& code_line = f.code_lines[t[i].line - 1];
      const auto first = code_line.find_first_not_of(" \t");
      if (first != std::string::npos && code_line[first] == '#') continue;
      const std::string& text = t[i].text;
      if (text == "ifstream" || text == "ofstream" || text == "fstream") {
        diag.report(f, t[i].line,
                    "std::" + text +
                        ": read/write files through anb::io "
                        "(Buffer::read_file / write_file)");
        continue;
      }
      const bool is_call = i + 1 < t.size() && t[i + 1].text == "(";
      if (!is_call) continue;
      if (text == "fopen" || text == "freopen" || text == "fdopen") {
        diag.report(f, t[i].line,
                    text + ": use anb::io instead of C stdio streams");
      } else if (text == "mmap" || text == "munmap") {
        diag.report(f, t[i].line,
                    text +
                        ": map files through io::Buffer::map_file so the "
                        "mapping's lifetime is owned by a Buffer");
      } else if (text == "open" && i >= 1 && t[i - 1].text == "::" &&
                 (i < 2 || !is_qualifier(t[i - 2]))) {
        // Global-scope ::open( only — `AccelNASBench::open(` and plain
        // member calls named open() are fine.
        diag.report(f, t[i].line,
                    "::open: open file descriptors through anb::io");
      } else if ((text == "socket" || text == "connect" || text == "bind" ||
                  text == "listen" || text == "accept" || text == "send" ||
                  text == "recv" || text == "poll" || text == "shutdown") &&
                 i >= 1 && t[i - 1].text == "::" &&
                 (i < 2 || !is_qualifier(t[i - 2]))) {
        // Same rule for the socket family: only the global-qualified
        // libc calls are findings — `net::Socket` methods and members
        // named connect()/send()/... are the sanctioned replacements.
        diag.report(f, t[i].line,
                    "::" + text +
                        ": socket syscalls belong in anb::net "
                        "(src/util/net.cpp)");
      }
    }
  }
};

}  // namespace

void register_io_pass(PassList& out) {
  out.push_back(std::make_unique<RawIoPass>());
}

}  // namespace anb::lint
