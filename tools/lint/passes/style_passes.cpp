// Header and output hygiene, ported from the original single-file
// linter onto the pass framework: pragma-once, using-namespace-header,
// no-endl, and iwyu-basics.

#include <string>
#include <string_view>

#include "anb_lint/passes.hpp"

namespace anb::lint {

namespace {

class PragmaOncePass final : public FilePass {
 public:
  std::string_view name() const override { return "pragma-once"; }
  std::string_view summary() const override {
    return "headers must start with #pragma once";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.is_header) return;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      // First line that is neither blank nor comment must be the pragma.
      const std::string& code = f.code_lines[i];
      if (code.find_first_not_of(" \t") == std::string::npos) continue;
      if (f.lines[i].rfind("#pragma once", 0) != 0) {
        diag.report(f, i + 1, "headers must start with #pragma once");
      }
      return;
    }
    diag.report(f, 0, "empty header (missing #pragma once)");
  }
};

class UsingNamespaceHeaderPass final : public FilePass {
 public:
  std::string_view name() const override { return "using-namespace-header"; }
  std::string_view summary() const override {
    return "headers must not contain using-directives";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.is_header) return;
    for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
      if (f.tokens[i].kind == TokenKind::kIdentifier &&
          f.tokens[i].text == "using" &&
          f.tokens[i + 1].kind == TokenKind::kIdentifier &&
          f.tokens[i + 1].text == "namespace") {
        diag.report(f, f.tokens[i].line,
                    "headers must not contain using-directives");
      }
    }
  }
};

/// std::endl in library code forces a flush per line; hot CSV/table
/// export paths have been bitten by this before. Use '\n'.
class NoEndlPass final : public FilePass {
 public:
  std::string_view name() const override { return "no-endl"; }
  std::string_view summary() const override {
    return "library code must use '\\n' instead of std::endl";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.in_src) return;
    for (std::size_t i = 0; i + 2 < f.tokens.size(); ++i) {
      if (f.tokens[i].text == "std" && f.tokens[i + 1].text == "::" &&
          f.tokens[i + 2].text == "endl") {
        diag.report(f, f.tokens[i].line, "use '\\n' instead of std::endl");
      }
    }
  }
};

/// Include-what-you-use basics: a library header that names a common std
/// vocabulary type must include its header itself instead of relying on
/// transitive includes. Keeps public headers self-contained.
class IwyuBasicsPass final : public FilePass {
 public:
  std::string_view name() const override { return "iwyu-basics"; }
  std::string_view summary() const override {
    return "library headers must directly include what they use";
  }

 private:
  void check(const SourceFile& f, Diagnostics& diag) const override {
    if (!f.is_header || !f.in_src) return;
    static const struct {
      const char* symbol;  // identifier after std::
      const char* header;  // angled target, without <>
    } kNeeds[] = {
        {"vector", "vector"},
        {"string", "string"},
        {"unordered_map", "unordered_map"},
        {"map", "map"},
        {"optional", "optional"},
        {"function", "functional"},
        {"unique_ptr", "memory"},
        {"shared_ptr", "memory"},
        {"array", "array"},
        {"span", "span"},
        {"mutex", "mutex"},
        {"thread", "thread"},
        {"size_t", "cstddef"},
        {"uint64_t", "cstdint"},
        {"int64_t", "cstdint"},
        {"uint32_t", "cstdint"},
        {"ostream", "iosfwd"},
    };
    for (const auto& need : kNeeds) {
      std::size_t first_use = 0;
      for (std::size_t i = 0; i + 2 < f.tokens.size(); ++i) {
        if (f.tokens[i].text == "std" && f.tokens[i + 1].text == "::" &&
            f.tokens[i + 2].text == need.symbol) {
          first_use = f.tokens[i].line;
          break;
        }
      }
      if (first_use == 0) continue;
      if (includes_target(f, need.header)) continue;
      // <iosfwd> needs are also satisfied by the full stream headers.
      if (std::string_view(need.header) == "iosfwd" &&
          (includes_target(f, "ostream") || includes_target(f, "sstream") ||
           includes_target(f, "iostream"))) {
        continue;
      }
      diag.report(f, first_use,
                  "std::" + std::string(need.symbol) + " used but <" +
                      need.header + "> not included directly");
    }
  }

  static bool includes_target(const SourceFile& f, std::string_view target) {
    for (const Include& inc : f.includes) {
      if (inc.angled && inc.target == target) return true;
    }
    return false;
  }
};

}  // namespace

void register_style_passes(PassList& out) {
  out.push_back(std::make_unique<PragmaOncePass>());
  out.push_back(std::make_unique<UsingNamespaceHeaderPass>());
  out.push_back(std::make_unique<NoEndlPass>());
  out.push_back(std::make_unique<IwyuBasicsPass>());
}

}  // namespace anb::lint
