#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "anb_lint/tree.hpp"

// Pass framework for anb_lint.
//
// A Pass inspects the Tree and reports Findings through Diagnostics,
// which applies suppressions centrally:
//
//   // ANB_LINT_ALLOW(<pass>)       on the finding's line
//   // ANB_LINT_ALLOW_FILE(<pass>)  anywhere in the file
//
// Suppressions are per-pass and greppable; a pass never needs its own
// waiver logic. Findings are plain data so the driver can render them
// as compiler-style text or machine-readable JSON.

namespace anb::lint {

struct Finding {
  std::string path;
  std::size_t line;  // 1-based; 0 = whole file
  std::string pass;
  std::string message;
};

class Diagnostics {
 public:
  explicit Diagnostics(std::string pass_name)
      : pass_(std::move(pass_name)) {}

  /// Record a finding unless an ANB_LINT_ALLOW comment suppresses it.
  void report(const SourceFile& file, std::size_t line, std::string message);

  const std::string& pass_name() const { return pass_; }
  std::vector<Finding> take_findings() { return std::move(findings_); }
  std::size_t suppressed() const { return suppressed_; }

 private:
  std::string pass_;
  std::vector<Finding> findings_;
  std::size_t suppressed_ = 0;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view summary() const = 0;
  virtual void run(const Tree& tree, Diagnostics& diag) const = 0;
};

/// Convenience base for passes that inspect one file at a time.
class FilePass : public Pass {
 public:
  void run(const Tree& tree, Diagnostics& diag) const final {
    for (const SourceFile& file : tree.files()) check(file, diag);
  }

 private:
  virtual void check(const SourceFile& file, Diagnostics& diag) const = 0;
};

/// The registry: every pass, in stable execution/report order.
const std::vector<std::unique_ptr<Pass>>& passes();

struct RunResult {
  std::vector<Finding> findings;
  std::size_t suppressed = 0;
  std::size_t files_scanned = 0;
};

/// Run one pass by name; throws std::runtime_error on unknown names.
RunResult run_pass(const Tree& tree, std::string_view pass_name);

/// Run every registered pass.
RunResult run_all(const Tree& tree);

/// Machine-readable findings: a JSON array of
/// {"path": ..., "line": N, "pass": ..., "message": ...}.
std::string to_json(const std::vector<Finding>& findings);

}  // namespace anb::lint
