#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "anb_lint/source.hpp"

// The Tree is the unit a lint run operates on: every lexed source file
// plus the indexes the whole-tree passes need (path lookup, quoted
// include resolution). Tests build Trees from in-memory fixtures;
// the anb_lint driver builds one from the repo on disk.

namespace anb::lint {

struct FileSpec {
  std::string rel_path;
  std::string content;
};

class Tree {
 public:
  /// Build from in-memory fixtures (used by lint_test).
  static Tree from_specs(const std::vector<FileSpec>& specs);

  /// Scan src/, tests/, bench/, examples/, tools/ under the repo root
  /// for .cpp/.hpp/.h files. Files are ordered by path so runs are
  /// deterministic regardless of directory enumeration order.
  static Tree from_disk(const std::filesystem::path& root);

  const std::vector<SourceFile>& files() const { return files_; }

  const SourceFile* find(std::string_view rel_path) const;

  /// Resolve a quoted include target ("anb/util/rng.hpp") to the header
  /// that provides it, i.e. the tree file whose path ends with
  /// "include/<target>". Returns nullptr for system or out-of-tree
  /// includes.
  const SourceFile* resolve_include(std::string_view target) const;

 private:
  void index();

  std::vector<SourceFile> files_;
  std::map<std::string, std::size_t, std::less<>> by_rel_;
  std::map<std::string, std::size_t, std::less<>> by_target_;
};

}  // namespace anb::lint
