#pragma once

#include <memory>
#include <vector>

#include "anb_lint/pass.hpp"

// Pass group factories. Each passes/*.cpp translation unit owns one
// group and appends its passes in stable order; pass.cpp assembles the
// registry from these. Adding a pass means appending to one of these
// factories (or adding a new group here).

namespace anb::lint {

using PassList = std::vector<std::unique_ptr<Pass>>;

/// pragma-once, using-namespace-header, no-endl, iwyu-basics.
void register_style_passes(PassList& out);

/// forbidden-randomness, raw-timing, deterministic-iteration,
/// float-reduction.
void register_determinism_passes(PassList& out);

/// throw-discipline, assert-coverage, lock-hygiene.
void register_discipline_passes(PassList& out);

/// layering (include-graph DAG).
void register_layering_pass(PassList& out);

/// raw-io (file IO confined to anb::io / src/util/io.cpp).
void register_io_pass(PassList& out);

/// raw-simd (vector intrinsics confined to anb/util/simd.hpp).
void register_simd_pass(PassList& out);

}  // namespace anb::lint
