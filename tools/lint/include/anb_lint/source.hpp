#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

// anb_lint source model: a lexed view of one translation unit.
//
// The old linter pattern-matched raw text with comments and string
// literals blanked line-by-line; that broke on raw strings, backslash
// line continuations, and anything token-shaped hiding in a literal.
// This lexer produces three aligned views of a file:
//
//   lines       — the raw text, one entry per physical line (used for
//                 suppression comments and reporting),
//   code_lines  — the raw text with comments, string/char literal
//                 *contents*, and raw strings blanked to spaces, with
//                 line structure preserved (legacy substring checks),
//   tokens      — a flat token stream over code_lines (identifier /
//                 number / punctuation / string), each carrying its
//                 1-based line, for the structural passes.
//
// Includes are parsed separately from the raw lines so the include
// graph sees targets verbatim.

namespace anb::lint {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kPunct,
  kString,  // a (scrubbed) string literal; text is empty
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line;  // 1-based physical line
};

struct Include {
  std::size_t line;    // 1-based
  std::string target;  // e.g. "anb/util/rng.hpp" or "vector"
  bool angled;         // <...> vs "..."
};

struct SourceFile {
  std::string rel_path;  // repo-relative, forward slashes
  std::vector<std::string> lines;
  std::vector<std::string> code_lines;
  std::vector<Token> tokens;
  std::vector<Include> includes;
  bool is_header = false;
  bool in_src = false;
  bool in_tests = false;
  std::string layer;  // "util" for src/util/...; empty outside src/
};

/// Split text into physical lines ('\n' separators; a trailing newline
/// does not produce an extra empty line).
std::vector<std::string> split_lines(std::string_view text);

/// Blank comments, string/char literal contents, and raw strings to
/// spaces, preserving line structure. Handles /* */ across lines,
/// R"delim(...)delim" across lines (with encoding prefixes u8/u/U/L),
/// backslash continuations of // comments, escapes inside literals, and
/// digit separators (1'000'000 does not open a char literal).
std::vector<std::string> scrub(const std::vector<std::string>& lines);

/// Lex scrubbed lines into a flat token stream. Multi-character
/// operators (::, <<, >>, +=, -=, ->, ...) come out as single tokens;
/// note that >> closing nested templates is one token.
std::vector<Token> tokenize(const std::vector<std::string>& code_lines);

/// Parse #include directives. Targets are read from the raw lines (the
/// scrubber blanks quoted targets like any string literal), but a
/// directive only counts when the scrubbed line still starts with '#',
/// so commented-out includes are ignored.
std::vector<Include> parse_includes(const std::vector<std::string>& lines,
                                    const std::vector<std::string>& code_lines);

/// Build the full lexed view for one file.
SourceFile make_source_file(std::string rel_path, std::string_view content);

}  // namespace anb::lint
