#include "anb_lint/source.hpp"

#include <cctype>

namespace anb::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Lexer state that survives a newline. Regular strings survive only via
/// a backslash continuation; raw strings and block comments span lines
/// freely.
enum class Mode {
  kCode,
  kBlockComment,
  kLineComment,  // only carried across lines by a trailing backslash
  kString,       // ditto
  kChar,         // ditto
  kRawString,
};

/// True when the quote at lines[i] opens a raw string, i.e. the
/// preceding characters are R with an optional u8/u/U/L encoding prefix
/// not glued to a longer identifier.
bool is_raw_string_open(const std::string& line, std::size_t quote) {
  if (quote == 0 || line[quote - 1] != 'R') return false;
  std::size_t p = quote - 1;  // index of 'R'
  // Optional encoding prefix before R.
  std::size_t start = p;
  if (p >= 2 && line[p - 2] == 'u' && line[p - 1] == '8') {
    start = p - 2;
  } else if (p >= 1 &&
             (line[p - 1] == 'u' || line[p - 1] == 'U' || line[p - 1] == 'L')) {
    start = p - 1;
  }
  // The prefix must not be the tail of a longer identifier (e.g. FOOR").
  return start == 0 || !ident_char(line[start - 1]);
}

}  // namespace

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < text.size()) lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::vector<std::string> scrub(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  Mode mode = Mode::kCode;
  std::string raw_delim;  // for kRawString: the ")delim\"" closer

  for (const std::string& line : lines) {
    std::string code(line.size(), ' ');
    const bool ends_with_backslash = !line.empty() && line.back() == '\\';

    // States carried in from the previous line that do NOT survive this
    // one unless re-extended.
    if (mode == Mode::kLineComment || mode == Mode::kString ||
        mode == Mode::kChar) {
      if (mode == Mode::kLineComment) {
        // Whole line is still comment; extend only via trailing backslash.
        if (!ends_with_backslash) mode = Mode::kCode;
        out.push_back(std::move(code));
        continue;
      }
      // kString / kChar fall through into the scan loop below.
    }

    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (mode) {
        case Mode::kBlockComment:
          if (c == '*' && next == '/') {
            mode = Mode::kCode;
            ++i;
          }
          ++i;
          break;
        case Mode::kRawString:
          if (line.compare(i, raw_delim.size(), raw_delim) == 0) {
            i += raw_delim.size();
            mode = Mode::kCode;
          } else {
            ++i;
          }
          break;
        case Mode::kString:
          if (c == '\\' && i + 1 < line.size()) {
            i += 2;
          } else if (c == '\\') {
            ++i;  // trailing backslash: continuation, stay in kString
          } else if (c == '"') {
            code[i] = '"';
            mode = Mode::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        case Mode::kChar:
          if (c == '\\' && i + 1 < line.size()) {
            i += 2;
          } else if (c == '\'') {
            mode = Mode::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        case Mode::kLineComment:
          // Unreachable inside the scan loop (handled above), but keeps
          // the switch exhaustive.
          i = line.size();
          break;
        case Mode::kCode:
          if (c == '/' && next == '/') {
            mode = Mode::kLineComment;
            i = line.size();
          } else if (c == '/' && next == '*') {
            mode = Mode::kBlockComment;
            i += 2;
          } else if (c == '"' && is_raw_string_open(line, i)) {
            // R"delim( ... — blank the R too.
            code[i - 1] = ' ';
            std::size_t d = i + 1;
            while (d < line.size() && line[d] != '(') ++d;
            raw_delim = ")" + line.substr(i + 1, d - (i + 1)) + "\"";
            mode = Mode::kRawString;
            i = d + 1;
          } else if (c == '"') {
            code[i] = '"';
            mode = Mode::kString;
            ++i;
          } else if (c == '\'') {
            // Digit separator (1'000'000) or identifier-adjacent quote is
            // not a char literal.
            const char prev = i > 0 ? line[i - 1] : '\0';
            if (ident_char(prev)) {
              code[i] = c;
              ++i;
            } else {
              mode = Mode::kChar;
              ++i;
            }
          } else {
            code[i] = c;
            ++i;
          }
          break;
      }
    }

    // End-of-line transitions: line comments and regular literals only
    // continue past the newline via a trailing backslash.
    if (mode == Mode::kLineComment && !ends_with_backslash) mode = Mode::kCode;
    if ((mode == Mode::kString || mode == Mode::kChar) && !ends_with_backslash)
      mode = Mode::kCode;

    out.push_back(std::move(code));
  }
  return out;
}

std::vector<Token> tokenize(const std::vector<std::string>& code_lines) {
  static const char* kTwoCharOps[] = {"::", "<<", ">>", "+=", "-=", "*=",
                                      "/=", "->", "==", "!=", "<=", ">=",
                                      "&&", "||", "++", "--"};
  std::vector<Token> tokens;
  for (std::size_t ln = 0; ln < code_lines.size(); ++ln) {
    const std::string& line = code_lines[ln];
    const std::size_t line_no = ln + 1;
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < line.size() && ident_char(line[j])) ++j;
        tokens.push_back(
            {TokenKind::kIdentifier, line.substr(i, j - i), line_no});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i + 1;
        while (j < line.size() &&
               (ident_char(line[j]) || line[j] == '.' || line[j] == '\'')) {
          ++j;
        }
        tokens.push_back({TokenKind::kNumber, line.substr(i, j - i), line_no});
        i = j;
        continue;
      }
      if (c == '"') {
        // Scrubbed literal: contents are spaces; find the closing quote
        // on this line (a continuation leaves it unclosed — tolerate).
        std::size_t j = line.find('"', i + 1);
        tokens.push_back({TokenKind::kString, std::string(), line_no});
        i = (j == std::string::npos) ? line.size() : j + 1;
        continue;
      }
      bool matched = false;
      for (const char* op : kTwoCharOps) {
        if (line.compare(i, 2, op) == 0) {
          tokens.push_back({TokenKind::kPunct, op, line_no});
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      tokens.push_back({TokenKind::kPunct, std::string(1, c), line_no});
      ++i;
    }
  }
  return tokens;
}

std::vector<Include> parse_includes(
    const std::vector<std::string>& lines,
    const std::vector<std::string>& code_lines) {
  std::vector<Include> includes;
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string& line = lines[ln];
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '#') continue;
    // Commented-out directives scrub to blanks; require the '#' to
    // survive scrubbing before trusting the raw-line target.
    if (ln >= code_lines.size()) continue;
    const std::size_t ci = code_lines[ln].find_first_not_of(" \t");
    if (ci == std::string::npos || code_lines[ln][ci] != '#') continue;
    i = line.find_first_not_of(" \t", i + 1);
    if (i == std::string::npos || line.compare(i, 7, "include") != 0) continue;
    i = line.find_first_not_of(" \t", i + 7);
    if (i == std::string::npos) continue;
    const char open = line[i];
    if (open != '<' && open != '"') continue;
    const char close = open == '<' ? '>' : '"';
    const std::size_t end = line.find(close, i + 1);
    if (end == std::string::npos) continue;
    includes.push_back(
        {ln + 1, line.substr(i + 1, end - (i + 1)), open == '<'});
  }
  return includes;
}

SourceFile make_source_file(std::string rel_path, std::string_view content) {
  SourceFile f;
  f.rel_path = std::move(rel_path);
  f.lines = split_lines(content);
  f.code_lines = scrub(f.lines);
  f.tokens = tokenize(f.code_lines);
  f.includes = parse_includes(f.lines, f.code_lines);
  f.is_header = f.rel_path.size() >= 4 &&
                (f.rel_path.ends_with(".hpp") || f.rel_path.ends_with(".h"));
  f.in_src = f.rel_path.rfind("src/", 0) == 0;
  f.in_tests = f.rel_path.rfind("tests/", 0) == 0;
  if (f.in_src) {
    const std::size_t slash = f.rel_path.find('/', 4);
    if (slash != std::string::npos) f.layer = f.rel_path.substr(4, slash - 4);
  }
  return f;
}

}  // namespace anb::lint
