#include "anb_lint/pass.hpp"

#include <stdexcept>

#include "anb_lint/passes.hpp"

namespace anb::lint {

namespace {

bool line_allows(const std::string& raw_line, std::string_view pass) {
  const std::string tag = "ANB_LINT_ALLOW(" + std::string(pass) + ")";
  return raw_line.find(tag) != std::string::npos;
}

bool file_allows(const SourceFile& file, std::string_view pass) {
  const std::string tag = "ANB_LINT_ALLOW_FILE(" + std::string(pass) + ")";
  for (const std::string& line : file.lines) {
    if (line.find(tag) != std::string::npos) return true;
  }
  return false;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Diagnostics::report(const SourceFile& file, std::size_t line,
                         std::string message) {
  if (line > 0 && line <= file.lines.size() &&
      line_allows(file.lines[line - 1], pass_)) {
    ++suppressed_;
    return;
  }
  if (file_allows(file, pass_)) {
    ++suppressed_;
    return;
  }
  findings_.push_back({file.rel_path, line, pass_, std::move(message)});
}

const std::vector<std::unique_ptr<Pass>>& passes() {
  static const std::vector<std::unique_ptr<Pass>>* kPasses = [] {
    auto* list = new std::vector<std::unique_ptr<Pass>>();
    register_style_passes(*list);
    register_determinism_passes(*list);
    register_discipline_passes(*list);
    register_layering_pass(*list);
    register_io_pass(*list);
    register_simd_pass(*list);
    return list;
  }();
  return *kPasses;
}

RunResult run_pass(const Tree& tree, std::string_view pass_name) {
  for (const auto& pass : passes()) {
    if (pass->name() != pass_name) continue;
    Diagnostics diag{std::string(pass_name)};
    pass->run(tree, diag);
    RunResult result;
    result.suppressed = diag.suppressed();
    result.findings = diag.take_findings();
    result.files_scanned = tree.files().size();
    return result;
  }
  throw std::runtime_error("anb_lint: unknown pass '" +
                           std::string(pass_name) + "'");
}

RunResult run_all(const Tree& tree) {
  RunResult result;
  result.files_scanned = tree.files().size();
  for (const auto& pass : passes()) {
    Diagnostics diag{std::string(pass->name())};
    pass->run(tree, diag);
    result.suppressed += diag.suppressed();
    for (Finding& finding : diag.take_findings()) {
      result.findings.push_back(std::move(finding));
    }
  }
  return result;
}

std::string to_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  {\"path\": ";
    append_json_string(out, findings[i].path);
    out += ", \"line\": " + std::to_string(findings[i].line);
    out += ", \"pass\": ";
    append_json_string(out, findings[i].pass);
    out += ", \"message\": ";
    append_json_string(out, findings[i].message);
    out += "}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace anb::lint
