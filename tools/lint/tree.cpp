#include "anb_lint/tree.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

namespace anb::lint {

namespace fs = std::filesystem;

Tree Tree::from_specs(const std::vector<FileSpec>& specs) {
  Tree tree;
  tree.files_.reserve(specs.size());
  for (const FileSpec& spec : specs) {
    tree.files_.push_back(make_source_file(spec.rel_path, spec.content));
  }
  tree.index();
  return tree;
}

Tree Tree::from_disk(const fs::path& root) {
  static const char* kDirs[] = {"src", "tests", "bench", "examples", "tools"};
  std::vector<FileSpec> specs;
  for (const char* dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      std::ifstream in(entry.path());
      std::ostringstream buf;
      buf << in.rdbuf();
      specs.push_back({fs::relative(entry.path(), root).generic_string(),
                       std::move(buf).str()});
    }
  }
  std::sort(specs.begin(), specs.end(),
            [](const FileSpec& a, const FileSpec& b) {
              return a.rel_path < b.rel_path;
            });
  return from_specs(specs);
}

const SourceFile* Tree::find(std::string_view rel_path) const {
  const auto it = by_rel_.find(rel_path);
  return it == by_rel_.end() ? nullptr : &files_[it->second];
}

const SourceFile* Tree::resolve_include(std::string_view target) const {
  const auto it = by_target_.find(target);
  return it == by_target_.end() ? nullptr : &files_[it->second];
}

void Tree::index() {
  by_rel_.clear();
  by_target_.clear();
  for (std::size_t i = 0; i < files_.size(); ++i) {
    by_rel_.emplace(files_[i].rel_path, i);
    // A header under .../include/<target> is includable as "<target>".
    const std::string& rel = files_[i].rel_path;
    const std::size_t pos = rel.find("include/");
    if (files_[i].is_header && pos != std::string::npos &&
        (pos == 0 || rel[pos - 1] == '/')) {
      by_target_.emplace(rel.substr(pos + 8), i);
    }
  }
}

}  // namespace anb::lint
