// anb_lint — repo-specific invariant linter, driver.
//
// Generic tools (clang-tidy, compiler warnings) cannot see this repo's
// contracts: determinism of everything downstream of anb::Rng, the
// single exception type anb::Error, the thread-safety-annotation lock
// discipline, layering of the src/ DAG, and header hygiene. The passes
// that enforce them live in tools/lint/ (see tools/lint/include/
// anb_lint/pass.hpp); this binary just loads the tree and runs them.
// It builds as part of the normal build and runs as a ctest
// (`ctest -R anb_lint`), so violations fail CI the same way a broken
// unit test does.
//
// Usage: anb_lint [--json] [--pass <name>] [--list-passes] <repo-root>
//
//   --json         print findings as a JSON array on stdout
//   --pass <name>  run one pass instead of all of them
//   --list-passes  print registered pass names and summaries, then exit
//
// Suppressions: a comment containing `ANB_LINT_ALLOW(<pass>)` on the
// finding's line suppresses that pass for that line; a comment
// containing `ANB_LINT_ALLOW_FILE(<pass>)` anywhere in a file
// suppresses the pass for the whole file. Suppressions are meant to be
// rare and greppable.
//
// Exit codes: 0 clean, 1 findings, 2 usage error.

#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <string_view>

#include "anb_lint/pass.hpp"
#include "anb_lint/tree.hpp"

namespace fs = std::filesystem;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: anb_lint [--json] [--pass <name>] [--list-passes] "
               "<repo-root>\n");
  return 2;
}

void print_findings(const std::vector<anb::lint::Finding>& findings,
                    std::size_t files_scanned, std::size_t suppressed) {
  for (const anb::lint::Finding& finding : findings) {
    if (finding.line > 0) {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", finding.path.c_str(),
                   finding.line, finding.pass.c_str(),
                   finding.message.c_str());
    } else {
      std::fprintf(stderr, "%s: [%s] %s\n", finding.path.c_str(),
                   finding.pass.c_str(), finding.message.c_str());
    }
  }
  std::fprintf(stderr,
               "anb_lint: %zu file(s) scanned, %zu finding(s), %zu "
               "suppressed\n",
               files_scanned, findings.size(), suppressed);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string pass_name;
  std::string root_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-passes") {
      for (const auto& pass : anb::lint::passes()) {
        std::fprintf(stdout, "%-26s %s\n", std::string(pass->name()).c_str(),
                     std::string(pass->summary()).c_str());
      }
      return 0;
    } else if (arg == "--pass") {
      if (i + 1 >= argc) return usage();
      pass_name = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (root_arg.empty()) {
      root_arg = arg;
    } else {
      return usage();
    }
  }
  if (root_arg.empty()) return usage();

  const fs::path root(root_arg);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "anb_lint: %s does not look like the repo root\n",
                 root_arg.c_str());
    return 2;
  }

  try {
    const anb::lint::Tree tree = anb::lint::Tree::from_disk(root);
    const anb::lint::RunResult result =
        pass_name.empty() ? anb::lint::run_all(tree)
                          : anb::lint::run_pass(tree, pass_name);
    if (json) {
      const std::string out = anb::lint::to_json(result.findings);
      std::fwrite(out.data(), 1, out.size(), stdout);
    }
    print_findings(result.findings, result.files_scanned, result.suppressed);
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
