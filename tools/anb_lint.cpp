// anb_lint — repo-specific invariant linter.
//
// Generic tools (clang-tidy, compiler warnings) cannot see this repo's
// contracts: determinism of everything downstream of anb::Rng, the single
// exception type anb::Error, assertion coverage at public API boundaries,
// and header hygiene. This tool walks the source tree and enforces them.
// It builds as part of the normal build and runs as a ctest
// (`ctest -R anb_lint`), so violations fail CI the same way a broken unit
// test does.
//
// Usage: anb_lint <repo-root>
//
// Waivers: a source line containing `anb-lint: allow(<check>)` in a comment
// suppresses that check for that line. A line containing
// `anb-lint-file: allow(<check>)` anywhere in a file suppresses the check
// for the whole file. Waivers are meant to be rare and greppable.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;   // repo-relative
  std::size_t line;   // 1-based; 0 = whole file
  std::string check;
  std::string message;
};

struct SourceFile {
  std::string rel_path;
  std::vector<std::string> lines;       // raw text
  std::vector<std::string> code_lines;  // comments and string literals blanked
  bool is_header = false;
  bool in_src = false;    // library code under src/
  bool in_tests = false;  // under tests/
};

/// Replace the contents of string literals, char literals, // comments, and
/// /* */ comments with spaces so the pattern checks only see code. Keeps
/// line structure intact (one output line per input line).
std::vector<std::string> strip_non_code(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& line : lines) {
    std::string code(line.size(), ' ');
    bool in_string = false;
    bool in_char = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if (in_block_comment) {
        if (c == '*' && next == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (in_char) {
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          in_char = false;
        }
        continue;
      }
      if (c == '/' && next == '/') break;  // rest of line is a comment
      if (c == '/' && next == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"') {
        in_string = true;
        code[i] = c;  // keep the delimiter so includes still parse
        continue;
      }
      // Only treat ' as a char literal opener when it cannot be a digit
      // separator (C++14 1'000'000) or part of an identifier.
      if (c == '\'') {
        const char prev = i > 0 ? line[i - 1] : '\0';
        const bool sep = (std::isalnum(static_cast<unsigned char>(prev)) != 0);
        if (!sep) {
          in_char = true;
          continue;
        }
      }
      code[i] = c;
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool line_waives(const std::string& raw_line, std::string_view check) {
  const std::string tag = "anb-lint: allow(" + std::string(check) + ")";
  return raw_line.find(tag) != std::string::npos;
}

bool file_waives(const SourceFile& f, std::string_view check) {
  const std::string tag = "anb-lint-file: allow(" + std::string(check) + ")";
  for (const std::string& line : f.lines) {
    if (line.find(tag) != std::string::npos) return true;
  }
  return false;
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  bool run() {
    collect_files();
    for (const SourceFile& f : files_) {
      check_forbidden_randomness(f);
      check_throw_discipline(f);
      check_pragma_once(f);
      check_header_self_containment(f);
      check_no_using_namespace_in_headers(f);
      check_no_endl(f);
      check_raw_timing(f);
      check_assertion_coverage(f);
    }
    report();
    return findings_.empty();
  }

 private:
  void collect_files() {
    static const char* kDirs[] = {"src", "tests", "bench", "examples",
                                  "tools"};
    for (const char* dir : kDirs) {
      const fs::path base = root_ / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
        SourceFile f;
        f.rel_path = fs::relative(entry.path(), root_).generic_string();
        f.is_header = (ext != ".cpp");
        f.in_src = f.rel_path.rfind("src/", 0) == 0;
        f.in_tests = f.rel_path.rfind("tests/", 0) == 0;
        std::ifstream in(entry.path());
        std::string line;
        while (std::getline(in, line)) f.lines.push_back(line);
        f.code_lines = strip_non_code(f.lines);
        files_.push_back(std::move(f));
      }
    }
  }

  void add(const SourceFile& f, std::size_t line_no, std::string check,
           std::string message) {
    if (line_no > 0 && line_waives(f.lines[line_no - 1], check)) return;
    if (file_waives(f, check)) return;
    findings_.push_back(
        {f.rel_path, line_no, std::move(check), std::move(message)});
  }

  /// Everything in this repo must derive randomness from anb::Rng seeds so
  /// that results are bit-reproducible. Wall-clock seeding and the global C
  /// RNG break that contract; std::random_device breaks it silently.
  void check_forbidden_randomness(const SourceFile& f) {
    if (f.rel_path == "tools/anb_lint.cpp") return;  // self: patterns below
    static const struct {
      const char* pattern;
      const char* why;
    } kBanned[] = {
        {"std::rand", "use anb::Rng (determinism contract)"},
        {"std::srand", "use anb::Rng (determinism contract)"},
        {"std::random_device",
         "nondeterministic seed source; use anb::Rng with an explicit seed"},
        {"random_device",
         "nondeterministic seed source; use anb::Rng with an explicit seed"},
        {"time(nullptr)", "wall-clock seeding breaks reproducibility"},
        {"time(NULL)", "wall-clock seeding breaks reproducibility"},
    };
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      for (const auto& ban : kBanned) {
        if (f.code_lines[i].find(ban.pattern) != std::string::npos) {
          add(f, i + 1, "forbidden-randomness",
              std::string(ban.pattern) + ": " + ban.why);
          break;  // one finding per line is enough
        }
      }
    }
  }

  /// Library code throws anb::Error (usually via ANB_CHECK / ANB_ASSERT),
  /// never raw std exceptions — callers catch one type and error messages
  /// uniformly carry file:line.
  void check_throw_discipline(const SourceFile& f) {
    if (!f.in_src) return;
    if (f.rel_path == "src/util/include/anb/util/error.hpp") return;
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      const std::string& code = f.code_lines[i];
      if (code.find("throw std::") != std::string::npos) {
        add(f, i + 1, "throw-discipline",
            "library code must throw anb::Error (use ANB_CHECK/ANB_ASSERT)");
      }
    }
  }

  void check_pragma_once(const SourceFile& f) {
    if (!f.is_header) return;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      // First line that is neither blank nor comment must be #pragma once.
      const std::string& code = f.code_lines[i];
      const bool blank = code.find_first_not_of(" \t") == std::string::npos;
      if (blank) continue;
      if (f.lines[i].rfind("#pragma once", 0) != 0) {
        add(f, i + 1, "pragma-once",
            "headers must start with #pragma once");
      }
      return;
    }
    add(f, 0, "pragma-once", "empty header (missing #pragma once)");
  }

  /// Include-what-you-use basics: a library header that names a common std
  /// vocabulary type must include its header itself instead of relying on
  /// transitive includes. Keeps public headers self-contained.
  void check_header_self_containment(const SourceFile& f) {
    if (!f.is_header || !f.in_src) return;
    static const struct {
      const char* symbol;
      const char* header;
    } kNeeds[] = {
        {"std::vector", "<vector>"},       {"std::string", "<string>"},
        {"std::unordered_map", "<unordered_map>"},
        {"std::map", "<map>"},             {"std::optional", "<optional>"},
        {"std::function", "<functional>"}, {"std::unique_ptr", "<memory>"},
        {"std::shared_ptr", "<memory>"},   {"std::array", "<array>"},
        {"std::span", "<span>"},           {"std::mutex", "<mutex>"},
        {"std::thread", "<thread>"},       {"std::size_t", "<cstddef>"},
        {"std::uint64_t", "<cstdint>"},    {"std::int64_t", "<cstdint>"},
        {"std::uint32_t", "<cstdint>"},    {"std::ostream", "<iosfwd>"},
    };
    std::string all_includes;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      if (f.lines[i].rfind("#include", 0) == 0) {
        all_includes += f.lines[i];
        all_includes += '\n';
      }
    }
    for (const auto& need : kNeeds) {
      bool used = false;
      std::size_t first_use = 0;
      for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
        if (f.code_lines[i].find(need.symbol) != std::string::npos) {
          used = true;
          first_use = i + 1;
          break;
        }
      }
      if (!used) continue;
      bool satisfied = all_includes.find(need.header) != std::string::npos;
      // <iosfwd> needs are also satisfied by the full <ostream>/<sstream>.
      if (!satisfied && std::string_view(need.header) == "<iosfwd>") {
        satisfied = all_includes.find("<ostream>") != std::string::npos ||
                    all_includes.find("<sstream>") != std::string::npos ||
                    all_includes.find("<iostream>") != std::string::npos;
      }
      // <cstddef>/<cstdint> are also provided by <cstdio>/<cstdlib> in
      // practice, but we require the precise header for self-containment.
      if (!satisfied) {
        add(f, first_use, "iwyu-basics",
            std::string(need.symbol) + " used but " + need.header +
                " not included directly");
      }
    }
  }

  void check_no_using_namespace_in_headers(const SourceFile& f) {
    if (!f.is_header) return;
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      if (f.code_lines[i].find("using namespace") != std::string::npos) {
        add(f, i + 1, "using-namespace-header",
            "headers must not contain using-directives");
      }
    }
  }

  /// std::endl in library code forces a flush per line; hot CSV/table
  /// export paths have been bitten by this before. Use '\n'.
  void check_no_endl(const SourceFile& f) {
    if (!f.in_src) return;
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      if (f.code_lines[i].find("std::endl") != std::string::npos) {
        add(f, i + 1, "no-endl", "use '\\n' instead of std::endl");
      }
    }
  }

  /// Timing belongs to the observability layer: library and test code must
  /// measure durations through obs::Span / ANB_SPAN so that spans nest, are
  /// toggled by one switch, and export through one sink. Raw clock reads
  /// are allowed only in src/obs (the layer itself) and bench/ (harnesses
  /// that time phases the span tree does not model).
  void check_raw_timing(const SourceFile& f) {
    if (f.rel_path == "tools/anb_lint.cpp") return;  // self: patterns below
    if (f.rel_path.rfind("src/obs/", 0) == 0) return;
    if (f.rel_path.rfind("bench/", 0) == 0) return;
    static const char* kClocks[] = {
        "steady_clock::now",
        "high_resolution_clock::now",
        "system_clock::now",
    };
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      for (const char* clock : kClocks) {
        if (f.code_lines[i].find(clock) != std::string::npos) {
          add(f, i + 1, "raw-timing",
              std::string(clock) +
                  ": time through obs::Span/ANB_SPAN (src/obs) instead of "
                  "raw clock reads");
          break;
        }
      }
    }
  }

  /// Public API boundaries validate their inputs. Proxy: every
  /// non-trivial library translation unit must contain at least one
  /// ANB_CHECK or ANB_ASSERT. Trivial TUs (< kMinLines lines of code)
  /// are exempt, as are files carrying an explicit file-level waiver.
  void check_assertion_coverage(const SourceFile& f) {
    static constexpr std::size_t kMinLines = 120;
    if (f.is_header || !f.in_src) return;
    if (f.lines.size() < kMinLines) return;
    for (const std::string& code : f.code_lines) {
      if (code.find("ANB_CHECK") != std::string::npos ||
          code.find("ANB_ASSERT") != std::string::npos) {
        return;
      }
    }
    add(f, 0, "assert-coverage",
        "no ANB_CHECK/ANB_ASSERT in a non-trivial library TU; validate "
        "public-API inputs or waive with anb-lint-file: allow(...)");
  }

  void report() const {
    for (const Finding& finding : findings_) {
      if (finding.line > 0) {
        std::fprintf(stderr, "%s:%zu: [%s] %s\n", finding.path.c_str(),
                     finding.line, finding.check.c_str(),
                     finding.message.c_str());
      } else {
        std::fprintf(stderr, "%s: [%s] %s\n", finding.path.c_str(),
                     finding.check.c_str(), finding.message.c_str());
      }
    }
    std::fprintf(stderr, "anb_lint: %zu file(s) scanned, %zu finding(s)\n",
                 files_.size(), findings_.size());
  }

  fs::path root_;
  std::vector<SourceFile> files_;
  std::vector<Finding> findings_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: anb_lint <repo-root>\n");
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "anb_lint: %s does not look like the repo root\n",
                 argv[1]);
    return 2;
  }
  Linter linter(root);
  return linter.run() ? 0 : 1;
}
