# Empty compiler generated dependencies file for anb_util.
# This may be replaced when dependencies are built.
