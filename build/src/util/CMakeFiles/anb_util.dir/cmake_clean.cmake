file(REMOVE_RECURSE
  "CMakeFiles/anb_util.dir/csv.cpp.o"
  "CMakeFiles/anb_util.dir/csv.cpp.o.d"
  "CMakeFiles/anb_util.dir/json.cpp.o"
  "CMakeFiles/anb_util.dir/json.cpp.o.d"
  "CMakeFiles/anb_util.dir/metrics.cpp.o"
  "CMakeFiles/anb_util.dir/metrics.cpp.o.d"
  "CMakeFiles/anb_util.dir/parallel.cpp.o"
  "CMakeFiles/anb_util.dir/parallel.cpp.o.d"
  "CMakeFiles/anb_util.dir/pareto.cpp.o"
  "CMakeFiles/anb_util.dir/pareto.cpp.o.d"
  "CMakeFiles/anb_util.dir/rng.cpp.o"
  "CMakeFiles/anb_util.dir/rng.cpp.o.d"
  "CMakeFiles/anb_util.dir/stats.cpp.o"
  "CMakeFiles/anb_util.dir/stats.cpp.o.d"
  "CMakeFiles/anb_util.dir/table.cpp.o"
  "CMakeFiles/anb_util.dir/table.cpp.o.d"
  "libanb_util.a"
  "libanb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
