file(REMOVE_RECURSE
  "libanb_util.a"
)
