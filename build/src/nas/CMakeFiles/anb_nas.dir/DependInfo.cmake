
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/evolution.cpp" "src/nas/CMakeFiles/anb_nas.dir/evolution.cpp.o" "gcc" "src/nas/CMakeFiles/anb_nas.dir/evolution.cpp.o.d"
  "/root/repo/src/nas/nsga2.cpp" "src/nas/CMakeFiles/anb_nas.dir/nsga2.cpp.o" "gcc" "src/nas/CMakeFiles/anb_nas.dir/nsga2.cpp.o.d"
  "/root/repo/src/nas/optimizer.cpp" "src/nas/CMakeFiles/anb_nas.dir/optimizer.cpp.o" "gcc" "src/nas/CMakeFiles/anb_nas.dir/optimizer.cpp.o.d"
  "/root/repo/src/nas/random_search.cpp" "src/nas/CMakeFiles/anb_nas.dir/random_search.cpp.o" "gcc" "src/nas/CMakeFiles/anb_nas.dir/random_search.cpp.o.d"
  "/root/repo/src/nas/reinforce.cpp" "src/nas/CMakeFiles/anb_nas.dir/reinforce.cpp.o" "gcc" "src/nas/CMakeFiles/anb_nas.dir/reinforce.cpp.o.d"
  "/root/repo/src/nas/successive_halving.cpp" "src/nas/CMakeFiles/anb_nas.dir/successive_halving.cpp.o" "gcc" "src/nas/CMakeFiles/anb_nas.dir/successive_halving.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/searchspace/CMakeFiles/anb_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
