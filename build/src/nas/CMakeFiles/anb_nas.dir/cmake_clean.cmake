file(REMOVE_RECURSE
  "CMakeFiles/anb_nas.dir/evolution.cpp.o"
  "CMakeFiles/anb_nas.dir/evolution.cpp.o.d"
  "CMakeFiles/anb_nas.dir/nsga2.cpp.o"
  "CMakeFiles/anb_nas.dir/nsga2.cpp.o.d"
  "CMakeFiles/anb_nas.dir/optimizer.cpp.o"
  "CMakeFiles/anb_nas.dir/optimizer.cpp.o.d"
  "CMakeFiles/anb_nas.dir/random_search.cpp.o"
  "CMakeFiles/anb_nas.dir/random_search.cpp.o.d"
  "CMakeFiles/anb_nas.dir/reinforce.cpp.o"
  "CMakeFiles/anb_nas.dir/reinforce.cpp.o.d"
  "CMakeFiles/anb_nas.dir/successive_halving.cpp.o"
  "CMakeFiles/anb_nas.dir/successive_halving.cpp.o.d"
  "libanb_nas.a"
  "libanb_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
