# Empty dependencies file for anb_nas.
# This may be replaced when dependencies are built.
