file(REMOVE_RECURSE
  "libanb_nas.a"
)
