file(REMOVE_RECURSE
  "CMakeFiles/anb_core.dir/benchmark.cpp.o"
  "CMakeFiles/anb_core.dir/benchmark.cpp.o.d"
  "CMakeFiles/anb_core.dir/collection.cpp.o"
  "CMakeFiles/anb_core.dir/collection.cpp.o.d"
  "CMakeFiles/anb_core.dir/harness.cpp.o"
  "CMakeFiles/anb_core.dir/harness.cpp.o.d"
  "CMakeFiles/anb_core.dir/pipeline.cpp.o"
  "CMakeFiles/anb_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/anb_core.dir/proxy_search.cpp.o"
  "CMakeFiles/anb_core.dir/proxy_search.cpp.o.d"
  "CMakeFiles/anb_core.dir/tuning.cpp.o"
  "CMakeFiles/anb_core.dir/tuning.cpp.o.d"
  "libanb_core.a"
  "libanb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
