# Empty compiler generated dependencies file for anb_core.
# This may be replaced when dependencies are built.
