file(REMOVE_RECURSE
  "libanb_core.a"
)
