# Empty dependencies file for anb_searchspace.
# This may be replaced when dependencies are built.
