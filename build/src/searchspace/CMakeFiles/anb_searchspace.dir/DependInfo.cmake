
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/searchspace/architecture.cpp" "src/searchspace/CMakeFiles/anb_searchspace.dir/architecture.cpp.o" "gcc" "src/searchspace/CMakeFiles/anb_searchspace.dir/architecture.cpp.o.d"
  "/root/repo/src/searchspace/space.cpp" "src/searchspace/CMakeFiles/anb_searchspace.dir/space.cpp.o" "gcc" "src/searchspace/CMakeFiles/anb_searchspace.dir/space.cpp.o.d"
  "/root/repo/src/searchspace/zoo.cpp" "src/searchspace/CMakeFiles/anb_searchspace.dir/zoo.cpp.o" "gcc" "src/searchspace/CMakeFiles/anb_searchspace.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
