file(REMOVE_RECURSE
  "libanb_searchspace.a"
)
