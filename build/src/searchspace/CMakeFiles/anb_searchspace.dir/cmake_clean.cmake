file(REMOVE_RECURSE
  "CMakeFiles/anb_searchspace.dir/architecture.cpp.o"
  "CMakeFiles/anb_searchspace.dir/architecture.cpp.o.d"
  "CMakeFiles/anb_searchspace.dir/space.cpp.o"
  "CMakeFiles/anb_searchspace.dir/space.cpp.o.d"
  "CMakeFiles/anb_searchspace.dir/zoo.cpp.o"
  "CMakeFiles/anb_searchspace.dir/zoo.cpp.o.d"
  "libanb_searchspace.a"
  "libanb_searchspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_searchspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
