file(REMOVE_RECURSE
  "CMakeFiles/anb_fbnet.dir/fbnet_sim.cpp.o"
  "CMakeFiles/anb_fbnet.dir/fbnet_sim.cpp.o.d"
  "CMakeFiles/anb_fbnet.dir/fbnet_space.cpp.o"
  "CMakeFiles/anb_fbnet.dir/fbnet_space.cpp.o.d"
  "libanb_fbnet.a"
  "libanb_fbnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_fbnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
