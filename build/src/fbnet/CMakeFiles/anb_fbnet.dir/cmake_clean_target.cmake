file(REMOVE_RECURSE
  "libanb_fbnet.a"
)
