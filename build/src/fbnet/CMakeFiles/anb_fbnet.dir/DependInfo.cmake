
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fbnet/fbnet_sim.cpp" "src/fbnet/CMakeFiles/anb_fbnet.dir/fbnet_sim.cpp.o" "gcc" "src/fbnet/CMakeFiles/anb_fbnet.dir/fbnet_sim.cpp.o.d"
  "/root/repo/src/fbnet/fbnet_space.cpp" "src/fbnet/CMakeFiles/anb_fbnet.dir/fbnet_space.cpp.o" "gcc" "src/fbnet/CMakeFiles/anb_fbnet.dir/fbnet_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trainsim/CMakeFiles/anb_trainsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/anb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/anb_searchspace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
