# Empty compiler generated dependencies file for anb_fbnet.
# This may be replaced when dependencies are built.
