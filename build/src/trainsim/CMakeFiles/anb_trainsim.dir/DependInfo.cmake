
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trainsim/curve.cpp" "src/trainsim/CMakeFiles/anb_trainsim.dir/curve.cpp.o" "gcc" "src/trainsim/CMakeFiles/anb_trainsim.dir/curve.cpp.o.d"
  "/root/repo/src/trainsim/scheme.cpp" "src/trainsim/CMakeFiles/anb_trainsim.dir/scheme.cpp.o" "gcc" "src/trainsim/CMakeFiles/anb_trainsim.dir/scheme.cpp.o.d"
  "/root/repo/src/trainsim/simulator.cpp" "src/trainsim/CMakeFiles/anb_trainsim.dir/simulator.cpp.o" "gcc" "src/trainsim/CMakeFiles/anb_trainsim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/anb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/anb_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
