file(REMOVE_RECURSE
  "libanb_trainsim.a"
)
