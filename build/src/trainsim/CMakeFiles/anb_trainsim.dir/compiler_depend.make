# Empty compiler generated dependencies file for anb_trainsim.
# This may be replaced when dependencies are built.
