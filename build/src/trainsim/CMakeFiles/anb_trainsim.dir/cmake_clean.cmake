file(REMOVE_RECURSE
  "CMakeFiles/anb_trainsim.dir/curve.cpp.o"
  "CMakeFiles/anb_trainsim.dir/curve.cpp.o.d"
  "CMakeFiles/anb_trainsim.dir/scheme.cpp.o"
  "CMakeFiles/anb_trainsim.dir/scheme.cpp.o.d"
  "CMakeFiles/anb_trainsim.dir/simulator.cpp.o"
  "CMakeFiles/anb_trainsim.dir/simulator.cpp.o.d"
  "libanb_trainsim.a"
  "libanb_trainsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_trainsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
