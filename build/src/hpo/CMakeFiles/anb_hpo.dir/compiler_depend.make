# Empty compiler generated dependencies file for anb_hpo.
# This may be replaced when dependencies are built.
