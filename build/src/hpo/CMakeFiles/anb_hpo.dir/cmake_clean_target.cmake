file(REMOVE_RECURSE
  "libanb_hpo.a"
)
