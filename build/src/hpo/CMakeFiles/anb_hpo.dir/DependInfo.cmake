
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpo/configspace.cpp" "src/hpo/CMakeFiles/anb_hpo.dir/configspace.cpp.o" "gcc" "src/hpo/CMakeFiles/anb_hpo.dir/configspace.cpp.o.d"
  "/root/repo/src/hpo/optimizers.cpp" "src/hpo/CMakeFiles/anb_hpo.dir/optimizers.cpp.o" "gcc" "src/hpo/CMakeFiles/anb_hpo.dir/optimizers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/surrogate/CMakeFiles/anb_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
