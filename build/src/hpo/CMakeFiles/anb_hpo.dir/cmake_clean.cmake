file(REMOVE_RECURSE
  "CMakeFiles/anb_hpo.dir/configspace.cpp.o"
  "CMakeFiles/anb_hpo.dir/configspace.cpp.o.d"
  "CMakeFiles/anb_hpo.dir/optimizers.cpp.o"
  "CMakeFiles/anb_hpo.dir/optimizers.cpp.o.d"
  "libanb_hpo.a"
  "libanb_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
