# Empty dependencies file for anb_ir.
# This may be replaced when dependencies are built.
