file(REMOVE_RECURSE
  "libanb_ir.a"
)
