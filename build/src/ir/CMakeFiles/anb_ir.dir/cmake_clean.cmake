file(REMOVE_RECURSE
  "CMakeFiles/anb_ir.dir/builder.cpp.o"
  "CMakeFiles/anb_ir.dir/builder.cpp.o.d"
  "CMakeFiles/anb_ir.dir/model_ir.cpp.o"
  "CMakeFiles/anb_ir.dir/model_ir.cpp.o.d"
  "libanb_ir.a"
  "libanb_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
