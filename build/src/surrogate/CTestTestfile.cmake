# CMake generated Testfile for 
# Source directory: /root/repo/src/surrogate
# Build directory: /root/repo/build/src/surrogate
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
