
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surrogate/dataset.cpp" "src/surrogate/CMakeFiles/anb_surrogate.dir/dataset.cpp.o" "gcc" "src/surrogate/CMakeFiles/anb_surrogate.dir/dataset.cpp.o.d"
  "/root/repo/src/surrogate/ensemble.cpp" "src/surrogate/CMakeFiles/anb_surrogate.dir/ensemble.cpp.o" "gcc" "src/surrogate/CMakeFiles/anb_surrogate.dir/ensemble.cpp.o.d"
  "/root/repo/src/surrogate/gbdt.cpp" "src/surrogate/CMakeFiles/anb_surrogate.dir/gbdt.cpp.o" "gcc" "src/surrogate/CMakeFiles/anb_surrogate.dir/gbdt.cpp.o.d"
  "/root/repo/src/surrogate/hist_gbdt.cpp" "src/surrogate/CMakeFiles/anb_surrogate.dir/hist_gbdt.cpp.o" "gcc" "src/surrogate/CMakeFiles/anb_surrogate.dir/hist_gbdt.cpp.o.d"
  "/root/repo/src/surrogate/random_forest.cpp" "src/surrogate/CMakeFiles/anb_surrogate.dir/random_forest.cpp.o" "gcc" "src/surrogate/CMakeFiles/anb_surrogate.dir/random_forest.cpp.o.d"
  "/root/repo/src/surrogate/smo.cpp" "src/surrogate/CMakeFiles/anb_surrogate.dir/smo.cpp.o" "gcc" "src/surrogate/CMakeFiles/anb_surrogate.dir/smo.cpp.o.d"
  "/root/repo/src/surrogate/surrogate.cpp" "src/surrogate/CMakeFiles/anb_surrogate.dir/surrogate.cpp.o" "gcc" "src/surrogate/CMakeFiles/anb_surrogate.dir/surrogate.cpp.o.d"
  "/root/repo/src/surrogate/svr.cpp" "src/surrogate/CMakeFiles/anb_surrogate.dir/svr.cpp.o" "gcc" "src/surrogate/CMakeFiles/anb_surrogate.dir/svr.cpp.o.d"
  "/root/repo/src/surrogate/tree.cpp" "src/surrogate/CMakeFiles/anb_surrogate.dir/tree.cpp.o" "gcc" "src/surrogate/CMakeFiles/anb_surrogate.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
