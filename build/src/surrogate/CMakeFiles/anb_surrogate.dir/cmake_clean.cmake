file(REMOVE_RECURSE
  "CMakeFiles/anb_surrogate.dir/dataset.cpp.o"
  "CMakeFiles/anb_surrogate.dir/dataset.cpp.o.d"
  "CMakeFiles/anb_surrogate.dir/ensemble.cpp.o"
  "CMakeFiles/anb_surrogate.dir/ensemble.cpp.o.d"
  "CMakeFiles/anb_surrogate.dir/gbdt.cpp.o"
  "CMakeFiles/anb_surrogate.dir/gbdt.cpp.o.d"
  "CMakeFiles/anb_surrogate.dir/hist_gbdt.cpp.o"
  "CMakeFiles/anb_surrogate.dir/hist_gbdt.cpp.o.d"
  "CMakeFiles/anb_surrogate.dir/random_forest.cpp.o"
  "CMakeFiles/anb_surrogate.dir/random_forest.cpp.o.d"
  "CMakeFiles/anb_surrogate.dir/smo.cpp.o"
  "CMakeFiles/anb_surrogate.dir/smo.cpp.o.d"
  "CMakeFiles/anb_surrogate.dir/surrogate.cpp.o"
  "CMakeFiles/anb_surrogate.dir/surrogate.cpp.o.d"
  "CMakeFiles/anb_surrogate.dir/svr.cpp.o"
  "CMakeFiles/anb_surrogate.dir/svr.cpp.o.d"
  "CMakeFiles/anb_surrogate.dir/tree.cpp.o"
  "CMakeFiles/anb_surrogate.dir/tree.cpp.o.d"
  "libanb_surrogate.a"
  "libanb_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
