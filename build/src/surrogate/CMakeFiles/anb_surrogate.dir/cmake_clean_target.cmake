file(REMOVE_RECURSE
  "libanb_surrogate.a"
)
