# Empty dependencies file for anb_surrogate.
# This may be replaced when dependencies are built.
