file(REMOVE_RECURSE
  "libanb_hwsim.a"
)
