file(REMOVE_RECURSE
  "CMakeFiles/anb_hwsim.dir/device.cpp.o"
  "CMakeFiles/anb_hwsim.dir/device.cpp.o.d"
  "libanb_hwsim.a"
  "libanb_hwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
