# Empty dependencies file for anb_hwsim.
# This may be replaced when dependencies are built.
