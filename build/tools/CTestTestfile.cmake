# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(anbench_random "/root/repo/build/tools/anbench" "random" "--count" "3")
set_tests_properties(anbench_random PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(anbench_usage_error "/root/repo/build/tools/anbench" "bogus")
set_tests_properties(anbench_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
