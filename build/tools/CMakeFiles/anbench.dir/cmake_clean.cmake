file(REMOVE_RECURSE
  "CMakeFiles/anbench.dir/anbench.cpp.o"
  "CMakeFiles/anbench.dir/anbench.cpp.o.d"
  "anbench"
  "anbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
