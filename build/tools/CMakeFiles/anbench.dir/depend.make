# Empty dependencies file for anbench.
# This may be replaced when dependencies are built.
