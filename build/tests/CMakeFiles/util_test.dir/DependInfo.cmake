
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/util_test.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/json_test.cpp" "tests/CMakeFiles/util_test.dir/util/json_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/json_test.cpp.o.d"
  "/root/repo/tests/util/metrics_test.cpp" "tests/CMakeFiles/util_test.dir/util/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/metrics_test.cpp.o.d"
  "/root/repo/tests/util/parallel_test.cpp" "tests/CMakeFiles/util_test.dir/util/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/parallel_test.cpp.o.d"
  "/root/repo/tests/util/pareto_test.cpp" "tests/CMakeFiles/util_test.dir/util/pareto_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/pareto_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anb/CMakeFiles/anb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/anb_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/hpo/CMakeFiles/anb_hpo.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/anb_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/anb_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trainsim/CMakeFiles/anb_trainsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fbnet/CMakeFiles/anb_fbnet.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/anb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/anb_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
