file(REMOVE_RECURSE
  "CMakeFiles/hpo_test.dir/hpo/configspace_test.cpp.o"
  "CMakeFiles/hpo_test.dir/hpo/configspace_test.cpp.o.d"
  "CMakeFiles/hpo_test.dir/hpo/optimizers_test.cpp.o"
  "CMakeFiles/hpo_test.dir/hpo/optimizers_test.cpp.o.d"
  "hpo_test"
  "hpo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
