# Empty dependencies file for hpo_test.
# This may be replaced when dependencies are built.
