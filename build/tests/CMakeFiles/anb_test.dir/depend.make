# Empty dependencies file for anb_test.
# This may be replaced when dependencies are built.
