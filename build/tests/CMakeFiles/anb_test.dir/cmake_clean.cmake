file(REMOVE_RECURSE
  "CMakeFiles/anb_test.dir/anb/benchmark_test.cpp.o"
  "CMakeFiles/anb_test.dir/anb/benchmark_test.cpp.o.d"
  "CMakeFiles/anb_test.dir/anb/collection_test.cpp.o"
  "CMakeFiles/anb_test.dir/anb/collection_test.cpp.o.d"
  "CMakeFiles/anb_test.dir/anb/harness_test.cpp.o"
  "CMakeFiles/anb_test.dir/anb/harness_test.cpp.o.d"
  "CMakeFiles/anb_test.dir/anb/pipeline_test.cpp.o"
  "CMakeFiles/anb_test.dir/anb/pipeline_test.cpp.o.d"
  "CMakeFiles/anb_test.dir/anb/proxy_search_test.cpp.o"
  "CMakeFiles/anb_test.dir/anb/proxy_search_test.cpp.o.d"
  "CMakeFiles/anb_test.dir/anb/tuning_test.cpp.o"
  "CMakeFiles/anb_test.dir/anb/tuning_test.cpp.o.d"
  "anb_test"
  "anb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
