# Empty dependencies file for searchspace_test.
# This may be replaced when dependencies are built.
