file(REMOVE_RECURSE
  "CMakeFiles/searchspace_test.dir/searchspace/architecture_test.cpp.o"
  "CMakeFiles/searchspace_test.dir/searchspace/architecture_test.cpp.o.d"
  "CMakeFiles/searchspace_test.dir/searchspace/space_test.cpp.o"
  "CMakeFiles/searchspace_test.dir/searchspace/space_test.cpp.o.d"
  "CMakeFiles/searchspace_test.dir/searchspace/zoo_test.cpp.o"
  "CMakeFiles/searchspace_test.dir/searchspace/zoo_test.cpp.o.d"
  "searchspace_test"
  "searchspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/searchspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
