file(REMOVE_RECURSE
  "CMakeFiles/trainsim_test.dir/trainsim/scheme_test.cpp.o"
  "CMakeFiles/trainsim_test.dir/trainsim/scheme_test.cpp.o.d"
  "CMakeFiles/trainsim_test.dir/trainsim/simulator_test.cpp.o"
  "CMakeFiles/trainsim_test.dir/trainsim/simulator_test.cpp.o.d"
  "trainsim_test"
  "trainsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
