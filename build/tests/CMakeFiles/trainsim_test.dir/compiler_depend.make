# Empty compiler generated dependencies file for trainsim_test.
# This may be replaced when dependencies are built.
