file(REMOVE_RECURSE
  "CMakeFiles/fbnet_test.dir/fbnet/fbnet_sim_test.cpp.o"
  "CMakeFiles/fbnet_test.dir/fbnet/fbnet_sim_test.cpp.o.d"
  "CMakeFiles/fbnet_test.dir/fbnet/fbnet_space_test.cpp.o"
  "CMakeFiles/fbnet_test.dir/fbnet/fbnet_space_test.cpp.o.d"
  "fbnet_test"
  "fbnet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
