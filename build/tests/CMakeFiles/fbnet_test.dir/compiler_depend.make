# Empty compiler generated dependencies file for fbnet_test.
# This may be replaced when dependencies are built.
