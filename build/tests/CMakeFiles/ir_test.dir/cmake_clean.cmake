file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/ir/model_ir_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/model_ir_test.cpp.o.d"
  "ir_test"
  "ir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
