file(REMOVE_RECURSE
  "CMakeFiles/nas_test.dir/nas/nsga2_test.cpp.o"
  "CMakeFiles/nas_test.dir/nas/nsga2_test.cpp.o.d"
  "CMakeFiles/nas_test.dir/nas/optimizers_test.cpp.o"
  "CMakeFiles/nas_test.dir/nas/optimizers_test.cpp.o.d"
  "CMakeFiles/nas_test.dir/nas/successive_halving_test.cpp.o"
  "CMakeFiles/nas_test.dir/nas/successive_halving_test.cpp.o.d"
  "nas_test"
  "nas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
