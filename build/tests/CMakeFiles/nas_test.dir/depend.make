# Empty dependencies file for nas_test.
# This may be replaced when dependencies are built.
