# Empty dependencies file for surrogate_test.
# This may be replaced when dependencies are built.
