
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/surrogate/dataset_test.cpp" "tests/CMakeFiles/surrogate_test.dir/surrogate/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/surrogate_test.dir/surrogate/dataset_test.cpp.o.d"
  "/root/repo/tests/surrogate/ensemble_test.cpp" "tests/CMakeFiles/surrogate_test.dir/surrogate/ensemble_test.cpp.o" "gcc" "tests/CMakeFiles/surrogate_test.dir/surrogate/ensemble_test.cpp.o.d"
  "/root/repo/tests/surrogate/gbdt_test.cpp" "tests/CMakeFiles/surrogate_test.dir/surrogate/gbdt_test.cpp.o" "gcc" "tests/CMakeFiles/surrogate_test.dir/surrogate/gbdt_test.cpp.o.d"
  "/root/repo/tests/surrogate/hist_gbdt_test.cpp" "tests/CMakeFiles/surrogate_test.dir/surrogate/hist_gbdt_test.cpp.o" "gcc" "tests/CMakeFiles/surrogate_test.dir/surrogate/hist_gbdt_test.cpp.o.d"
  "/root/repo/tests/surrogate/random_forest_test.cpp" "tests/CMakeFiles/surrogate_test.dir/surrogate/random_forest_test.cpp.o" "gcc" "tests/CMakeFiles/surrogate_test.dir/surrogate/random_forest_test.cpp.o.d"
  "/root/repo/tests/surrogate/serialization_test.cpp" "tests/CMakeFiles/surrogate_test.dir/surrogate/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/surrogate_test.dir/surrogate/serialization_test.cpp.o.d"
  "/root/repo/tests/surrogate/smo_test.cpp" "tests/CMakeFiles/surrogate_test.dir/surrogate/smo_test.cpp.o" "gcc" "tests/CMakeFiles/surrogate_test.dir/surrogate/smo_test.cpp.o.d"
  "/root/repo/tests/surrogate/svr_test.cpp" "tests/CMakeFiles/surrogate_test.dir/surrogate/svr_test.cpp.o" "gcc" "tests/CMakeFiles/surrogate_test.dir/surrogate/svr_test.cpp.o.d"
  "/root/repo/tests/surrogate/tree_test.cpp" "tests/CMakeFiles/surrogate_test.dir/surrogate/tree_test.cpp.o" "gcc" "tests/CMakeFiles/surrogate_test.dir/surrogate/tree_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anb/CMakeFiles/anb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/anb_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/hpo/CMakeFiles/anb_hpo.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/anb_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/anb_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trainsim/CMakeFiles/anb_trainsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fbnet/CMakeFiles/anb_fbnet.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/anb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/anb_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
