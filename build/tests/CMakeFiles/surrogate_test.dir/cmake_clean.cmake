file(REMOVE_RECURSE
  "CMakeFiles/surrogate_test.dir/surrogate/dataset_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate/dataset_test.cpp.o.d"
  "CMakeFiles/surrogate_test.dir/surrogate/ensemble_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate/ensemble_test.cpp.o.d"
  "CMakeFiles/surrogate_test.dir/surrogate/gbdt_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate/gbdt_test.cpp.o.d"
  "CMakeFiles/surrogate_test.dir/surrogate/hist_gbdt_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate/hist_gbdt_test.cpp.o.d"
  "CMakeFiles/surrogate_test.dir/surrogate/random_forest_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate/random_forest_test.cpp.o.d"
  "CMakeFiles/surrogate_test.dir/surrogate/serialization_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate/serialization_test.cpp.o.d"
  "CMakeFiles/surrogate_test.dir/surrogate/smo_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate/smo_test.cpp.o.d"
  "CMakeFiles/surrogate_test.dir/surrogate/svr_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate/svr_test.cpp.o.d"
  "CMakeFiles/surrogate_test.dir/surrogate/tree_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate/tree_test.cpp.o.d"
  "surrogate_test"
  "surrogate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surrogate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
