# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(searchspace_test "/root/repo/build/tests/searchspace_test")
set_tests_properties(searchspace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_test "/root/repo/build/tests/ir_test")
set_tests_properties(ir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;25;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fbnet_test "/root/repo/build/tests/fbnet_test")
set_tests_properties(fbnet_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;28;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trainsim_test "/root/repo/build/tests/trainsim_test")
set_tests_properties(trainsim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;32;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hwsim_test "/root/repo/build/tests/hwsim_test")
set_tests_properties(hwsim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;36;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(surrogate_test "/root/repo/build/tests/surrogate_test")
set_tests_properties(surrogate_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;41;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hpo_test "/root/repo/build/tests/hpo_test")
set_tests_properties(hpo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;52;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nas_test "/root/repo/build/tests/nas_test")
set_tests_properties(nas_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;56;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(anb_test "/root/repo/build/tests/anb_test")
set_tests_properties(anb_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;61;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;69;anb_add_test;/root/repo/tests/CMakeLists.txt;0;")
