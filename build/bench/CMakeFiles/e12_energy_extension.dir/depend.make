# Empty dependencies file for e12_energy_extension.
# This may be replaced when dependencies are built.
