file(REMOVE_RECURSE
  "CMakeFiles/e12_energy_extension.dir/e12_energy_extension.cpp.o"
  "CMakeFiles/e12_energy_extension.dir/e12_energy_extension.cpp.o.d"
  "e12_energy_extension"
  "e12_energy_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_energy_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
