# Empty compiler generated dependencies file for e9_ablation_tspec.
# This may be replaced when dependencies are built.
