file(REMOVE_RECURSE
  "CMakeFiles/e9_ablation_tspec.dir/e9_ablation_tspec.cpp.o"
  "CMakeFiles/e9_ablation_tspec.dir/e9_ablation_tspec.cpp.o.d"
  "e9_ablation_tspec"
  "e9_ablation_tspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_ablation_tspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
