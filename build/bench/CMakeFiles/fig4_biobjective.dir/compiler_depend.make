# Empty compiler generated dependencies file for fig4_biobjective.
# This may be replaced when dependencies are built.
