file(REMOVE_RECURSE
  "CMakeFiles/fig4_biobjective.dir/fig4_biobjective.cpp.o"
  "CMakeFiles/fig4_biobjective.dir/fig4_biobjective.cpp.o.d"
  "fig4_biobjective"
  "fig4_biobjective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_biobjective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
