file(REMOVE_RECURSE
  "CMakeFiles/fig5_trajectories.dir/fig5_trajectories.cpp.o"
  "CMakeFiles/fig5_trajectories.dir/fig5_trajectories.cpp.o.d"
  "fig5_trajectories"
  "fig5_trajectories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_trajectories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
