# Empty dependencies file for fig5_trajectories.
# This may be replaced when dependencies are built.
