file(REMOVE_RECURSE
  "CMakeFiles/fig3_proxy_validation.dir/fig3_proxy_validation.cpp.o"
  "CMakeFiles/fig3_proxy_validation.dir/fig3_proxy_validation.cpp.o.d"
  "fig3_proxy_validation"
  "fig3_proxy_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_proxy_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
