# Empty compiler generated dependencies file for fig3_proxy_validation.
# This may be replaced when dependencies are built.
