file(REMOVE_RECURSE
  "CMakeFiles/table2_perf_surrogates.dir/table2_perf_surrogates.cpp.o"
  "CMakeFiles/table2_perf_surrogates.dir/table2_perf_surrogates.cpp.o.d"
  "table2_perf_surrogates"
  "table2_perf_surrogates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_perf_surrogates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
