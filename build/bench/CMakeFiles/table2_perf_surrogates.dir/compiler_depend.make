# Empty compiler generated dependencies file for table2_perf_surrogates.
# This may be replaced when dependencies are built.
