# Empty compiler generated dependencies file for e14_sh_vs_benchmark.
# This may be replaced when dependencies are built.
