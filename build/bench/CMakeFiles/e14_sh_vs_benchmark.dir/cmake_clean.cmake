file(REMOVE_RECURSE
  "CMakeFiles/e14_sh_vs_benchmark.dir/e14_sh_vs_benchmark.cpp.o"
  "CMakeFiles/e14_sh_vs_benchmark.dir/e14_sh_vs_benchmark.cpp.o.d"
  "e14_sh_vs_benchmark"
  "e14_sh_vs_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_sh_vs_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
