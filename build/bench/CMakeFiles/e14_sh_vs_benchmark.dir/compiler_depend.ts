# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e14_sh_vs_benchmark.
