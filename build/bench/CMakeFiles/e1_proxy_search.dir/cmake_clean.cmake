file(REMOVE_RECURSE
  "CMakeFiles/e1_proxy_search.dir/e1_proxy_search.cpp.o"
  "CMakeFiles/e1_proxy_search.dir/e1_proxy_search.cpp.o.d"
  "e1_proxy_search"
  "e1_proxy_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_proxy_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
