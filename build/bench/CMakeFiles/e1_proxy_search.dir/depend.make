# Empty dependencies file for e1_proxy_search.
# This may be replaced when dependencies are built.
