# Empty compiler generated dependencies file for table1_acc_surrogates.
# This may be replaced when dependencies are built.
