file(REMOVE_RECURSE
  "CMakeFiles/table1_acc_surrogates.dir/table1_acc_surrogates.cpp.o"
  "CMakeFiles/table1_acc_surrogates.dir/table1_acc_surrogates.cpp.o.d"
  "table1_acc_surrogates"
  "table1_acc_surrogates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_acc_surrogates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
