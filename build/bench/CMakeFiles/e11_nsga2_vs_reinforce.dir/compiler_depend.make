# Empty compiler generated dependencies file for e11_nsga2_vs_reinforce.
# This may be replaced when dependencies are built.
