# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e11_nsga2_vs_reinforce.
