file(REMOVE_RECURSE
  "CMakeFiles/e11_nsga2_vs_reinforce.dir/e11_nsga2_vs_reinforce.cpp.o"
  "CMakeFiles/e11_nsga2_vs_reinforce.dir/e11_nsga2_vs_reinforce.cpp.o.d"
  "e11_nsga2_vs_reinforce"
  "e11_nsga2_vs_reinforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_nsga2_vs_reinforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
