file(REMOVE_RECURSE
  "CMakeFiles/micro_query_latency.dir/micro_query_latency.cpp.o"
  "CMakeFiles/micro_query_latency.dir/micro_query_latency.cpp.o.d"
  "micro_query_latency"
  "micro_query_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_query_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
