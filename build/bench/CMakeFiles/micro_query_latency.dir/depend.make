# Empty dependencies file for micro_query_latency.
# This may be replaced when dependencies are built.
