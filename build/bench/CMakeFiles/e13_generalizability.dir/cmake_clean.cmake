file(REMOVE_RECURSE
  "CMakeFiles/e13_generalizability.dir/e13_generalizability.cpp.o"
  "CMakeFiles/e13_generalizability.dir/e13_generalizability.cpp.o.d"
  "e13_generalizability"
  "e13_generalizability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_generalizability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
