# Empty dependencies file for e13_generalizability.
# This may be replaced when dependencies are built.
