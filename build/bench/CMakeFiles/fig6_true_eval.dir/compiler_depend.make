# Empty compiler generated dependencies file for fig6_true_eval.
# This may be replaced when dependencies are built.
