file(REMOVE_RECURSE
  "CMakeFiles/fig6_true_eval.dir/fig6_true_eval.cpp.o"
  "CMakeFiles/fig6_true_eval.dir/fig6_true_eval.cpp.o.d"
  "fig6_true_eval"
  "fig6_true_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_true_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
