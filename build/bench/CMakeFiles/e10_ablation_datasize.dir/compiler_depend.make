# Empty compiler generated dependencies file for e10_ablation_datasize.
# This may be replaced when dependencies are built.
