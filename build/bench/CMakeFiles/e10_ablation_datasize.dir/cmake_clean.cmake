file(REMOVE_RECURSE
  "CMakeFiles/e10_ablation_datasize.dir/e10_ablation_datasize.cpp.o"
  "CMakeFiles/e10_ablation_datasize.dir/e10_ablation_datasize.cpp.o.d"
  "e10_ablation_datasize"
  "e10_ablation_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_ablation_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
