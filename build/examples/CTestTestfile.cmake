# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_build_benchmark "/root/repo/build/examples/build_benchmark" "--fast")
set_tests_properties(example_build_benchmark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_search_edge_fpga "/root/repo/build/examples/search_edge_fpga")
set_tests_properties(example_search_edge_fpga PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_optimizers "/root/repo/build/examples/compare_optimizers")
set_tests_properties(example_compare_optimizers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
