file(REMOVE_RECURSE
  "CMakeFiles/search_edge_fpga.dir/search_edge_fpga.cpp.o"
  "CMakeFiles/search_edge_fpga.dir/search_edge_fpga.cpp.o.d"
  "search_edge_fpga"
  "search_edge_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_edge_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
