# Empty compiler generated dependencies file for search_edge_fpga.
# This may be replaced when dependencies are built.
