file(REMOVE_RECURSE
  "CMakeFiles/build_benchmark.dir/build_benchmark.cpp.o"
  "CMakeFiles/build_benchmark.dir/build_benchmark.cpp.o.d"
  "build_benchmark"
  "build_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
