# Empty dependencies file for compare_optimizers.
# This may be replaced when dependencies are built.
