file(REMOVE_RECURSE
  "CMakeFiles/compare_optimizers.dir/compare_optimizers.cpp.o"
  "CMakeFiles/compare_optimizers.dir/compare_optimizers.cpp.o.d"
  "compare_optimizers"
  "compare_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
