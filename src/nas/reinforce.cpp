#include "anb/nas/reinforce.hpp"

#include <algorithm>
#include <cmath>

#include "anb/util/error.hpp"

namespace anb {

Reinforce::Reinforce(ReinforceParams params, const SearchSpace& space)
    : NasOptimizer(space), params_(params) {
  ANB_CHECK(params_.learning_rate > 0.0, "Reinforce: learning_rate must be > 0");
  ANB_CHECK(params_.baseline_decay >= 0.0 && params_.baseline_decay < 1.0,
            "Reinforce: baseline_decay must be in [0, 1)");
  ANB_CHECK(params_.entropy_coef >= 0.0,
            "Reinforce: entropy_coef must be >= 0");
}

SearchTrajectory Reinforce::run(const EvalOracle& oracle, int n_evals,
                                Rng& rng) {
  ANB_CHECK(static_cast<bool>(oracle), "Reinforce: missing oracle");
  ANB_CHECK(n_evals >= 1, "Reinforce: n_evals must be >= 1");

  const auto& sizes = space().decision_sizes();
  const auto num_decisions = sizes.size();
  // Per-decision logits, initialized uniform.
  std::vector<std::vector<double>> logits(num_decisions);
  for (std::size_t d = 0; d < num_decisions; ++d)
    logits[d].assign(static_cast<std::size_t>(sizes[d]), 0.0);

  auto softmax = [](const std::vector<double>& l) {
    std::vector<double> p(l.size());
    const double mx = *std::max_element(l.begin(), l.end());
    double z = 0.0;
    for (std::size_t k = 0; k < l.size(); ++k) {
      p[k] = std::exp(l[k] - mx);
      z += p[k];
    }
    for (double& v : p) v /= z;
    return p;
  };

  SearchTrajectory traj;
  double baseline = 0.0;
  bool baseline_set = false;
  // Scale-free updates: advantages are normalized by a running mean absolute
  // advantage, so the same learning rate works for rewards in [0,1] accuracy
  // units and in raw img/s reward units.
  double adv_scale = 0.0;

  std::vector<int> decisions(num_decisions);
  for (int t = 0; t < n_evals; ++t) {
    // Sample an architecture from the factorized policy.
    std::vector<std::vector<double>> probs(num_decisions);
    for (std::size_t d = 0; d < num_decisions; ++d) {
      probs[d] = softmax(logits[d]);
      decisions[d] = static_cast<int>(rng.weighted_index(probs[d]));
    }
    const Arch arch = space().from_decisions(decisions);
    const double reward = oracle(arch);
    traj.add(arch, reward);

    if (!baseline_set) {
      baseline = reward;
      baseline_set = true;
    } else {
      baseline = params_.baseline_decay * baseline +
                 (1.0 - params_.baseline_decay) * reward;
    }
    double advantage = reward - baseline;
    adv_scale = adv_scale == 0.0
                    ? std::abs(advantage)
                    : 0.95 * adv_scale + 0.05 * std::abs(advantage);
    if (adv_scale > 1e-12) advantage /= adv_scale;
    advantage = std::clamp(advantage, -3.0, 3.0);

    // Score-function update with entropy bonus:
    //   dlogπ/dθ_dk = 1[k = chosen] − p_k
    //   dH/dθ_dk    = −p_k (log p_k + H_d)
    for (std::size_t d = 0; d < num_decisions; ++d) {
      const auto& p = probs[d];
      double entropy = 0.0;
      for (double pk : p)
        if (pk > 0) entropy -= pk * std::log(pk);
      for (std::size_t k = 0; k < p.size(); ++k) {
        const double indicator =
            static_cast<int>(k) == decisions[d] ? 1.0 : 0.0;
        double grad = advantage * (indicator - p[k]);
        if (p[k] > 0) {
          grad += params_.entropy_coef * (-p[k] * (std::log(p[k]) + entropy));
        }
        logits[d][k] += params_.learning_rate * grad;
      }
    }
    if (t + 1 == n_evals) {
      last_policy_ = std::move(probs);
    }
  }
  return traj;
}

double mnasnet_reward(double accuracy, double performance, double target,
                      double weight) {
  ANB_CHECK(performance > 0.0 && target > 0.0,
            "mnasnet_reward: performance and target must be positive");
  return accuracy * std::pow(performance / target, weight);
}

}  // namespace anb
