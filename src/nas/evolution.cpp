#include "anb/nas/evolution.hpp"

#include <cstddef>
#include <deque>
#include <vector>

#include "anb/util/error.hpp"

namespace anb {

RegularizedEvolution::RegularizedEvolution(RegularizedEvolutionParams params,
                                           const SearchSpace& space)
    : NasOptimizer(space), params_(params) {
  ANB_CHECK(params_.population_size >= 2,
            "RegularizedEvolution: population_size must be >= 2");
  ANB_CHECK(params_.sample_size >= 1 &&
                params_.sample_size <= params_.population_size,
            "RegularizedEvolution: sample_size must be in "
            "[1, population_size]");
}

SearchTrajectory RegularizedEvolution::run(const EvalOracle& oracle,
                                           int n_evals, Rng& rng) {
  ANB_CHECK(static_cast<bool>(oracle), "RegularizedEvolution: missing oracle");
  ANB_CHECK(n_evals >= 1, "RegularizedEvolution: n_evals must be >= 1");

  struct Member {
    Arch arch;
    double value;
  };
  std::deque<Member> population;
  SearchTrajectory traj;

  // Seed with random architectures (up to the evaluation budget).
  const int n_seed = std::min(params_.population_size, n_evals);
  for (int t = 0; t < n_seed; ++t) {
    const Arch arch = space().sample(rng);
    const double value = oracle(arch);
    traj.add(arch, value);
    population.push_back({arch, value});
  }

  for (int t = n_seed; t < n_evals; ++t) {
    // Tournament: best of `sample_size` random members becomes the parent.
    const Member* parent = nullptr;
    for (int s = 0; s < params_.sample_size; ++s) {
      const Member& candidate = population[rng.uniform_index(population.size())];
      if (parent == nullptr || candidate.value > parent->value)
        parent = &candidate;
    }
    const Arch child = space().mutate(parent->arch, rng);
    const double value = oracle(child);
    traj.add(child, value);
    population.push_back({child, value});
    population.pop_front();  // aging: retire the oldest member
  }
  return traj;
}

SearchTrajectory RegularizedEvolution::run_batched(
    const BatchEvalOracle& oracle, int n_evals, Rng& rng) {
  ANB_CHECK(static_cast<bool>(oracle), "RegularizedEvolution: missing oracle");
  ANB_CHECK(n_evals >= 1, "RegularizedEvolution: n_evals must be >= 1");

  struct Member {
    Arch arch;
    double value;
  };
  std::deque<Member> population;
  SearchTrajectory traj;

  // Seed population in one batched call. Sampling is hoisted ahead of
  // evaluation; seeds never depend on each other's scores and the oracle
  // consumes no RNG, so the sequence matches run() exactly.
  const int n_seed = std::min(params_.population_size, n_evals);
  std::vector<Arch> seeds;
  seeds.reserve(static_cast<std::size_t>(n_seed));
  for (int t = 0; t < n_seed; ++t) seeds.push_back(space().sample(rng));
  const std::vector<double> seed_values = oracle(seeds);
  ANB_CHECK(seed_values.size() == seeds.size(),
            "RegularizedEvolution: batched oracle returned wrong size");
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    traj.add(seeds[i], seed_values[i]);
    population.push_back({seeds[i], seed_values[i]});
  }

  // The evolution loop needs each child's score before the next tournament,
  // so it proceeds in batches of one.
  for (int t = n_seed; t < n_evals; ++t) {
    const Member* parent = nullptr;
    for (int s = 0; s < params_.sample_size; ++s) {
      const Member& candidate = population[rng.uniform_index(population.size())];
      if (parent == nullptr || candidate.value > parent->value)
        parent = &candidate;
    }
    const Arch child = space().mutate(parent->arch, rng);
    const std::vector<double> child_value = oracle({&child, 1});
    ANB_CHECK(child_value.size() == 1,
              "RegularizedEvolution: batched oracle returned wrong size");
    traj.add(child, child_value[0]);
    population.push_back({child, child_value[0]});
    population.pop_front();
  }
  return traj;
}

}  // namespace anb
