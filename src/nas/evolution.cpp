#include "anb/nas/evolution.hpp"

#include <deque>

#include "anb/util/error.hpp"

namespace anb {

RegularizedEvolution::RegularizedEvolution(RegularizedEvolutionParams params)
    : params_(params) {
  ANB_CHECK(params_.population_size >= 2,
            "RegularizedEvolution: population_size must be >= 2");
  ANB_CHECK(params_.sample_size >= 1 &&
                params_.sample_size <= params_.population_size,
            "RegularizedEvolution: sample_size must be in "
            "[1, population_size]");
}

SearchTrajectory RegularizedEvolution::run(const EvalOracle& oracle,
                                           int n_evals, Rng& rng) {
  ANB_CHECK(static_cast<bool>(oracle), "RegularizedEvolution: missing oracle");
  ANB_CHECK(n_evals >= 1, "RegularizedEvolution: n_evals must be >= 1");

  struct Member {
    Architecture arch;
    double value;
  };
  std::deque<Member> population;
  SearchTrajectory traj;

  // Seed with random architectures (up to the evaluation budget).
  const int n_seed = std::min(params_.population_size, n_evals);
  for (int t = 0; t < n_seed; ++t) {
    const Architecture arch = SearchSpace::sample(rng);
    const double value = oracle(arch);
    traj.add(arch, value);
    population.push_back({arch, value});
  }

  for (int t = n_seed; t < n_evals; ++t) {
    // Tournament: best of `sample_size` random members becomes the parent.
    const Member* parent = nullptr;
    for (int s = 0; s < params_.sample_size; ++s) {
      const Member& candidate = population[rng.uniform_index(population.size())];
      if (parent == nullptr || candidate.value > parent->value)
        parent = &candidate;
    }
    const Architecture child = SearchSpace::mutate(parent->arch, rng);
    const double value = oracle(child);
    traj.add(child, value);
    population.push_back({child, value});
    population.pop_front();  // aging: retire the oldest member
  }
  return traj;
}

}  // namespace anb
