#include "anb/nas/random_search.hpp"

#include <cstddef>
#include <vector>

#include "anb/util/error.hpp"

namespace anb {

SearchTrajectory RandomSearchNas::run(const EvalOracle& oracle, int n_evals,
                                      Rng& rng) {
  ANB_CHECK(static_cast<bool>(oracle), "RandomSearchNas: missing oracle");
  ANB_CHECK(n_evals >= 1, "RandomSearchNas: n_evals must be >= 1");
  SearchTrajectory traj;
  for (int t = 0; t < n_evals; ++t) {
    const Arch arch = space().sample(rng);
    traj.add(arch, oracle(arch));
  }
  return traj;
}

SearchTrajectory RandomSearchNas::run_batched(const BatchEvalOracle& oracle,
                                              int n_evals, Rng& rng) {
  ANB_CHECK(static_cast<bool>(oracle), "RandomSearchNas: missing oracle");
  ANB_CHECK(n_evals >= 1, "RandomSearchNas: n_evals must be >= 1");
  std::vector<Arch> archs;
  archs.reserve(static_cast<std::size_t>(n_evals));
  for (int t = 0; t < n_evals; ++t) archs.push_back(space().sample(rng));
  const std::vector<double> values = oracle(archs);
  ANB_CHECK(values.size() == archs.size(),
            "RandomSearchNas: batched oracle returned wrong size");
  SearchTrajectory traj;
  for (std::size_t i = 0; i < archs.size(); ++i)
    traj.add(archs[i], values[i]);
  return traj;
}

}  // namespace anb
