#include "anb/nas/random_search.hpp"

#include "anb/util/error.hpp"

namespace anb {

SearchTrajectory RandomSearchNas::run(const EvalOracle& oracle, int n_evals,
                                      Rng& rng) {
  ANB_CHECK(static_cast<bool>(oracle), "RandomSearchNas: missing oracle");
  ANB_CHECK(n_evals >= 1, "RandomSearchNas: n_evals must be >= 1");
  SearchTrajectory traj;
  for (int t = 0; t < n_evals; ++t) {
    const Architecture arch = SearchSpace::sample(rng);
    traj.add(arch, oracle(arch));
  }
  return traj;
}

}  // namespace anb
