#include "anb/nas/successive_halving.hpp"

#include <algorithm>

#include "anb/util/error.hpp"

namespace anb {

SuccessiveHalving::SuccessiveHalving(SuccessiveHalvingParams params,
                                     const SearchSpace& space)
    : params_(params), space_(&space) {
  ANB_CHECK(params_.initial_population >= 2,
            "SuccessiveHalving: initial_population must be >= 2");
  ANB_CHECK(params_.eta >= 2, "SuccessiveHalving: eta must be >= 2");
  ANB_CHECK(params_.min_epochs >= 1 &&
                params_.min_epochs <= params_.max_epochs,
            "SuccessiveHalving: require 1 <= min_epochs <= max_epochs");
}

SuccessiveHalvingResult SuccessiveHalving::run(const BudgetedOracle& oracle,
                                               Rng& rng) const {
  ANB_CHECK(static_cast<bool>(oracle), "SuccessiveHalving: missing oracle");

  struct Member {
    Arch arch;
    double accuracy = 0.0;
  };
  std::vector<Member> population;
  population.reserve(static_cast<std::size_t>(params_.initial_population));
  for (int i = 0; i < params_.initial_population; ++i)
    population.push_back({space_->sample(rng), 0.0});

  SuccessiveHalvingResult result;
  int epochs = params_.min_epochs;
  while (true) {
    ++result.rounds;
    for (auto& member : population) {
      const BudgetedEval eval = oracle(member.arch, epochs);
      member.accuracy = eval.accuracy;
      result.total_cost_hours += eval.cost_hours;
      result.evals.push_back({member.arch, eval.accuracy, epochs});
    }
    std::sort(population.begin(), population.end(),
              [](const Member& a, const Member& b) {
                return a.accuracy > b.accuracy;
              });

    const bool at_max_budget = epochs >= params_.max_epochs;
    if (population.size() == 1 || at_max_budget) break;

    const std::size_t keep = std::max<std::size_t>(
        1, population.size() / static_cast<std::size_t>(params_.eta));
    population.resize(keep);
    epochs = std::min(params_.max_epochs, epochs * params_.eta);
  }

  result.best = population.front().arch;
  result.best_accuracy = population.front().accuracy;
  return result;
}

SuccessiveHalvingResult SuccessiveHalving::run_batched(
    const BudgetedBatchOracle& oracle, Rng& rng) const {
  ANB_CHECK(static_cast<bool>(oracle), "SuccessiveHalving: missing oracle");

  struct Member {
    Arch arch;
    double accuracy = 0.0;
  };
  std::vector<Member> population;
  population.reserve(static_cast<std::size_t>(params_.initial_population));
  for (int i = 0; i < params_.initial_population; ++i)
    population.push_back({space_->sample(rng), 0.0});

  SuccessiveHalvingResult result;
  int epochs = params_.min_epochs;
  while (true) {
    ++result.rounds;
    // One batched call scores the whole round: every survivor's budget is
    // fixed before any of them is evaluated.
    std::vector<Arch> archs;
    archs.reserve(population.size());
    for (const auto& member : population) archs.push_back(member.arch);
    const std::vector<BudgetedEval> evals = oracle(archs, epochs);
    ANB_CHECK(evals.size() == population.size(),
              "SuccessiveHalving: batched oracle returned wrong size");
    for (std::size_t i = 0; i < population.size(); ++i) {
      population[i].accuracy = evals[i].accuracy;
      result.total_cost_hours += evals[i].cost_hours;
      result.evals.push_back({population[i].arch, evals[i].accuracy, epochs});
    }
    std::sort(population.begin(), population.end(),
              [](const Member& a, const Member& b) {
                return a.accuracy > b.accuracy;
              });

    const bool at_max_budget = epochs >= params_.max_epochs;
    if (population.size() == 1 || at_max_budget) break;

    const std::size_t keep = std::max<std::size_t>(
        1, population.size() / static_cast<std::size_t>(params_.eta));
    population.resize(keep);
    epochs = std::min(params_.max_epochs, epochs * params_.eta);
  }

  result.best = population.front().arch;
  result.best_accuracy = population.front().accuracy;
  return result;
}

}  // namespace anb
