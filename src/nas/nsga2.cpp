#include "anb/nas/nsga2.hpp"

#include <algorithm>
#include <limits>

#include "anb/util/error.hpp"
#include "anb/util/pareto.hpp"

namespace anb {

Nsga2::Nsga2(Nsga2Params params, const SearchSpace& space)
    : params_(params), space_(&space) {
  ANB_CHECK(params_.population_size >= 4,
            "Nsga2: population_size must be >= 4");
  ANB_CHECK(params_.crossover_prob >= 0.0 && params_.crossover_prob <= 1.0,
            "Nsga2: crossover_prob must be in [0, 1]");
  ANB_CHECK(params_.mutation_prob >= 0.0 && params_.mutation_prob <= 1.0,
            "Nsga2: mutation_prob must be in [0, 1]");
}

std::vector<int> Nsga2::non_dominated_ranks(std::span<const double> obj1,
                                            std::span<const double> obj2) {
  ANB_CHECK(obj1.size() == obj2.size(), "Nsga2: objective size mismatch");
  const std::size_t n = obj1.size();
  auto dominates = [&](std::size_t a, std::size_t b) {
    return obj1[a] >= obj1[b] && obj2[a] >= obj2[b] &&
           (obj1[a] > obj1[b] || obj2[a] > obj2[b]);
  };

  // Deb's fast non-dominated sort.
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<int> domination_count(n, 0);
  std::vector<int> rank(n, -1);
  std::vector<std::size_t> current;
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (dominates(p, q)) {
        dominated_by[p].push_back(q);
      } else if (dominates(q, p)) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) {
      rank[p] = 0;
      current.push_back(p);
    }
  }
  int level = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : current) {
      for (std::size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) {
          rank[q] = level + 1;
          next.push_back(q);
        }
      }
    }
    ++level;
    current = std::move(next);
  }
  return rank;
}

std::vector<double> Nsga2::crowding_distance(
    std::span<const double> obj1, std::span<const double> obj2,
    std::span<const std::size_t> front) {
  std::vector<double> distance(front.size(), 0.0);
  if (front.size() <= 2) {
    std::fill(distance.begin(), distance.end(),
              std::numeric_limits<double>::infinity());
    return distance;
  }
  for (const auto* obj : {&obj1, &obj2}) {
    std::vector<std::size_t> order(front.size());
    for (std::size_t i = 0; i < front.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return (*obj)[front[a]] < (*obj)[front[b]];
    });
    const double lo = (*obj)[front[order.front()]];
    const double hi = (*obj)[front[order.back()]];
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    if (hi <= lo) continue;  // degenerate: all equal on this objective
    for (std::size_t i = 1; i + 1 < order.size(); ++i) {
      distance[order[i]] += ((*obj)[front[order[i + 1]]] -
                             (*obj)[front[order[i - 1]]]) /
                            (hi - lo);
    }
  }
  return distance;
}

namespace {

struct Member {
  Arch arch;
  double obj1 = 0.0, obj2 = 0.0;
  int rank = 0;
  double crowding = 0.0;
};

/// (rank, crowding)-lexicographic "better" comparison.
bool crowded_less(const Member& a, const Member& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

/// One child via binary tournaments on (rank, crowding), uniform block
/// crossover and per-decision mutation. Shared by run() and run_batched()
/// so both consume the RNG in exactly the same order.
Arch make_child(const std::vector<Member>& population,
                const Nsga2Params& params, const SearchSpace& space,
                Rng& rng) {
  auto tournament = [&]() -> const Member& {
    const Member& a = population[rng.uniform_index(population.size())];
    const Member& b = population[rng.uniform_index(population.size())];
    return crowded_less(a, b) ? a : b;
  };
  const Member& p1 = tournament();
  const Member& p2 = tournament();

  Arch child = p1.arch;
  if (rng.bernoulli(params.crossover_prob)) {
    // Uniform group-wise crossover (whole blocks on MnasNet).
    for (const auto& [lo, hi] : space.crossover_groups()) {
      if (rng.bernoulli(0.5)) {
        for (int d = lo; d < hi; ++d)
          child.d[static_cast<std::size_t>(d)] =
              p2.arch.d[static_cast<std::size_t>(d)];
      }
    }
  }
  // Per-decision mutation.
  const auto& sizes = space.decision_sizes();
  for (std::size_t d = 0; d < static_cast<std::size_t>(child.n); ++d) {
    if (!rng.bernoulli(params.mutation_prob)) continue;
    const int size = sizes[d];
    child.d[d] = static_cast<std::int8_t>(
        (child.d[d] + 1 +
         static_cast<int>(rng.uniform_index(
             static_cast<std::uint64_t>(size - 1)))) %
        size);
  }
  space.validate(child);
  return child;
}

void assign_rank_and_crowding(std::vector<Member>& pop) {
  std::vector<double> o1, o2;
  o1.reserve(pop.size());
  o2.reserve(pop.size());
  for (const auto& m : pop) {
    o1.push_back(m.obj1);
    o2.push_back(m.obj2);
  }
  const auto ranks = Nsga2::non_dominated_ranks(o1, o2);
  for (std::size_t i = 0; i < pop.size(); ++i) pop[i].rank = ranks[i];

  const int max_rank = *std::max_element(ranks.begin(), ranks.end());
  for (int r = 0; r <= max_rank; ++r) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < pop.size(); ++i)
      if (ranks[i] == r) front.push_back(i);
    const auto crowding = Nsga2::crowding_distance(o1, o2, front);
    for (std::size_t k = 0; k < front.size(); ++k)
      pop[front[k]].crowding = crowding[k];
  }
}

}  // namespace

Nsga2Result Nsga2::run(const BiObjectiveOracle& oracle, int n_evals,
                       Rng& rng) const {
  ANB_CHECK(static_cast<bool>(oracle), "Nsga2: missing oracle");
  ANB_CHECK(n_evals >= params_.population_size,
            "Nsga2: n_evals must cover at least one population");

  Nsga2Result result;
  auto evaluate = [&](const Arch& arch) {
    const auto [o1, o2] = oracle(arch);
    result.archs.push_back(arch);
    result.obj1.push_back(o1);
    result.obj2.push_back(o2);
    Member m;
    m.arch = arch;
    m.obj1 = o1;
    m.obj2 = o2;
    return m;
  };

  std::vector<Member> population;
  for (int i = 0; i < params_.population_size; ++i)
    population.push_back(evaluate(space_->sample(rng)));
  assign_rank_and_crowding(population);

  int evals = params_.population_size;
  while (evals < n_evals) {
    // Offspring generation (one generation = up to population_size children,
    // truncated by the remaining budget).
    const int n_children =
        std::min(params_.population_size, n_evals - evals);
    std::vector<Member> children;
    for (int c = 0; c < n_children; ++c)
      children.push_back(
          evaluate(make_child(population, params_, *space_, rng)));
    evals += n_children;

    // Environmental selection over parents + children.
    population.insert(population.end(),
                      std::make_move_iterator(children.begin()),
                      std::make_move_iterator(children.end()));
    assign_rank_and_crowding(population);
    std::sort(population.begin(), population.end(), crowded_less);
    population.resize(static_cast<std::size_t>(params_.population_size));
  }

  result.front = pareto_front(result.obj1, result.obj2);
  return result;
}

Nsga2Result Nsga2::run_batched(const BiObjectiveBatchOracle& oracle,
                               int n_evals, Rng& rng) const {
  ANB_CHECK(static_cast<bool>(oracle), "Nsga2: missing oracle");
  ANB_CHECK(n_evals >= params_.population_size,
            "Nsga2: n_evals must cover at least one population");

  Nsga2Result result;
  auto evaluate_batch = [&](const std::vector<Arch>& archs) {
    const auto objs = oracle(archs);
    ANB_CHECK(objs.size() == archs.size(),
              "Nsga2: batched oracle returned wrong size");
    std::vector<Member> members;
    members.reserve(archs.size());
    for (std::size_t i = 0; i < archs.size(); ++i) {
      result.archs.push_back(archs[i]);
      result.obj1.push_back(objs[i].first);
      result.obj2.push_back(objs[i].second);
      Member m;
      m.arch = archs[i];
      m.obj1 = objs[i].first;
      m.obj2 = objs[i].second;
      members.push_back(std::move(m));
    }
    return members;
  };

  // Seed generation: sample everything, then score in one call.
  std::vector<Arch> seeds;
  seeds.reserve(static_cast<std::size_t>(params_.population_size));
  for (int i = 0; i < params_.population_size; ++i)
    seeds.push_back(space_->sample(rng));
  std::vector<Member> population = evaluate_batch(seeds);
  assign_rank_and_crowding(population);

  int evals = params_.population_size;
  while (evals < n_evals) {
    // Selection reads only the parent population's (rank, crowding), which
    // is fixed for the whole generation — so all children can be generated
    // before any of them is scored, and batching changes nothing.
    const int n_children = std::min(params_.population_size, n_evals - evals);
    std::vector<Arch> child_archs;
    child_archs.reserve(static_cast<std::size_t>(n_children));
    for (int c = 0; c < n_children; ++c)
      child_archs.push_back(make_child(population, params_, *space_, rng));
    std::vector<Member> children = evaluate_batch(child_archs);
    evals += n_children;

    population.insert(population.end(),
                      std::make_move_iterator(children.begin()),
                      std::make_move_iterator(children.end()));
    assign_rank_and_crowding(population);
    std::sort(population.begin(), population.end(), crowded_less);
    population.resize(static_cast<std::size_t>(params_.population_size));
  }

  result.front = pareto_front(result.obj1, result.obj2);
  return result;
}

}  // namespace anb
