#include "anb/nas/optimizer.hpp"

#include <limits>
#include <utility>

#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/error.hpp"

namespace anb {

void SearchTrajectory::add(const Arch& arch, double value) {
  archs.push_back(arch);
  values.push_back(value);
  const double prev =
      incumbent.empty() ? -std::numeric_limits<double>::infinity()
                        : incumbent.back();
  incumbent.push_back(std::max(prev, value));
}

Arch SearchTrajectory::best_arch() const {
  ANB_CHECK(!values.empty(), "SearchTrajectory: empty trajectory");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i)
    if (values[i] > values[best]) best = i;
  return archs[best];
}

double SearchTrajectory::best_value() const {
  ANB_CHECK(!incumbent.empty(), "SearchTrajectory: empty trajectory");
  return incumbent.back();
}

BatchEvalOracle batch_from_scalar(EvalOracle oracle) {
  ANB_CHECK(static_cast<bool>(oracle), "batch_from_scalar: missing oracle");
  return [oracle = std::move(oracle)](std::span<const Arch> archs) {
    std::vector<double> out;
    out.reserve(archs.size());
    for (const Arch& arch : archs) out.push_back(oracle(arch));
    return out;
  };
}

SearchOracle::SearchOracle(EvalOracle oracle) : scalar_(std::move(oracle)) {
  ANB_CHECK(static_cast<bool>(scalar_), "SearchOracle: missing scalar oracle");
}

SearchOracle::SearchOracle(BatchEvalOracle oracle)
    : batched_(std::move(oracle)) {
  ANB_CHECK(static_cast<bool>(batched_),
            "SearchOracle: missing batched oracle");
}

const EvalOracle& SearchOracle::scalar() const {
  ANB_CHECK(static_cast<bool>(scalar_),
            "SearchOracle: holds a batched oracle, not a scalar one");
  return scalar_;
}

const BatchEvalOracle& SearchOracle::batched() const {
  ANB_CHECK(static_cast<bool>(batched_),
            "SearchOracle: holds a scalar oracle, not a batched one");
  return batched_;
}

SearchTrajectory NasOptimizer::run(const SearchOracle& oracle, int n_evals,
                                   Rng& rng) {
  ANB_SPAN("anb.nas.run");
  obs::counter("anb.nas.run.count").add(1);
  obs::counter("anb.nas.run.evals")
      .add(n_evals > 0 ? static_cast<std::uint64_t>(n_evals) : 0);
  return oracle.is_batched() ? run_batched(oracle.batched(), n_evals, rng)
                             : run(oracle.scalar(), n_evals, rng);
}

SearchTrajectory NasOptimizer::run_batched(const BatchEvalOracle& oracle,
                                           int n_evals, Rng& rng) {
  ANB_CHECK(static_cast<bool>(oracle), "NasOptimizer: missing oracle");
  return run(
      [&oracle](const Arch& arch) {
        const std::vector<double> values = oracle({&arch, 1});
        ANB_CHECK(values.size() == 1,
                  "NasOptimizer: batched oracle returned wrong size");
        return values[0];
      },
      n_evals, rng);
}

}  // namespace anb
