#include "anb/nas/optimizer.hpp"

#include <limits>

#include "anb/util/error.hpp"

namespace anb {

void SearchTrajectory::add(const Architecture& arch, double value) {
  archs.push_back(arch);
  values.push_back(value);
  const double prev =
      incumbent.empty() ? -std::numeric_limits<double>::infinity()
                        : incumbent.back();
  incumbent.push_back(std::max(prev, value));
}

Architecture SearchTrajectory::best_arch() const {
  ANB_CHECK(!values.empty(), "SearchTrajectory: empty trajectory");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i)
    if (values[i] > values[best]) best = i;
  return archs[best];
}

double SearchTrajectory::best_value() const {
  ANB_CHECK(!incumbent.empty(), "SearchTrajectory: empty trajectory");
  return incumbent.back();
}

}  // namespace anb
