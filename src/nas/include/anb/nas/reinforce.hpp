#pragma once

#include <string>
#include <vector>

#include "anb/nas/optimizer.hpp"

namespace anb {

/// REINFORCE policy-gradient search (Zoph & Le [19]) over a factorized
/// decision space: an independent categorical softmax per decision (28
/// heads on MnasNet, 22 on FBNet — the heads come from the search space's
/// decision_sizes()). Updates use the
/// score-function estimator with an exponential-moving-average baseline and
/// an entropy bonus that decays exploration over time.
struct ReinforceParams {
  double learning_rate = 0.12;
  double baseline_decay = 0.9;   ///< EMA factor for the reward baseline
  double entropy_coef = 0.02;    ///< exploration bonus on policy entropy
};

class Reinforce final : public NasOptimizer {
 public:
  explicit Reinforce(ReinforceParams params = {},
                     const SearchSpace& space = MnasSpace::instance());

  std::string name() const override { return "REINFORCE"; }
  using NasOptimizer::run;
  SearchTrajectory run(const EvalOracle& oracle, int n_evals,
                       Rng& rng) override;

  /// Decision-probability snapshot after the last run (for inspection);
  /// probs[d][k] is the policy probability of option k at decision d.
  const std::vector<std::vector<double>>& last_policy() const {
    return last_policy_;
  }

 private:
  ReinforceParams params_;
  std::vector<std::vector<double>> last_policy_;
};

/// The MnasNet-style scalarization used for bi-objective search (§4.2):
/// reward = accuracy × (perf / target)^w. With perf = throughput (higher
/// better) use w > 0; sweeping `target` traces out the accuracy-performance
/// Pareto front. For latency (lower better) pass w < 0.
double mnasnet_reward(double accuracy, double performance, double target,
                      double weight);

}  // namespace anb
