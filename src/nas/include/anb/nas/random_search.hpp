#pragma once

#include <string>

#include "anb/nas/optimizer.hpp"

namespace anb {

/// Uniform random architecture sampling (Li & Talwalkar's reproducibility
/// baseline [10]). On the MnasNet space the paper observes it stagnating
/// early relative to RE/REINFORCE (Fig. 5) — high variance of model quality
/// makes exploration without exploitation inefficient.
class RandomSearchNas final : public NasOptimizer {
 public:
  using NasOptimizer::NasOptimizer;

  std::string name() const override { return "RS"; }
  using NasOptimizer::run;
  SearchTrajectory run(const EvalOracle& oracle, int n_evals,
                       Rng& rng) override;
  /// Samples never depend on evaluations, so the whole run is one batched
  /// oracle call. Sampling is hoisted ahead of evaluation; the oracle
  /// consumes no RNG, so the architecture sequence matches run() exactly.
  SearchTrajectory run_batched(const BatchEvalOracle& oracle, int n_evals,
                               Rng& rng) override;
};

}  // namespace anb
