#pragma once

#include <string>

#include "anb/nas/optimizer.hpp"

namespace anb {

/// Regularized (aging) evolution, Real et al. [13]: maintain a FIFO
/// population; each step tournament-samples `sample_size` members, mutates
/// the fittest by one decision, evaluates the child, and retires the oldest
/// member. Aging regularizes toward architectures that stay good when
/// re-discovered rather than one-off lucky evaluations.
struct RegularizedEvolutionParams {
  int population_size = 50;
  int sample_size = 10;  ///< tournament size
};

class RegularizedEvolution final : public NasOptimizer {
 public:
  explicit RegularizedEvolution(RegularizedEvolutionParams params = {},
                                const SearchSpace& space = MnasSpace::instance());

  std::string name() const override { return "RE"; }
  using NasOptimizer::run;
  SearchTrajectory run(const EvalOracle& oracle, int n_evals,
                       Rng& rng) override;
  /// The seed population is evaluated in one batched call (its samples
  /// never depend on each other's scores); the evolution loop is
  /// inherently sequential and proceeds in batches of one.
  SearchTrajectory run_batched(const BatchEvalOracle& oracle, int n_evals,
                               Rng& rng) override;

 private:
  RegularizedEvolutionParams params_;
};

}  // namespace anb
