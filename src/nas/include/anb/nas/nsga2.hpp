#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "anb/nas/optimizer.hpp"

namespace anb {

/// Bi-objective oracle: architecture -> (objective1, objective2), both
/// already oriented so that larger is better (negate latencies).
using BiObjectiveOracle =
    std::function<std::pair<double, double>(const Arch&)>;

/// Batched bi-objective oracle: scores a whole generation in one call;
/// element i corresponds to archs[i]. Same purity contract as
/// BatchEvalOracle: no RNG consumption, rows independent.
using BiObjectiveBatchOracle = std::function<
    std::vector<std::pair<double, double>>(std::span<const Arch>)>;

/// NSGA-II configuration.
struct Nsga2Params {
  int population_size = 40;
  double crossover_prob = 0.9;  ///< uniform block-wise crossover
  double mutation_prob = 0.15;  ///< per-decision mutation rate in offspring
};

/// Result of an NSGA-II run: every evaluation plus the final front.
struct Nsga2Result {
  std::vector<Arch> archs;          ///< all evaluated, in order
  std::vector<double> obj1;
  std::vector<double> obj2;
  std::vector<std::size_t> front;   ///< indices of the final non-dominated set
};

/// Deb et al.'s NSGA-II over any registered space: fast non-dominated
/// sorting + crowding distance selection, binary tournaments on
/// (rank, crowding), uniform group-wise crossover (the space's
/// crossover_groups — per block on MnasNet) and per-decision mutation.
///
/// This is the natural *true* multi-objective alternative to the paper's
/// scalarized REINFORCE sweep (§4.2); the bench/e11 ablation compares the
/// hypervolume of the fronts both approaches find at equal budget.
class Nsga2 {
 public:
  explicit Nsga2(Nsga2Params params = {},
                 const SearchSpace& space = MnasSpace::instance());

  /// The space this optimizer searches.
  const SearchSpace& space() const { return *space_; }

  /// Run for exactly `n_evals` oracle calls (population seeding included).
  Nsga2Result run(const BiObjectiveOracle& oracle, int n_evals, Rng& rng) const;

  /// Generational batching: selection only ever reads the *parent*
  /// population's ranks, so a whole generation of children is generated
  /// first (consuming the RNG in the same order as run()) and then scored
  /// in one oracle call. For any fixed seed the result is identical to
  /// run() with the equivalent scalar oracle.
  Nsga2Result run_batched(const BiObjectiveBatchOracle& oracle, int n_evals,
                          Rng& rng) const;

  /// Fast non-dominated sort: returns front index (0 = best) per point.
  static std::vector<int> non_dominated_ranks(std::span<const double> obj1,
                                              std::span<const double> obj2);

  /// Crowding distance within one front (infinity at the extremes).
  static std::vector<double> crowding_distance(
      std::span<const double> obj1, std::span<const double> obj2,
      std::span<const std::size_t> front);

 private:
  Nsga2Params params_;
  const SearchSpace* space_;
};

}  // namespace anb
