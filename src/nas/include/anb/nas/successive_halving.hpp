#pragma once

#include <functional>
#include <span>
#include <vector>

#include "anb/nas/optimizer.hpp"

namespace anb {

/// Budget-aware evaluation oracle: train `arch` for `epochs` and return
/// {observed accuracy, cost in GPU-hours}. Successive halving probes many
/// architectures cheaply and spends real budget only on survivors.
struct BudgetedEval {
  double accuracy = 0.0;
  double cost_hours = 0.0;
};
using BudgetedOracle = std::function<BudgetedEval(const Arch&, int epochs)>;

/// Batched variant: evaluate one round's whole surviving population at the
/// same epoch budget in a single call; element i corresponds to archs[i].
/// Same purity contract as BatchEvalOracle.
using BudgetedBatchOracle = std::function<std::vector<BudgetedEval>(
    std::span<const Arch>, int epochs)>;

/// Successive halving (the classic *training-proxy* method the paper cites
/// in §3.2: "successive halving and hyperband ... use the model's
/// early-stage performance as a proxy for true performance").
///
/// Round 0 trains `initial_population` random architectures for `min_epochs`
/// each; every subsequent round keeps the top 1/eta fraction and multiplies
/// the per-model epoch budget by eta, until `max_epochs` is reached or one
/// survivor remains.
struct SuccessiveHalvingParams {
  int initial_population = 27;
  int eta = 3;
  int min_epochs = 5;
  int max_epochs = 45;
};

struct SuccessiveHalvingResult {
  Arch best;
  double best_accuracy = 0.0;   ///< at the final (largest) budget
  double total_cost_hours = 0.0;
  int rounds = 0;
  /// All (arch, accuracy, epochs) evaluations in order.
  struct Eval {
    Arch arch;
    double accuracy;
    int epochs;
  };
  std::vector<Eval> evals;
};

class SuccessiveHalving {
 public:
  explicit SuccessiveHalving(SuccessiveHalvingParams params = {},
                             const SearchSpace& space = MnasSpace::instance());

  /// The space this optimizer searches.
  const SearchSpace& space() const { return *space_; }

  SuccessiveHalvingResult run(const BudgetedOracle& oracle, Rng& rng) const;

  /// Each round's survivors are known before any of them is scored, so a
  /// round is one batched oracle call. Identical result to run() for any
  /// fixed seed.
  SuccessiveHalvingResult run_batched(const BudgetedBatchOracle& oracle,
                                      Rng& rng) const;

 private:
  SuccessiveHalvingParams params_;
  const SearchSpace* space_;
};

}  // namespace anb
