#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "anb/searchspace/space.hpp"

namespace anb {

/// Scalar evaluation oracle: architecture -> objective (higher is better).
/// Backed either by the real training simulator ("true search") or by the
/// benchmark surrogates ("simulated search") — the comparison between those
/// two is the paper's Fig. 5. Genotypes are space-tagged, so one oracle
/// type serves every registered space.
using EvalOracle = std::function<double(const Arch&)>;

/// Batched evaluation oracle: scores a whole population in one call;
/// element i of the result corresponds to archs[i]. Implementations must
/// be pure functions of the architecture (no RNG consumption, element i
/// independent of the other rows) so that batching can never perturb a
/// seeded trajectory — AccelNASBench::query_accuracy_batch satisfies this
/// by construction (batched prediction is bit-identical to scalar).
using BatchEvalOracle =
    std::function<std::vector<double>(std::span<const Arch>)>;

/// Adapt a scalar oracle to the batched interface (evaluates row by row).
BatchEvalOracle batch_from_scalar(EvalOracle oracle);

/// A search objective holding either a scalar or a batched oracle, so
/// harnesses and benches can pass one value around without committing to a
/// dispatch path. NasOptimizer::run(const SearchOracle&, ...) routes a
/// scalar oracle through the virtual run() and a batched oracle through
/// run_batched() — previously every call site made that choice by hand.
class SearchOracle {
 public:
  /// Implicit by design: any call site with an existing oracle (or lambda)
  /// can pass it straight to the unified run().
  SearchOracle(EvalOracle oracle);             // NOLINT(google-explicit-constructor)
  SearchOracle(BatchEvalOracle oracle);        // NOLINT(google-explicit-constructor)

  bool is_batched() const { return static_cast<bool>(batched_); }
  /// The underlying oracle; throws anb::Error if it is the other kind.
  const EvalOracle& scalar() const;
  const BatchEvalOracle& batched() const;

 private:
  EvalOracle scalar_;
  BatchEvalOracle batched_;
};

/// Full record of one search run, in evaluation order.
struct SearchTrajectory {
  std::vector<Arch> archs;
  std::vector<double> values;
  std::vector<double> incumbent;  ///< running best value

  Arch best_arch() const;
  double best_value() const;
  void add(const Arch& arch, double value);
  std::size_t size() const { return values.size(); }
};

/// Common interface of the discrete NAS optimizers evaluated in the paper
/// (§4.1): Random Search, Regularized Evolution, REINFORCE.
///
/// Every optimizer searches one space, fixed at construction (defaulting
/// to MnasNet, the paper's space); sampling, mutation, and genotype
/// construction all route through that SearchSpace, so the same optimizer
/// instance code runs unchanged over any registered space.
class NasOptimizer {
 public:
  explicit NasOptimizer(const SearchSpace& space = MnasSpace::instance())
      : space_(&space) {}
  virtual ~NasOptimizer() = default;
  virtual std::string name() const = 0;
  /// The space this optimizer searches.
  const SearchSpace& space() const { return *space_; }
  /// Run for exactly `n_evals` oracle calls.
  virtual SearchTrajectory run(const EvalOracle& oracle, int n_evals,
                               Rng& rng) = 0;
  /// Run against a batched oracle, evaluating exactly `n_evals`
  /// architectures in total. The base implementation feeds batches of one
  /// through run(); optimizers with natural population structure override
  /// it to score whole populations per oracle call. Contract: for any
  /// fixed seed the trajectory is identical to run() with the equivalent
  /// scalar oracle (tests/nas/batched_determinism_test.cpp).
  virtual SearchTrajectory run_batched(const BatchEvalOracle& oracle,
                                       int n_evals, Rng& rng);
  /// Unified entry point: dispatches to run() or run_batched() according
  /// to which oracle the SearchOracle holds. Also the instrumented path —
  /// emits the "anb.nas.run" span and anb.nas.run.{count,evals} counters.
  SearchTrajectory run(const SearchOracle& oracle, int n_evals, Rng& rng);

 private:
  const SearchSpace* space_;
};

}  // namespace anb
