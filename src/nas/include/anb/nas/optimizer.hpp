#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "anb/searchspace/space.hpp"

namespace anb {

/// Scalar evaluation oracle: architecture -> objective (higher is better).
/// Backed either by the real training simulator ("true search") or by the
/// benchmark surrogates ("simulated search") — the comparison between those
/// two is the paper's Fig. 5.
using EvalOracle = std::function<double(const Architecture&)>;

/// Full record of one search run, in evaluation order.
struct SearchTrajectory {
  std::vector<Architecture> archs;
  std::vector<double> values;
  std::vector<double> incumbent;  ///< running best value

  Architecture best_arch() const;
  double best_value() const;
  void add(const Architecture& arch, double value);
  std::size_t size() const { return values.size(); }
};

/// Common interface of the discrete NAS optimizers evaluated in the paper
/// (§4.1): Random Search, Regularized Evolution, REINFORCE.
class NasOptimizer {
 public:
  virtual ~NasOptimizer() = default;
  virtual std::string name() const = 0;
  /// Run for exactly `n_evals` oracle calls.
  virtual SearchTrajectory run(const EvalOracle& oracle, int n_evals,
                               Rng& rng) = 0;
};

}  // namespace anb
