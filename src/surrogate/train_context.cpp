#include "anb/surrogate/train_context.hpp"

#include "anb/util/error.hpp"

namespace anb {

const ColumnIndex& TrainContext::columns() {
  MutexLock lock(mutex_);
  if (!columns_) columns_ = std::make_unique<const ColumnIndex>(*data_);
  return *columns_;
}

const BinnedMatrix& TrainContext::bins(int max_bins) {
  ANB_CHECK(max_bins >= 2 && max_bins <= 256,
            "TrainContext::bins: max_bins must be in [2, 256]");
  // Built under the lock: a concurrent fit requesting the same setting
  // waits instead of duplicating the (parallel_for-internal) build.
  MutexLock lock(mutex_);
  auto it = bins_.find(max_bins);
  if (it == bins_.end()) {
    it = bins_.emplace(max_bins,
                       std::make_unique<const BinnedMatrix>(*data_, max_bins))
             .first;
  }
  return *it->second;
}

}  // namespace anb
