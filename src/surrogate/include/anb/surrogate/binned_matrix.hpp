#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "anb/surrogate/dataset.hpp"
#include "anb/util/io.hpp"

namespace anb {

/// Pre-quantized feature matrix for histogram-based training (the
/// LightGBM-style "bin mapper + bin matrix" pair). Each feature column is
/// quantized once into at most `max_bins` quantile bins over its distinct
/// values, and every cell is stored as a column-major uint8 bin code so a
/// boosting round reads codes instead of re-running edge searches.
///
/// Built once per (dataset, max_bins) and shared across fits: HistGbdt
/// consumes the codes directly, and the tuning loop reuses one instance
/// across all SMAC trials with the same max_bins (see TrainContext).
/// Construction parallelizes over features; columns are independent, so
/// the result is identical for any thread count.
///
/// The same bin-edge idea powers the quantized/masked SIMD descent
/// engines at query time: because histogram splits snap to these edges,
/// a fitted forest's per-feature thresholds form a small ladder that
/// FlatForest re-derives as uint8 comparison codes — training bins here,
/// inference codes there, one losslessness argument (DESIGN.md "SIMD
/// descent").
class BinnedMatrix {
 public:
  /// Quantize `data`. `max_bins` must be in [2, 256] (codes fit uint8).
  BinnedMatrix(const Dataset& data, int max_bins);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_features() const { return num_features_; }
  int max_bins() const { return max_bins_; }

  /// Bins actually used by feature `f` (<= max_bins()).
  int num_bins(std::size_t f) const {
    return static_cast<int>(edges(f).size()) + 1;
  }

  /// Largest num_bins over all features — the histogram stride.
  int max_hist_bins() const { return max_hist_bins_; }

  /// Bin edges of feature `f`: value x falls in bin b iff
  /// edges[b-1] <= x < edges[b] (upper_bound semantics).
  std::span<const double> edges(std::size_t f) const;

  /// Split threshold separating bin `b` from bin `b+1` of feature `f`.
  double edge(std::size_t f, int b) const;

  /// Column `f` of the code matrix (num_rows() codes, contiguous).
  std::span<const std::uint8_t> codes(std::size_t f) const;

  /// Bin code of row `i`, feature `f`.
  std::uint8_t code(std::size_t i, std::size_t f) const {
    return codes_[f * num_rows_ + i];
  }

  /// Write as a standalone .anbb artifact (edges, offsets, and codes in
  /// their in-memory layout), so repeated tuning runs on the same dataset
  /// skip re-quantization. Throws anb::Error on IO failure.
  void save_binary(const std::string& path) const;

  /// Reload a save_binary() artifact. With MapMode::kMap the edge and code
  /// arrays are zero-copy views into a file mapping. Validates structure
  /// (offsets monotone, every code within its feature's bin count) and
  /// throws anb::Error on any corruption; the reloaded matrix is
  /// indistinguishable from the constructed one.
  static BinnedMatrix load_binary(const std::string& path, io::MapMode mode);

 private:
  BinnedMatrix() = default;  // load_binary scratch
  void validate() const;

  std::size_t num_rows_ = 0;
  std::size_t num_features_ = 0;
  int max_bins_ = 0;
  int max_hist_bins_ = 1;
  // Per-feature edge lists stored flat: feature f's edges occupy
  // edges_flat_[edge_offsets_[f] .. edge_offsets_[f+1]). ArrayRef so the
  // binary load path can view artifact sections in place.
  io::ArrayRef<double> edges_flat_;
  io::ArrayRef<std::uint64_t> edge_offsets_;  ///< d + 1 prefix offsets
  io::ArrayRef<std::uint8_t> codes_;          ///< column-major, d * n codes
};

}  // namespace anb
