#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/surrogate/surrogate.hpp"

namespace anb {

/// Ensemble of independently fitted base surrogates.
///
/// NASBench-301 argues that surrogate benchmarks should *model the noise* of
/// real training, not just its mean: an optimizer that exploits noiseless
/// queries behaves unrealistically. This wrapper fits `size` copies of a
/// base surrogate on bootstrap-perturbed data and offers
///   - predict():        ensemble mean (drop-in deterministic surrogate),
///   - predict_dist():   mean + ensemble standard deviation,
///   - sample():         a draw mean + std * z, emulating a noisy training
///                       run — the "noisy benchmark" query mode.
class EnsembleSurrogate final : public Surrogate {
 public:
  using Factory = std::function<std::unique_ptr<Surrogate>()>;

  /// `factory` creates unfitted base models; `size` >= 2.
  EnsembleSurrogate(Factory factory, int size, double bootstrap_frac = 0.9);

  /// Wrap already-fitted members (used by deserialization).
  explicit EnsembleSurrogate(std::vector<std::unique_ptr<Surrogate>> members);

  // Overriding fit(train, rng) would otherwise hide the base-class
  // context overload; re-export it (it falls back to the plain fit).
  using Surrogate::fit;
  void fit(const Dataset& train, Rng& rng) override;
  double predict(std::span<const double> x) const override;
  /// Batched ensemble mean: members' batched predictions accumulated in
  /// member order, matching the scalar predict_dist() mean bit for bit.
  void predict_batch(std::span<const double> rows, std::size_t num_features,
                     std::span<double> out) const override;
  std::string name() const override { return "ensemble"; }
  Json to_json() const override;
  Json to_binary(bin::Writer& w) const override;
  static std::unique_ptr<EnsembleSurrogate> from_json(const Json& j);
  static std::unique_ptr<EnsembleSurrogate> from_binary(const Json& meta,
                                                        const bin::Reader& r);

  /// Ensemble mean and standard deviation.
  std::pair<double, double> predict_dist(std::span<const double> x) const;

  /// One noisy draw ~ N(mean, std): emulates seed-to-seed training noise.
  double sample(std::span<const double> x, Rng& rng) const;

  std::size_t size() const { return members_.size(); }
  const Surrogate& member(std::size_t i) const;

 private:
  Factory factory_;
  int target_size_ = 0;
  double bootstrap_frac_ = 0.9;
  std::vector<std::unique_ptr<Surrogate>> members_;
};

}  // namespace anb
