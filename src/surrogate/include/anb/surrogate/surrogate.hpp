#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/surrogate/dataset.hpp"
#include "anb/util/json.hpp"

namespace anb::bin {
class Writer;
class Reader;
}  // namespace anb::bin

namespace anb {

class TrainContext;

/// Fit-quality metrics used throughout the paper (Tables 1 & 2).
struct FitMetrics {
  double r2 = 0.0;
  double kendall_tau = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
};

/// Common interface of all predictive models used to build the benchmark
/// (XGB-style boosting, LGB-style histogram boosting, random forests,
/// ε-SVR, ν-SVR). A surrogate maps an architecture feature vector to a
/// scalar (accuracy, throughput, or latency) in microseconds — this is what
/// makes benchmark queries "zero-cost".
class Surrogate {
 public:
  virtual ~Surrogate() = default;

  /// Fit on a training set. May be called again to refit from scratch.
  virtual void fit(const Dataset& train, Rng& rng) = 0;

  /// Fit reusing the shared per-dataset index structures in `ctx`
  /// (ColumnIndex, BinnedMatrix). `ctx.data()` must be `train`. Produces a
  /// model bit-identical to fit(train, rng) — the context only removes
  /// redundant preprocessing, it never changes the training computation.
  /// Families without precomputable structure (SVR) fall back to the plain
  /// fit; tree families override.
  virtual void fit(const Dataset& train, TrainContext& ctx, Rng& rng);

  /// Predict one example; requires fit() to have been called.
  virtual double predict(std::span<const double> x) const = 0;

  /// Short identifier ("xgb", "lgb", "rf", "esvr", "nusvr").
  virtual std::string name() const = 0;

  /// Serialize the fitted model (including hyperparameters).
  virtual Json to_json() const = 0;

  /// Serialize into a binary artifact: large arrays (forest nodes, support
  /// vectors) are appended to `w` as raw sections in their in-memory
  /// layout; the returned Json is the small meta record (type tag, params,
  /// section indices) that surrogate_from_binary() consumes. Predictions of
  /// the reloaded model are bit-identical to this model's.
  virtual Json to_binary(bin::Writer& w) const = 0;

  /// Predict a batch of rows: `rows` is a row-major matrix of
  /// out.size() rows by `num_features` columns; prediction for row i is
  /// written to out[i]. Runs on the calling thread.
  ///
  /// Contract: the output is bit-identical to calling predict() on each
  /// row (tests/surrogate/predict_batch_test.cpp). The base implementation
  /// is exactly that scalar loop; tree ensembles and SVR override it with
  /// vectorized paths (flattened-forest traversal, blocked kernel
  /// expansion) that preserve per-row operation order.
  virtual void predict_batch(std::span<const double> rows,
                             std::size_t num_features,
                             std::span<double> out) const;

  /// Batched prediction parallelized over row chunks with anb::parallel_for
  /// (chunking is a pure partition, so results are deterministic and equal
  /// to predict_batch / per-row predict). This is the serving hot path.
  void predict_matrix(std::span<const double> rows, std::size_t num_features,
                      std::span<double> out) const;

  /// Predict every row of a dataset (routed through predict_matrix).
  std::vector<double> predict_all(const Dataset& data) const;

  /// Evaluate on a labelled dataset.
  FitMetrics evaluate(const Dataset& data) const;
};

/// Reconstruct a fitted surrogate from to_json() output. Dispatches on the
/// "type" tag. Throws anb::Error for unknown types or malformed payloads.
std::unique_ptr<Surrogate> surrogate_from_json(const Json& j);

/// Reconstruct a fitted surrogate from a to_binary() meta record plus the
/// artifact reader holding its array sections. Array data may be zero-copy
/// views into the reader's buffer (mmap), which the surrogate keeps alive.
/// Dispatches on the "type" tag; throws anb::Error on any malformed or
/// corrupted payload.
std::unique_ptr<Surrogate> surrogate_from_binary(const Json& meta,
                                                 const bin::Reader& r);

}  // namespace anb
