#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "anb/util/rng.hpp"

namespace anb {

struct DatasetSplits;

/// A tabular regression dataset: row-major feature matrix plus targets.
/// This is the {architecture encoding -> accuracy/performance} table the
/// surrogates are fitted on (ANB-Acc, ANB-{device}-{metric}).
class Dataset {
 public:
  explicit Dataset(std::size_t num_features);

  std::size_t num_features() const { return num_features_; }
  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }

  /// Append one example. `x.size()` must equal num_features().
  void add(std::span<const double> x, double y);

  std::span<const double> row(std::size_t i) const;
  double target(std::size_t i) const;
  std::span<const double> targets() const { return targets_; }

  /// The whole feature matrix, row-major (size() * num_features() values).
  /// This is the layout batched prediction consumes directly.
  std::span<const double> features_flat() const { return features_; }

  /// Value of feature `f` for row `i`.
  double feature(std::size_t i, std::size_t f) const;

  /// Subset by row indices (copies).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Deterministic shuffled split into train/val/test by fractions
  /// (must sum to <= 1; remainder goes to test). The paper uses 0.8/0.1/0.1.
  DatasetSplits split(double train_frac, double val_frac, Rng& rng) const;

  /// CSV round-trip: columns f0..f{d-1},target.
  std::string to_csv() const;
  static Dataset from_csv(const std::string& text);

 private:
  std::size_t num_features_;
  std::vector<double> features_;  // row-major, size = size() * num_features_
  std::vector<double> targets_;
};

/// Result of Dataset::split.
struct DatasetSplits {
  Dataset train;
  Dataset val;
  Dataset test;
};

}  // namespace anb
