#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "anb/surrogate/dataset.hpp"
#include "anb/util/json.hpp"

namespace anb {

/// One node of a binary regression tree. Internal nodes route
/// x[feature] < threshold to `left`, else `right`; leaves hold `value`.
struct TreeNode {
  int feature = -1;  ///< -1 marks a leaf
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;
};

/// A fitted regression tree (prediction + serialization only; fitting is
/// done by TreeBuilder so random forests and gradient boosting can share
/// one exact-greedy split engine).
class RegressionTree {
 public:
  RegressionTree() = default;
  explicit RegressionTree(std::vector<TreeNode> nodes);

  double predict(std::span<const double> x) const;

  /// Batched prediction over a row-major matrix (out.size() rows of
  /// `num_features` columns). Performs the same comparisons as predict()
  /// with the per-node bounds check hoisted to one check per call, so the
  /// output is bit-identical to per-row predict().
  void predict_batch(std::span<const double> rows, std::size_t num_features,
                     std::span<double> out) const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  int num_leaves() const;

  Json to_json() const;
  static RegressionTree from_json(const Json& j);

 private:
  std::vector<TreeNode> nodes_;
};

/// Split-search hyperparameters shared by every tree-based surrogate.
///
/// The split criterion is the XGBoost second-order gain
///   gain = GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ) − γ
/// with leaf value −G/(H+λ). Plain variance-reduction trees (random
/// forests) are the special case g = −y, h = 1, λ = 0: the gain reduces to
/// the classic sum-of-squares reduction and leaves predict the mean target.
struct TreeParams {
  int max_depth = 6;
  double lambda = 1.0;            ///< L2 regularization on leaf values
  double gamma = 0.0;             ///< minimum gain to split
  double min_child_weight = 1.0;  ///< minimum hessian sum per child
  double min_samples_leaf = 1.0;  ///< minimum (weighted) rows per child
  int features_per_node = -1;     ///< random features per node; -1 = all
};

/// Pre-sorted column view of a dataset; build once, reuse across the trees
/// of a forest/ensemble (exact-greedy scans need sorted feature order).
class ColumnIndex {
 public:
  explicit ColumnIndex(const Dataset& data);

  /// Row indices sorted ascending by feature `f`.
  std::span<const std::uint32_t> sorted_rows(std::size_t f) const;
  /// Feature values in the same order as sorted_rows(f) (cached so the
  /// split scan avoids per-element bounds-checked Dataset access).
  std::span<const double> sorted_values(std::size_t f) const;
  std::size_t num_features() const { return num_features_; }

 private:
  std::size_t num_features_;
  std::size_t num_rows_;
  std::vector<std::uint32_t> order_;  // column-major blocks of row ids
  std::vector<double> values_;        // column-major, parallel to order_
};

/// Level-wise exact-greedy tree construction from per-row gradients g and
/// hessians h. `row_weight[i]` scales row i's contribution (0 excludes the
/// row; bootstrap multiplicities use weights > 1).
RegressionTree build_tree(const Dataset& data, const ColumnIndex& columns,
                          std::span<const double> g, std::span<const double> h,
                          std::span<const double> row_weight,
                          const TreeParams& params, Rng& rng);

}  // namespace anb
