#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "anb/surrogate/tree.hpp"
#include "anb/util/io.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/thread_annotations.hpp"

namespace anb {

/// Which descent engine accumulate() runs. All engines are bit-identical
/// by contract (tests/surrogate/simd_descent_test.cpp); they differ only
/// in throughput and hardware/forest requirements.
enum class DescentPath : int {
  kAuto = 0,         ///< pick per active simd::Target (the default)
  kInterleaved = 1,  ///< PR 2 scalar walk: 2 trees x 4 rows in lockstep
  kSimd = 2,         ///< SoA gather descent on full-precision thresholds
  kQuantized = 3,    ///< SoA gather descent on uint8 threshold codes
  kMasked = 4,       ///< leaf-set masks over uint8 codes (<= 8 leaves/tree)
};

const char* descent_path_name(DescentPath p);

/// Process-wide forced path (test/bench hook; kAuto clears). A forced
/// kSimd/kQuantized/kMasked still honors the active simd::Target, so
/// forcing target kScalar exercises the scalar-Isa kernels. Forcing
/// kQuantized/kMasked on a forest where the engine is unavailable throws
/// at accumulate time.
void set_descent_path_override(DescentPath p);
DescentPath descent_path_override();

/// RAII force/restore of the descent path.
class ScopedDescentPath {
 public:
  explicit ScopedDescentPath(DescentPath p) { set_descent_path_override(p); }
  ~ScopedDescentPath() { set_descent_path_override(DescentPath::kAuto); }
  ScopedDescentPath(const ScopedDescentPath&) = delete;
  ScopedDescentPath& operator=(const ScopedDescentPath&) = delete;
};

/// One node of a flattened forest. Internal nodes route
/// x[feature] < split to `left`, else `right`. Leaves reuse the `split`
/// slot for the leaf value and point `left`/`right` at *themselves*
/// (self-loop), so advancing a row one level is branch-free and uniform
/// whether or not the row has already reached its leaf. 24 bytes instead
/// of RegressionTree's 32; child indices address the forest-global array.
struct FlatNode {
  double split = 0.0;  ///< threshold (internal) or leaf value (leaf)
  std::int32_t feature = 0;
  std::int32_t left = -1;
  std::int32_t right = -1;
};

// The binary artifact stores FlatNode arrays verbatim, so the layout is
// part of the .anbb format contract.
static_assert(sizeof(FlatNode) == 24, "FlatNode layout is serialized");
static_assert(std::is_trivially_copyable_v<FlatNode>);
static_assert(alignof(FlatNode) == 8);

/// A fitted tree ensemble flattened into one contiguous node array for
/// batched prediction. Scalar prediction walks each RegressionTree's own
/// heap vector per row — one pointer chase per tree per row, a bounds
/// check per node visit, and a serial data-dependent load chain that
/// leaves the core idle between levels. Flattening removes the first two;
/// the interleaved descent in accumulate() removes the third: two
/// consecutive trees each walk four rows in lockstep, so eight mutually
/// independent node loads overlap in flight instead of serializing.
/// Self-looping leaves make each step uniform and turn "all states
/// stopped moving" into the combined leaf test, so unbalanced trees cost
/// only the deepest descent of the group. Tree-major iteration over
/// 64-row blocks keeps each tree's nodes cache-hot while the block is
/// processed. This is where the serving-throughput win comes from
/// (bench/query_throughput.cpp).
///
/// Exactness contract: each row reaches its leaf through exactly the same
/// `x[feature] < split` comparisons as the scalar walk (self-loop passes
/// compare but discard the result), and `out += scale * leaf` accumulates
/// in the same tree order — so results are bit-identical
/// (tests/surrogate/predict_batch_test.cpp enforces this for every
/// surrogate family).
class FlatForest {
 public:
  // Out of line: the cached-tables unique_ptr needs SimdTables complete
  // (flat_forest.cpp) wherever a constructor or destructor is defined.
  FlatForest();

  // The cached SIMD tables hold raw pointers into themselves, so moves
  // and copies transfer only the node arrays and let the destination
  // rebuild its tables lazily on first use.
  FlatForest(FlatForest&& other) noexcept;
  FlatForest& operator=(FlatForest&& other) noexcept;
  FlatForest(const FlatForest& other);
  FlatForest& operator=(const FlatForest& other);
  ~FlatForest();

  /// Flatten fitted trees. Validates child indices; throws anb::Error on
  /// malformed trees.
  explicit FlatForest(std::span<const RegressionTree> trees);

  /// Adopt pre-flattened arrays — the binary-artifact load path, where
  /// both may be zero-copy views into an mmap. Performs full structural
  /// validation (roots ascending from 0, every child inside its own
  /// tree's range, internal nodes never self-referential, leaves
  /// self-looping on both children, features non-negative); throws
  /// anb::Error on any violation so a corrupted artifact can never drive
  /// accumulate() out of bounds.
  FlatForest(io::ArrayRef<FlatNode> nodes, io::ArrayRef<std::int32_t> roots);

  bool empty() const { return roots_.empty(); }
  std::size_t num_trees() const { return roots_.size(); }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// For every row i of the row-major matrix `rows` (out.size() rows of
  /// `num_features` columns): out[i] += scale * tree_t(x_i), accumulated
  /// over trees t in order. Callers pre-fill `out` with the base score.
  void accumulate(std::span<const double> rows, std::size_t num_features,
                  double scale, std::span<double> out) const;

  /// Scalar prediction of tree `t` for one row. Performs exactly the same
  /// `x[feature] < split` comparisons as RegressionTree::predict, so the
  /// result is bit-identical to walking the original tree.
  double predict_tree(std::size_t t, std::span<const double> x) const;

  /// Reconstruct the per-tree RegressionTree form (the text-export path
  /// for binary-loaded models). FlatNode <-> TreeNode is a bijection
  /// given each tree's base index: leaf iff both children self-loop.
  std::vector<RegressionTree> to_trees() const;

  /// Raw arrays in artifact layout (the binary-artifact save path).
  std::span<const FlatNode> nodes() const { return nodes_.span(); }
  std::span<const std::int32_t> roots() const { return roots_.span(); }

  /// True if the quantized descent can represent this forest: every
  /// feature has <= 255 distinct finite thresholds, every tree fits
  /// 16-bit local indexing, every feature index fits 16 bits. Builds the
  /// SIMD tables on first call (lazily — never at load time, so the mmap
  /// cold-start contract in bench/load_latency is untouched).
  bool quantized_available() const;

  /// True if the masked leaf-set engine can represent this forest:
  /// quantized_available() plus every tree has <= 8 leaves (the leaf-set
  /// mask is one byte). Holds for the default Gbdt (max_depth 3) and
  /// HistGbdt (max_leaves 8) configurations; deep RandomForest trees
  /// fall back. Builds the SIMD tables on first call.
  bool masked_available() const;

  /// Derived lookaside for the SIMD descent paths: SoA node arrays plus
  /// the quantized node/threshold tables. Built once, on demand, from the
  /// AoS nodes_ — the .anbb on-disk format stays AoS (DESIGN.md "SIMD
  /// descent"). Defined (and only usable) in flat_forest.cpp.
  struct SimdTables;

 private:
  void validate();
  const SimdTables& simd_tables() const;

  io::ArrayRef<FlatNode> nodes_;       // all trees back to back
  io::ArrayRef<std::int32_t> roots_;   // root index of each tree
  std::int32_t max_feature_ = -1;      // for a once-per-batch range check

  // Double-checked lazy init: the atomic is the fast path (acquire),
  // simd_mu_ serializes the one build (release publish). Mutable because
  // the tables are a cache derived from const state.
  mutable std::atomic<const SimdTables*> simd_cache_{nullptr};
  mutable Mutex simd_mu_;
  mutable std::unique_ptr<const SimdTables> simd_owned_
      ANB_GUARDED_BY(simd_mu_);
};

}  // namespace anb
