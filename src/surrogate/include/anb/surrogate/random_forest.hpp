#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/surrogate/flat_forest.hpp"
#include "anb/surrogate/surrogate.hpp"
#include "anb/surrogate/tree.hpp"

namespace anb {

/// Random-forest regression hyperparameters.
struct RandomForestParams {
  int n_trees = 200;
  int max_depth = 14;
  double min_samples_leaf = 2.0;
  /// Features considered per split as a fraction of the total; <= 0 uses the
  /// sqrt(d) heuristic.
  double max_features_frac = -1.0;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_frac = 1.0;
};

/// Bagged variance-reduction trees (one of the paper's candidate surrogates;
/// Table 1 shows it trailing the boosting methods on ANB-Acc, a gap this
/// implementation reproduces).
///
/// Trees are fitted in parallel. The caller's `rng` is drawn from exactly
/// once to derive a forest seed; tree t then runs on its own stream seeded
/// with hash_combine(forest_seed, t), so the fitted forest is bit-identical
/// for any thread count (and independent of scheduling order).
class RandomForest final : public Surrogate {
 public:
  explicit RandomForest(RandomForestParams params = {});

  void fit(const Dataset& train, Rng& rng) override;
  void fit(const Dataset& train, TrainContext& ctx, Rng& rng) override;
  double predict(std::span<const double> x) const override;
  void predict_batch(std::span<const double> rows, std::size_t num_features,
                     std::span<double> out) const override;

  /// Ensemble mean and standard deviation across trees — the predictive
  /// uncertainty SMAC-style Bayesian optimization needs for its acquisition
  /// function.
  std::pair<double, double> predict_mean_std(std::span<const double> x) const;
  std::string name() const override { return "rf"; }
  Json to_json() const override;
  Json to_binary(bin::Writer& w) const override;
  static std::unique_ptr<RandomForest> from_json(const Json& j);
  static std::unique_ptr<RandomForest> from_binary(const Json& meta,
                                                   const bin::Reader& r);

  const RandomForestParams& params() const { return params_; }
  std::size_t num_trees() const { return flat_.num_trees(); }

 private:
  void fit_impl(const Dataset& train, const ColumnIndex& columns, Rng& rng);
  void rebuild_flat();

  RandomForestParams params_;
  /// Per-tree form; empty for binary-loaded models (flat_ is then the only
  /// representation and to_json() reconstructs trees on demand).
  std::vector<RegressionTree> trees_;
  FlatForest flat_;  ///< rebuilt from trees_ after fit()/from_json()
};

}  // namespace anb
