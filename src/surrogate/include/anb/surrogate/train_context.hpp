#pragma once

#include <map>
#include <memory>

#include "anb/surrogate/binned_matrix.hpp"
#include "anb/surrogate/dataset.hpp"
#include "anb/surrogate/tree.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/thread_annotations.hpp"

namespace anb {

/// Per-dataset cache of the training-side index structures that are pure
/// functions of the data: the sorted ColumnIndex (exact-greedy splits in
/// Gbdt / RandomForest) and one BinnedMatrix per max_bins setting
/// (HistGbdt). Both are O(n·d·log n)-ish to build and were previously
/// recomputed on every fit; a tuning loop fitting dozens of trials on the
/// same rows now pays for each exactly once.
///
/// Thread-safe: concurrent fits (e.g. SmacLite's parallel initial design)
/// may share one context. Accessors build lazily under a mutex and return
/// references owned by the context, which must outlive every fit using it.
class TrainContext {
 public:
  explicit TrainContext(const Dataset& data) : data_(&data) {}

  TrainContext(const TrainContext&) = delete;
  TrainContext& operator=(const TrainContext&) = delete;

  const Dataset& data() const { return *data_; }

  /// Sorted per-feature column index; built on first use.
  const ColumnIndex& columns();

  /// Quantized bin matrix for the given max_bins; built on first use per
  /// distinct setting.
  const BinnedMatrix& bins(int max_bins);

 private:
  const Dataset* data_;
  Mutex mutex_;
  std::unique_ptr<const ColumnIndex> columns_ ANB_GUARDED_BY(mutex_);
  std::map<int, std::unique_ptr<const BinnedMatrix>> bins_
      ANB_GUARDED_BY(mutex_);
};

}  // namespace anb
