#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/surrogate/flat_forest.hpp"
#include "anb/surrogate/surrogate.hpp"
#include "anb/surrogate/tree.hpp"

namespace anb {

/// XGBoost-style gradient-boosting hyperparameters (squared-error objective,
/// second-order splits, exact greedy).
struct GbdtParams {
  // Defaults favor many shallow trees: one-hot architecture encodings have
  // largely additive structure plus sparse motif interactions, for which
  // depth-3 ensembles generalize markedly better than deep trees.
  int n_estimators = 1200;
  double learning_rate = 0.05;
  int max_depth = 3;
  double lambda = 1.0;            ///< L2 on leaf values
  double gamma = 0.0;             ///< min split gain
  double min_child_weight = 1.0;
  double subsample = 1.0;         ///< per-tree row subsample (w/o replacement)
  double colsample = 1.0;         ///< per-node feature subsample fraction
};

/// XGBoost-style gradient boosted trees — the paper's best-performing
/// surrogate family (Table 1: R²=0.984, τ=0.922 on ANB-Acc; Table 2 uses it
/// for all device datasets).
///
/// Boosting is inherently sequential, so trees build one at a time; the
/// element-wise gradient and prediction-update loops run in parallel row
/// chunks (a pure partition — results are bit-identical at any thread
/// count), and the context overload reuses a shared ColumnIndex.
class Gbdt final : public Surrogate {
 public:
  explicit Gbdt(GbdtParams params = {});

  void fit(const Dataset& train, Rng& rng) override;
  void fit(const Dataset& train, TrainContext& ctx, Rng& rng) override;
  double predict(std::span<const double> x) const override;
  void predict_batch(std::span<const double> rows, std::size_t num_features,
                     std::span<double> out) const override;
  std::string name() const override { return "xgb"; }
  Json to_json() const override;
  Json to_binary(bin::Writer& w) const override;
  static std::unique_ptr<Gbdt> from_json(const Json& j);
  static std::unique_ptr<Gbdt> from_binary(const Json& meta,
                                           const bin::Reader& r);

  const GbdtParams& params() const { return params_; }
  std::size_t num_trees() const { return flat_.num_trees(); }

 private:
  void fit_impl(const Dataset& train, const ColumnIndex& columns, Rng& rng);
  void rebuild_flat();

  GbdtParams params_;
  double base_score_ = 0.0;
  /// Per-tree form; empty for binary-loaded models (flat_ is then the only
  /// representation and to_json() reconstructs trees on demand).
  std::vector<RegressionTree> trees_;
  FlatForest flat_;  ///< rebuilt from trees_ after fit()/from_json()
};

}  // namespace anb
