#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace anb {

/// Generic SMO solver for the canonical dual QP (libsvm formulation):
///
///   min_a  0.5 aᵀQa + pᵀa    s.t.  yᵀa = 0,  0 <= a_i <= C_i,
///
/// with y_i ∈ {+1, −1}. ε-SVR maps onto this with 2n variables
/// (α and α*), Q_st = y_s y_t K(s mod n, t mod n).
///
/// Working-set selection is the maximal-violating-pair rule; the
/// two-variable subproblem is solved analytically with box clipping.
class SmoSolver {
 public:
  struct Problem {
    int n = 0;                     ///< number of dual variables
    std::vector<double> p;         ///< linear term
    std::vector<signed char> y;    ///< ±1 per variable
    std::vector<double> c;         ///< upper box bound per variable
    /// Column accessor: q(i, out) fills out[0..n) with column i of Q.
    std::function<void(int, std::vector<double>&)> q_column;
    double tolerance = 1e-3;
    std::int64_t max_iterations = 2'000'000;
  };

  struct Result {
    std::vector<double> alpha;
    double rho = 0.0;  ///< KKT offset; decision value = Σ y_i a_i K − rho
    std::int64_t iterations = 0;
    bool converged = false;
  };

  static Result solve(const Problem& problem);
};

}  // namespace anb
