#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/surrogate/binned_matrix.hpp"
#include "anb/surrogate/flat_forest.hpp"
#include "anb/surrogate/surrogate.hpp"
#include "anb/surrogate/tree.hpp"

namespace anb {

/// LightGBM-style hyperparameters: histogram split finding with *leaf-wise*
/// (best-first) growth bounded by a leaf count rather than a depth.
struct HistGbdtParams {
  // Like GbdtParams, defaults favor many small trees (8 leaves ~ depth 3).
  int n_estimators = 1500;
  double learning_rate = 0.05;
  int max_leaves = 8;
  int max_bins = 64;
  double lambda = 1.0;
  double min_child_weight = 1.0;
  double min_split_gain = 1e-12;
  double subsample = 1.0;  ///< per-tree row bagging fraction
  double colsample = 1.0;  ///< per-tree feature fraction
};

/// Histogram-based gradient boosting with leaf-wise growth (the paper's
/// "LGB" surrogate). Structurally different from Gbdt: feature values are
/// bucketed into at most `max_bins` quantile bins once per dataset (see
/// BinnedMatrix), split search scans bin histograms (with the
/// sibling-subtraction trick), and trees grow best-first until `max_leaves`.
///
/// Training is parallel and exactly deterministic: histogram construction
/// and split scanning parallelize across *features* (each histogram cell
/// receives its contributions in serial row order, so results are
/// bit-identical at any thread count), and the gradient / prediction
/// update loops parallelize element-wise over rows.
class HistGbdt final : public Surrogate {
 public:
  explicit HistGbdt(HistGbdtParams params = {});

  void fit(const Dataset& train, Rng& rng) override;
  void fit(const Dataset& train, TrainContext& ctx, Rng& rng) override;

  /// Fit against a pre-built bin matrix (must be built from `train` with
  /// this model's max_bins). The two-argument overloads route here.
  void fit(const Dataset& train, const BinnedMatrix& binned, Rng& rng);
  double predict(std::span<const double> x) const override;
  void predict_batch(std::span<const double> rows, std::size_t num_features,
                     std::span<double> out) const override;
  std::string name() const override { return "lgb"; }
  Json to_json() const override;
  Json to_binary(bin::Writer& w) const override;
  static std::unique_ptr<HistGbdt> from_json(const Json& j);
  static std::unique_ptr<HistGbdt> from_binary(const Json& meta,
                                               const bin::Reader& r);

  const HistGbdtParams& params() const { return params_; }
  std::size_t num_trees() const { return flat_.num_trees(); }

 private:
  void rebuild_flat();

  HistGbdtParams params_;
  double base_score_ = 0.0;
  /// Per-tree form; empty for binary-loaded models (flat_ is then the only
  /// representation and to_json() reconstructs trees on demand).
  std::vector<RegressionTree> trees_;
  FlatForest flat_;  ///< rebuilt from trees_ after fit()/from_json()
};

}  // namespace anb
