#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/surrogate/surrogate.hpp"
#include "anb/util/io.hpp"

namespace anb {

/// Which SVR formulation to solve.
enum class SvrKind {
  kEpsilon,  ///< ε-SVR: fixed tube width
  kNu,       ///< ν-SVR: tube width chosen so ~ν of points are outside it
};

/// Support-vector-regression hyperparameters. The RBF kernel
/// K(x,x') = exp(−γ‖x−x'‖²) operates on standardized features; C and ε are
/// expressed on the standardized-target scale.
struct SvrParams {
  SvrKind kind = SvrKind::kEpsilon;
  double c = 10.0;
  double epsilon = 0.05;  ///< ε-SVR tube half-width (standardized targets)
  double nu = 0.5;        ///< ν-SVR target fraction outside the tube
  double gamma = -1.0;    ///< RBF bandwidth; <= 0 uses 1/num_features
  double tolerance = 1e-3;
};

/// ε-/ν-support-vector regression via SMO on the 2n-variable dual
/// (the paper's remaining two candidate surrogates, Table 1).
///
/// ν-SVR is solved by the Schölkopf equivalence: ν upper-bounds the fraction
/// of points outside the ε-tube and every ν corresponds to some ε, so we
/// bisect ε until the out-of-tube fraction of the fitted ε-SVR matches ν.
/// Inputs are standardized per feature and targets standardized to unit
/// variance internally; predictions are mapped back.
class Svr final : public Surrogate {
 public:
  explicit Svr(SvrParams params = {});

  // Overriding fit(train, rng) would otherwise hide the base-class
  // context overload; re-export it (it falls back to the plain fit).
  using Surrogate::fit;
  void fit(const Dataset& train, Rng& rng) override;
  /// Scalar prediction is the one-row case of predict_batch (a single code
  /// path, so batch and scalar results are identical by construction).
  double predict(std::span<const double> x) const override;
  /// Blocked kernel expansion over a contiguous support-vector matrix.
  void predict_batch(std::span<const double> rows, std::size_t num_features,
                     std::span<double> out) const override;
  std::string name() const override {
    return params_.kind == SvrKind::kEpsilon ? "esvr" : "nusvr";
  }
  Json to_json() const override;
  Json to_binary(bin::Writer& w) const override;
  static std::unique_ptr<Svr> from_json(const Json& j);
  static std::unique_ptr<Svr> from_binary(const Json& meta,
                                          const bin::Reader& r);

  const SvrParams& params() const { return params_; }
  std::size_t num_support_vectors() const { return sv_coef_.size(); }
  /// ε actually used (the bisection result for ν-SVR).
  double effective_epsilon() const { return effective_epsilon_; }

 private:
  struct FitOutput {
    std::vector<double> coef;  ///< β_i = α_i − α*_i per training row
    double bias = 0.0;
  };
  FitOutput solve_epsilon(const std::vector<std::vector<float>>& kernel,
                          std::span<const double> y, double epsilon) const;
  double gamma_value(std::size_t num_features) const;

  SvrParams params_;
  double effective_epsilon_ = 0.0;

  // Fitted state (standardization + sparse support-vector expansion).
  // ArrayRef so binary-loaded models can view artifact sections in place
  // (zero-copy mmap); fit()/from_json() store owned vectors.
  io::ArrayRef<double> feat_mean_, feat_scale_;
  double target_mean_ = 0.0, target_scale_ = 1.0;
  io::ArrayRef<double> sv_coef_;
  double bias_ = 0.0;
  /// Standardized support vectors flattened row-major (num_support_vectors
  /// by num_features) — the layout the batched kernel expansion streams.
  io::ArrayRef<double> sv_flat_;
};

}  // namespace anb
