#include "anb/surrogate/binned_matrix.hpp"

#include <algorithm>

#include "anb/obs/span.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

namespace {

/// Quantile edges over the distinct values of one feature column. `edges[b]`
/// separates bin b from bin b+1 (x goes to bin b iff x < edges[b] and
/// x >= edges[b-1]). Few distinct values bin losslessly at the midpoints;
/// otherwise edges sit at quantiles of the distinct-value list.
std::vector<double> make_edges(const Dataset& data, std::size_t f,
                               int max_bins) {
  std::vector<double> values(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) values[i] = data.feature(i, f);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  std::vector<double> edges;
  if (static_cast<int>(values.size()) <= max_bins) {
    edges.reserve(values.size());
    for (std::size_t k = 0; k + 1 < values.size(); ++k)
      edges.push_back(0.5 * (values[k] + values[k + 1]));
  } else {
    edges.reserve(static_cast<std::size_t>(max_bins));
    for (int b = 1; b < max_bins; ++b) {
      const auto pos = static_cast<std::size_t>(
          static_cast<double>(b) * static_cast<double>(values.size()) /
          max_bins);
      const std::size_t at = std::min(pos, values.size() - 1);
      const double edge =
          at > 0 ? 0.5 * (values[at - 1] + values[at]) : values[0];
      if (edges.empty() || edge > edges.back()) edges.push_back(edge);
    }
  }
  return edges;
}

}  // namespace

BinnedMatrix::BinnedMatrix(const Dataset& data, int max_bins)
    : num_rows_(data.size()),
      num_features_(data.num_features()),
      max_bins_(max_bins) {
  ANB_CHECK(max_bins >= 2 && max_bins <= 256,
            "BinnedMatrix: max_bins must be in [2, 256]");
  ANB_CHECK(num_rows_ >= 1, "BinnedMatrix: empty dataset");
  ANB_SPAN("anb.fit.bin_build");

  edges_.resize(num_features_);
  codes_.resize(num_features_ * num_rows_);
  // Each feature quantizes independently, so the loop is a pure partition
  // of the columns: codes and edges are identical at any thread count.
  parallel_for(num_features_, [&](std::size_t f) {
    edges_[f] = make_edges(data, f, max_bins_);
    const std::vector<double>& edges = edges_[f];
    std::uint8_t* column = codes_.data() + f * num_rows_;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      column[i] = static_cast<std::uint8_t>(
          std::upper_bound(edges.begin(), edges.end(), data.feature(i, f)) -
          edges.begin());
    }
  });
  for (std::size_t f = 0; f < num_features_; ++f)
    max_hist_bins_ = std::max(max_hist_bins_, num_bins(f));
}

std::span<const double> BinnedMatrix::edges(std::size_t f) const {
  ANB_CHECK(f < num_features_, "BinnedMatrix::edges: feature out of range");
  return edges_[f];
}

double BinnedMatrix::edge(std::size_t f, int b) const {
  const std::span<const double> e = edges(f);
  ANB_CHECK(b >= 0 && static_cast<std::size_t>(b) < e.size(),
            "BinnedMatrix::edge: bin out of range");
  return e[static_cast<std::size_t>(b)];
}

std::span<const std::uint8_t> BinnedMatrix::codes(std::size_t f) const {
  ANB_CHECK(f < num_features_, "BinnedMatrix::codes: feature out of range");
  return {codes_.data() + f * num_rows_, num_rows_};
}

}  // namespace anb
