#include "anb/surrogate/binned_matrix.hpp"

#include <algorithm>

#include "anb/obs/span.hpp"
#include "anb/util/binary.hpp"
#include "anb/util/error.hpp"
#include "anb/util/json.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

namespace {

/// Quantile edges over the distinct values of one feature column. `edges[b]`
/// separates bin b from bin b+1 (x goes to bin b iff x < edges[b] and
/// x >= edges[b-1]). Few distinct values bin losslessly at the midpoints;
/// otherwise edges sit at quantiles of the distinct-value list.
std::vector<double> make_edges(const Dataset& data, std::size_t f,
                               int max_bins) {
  std::vector<double> values(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) values[i] = data.feature(i, f);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  std::vector<double> edges;
  if (static_cast<int>(values.size()) <= max_bins) {
    edges.reserve(values.size());
    for (std::size_t k = 0; k + 1 < values.size(); ++k)
      edges.push_back(0.5 * (values[k] + values[k + 1]));
  } else {
    edges.reserve(static_cast<std::size_t>(max_bins));
    for (int b = 1; b < max_bins; ++b) {
      const auto pos = static_cast<std::size_t>(
          static_cast<double>(b) * static_cast<double>(values.size()) /
          max_bins);
      const std::size_t at = std::min(pos, values.size() - 1);
      const double edge =
          at > 0 ? 0.5 * (values[at - 1] + values[at]) : values[0];
      if (edges.empty() || edge > edges.back()) edges.push_back(edge);
    }
  }
  return edges;
}

}  // namespace

BinnedMatrix::BinnedMatrix(const Dataset& data, int max_bins)
    : num_rows_(data.size()),
      num_features_(data.num_features()),
      max_bins_(max_bins) {
  ANB_CHECK(max_bins >= 2 && max_bins <= 256,
            "BinnedMatrix: max_bins must be in [2, 256]");
  ANB_CHECK(num_rows_ >= 1, "BinnedMatrix: empty dataset");
  ANB_SPAN("anb.fit.bin_build");

  std::vector<std::vector<double>> edges_per_feature(num_features_);
  std::vector<std::uint8_t> codes(num_features_ * num_rows_);
  // Each feature quantizes independently, so the loop is a pure partition
  // of the columns: codes and edges are identical at any thread count.
  parallel_for(num_features_, [&](std::size_t f) {
    edges_per_feature[f] = make_edges(data, f, max_bins_);
    const std::vector<double>& edges = edges_per_feature[f];
    std::uint8_t* column = codes.data() + f * num_rows_;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      column[i] = static_cast<std::uint8_t>(
          std::upper_bound(edges.begin(), edges.end(), data.feature(i, f)) -
          edges.begin());
    }
  });

  // Flatten the per-feature edge lists into one array + prefix offsets —
  // the layout the binary artifact stores verbatim.
  std::vector<std::uint64_t> offsets(num_features_ + 1, 0);
  std::size_t total = 0;
  for (std::size_t f = 0; f < num_features_; ++f) {
    offsets[f] = total;
    total += edges_per_feature[f].size();
  }
  offsets[num_features_] = total;
  std::vector<double> flat;
  flat.reserve(total);
  for (const auto& e : edges_per_feature)
    flat.insert(flat.end(), e.begin(), e.end());

  edges_flat_ = io::ArrayRef<double>(std::move(flat));
  edge_offsets_ = io::ArrayRef<std::uint64_t>(std::move(offsets));
  codes_ = io::ArrayRef<std::uint8_t>(std::move(codes));
  for (std::size_t f = 0; f < num_features_; ++f)
    max_hist_bins_ = std::max(max_hist_bins_, num_bins(f));
}

std::span<const double> BinnedMatrix::edges(std::size_t f) const {
  ANB_CHECK(f < num_features_, "BinnedMatrix::edges: feature out of range");
  const auto lo = static_cast<std::size_t>(edge_offsets_[f]);
  const auto hi = static_cast<std::size_t>(edge_offsets_[f + 1]);
  return edges_flat_.span().subspan(lo, hi - lo);
}

double BinnedMatrix::edge(std::size_t f, int b) const {
  const std::span<const double> e = edges(f);
  ANB_CHECK(b >= 0 && static_cast<std::size_t>(b) < e.size(),
            "BinnedMatrix::edge: bin out of range");
  return e[static_cast<std::size_t>(b)];
}

std::span<const std::uint8_t> BinnedMatrix::codes(std::size_t f) const {
  ANB_CHECK(f < num_features_, "BinnedMatrix::codes: feature out of range");
  return {codes_.data() + f * num_rows_, num_rows_};
}

void BinnedMatrix::save_binary(const std::string& path) const {
  bin::Writer w;
  Json meta = Json::object();
  meta["kind"] = std::string("binned_matrix");
  meta["num_rows"] = static_cast<double>(num_rows_);
  meta["num_features"] = static_cast<double>(num_features_);
  meta["max_bins"] = max_bins_;
  meta["edges"] = static_cast<int>(w.add_array(bin::Tag::kF64,
                                               edges_flat_.span()));
  meta["edge_offsets"] =
      static_cast<int>(w.add_array(bin::Tag::kU64, edge_offsets_.span()));
  meta["codes"] = static_cast<int>(w.add_array(bin::Tag::kU8, codes_.span()));
  const std::string text = meta.dump();
  w.add_section(bin::Tag::kMeta, {text.data(), text.size()}, 1);
  const std::vector<char> file = w.finish();
  io::write_file(path, file);
}

BinnedMatrix BinnedMatrix::load_binary(const std::string& path,
                                       io::MapMode mode) {
  const auto buffer = mode == io::MapMode::kMap ? io::Buffer::map_file(path)
                                                : io::Buffer::read_file(path);
  const bin::Reader r(buffer);
  ANB_CHECK(r.num_sections() >= 1,
            "BinnedMatrix::load_binary: no sections in '" + path + "'");
  // The meta section is written last.
  const auto meta_index = static_cast<std::uint32_t>(r.num_sections() - 1);
  const std::span<const char> meta_raw = r.section(meta_index, bin::Tag::kMeta);
  const Json meta = Json::parse(std::string(meta_raw.data(), meta_raw.size()));
  ANB_CHECK(meta.at("kind").as_string() == "binned_matrix",
            "BinnedMatrix::load_binary: '" + path +
                "' is not a binned-matrix artifact");

  BinnedMatrix m;
  m.num_rows_ = static_cast<std::size_t>(meta.at("num_rows").as_number());
  m.num_features_ =
      static_cast<std::size_t>(meta.at("num_features").as_number());
  m.max_bins_ = meta.at("max_bins").as_int();
  m.edges_flat_ = r.array<double>(
      static_cast<std::uint32_t>(meta.at("edges").as_int()), bin::Tag::kF64);
  m.edge_offsets_ = r.array<std::uint64_t>(
      static_cast<std::uint32_t>(meta.at("edge_offsets").as_int()),
      bin::Tag::kU64);
  m.codes_ = r.array<std::uint8_t>(
      static_cast<std::uint32_t>(meta.at("codes").as_int()), bin::Tag::kU8);
  m.validate();
  for (std::size_t f = 0; f < m.num_features_; ++f)
    m.max_hist_bins_ = std::max(m.max_hist_bins_, m.num_bins(f));
  return m;
}

void BinnedMatrix::validate() const {
  // Structural audit of untrusted artifact data: after this, edges()/
  // code() can index without per-access checks beyond the public-API ones.
  ANB_CHECK(max_bins_ >= 2 && max_bins_ <= 256,
            "BinnedMatrix: max_bins must be in [2, 256]");
  ANB_CHECK(num_rows_ >= 1 && num_features_ >= 1,
            "BinnedMatrix: empty matrix");
  ANB_CHECK(edge_offsets_.size() == num_features_ + 1,
            "BinnedMatrix: edge offset table size mismatch");
  ANB_CHECK(edge_offsets_[0] == 0 &&
                edge_offsets_[num_features_] == edges_flat_.size(),
            "BinnedMatrix: edge offsets do not cover the edge array");
  ANB_CHECK(codes_.size() == num_features_ * num_rows_,
            "BinnedMatrix: code matrix size mismatch");
  for (std::size_t f = 0; f < num_features_; ++f) {
    ANB_CHECK(edge_offsets_[f] <= edge_offsets_[f + 1],
              "BinnedMatrix: edge offsets not monotone");
    const auto count = edge_offsets_[f + 1] - edge_offsets_[f];
    ANB_CHECK(count < static_cast<std::uint64_t>(max_bins_),
              "BinnedMatrix: feature has more edges than max_bins allows");
    // Edges must ascend strictly (upper_bound semantics) and every code
    // must land inside the feature's bin count.
    for (std::uint64_t k = edge_offsets_[f] + 1; k < edge_offsets_[f + 1];
         ++k) {
      ANB_CHECK(edges_flat_[static_cast<std::size_t>(k - 1)] <
                    edges_flat_[static_cast<std::size_t>(k)],
                "BinnedMatrix: bin edges not strictly increasing");
    }
    const std::uint8_t* column = codes_.data() + f * num_rows_;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      ANB_CHECK(column[i] <= count,
                "BinnedMatrix: bin code exceeds the feature's bin count");
    }
  }
}

}  // namespace anb
