#include "anb/surrogate/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "anb/surrogate/train_context.hpp"
#include "anb/util/binary.hpp"
#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

RandomForest::RandomForest(RandomForestParams params)
    : params_(std::move(params)) {
  ANB_CHECK(params_.n_trees >= 1, "RandomForest: n_trees must be >= 1");
  ANB_CHECK(params_.max_depth >= 1, "RandomForest: max_depth must be >= 1");
  ANB_CHECK(params_.bootstrap_frac > 0.0 && params_.bootstrap_frac <= 2.0,
            "RandomForest: bootstrap_frac must be in (0, 2]");
}

void RandomForest::fit(const Dataset& train, Rng& rng) {
  ANB_CHECK(train.size() >= 2, "RandomForest::fit: need at least 2 rows");
  const ColumnIndex columns(train);
  fit_impl(train, columns, rng);
}

void RandomForest::fit(const Dataset& train, TrainContext& ctx, Rng& rng) {
  ANB_CHECK(&ctx.data() == &train,
            "RandomForest::fit: context built for a different dataset");
  ANB_CHECK(train.size() >= 2, "RandomForest::fit: need at least 2 rows");
  fit_impl(train, ctx.columns(), rng);
}

void RandomForest::fit_impl(const Dataset& train, const ColumnIndex& columns,
                            Rng& rng) {
  ANB_SPAN("anb.fit.rf");
  obs::counter("anb.fit.rf.count").add(1);
  trees_.clear();
  const std::size_t n = train.size();
  const std::size_t d = train.num_features();

  // Variance-reduction splits: g = -y, h = 1, lambda = 0 reduces the
  // XGBoost gain to classic sum-of-squares reduction with mean-value leaves.
  std::vector<double> g(n), h(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) g[i] = -train.target(i);

  TreeParams tp;
  tp.max_depth = params_.max_depth;
  tp.lambda = 0.0;
  tp.gamma = 1e-12;  // require strictly positive variance reduction
  tp.min_child_weight = 0.0;
  tp.min_samples_leaf = params_.min_samples_leaf;
  const double frac = params_.max_features_frac;
  tp.features_per_node =
      frac > 0.0
          ? std::max(1, static_cast<int>(std::lround(frac * static_cast<double>(d))))
          : std::max(1, static_cast<int>(std::lround(std::sqrt(static_cast<double>(d)))));

  const auto n_bootstrap = static_cast<std::size_t>(
      std::max(1.0, params_.bootstrap_frac * static_cast<double>(n)));

  // Trees fit concurrently, each on its own seeded stream: one draw from the
  // caller's rng fixes the whole forest, independent of thread count and of
  // how much randomness each tree consumes (build_tree's consumption is
  // data-dependent, so a shared stream could not be parallelized).
  const std::uint64_t forest_seed = rng();
  const auto n_trees = static_cast<std::size_t>(params_.n_trees);
  std::vector<std::optional<RegressionTree>> slots(n_trees);
  parallel_for(n_trees, [&](std::size_t t) {
    Rng tree_rng(hash_combine(forest_seed, static_cast<std::uint64_t>(t)));
    // Bootstrap with replacement expressed as per-row multiplicities.
    std::vector<double> weight(n, 0.0);
    for (std::size_t s = 0; s < n_bootstrap; ++s)
      weight[tree_rng.uniform_index(n)] += 1.0;
    slots[t] = build_tree(train, columns, g, h, weight, tp, tree_rng);
  });
  trees_.reserve(n_trees);
  for (auto& slot : slots) {
    ANB_ASSERT(slot.has_value(), "RandomForest::fit_impl: missing tree");
    trees_.push_back(std::move(*slot));
  }
  rebuild_flat();
}

// Deep trees (default max_depth 14) usually exceed the masked engine's
// 8-leaf cap, so batched prediction auto-dispatches to the interleaved
// walk for fitted forests; the quantized/masked engines light up only
// for unusually shallow fits (DESIGN.md "SIMD descent").
void RandomForest::rebuild_flat() { flat_ = FlatForest(trees_); }

double RandomForest::predict(std::span<const double> x) const {
  // Walks flat_ (one code path for fitted and binary-loaded models);
  // same per-tree comparisons and sum-then-divide order as before, so
  // results are unchanged bit for bit.
  ANB_CHECK(!flat_.empty(), "RandomForest::predict: model not fitted");
  double acc = 0.0;
  for (std::size_t t = 0; t < flat_.num_trees(); ++t)
    acc += flat_.predict_tree(t, x);
  return acc / static_cast<double>(flat_.num_trees());
}

void RandomForest::predict_batch(std::span<const double> rows,
                                 std::size_t num_features,
                                 std::span<double> out) const {
  ANB_CHECK(!flat_.empty(), "RandomForest::predict_batch: model not fitted");
  std::fill(out.begin(), out.end(), 0.0);
  // Accumulating with scale 1.0 then dividing matches the scalar path's
  // sum-then-divide exactly (1.0 * leaf is an exact multiplication).
  flat_.accumulate(rows, num_features, 1.0, out);
  const double n = static_cast<double>(flat_.num_trees());
  for (double& v : out) v /= n;
}

std::pair<double, double> RandomForest::predict_mean_std(
    std::span<const double> x) const {
  ANB_CHECK(!flat_.empty(), "RandomForest::predict_mean_std: not fitted");
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t t = 0; t < flat_.num_trees(); ++t) {
    const double v = flat_.predict_tree(t, x);
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(flat_.num_trees());
  const double m = sum / n;
  const double var = std::max(0.0, sum_sq / n - m * m);
  return {m, std::sqrt(var)};
}

namespace {

Json random_forest_params_json(const RandomForestParams& p) {
  Json params = Json::object();
  params["n_trees"] = p.n_trees;
  params["max_depth"] = p.max_depth;
  params["min_samples_leaf"] = p.min_samples_leaf;
  params["max_features_frac"] = p.max_features_frac;
  params["bootstrap_frac"] = p.bootstrap_frac;
  return params;
}

}  // namespace

Json RandomForest::to_json() const {
  Json j = Json::object();
  j["type"] = name();
  j["params"] = random_forest_params_json(params_);
  Json trees = Json::array();
  if (trees_.empty()) {
    for (const auto& tree : flat_.to_trees()) trees.push_back(tree.to_json());
  } else {
    for (const auto& tree : trees_) trees.push_back(tree.to_json());
  }
  j["trees"] = std::move(trees);
  return j;
}

Json RandomForest::to_binary(bin::Writer& w) const {
  ANB_CHECK(!flat_.empty(), "RandomForest::to_binary: model not fitted");
  Json j = Json::object();
  j["type"] = name();
  j["params"] = random_forest_params_json(params_);
  j["nodes"] = static_cast<int>(w.add_array(bin::Tag::kFlatNode, flat_.nodes()));
  j["roots"] = static_cast<int>(w.add_array(bin::Tag::kI32, flat_.roots()));
  return j;
}

std::unique_ptr<RandomForest> RandomForest::from_binary(const Json& meta,
                                                        const bin::Reader& r) {
  ANB_CHECK(meta.at("type").as_string() == "rf",
            "RandomForest::from_binary: wrong type tag");
  const Json& p = meta.at("params");
  RandomForestParams params;
  params.n_trees = p.at("n_trees").as_int();
  params.max_depth = p.at("max_depth").as_int();
  params.min_samples_leaf = p.at("min_samples_leaf").as_number();
  params.max_features_frac = p.at("max_features_frac").as_number();
  params.bootstrap_frac = p.at("bootstrap_frac").as_number();
  auto model = std::make_unique<RandomForest>(params);
  model->flat_ = FlatForest(
      r.array<FlatNode>(static_cast<std::uint32_t>(meta.at("nodes").as_int()),
                        bin::Tag::kFlatNode),
      r.array<std::int32_t>(
          static_cast<std::uint32_t>(meta.at("roots").as_int()),
          bin::Tag::kI32));
  ANB_CHECK(!model->flat_.empty(), "RandomForest::from_binary: empty forest");
  return model;
}

std::unique_ptr<RandomForest> RandomForest::from_json(const Json& j) {
  ANB_CHECK(j.at("type").as_string() == "rf",
            "RandomForest::from_json: wrong type tag");
  const Json& p = j.at("params");
  RandomForestParams params;
  params.n_trees = p.at("n_trees").as_int();
  params.max_depth = p.at("max_depth").as_int();
  params.min_samples_leaf = p.at("min_samples_leaf").as_number();
  params.max_features_frac = p.at("max_features_frac").as_number();
  params.bootstrap_frac = p.at("bootstrap_frac").as_number();
  auto model = std::make_unique<RandomForest>(params);
  for (const auto& jt : j.at("trees").as_array())
    model->trees_.push_back(RegressionTree::from_json(jt));
  model->rebuild_flat();
  return model;
}

}  // namespace anb
