#include "anb/surrogate/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "anb/surrogate/train_context.hpp"
#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

RandomForest::RandomForest(RandomForestParams params)
    : params_(std::move(params)) {
  ANB_CHECK(params_.n_trees >= 1, "RandomForest: n_trees must be >= 1");
  ANB_CHECK(params_.max_depth >= 1, "RandomForest: max_depth must be >= 1");
  ANB_CHECK(params_.bootstrap_frac > 0.0 && params_.bootstrap_frac <= 2.0,
            "RandomForest: bootstrap_frac must be in (0, 2]");
}

void RandomForest::fit(const Dataset& train, Rng& rng) {
  ANB_CHECK(train.size() >= 2, "RandomForest::fit: need at least 2 rows");
  const ColumnIndex columns(train);
  fit_impl(train, columns, rng);
}

void RandomForest::fit(const Dataset& train, TrainContext& ctx, Rng& rng) {
  ANB_CHECK(&ctx.data() == &train,
            "RandomForest::fit: context built for a different dataset");
  ANB_CHECK(train.size() >= 2, "RandomForest::fit: need at least 2 rows");
  fit_impl(train, ctx.columns(), rng);
}

void RandomForest::fit_impl(const Dataset& train, const ColumnIndex& columns,
                            Rng& rng) {
  ANB_SPAN("anb.fit.rf");
  obs::counter("anb.fit.rf.count").add(1);
  trees_.clear();
  const std::size_t n = train.size();
  const std::size_t d = train.num_features();

  // Variance-reduction splits: g = -y, h = 1, lambda = 0 reduces the
  // XGBoost gain to classic sum-of-squares reduction with mean-value leaves.
  std::vector<double> g(n), h(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) g[i] = -train.target(i);

  TreeParams tp;
  tp.max_depth = params_.max_depth;
  tp.lambda = 0.0;
  tp.gamma = 1e-12;  // require strictly positive variance reduction
  tp.min_child_weight = 0.0;
  tp.min_samples_leaf = params_.min_samples_leaf;
  const double frac = params_.max_features_frac;
  tp.features_per_node =
      frac > 0.0
          ? std::max(1, static_cast<int>(std::lround(frac * static_cast<double>(d))))
          : std::max(1, static_cast<int>(std::lround(std::sqrt(static_cast<double>(d)))));

  const auto n_bootstrap = static_cast<std::size_t>(
      std::max(1.0, params_.bootstrap_frac * static_cast<double>(n)));

  // Trees fit concurrently, each on its own seeded stream: one draw from the
  // caller's rng fixes the whole forest, independent of thread count and of
  // how much randomness each tree consumes (build_tree's consumption is
  // data-dependent, so a shared stream could not be parallelized).
  const std::uint64_t forest_seed = rng();
  const auto n_trees = static_cast<std::size_t>(params_.n_trees);
  std::vector<std::optional<RegressionTree>> slots(n_trees);
  parallel_for(n_trees, [&](std::size_t t) {
    Rng tree_rng(hash_combine(forest_seed, static_cast<std::uint64_t>(t)));
    // Bootstrap with replacement expressed as per-row multiplicities.
    std::vector<double> weight(n, 0.0);
    for (std::size_t s = 0; s < n_bootstrap; ++s)
      weight[tree_rng.uniform_index(n)] += 1.0;
    slots[t] = build_tree(train, columns, g, h, weight, tp, tree_rng);
  });
  trees_.reserve(n_trees);
  for (auto& slot : slots) {
    ANB_ASSERT(slot.has_value(), "RandomForest::fit_impl: missing tree");
    trees_.push_back(std::move(*slot));
  }
  rebuild_flat();
}

void RandomForest::rebuild_flat() { flat_ = FlatForest(trees_); }

double RandomForest::predict(std::span<const double> x) const {
  ANB_CHECK(!trees_.empty(), "RandomForest::predict: model not fitted");
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.predict(x);
  return acc / static_cast<double>(trees_.size());
}

void RandomForest::predict_batch(std::span<const double> rows,
                                 std::size_t num_features,
                                 std::span<double> out) const {
  ANB_CHECK(!trees_.empty(), "RandomForest::predict_batch: model not fitted");
  std::fill(out.begin(), out.end(), 0.0);
  // Accumulating with scale 1.0 then dividing matches the scalar path's
  // sum-then-divide exactly (1.0 * leaf is an exact multiplication).
  flat_.accumulate(rows, num_features, 1.0, out);
  const double n = static_cast<double>(trees_.size());
  for (double& v : out) v /= n;
}

std::pair<double, double> RandomForest::predict_mean_std(
    std::span<const double> x) const {
  ANB_CHECK(!trees_.empty(), "RandomForest::predict_mean_std: not fitted");
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& tree : trees_) {
    const double v = tree.predict(x);
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(trees_.size());
  const double m = sum / n;
  const double var = std::max(0.0, sum_sq / n - m * m);
  return {m, std::sqrt(var)};
}

Json RandomForest::to_json() const {
  Json j = Json::object();
  j["type"] = name();
  Json params = Json::object();
  params["n_trees"] = params_.n_trees;
  params["max_depth"] = params_.max_depth;
  params["min_samples_leaf"] = params_.min_samples_leaf;
  params["max_features_frac"] = params_.max_features_frac;
  params["bootstrap_frac"] = params_.bootstrap_frac;
  j["params"] = std::move(params);
  Json trees = Json::array();
  for (const auto& tree : trees_) trees.push_back(tree.to_json());
  j["trees"] = std::move(trees);
  return j;
}

std::unique_ptr<RandomForest> RandomForest::from_json(const Json& j) {
  ANB_CHECK(j.at("type").as_string() == "rf",
            "RandomForest::from_json: wrong type tag");
  const Json& p = j.at("params");
  RandomForestParams params;
  params.n_trees = p.at("n_trees").as_int();
  params.max_depth = p.at("max_depth").as_int();
  params.min_samples_leaf = p.at("min_samples_leaf").as_number();
  params.max_features_frac = p.at("max_features_frac").as_number();
  params.bootstrap_frac = p.at("bootstrap_frac").as_number();
  auto model = std::make_unique<RandomForest>(params);
  for (const auto& jt : j.at("trees").as_array())
    model->trees_.push_back(RegressionTree::from_json(jt));
  model->rebuild_flat();
  return model;
}

}  // namespace anb
