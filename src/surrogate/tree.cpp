#include "anb/surrogate/tree.hpp"

#include <algorithm>
#include <limits>

#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

RegressionTree::RegressionTree(std::vector<TreeNode> nodes)
    : nodes_(std::move(nodes)) {
  ANB_CHECK(!nodes_.empty(), "RegressionTree: empty node list");
}

double RegressionTree::predict(std::span<const double> x) const {
  ANB_CHECK(!nodes_.empty(), "RegressionTree::predict: tree not fitted");
  int i = 0;
  while (nodes_[static_cast<std::size_t>(i)].feature >= 0) {
    const auto& n = nodes_[static_cast<std::size_t>(i)];
    ANB_CHECK(static_cast<std::size_t>(n.feature) < x.size(),
              "RegressionTree::predict: feature index out of range");
    i = x[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(i)].value;
}

void RegressionTree::predict_batch(std::span<const double> rows,
                                   std::size_t num_features,
                                   std::span<double> out) const {
  ANB_CHECK(!nodes_.empty(), "RegressionTree::predict_batch: tree not fitted");
  ANB_CHECK(num_features > 0 && rows.size() == out.size() * num_features,
            "RegressionTree::predict_batch: row matrix / output size "
            "mismatch");
  for (const auto& n : nodes_) {
    ANB_CHECK(n.feature < static_cast<int>(num_features),
              "RegressionTree::predict_batch: feature index out of range");
  }
  const TreeNode* const nodes = nodes_.data();
  const double* x = rows.data();
  for (std::size_t i = 0; i < out.size(); ++i, x += num_features) {
    int at = 0;
    while (nodes[at].feature >= 0) {
      const TreeNode& n = nodes[at];
      at = x[n.feature] < n.threshold ? n.left : n.right;
    }
    out[i] = nodes[at].value;
  }
}

int RegressionTree::num_leaves() const {
  int leaves = 0;
  for (const auto& n : nodes_)
    if (n.feature < 0) ++leaves;
  return leaves;
}

Json RegressionTree::to_json() const {
  Json arr = Json::array();
  for (const auto& n : nodes_) {
    Json jn = Json::object();
    jn["f"] = n.feature;
    jn["t"] = n.threshold;
    jn["l"] = n.left;
    jn["r"] = n.right;
    jn["v"] = n.value;
    arr.push_back(std::move(jn));
  }
  return arr;
}

RegressionTree RegressionTree::from_json(const Json& j) {
  std::vector<TreeNode> nodes;
  for (const auto& jn : j.as_array()) {
    TreeNode n;
    n.feature = jn.at("f").as_int();
    n.threshold = jn.at("t").as_number();
    n.left = jn.at("l").as_int();
    n.right = jn.at("r").as_int();
    n.value = jn.at("v").as_number();
    const int count = static_cast<int>(j.size());
    ANB_CHECK(n.feature < 0 || (n.left >= 0 && n.left < count && n.right >= 0 &&
                                n.right < count),
              "RegressionTree::from_json: dangling child index");
    nodes.push_back(n);
  }
  return RegressionTree(std::move(nodes));
}

ColumnIndex::ColumnIndex(const Dataset& data)
    : num_features_(data.num_features()), num_rows_(data.size()) {
  ANB_CHECK(num_rows_ > 0, "ColumnIndex: empty dataset");
  order_.resize(num_features_ * num_rows_);
  values_.resize(num_features_ * num_rows_);
  // Column slices are disjoint and each stable_sort is deterministic, so the
  // parallel build is bit-identical to a serial one.
  parallel_for(num_features_, [&](std::size_t f) {
    auto* begin = order_.data() + f * num_rows_;
    for (std::size_t i = 0; i < num_rows_; ++i)
      begin[i] = static_cast<std::uint32_t>(i);
    std::stable_sort(begin, begin + num_rows_,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return data.feature(a, f) < data.feature(b, f);
                     });
    auto* vals = values_.data() + f * num_rows_;
    for (std::size_t i = 0; i < num_rows_; ++i)
      vals[i] = data.feature(begin[i], f);
  });
}

std::span<const double> ColumnIndex::sorted_values(std::size_t f) const {
  ANB_CHECK(f < num_features_, "ColumnIndex: feature out of range");
  return {values_.data() + f * num_rows_, num_rows_};
}

std::span<const std::uint32_t> ColumnIndex::sorted_rows(std::size_t f) const {
  ANB_CHECK(f < num_features_, "ColumnIndex: feature out of range");
  return {order_.data() + f * num_rows_, num_rows_};
}

namespace {

struct NodeStats {
  double g = 0.0, h = 0.0, w = 0.0;
};

struct BestSplit {
  double gain = -std::numeric_limits<double>::infinity();
  int feature = -1;
  double threshold = 0.0;
};

double leaf_gain(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

}  // namespace

RegressionTree build_tree(const Dataset& data, const ColumnIndex& columns,
                          std::span<const double> g, std::span<const double> h,
                          std::span<const double> row_weight,
                          const TreeParams& params, Rng& rng) {
  const std::size_t n = data.size();
  const std::size_t d = data.num_features();
  ANB_CHECK(g.size() == n && h.size() == n && row_weight.size() == n,
            "build_tree: gradient/weight arrays must match dataset size");
  ANB_CHECK(columns.num_features() == d,
            "build_tree: column index feature count mismatch");
  ANB_CHECK(params.max_depth >= 1, "build_tree: max_depth must be >= 1");
  ANB_CHECK(params.lambda >= 0.0, "build_tree: lambda must be >= 0");

  std::vector<TreeNode> nodes(1);
  // position[i]: index into `active` of the node row i currently sits in.
  std::vector<int> position(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    if (row_weight[i] == 0.0) position[i] = -1;

  std::vector<int> active{0};  // node ids at the current level

  for (int depth = 0; depth < params.max_depth && !active.empty(); ++depth) {
    const std::size_t na = active.size();

    // Totals per active node.
    std::vector<NodeStats> total(na);
    for (std::size_t i = 0; i < n; ++i) {
      const int p = position[i];
      if (p < 0) continue;
      const double w = row_weight[i];
      total[static_cast<std::size_t>(p)].g += w * g[i];
      total[static_cast<std::size_t>(p)].h += w * h[i];
      total[static_cast<std::size_t>(p)].w += w;
    }

    // Optional per-node feature subsampling (random-forest style).
    std::vector<char> allowed;
    const bool subsample_features =
        params.features_per_node > 0 &&
        static_cast<std::size_t>(params.features_per_node) < d;
    if (subsample_features) {
      allowed.assign(na * d, 0);
      for (std::size_t a = 0; a < na; ++a) {
        for (std::size_t f : rng.sample_indices(
                 d, static_cast<std::size_t>(params.features_per_node))) {
          allowed[a * d + f] = 1;
        }
      }
    }

    std::vector<BestSplit> best(na);
    // Left-accumulator state per node, reset for each feature scan.
    std::vector<NodeStats> left(na);
    std::vector<double> last_value(na, 0.0);
    std::vector<char> has_prev(na, 0);

    for (std::size_t f = 0; f < d; ++f) {
      std::fill(left.begin(), left.end(), NodeStats{});
      std::fill(has_prev.begin(), has_prev.end(), 0);

      const auto rows_sorted = columns.sorted_rows(f);
      const auto vals_sorted = columns.sorted_values(f);
      for (std::size_t s = 0; s < rows_sorted.size(); ++s) {
        const std::uint32_t row = rows_sorted[s];
        const int p = position[row];
        if (p < 0) continue;
        const auto a = static_cast<std::size_t>(p);
        if (subsample_features && !allowed[a * d + f]) continue;
        const double v = vals_sorted[s];

        if (has_prev[a] && v > last_value[a]) {
          // Candidate split between last_value and v.
          const NodeStats& tot = total[a];
          const NodeStats& l = left[a];
          const double rg = tot.g - l.g;
          const double rh = tot.h - l.h;
          const double rw = tot.w - l.w;
          if (l.h >= params.min_child_weight &&
              rh >= params.min_child_weight &&
              l.w >= params.min_samples_leaf &&
              rw >= params.min_samples_leaf) {
            const double gain = leaf_gain(l.g, l.h, params.lambda) +
                                leaf_gain(rg, rh, params.lambda) -
                                leaf_gain(tot.g, tot.h, params.lambda);
            if (gain > best[a].gain) {
              best[a] = {gain, static_cast<int>(f),
                         0.5 * (last_value[a] + v)};
            }
          }
        }
        const double w = row_weight[row];
        left[a].g += w * g[row];
        left[a].h += w * h[row];
        left[a].w += w;
        last_value[a] = v;
        has_prev[a] = 1;
      }
    }

    // Materialize splits / leaves and the next level.
    std::vector<int> next_active;
    // child_base[a] = index of node a's left child in next_active, or -1.
    std::vector<int> child_base(na, -1);
    for (std::size_t a = 0; a < na; ++a) {
      const auto node_idx = static_cast<std::size_t>(active[a]);
      // Depth is bounded by the loop itself: splitting at level
      // max_depth-1 creates children that the post-loop pass turns into
      // leaves, so a max_depth=1 tree is a single stump.
      const bool do_split = best[a].feature >= 0 && best[a].gain > params.gamma;
      if (do_split) {
        // emplace_back below may reallocate `nodes`: finish every write
        // through the node reference first and keep the child indices in
        // locals (heap-use-after-free otherwise; caught by ASan).
        const int left_child = static_cast<int>(nodes.size());
        {
          TreeNode& node = nodes[node_idx];
          node.feature = best[a].feature;
          node.threshold = best[a].threshold;
          node.left = left_child;
          node.right = left_child + 1;
        }
        nodes.emplace_back();
        nodes.emplace_back();
        child_base[a] = static_cast<int>(next_active.size());
        next_active.push_back(left_child);
        next_active.push_back(left_child + 1);
      } else {
        TreeNode& node = nodes[node_idx];
        node.feature = -1;
        node.value = total[a].w > 0.0
                         ? -total[a].g / (total[a].h + params.lambda)
                         : 0.0;
      }
    }

    // Route rows to children (or retire them in finished leaves).
    for (std::size_t i = 0; i < n; ++i) {
      const int p = position[i];
      if (p < 0) continue;
      const auto a = static_cast<std::size_t>(p);
      if (child_base[a] < 0) {
        position[i] = -1;
        continue;
      }
      const TreeNode& node = nodes[static_cast<std::size_t>(active[a])];
      const bool goes_left =
          data.feature(i, static_cast<std::size_t>(node.feature)) <
          node.threshold;
      position[i] = child_base[a] + (goes_left ? 0 : 1);
    }
    active = std::move(next_active);
  }

  // Any nodes still active at max depth become leaves.
  if (!active.empty()) {
    std::vector<NodeStats> total(active.size());
    for (std::size_t i = 0; i < n; ++i) {
      const int p = position[i];
      if (p < 0) continue;
      const double w = row_weight[i];
      total[static_cast<std::size_t>(p)].g += w * g[i];
      total[static_cast<std::size_t>(p)].h += w * h[i];
      total[static_cast<std::size_t>(p)].w += w;
    }
    for (std::size_t a = 0; a < active.size(); ++a) {
      TreeNode& node = nodes[static_cast<std::size_t>(active[a])];
      node.feature = -1;
      node.value = total[a].w > 0.0
                       ? -total[a].g / (total[a].h + params.lambda)
                       : 0.0;
    }
  }

  return RegressionTree(std::move(nodes));
}

}  // namespace anb
