#include "anb/surrogate/svr.hpp"

#include <algorithm>
#include <cmath>

#include "anb/surrogate/smo.hpp"
#include "anb/util/binary.hpp"
#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/error.hpp"
#include "anb/util/stats.hpp"

namespace anb {

Svr::Svr(SvrParams params) : params_(std::move(params)) {
  ANB_CHECK(params_.c > 0.0, "Svr: C must be > 0");
  ANB_CHECK(params_.epsilon >= 0.0, "Svr: epsilon must be >= 0");
  ANB_CHECK(params_.nu > 0.0 && params_.nu < 1.0, "Svr: nu must be in (0, 1)");
  ANB_CHECK(params_.tolerance > 0.0, "Svr: tolerance must be > 0");
}

double Svr::gamma_value(std::size_t num_features) const {
  return params_.gamma > 0.0
             ? params_.gamma
             : 1.0 / static_cast<double>(num_features);
}

Svr::FitOutput Svr::solve_epsilon(const std::vector<std::vector<float>>& kernel,
                                  std::span<const double> y,
                                  double epsilon) const {
  const int n = static_cast<int>(y.size());
  // libsvm's ε-SVR mapping: 2n dual variables, the first n are α (+1 sign),
  // the last n are α* (−1 sign); Q̃_st = sign_s sign_t K(s%n, t%n).
  SmoSolver::Problem prob;
  prob.n = 2 * n;
  prob.p.resize(static_cast<std::size_t>(2 * n));
  prob.y.resize(static_cast<std::size_t>(2 * n));
  prob.c.assign(static_cast<std::size_t>(2 * n), params_.c);
  for (int i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    prob.p[si] = epsilon - y[si];
    prob.y[si] = +1;
    prob.p[si + static_cast<std::size_t>(n)] = epsilon + y[si];
    prob.y[si + static_cast<std::size_t>(n)] = -1;
  }
  prob.tolerance = params_.tolerance;
  prob.q_column = [&kernel, n](int col, std::vector<double>& out) {
    const int real_col = col % n;
    const double sign_col = col < n ? 1.0 : -1.0;
    const auto& krow = kernel[static_cast<std::size_t>(real_col)];
    for (int t = 0; t < n; ++t) {
      const double q = sign_col * krow[static_cast<std::size_t>(t)];
      out[static_cast<std::size_t>(t)] = q;
      out[static_cast<std::size_t>(t + n)] = -q;
    }
  };

  const auto result = SmoSolver::solve(prob);
  FitOutput fit;
  fit.coef.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fit.coef[static_cast<std::size_t>(i)] =
        result.alpha[static_cast<std::size_t>(i)] -
        result.alpha[static_cast<std::size_t>(i + n)];
  }
  fit.bias = -result.rho;
  return fit;
}

void Svr::fit(const Dataset& train, Rng& /*rng*/) {
  ANB_SPAN("anb.fit.svr");
  obs::counter("anb.fit.svr.count").add(1);
  const std::size_t n = train.size();
  const std::size_t d = train.num_features();
  ANB_CHECK(n >= 2, "Svr::fit: need at least 2 rows");
  ANB_CHECK(n <= 8000,
            "Svr::fit: dense kernel solver supports at most 8000 rows");

  // --- standardize features and targets ---
  std::vector<double> feat_mean(d, 0.0);
  std::vector<double> feat_scale(d, 1.0);
  for (std::size_t f = 0; f < d; ++f) {
    double m = 0.0;
    for (std::size_t i = 0; i < n; ++i) m += train.feature(i, f);
    m /= static_cast<double>(n);
    double ss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double c = train.feature(i, f) - m;
      ss += c * c;
    }
    const double sd = std::sqrt(ss / static_cast<double>(n));
    feat_mean[f] = m;
    feat_scale[f] = sd > 1e-12 ? sd : 1.0;
  }
  target_mean_ = mean(train.targets());
  {
    double ss = 0.0;
    for (double t : train.targets()) ss += (t - target_mean_) * (t - target_mean_);
    const double sd = std::sqrt(ss / static_cast<double>(n));
    target_scale_ = sd > 1e-12 ? sd : 1.0;
  }

  std::vector<std::vector<double>> x(n, std::vector<double>(d));
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < d; ++f)
      x[i][f] = (train.feature(i, f) - feat_mean[f]) / feat_scale[f];
    y[i] = (train.target(i) - target_mean_) / target_scale_;
  }

  // --- dense RBF kernel matrix ---
  const double gamma = gamma_value(d);
  std::vector<std::vector<float>> kernel(n, std::vector<float>(n));
  for (std::size_t i = 0; i < n; ++i) {
    kernel[i][i] = 1.0f;
    for (std::size_t j = i + 1; j < n; ++j) {
      double dist2 = 0.0;
      for (std::size_t f = 0; f < d; ++f) {
        const double diff = x[i][f] - x[j][f];
        dist2 += diff * diff;
      }
      const auto k = static_cast<float>(std::exp(-gamma * dist2));
      kernel[i][j] = k;
      kernel[j][i] = k;
    }
  }

  FitOutput fit_out;
  if (params_.kind == SvrKind::kEpsilon) {
    effective_epsilon_ = params_.epsilon;
    fit_out = solve_epsilon(kernel, y, params_.epsilon);
  } else {
    // ν-SVR by bisection on ε: the out-of-tube fraction is decreasing in ε,
    // and ν-SVR's optimal tube satisfies fraction ≈ ν (Schölkopf et al.).
    double lo = 0.0;
    double hi = 2.0;  // standardized targets: 2σ tube already excludes ~0
    double best_eps = params_.epsilon;
    for (int iter = 0; iter < 12; ++iter) {
      const double eps = 0.5 * (lo + hi);
      fit_out = solve_epsilon(kernel, y, eps);
      // Out-of-tube fraction of the training residuals.
      int outside = 0;
      for (std::size_t i = 0; i < n; ++i) {
        double f = fit_out.bias;
        for (std::size_t j = 0; j < n; ++j)
          f += fit_out.coef[j] * kernel[j][i];
        if (std::abs(y[i] - f) > eps) ++outside;
      }
      const double frac = static_cast<double>(outside) / static_cast<double>(n);
      best_eps = eps;
      if (frac > params_.nu) {
        lo = eps;  // tube too narrow
      } else {
        hi = eps;
      }
      if (hi - lo < 1e-3) break;
    }
    effective_epsilon_ = best_eps;
    fit_out = solve_epsilon(kernel, y, best_eps);
  }

  // Keep only support vectors (nonzero dual coefficients), flattened
  // row-major — the layout predict_batch streams and the binary artifact
  // stores verbatim.
  std::vector<double> sv_flat;
  std::vector<double> sv_coef;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(fit_out.coef[i]) > 1e-12) {
      sv_flat.insert(sv_flat.end(), x[i].begin(), x[i].end());
      sv_coef.push_back(fit_out.coef[i]);
    }
  }
  bias_ = fit_out.bias;
  ANB_CHECK(!sv_coef.empty(),
            "Svr::fit: no support vectors (epsilon tube too wide?)");
  feat_mean_ = io::ArrayRef<double>(std::move(feat_mean));
  feat_scale_ = io::ArrayRef<double>(std::move(feat_scale));
  sv_coef_ = io::ArrayRef<double>(std::move(sv_coef));
  sv_flat_ = io::ArrayRef<double>(std::move(sv_flat));
}

double Svr::predict(std::span<const double> x) const {
  double out = 0.0;
  predict_batch(x, x.size(), {&out, 1});
  return out;
}

void Svr::predict_batch(std::span<const double> rows,
                        std::size_t num_features,
                        std::span<double> out) const {
  ANB_CHECK(!sv_coef_.empty(), "Svr::predict_batch: model not fitted");
  ANB_CHECK(num_features == feat_mean_.size(),
            "Svr::predict_batch: feature dimension mismatch");
  ANB_CHECK(rows.size() == out.size() * num_features,
            "Svr::predict_batch: row matrix / output size mismatch");
  const std::size_t d = num_features;
  const double gamma = gamma_value(d);
  const std::size_t n_sv = sv_coef_.size();

  // Row blocks keep the standardized block plus the support-vector matrix
  // streaming through cache; per row the kernel terms accumulate in
  // support-vector order, exactly as the one-row case.
  constexpr std::size_t kBlock = 64;
  std::vector<double> xs(kBlock * d);
  for (std::size_t begin = 0; begin < out.size(); begin += kBlock) {
    const std::size_t end = std::min(out.size(), begin + kBlock);
    const std::size_t bn = end - begin;
    for (std::size_t i = 0; i < bn; ++i) {
      const double* x = rows.data() + (begin + i) * d;
      double* row_xs = xs.data() + i * d;
      for (std::size_t f = 0; f < d; ++f)
        row_xs[f] = (x[f] - feat_mean_[f]) / feat_scale_[f];
    }
    for (std::size_t i = begin; i < end; ++i) out[i] = bias_;
    for (std::size_t s = 0; s < n_sv; ++s) {
      const double* sv = sv_flat_.data() + s * d;
      const double coef = sv_coef_[s];
      for (std::size_t i = 0; i < bn; ++i) {
        const double* row_xs = xs.data() + i * d;
        double dist2 = 0.0;
        for (std::size_t k = 0; k < d; ++k) {
          const double diff = row_xs[k] - sv[k];
          dist2 += diff * diff;
        }
        out[begin + i] += coef * std::exp(-gamma * dist2);
      }
    }
    for (std::size_t i = begin; i < end; ++i)
      out[i] = out[i] * target_scale_ + target_mean_;
  }
}

namespace {

Json svr_params_json(const SvrParams& p) {
  Json params = Json::object();
  params["c"] = p.c;
  params["epsilon"] = p.epsilon;
  params["nu"] = p.nu;
  params["gamma"] = p.gamma;
  params["tolerance"] = p.tolerance;
  return params;
}

SvrParams svr_params_from_json(const std::string& type, const Json& p) {
  SvrParams params;
  params.kind = type == "esvr" ? SvrKind::kEpsilon : SvrKind::kNu;
  params.c = p.at("c").as_number();
  params.epsilon = p.at("epsilon").as_number();
  params.nu = p.at("nu").as_number();
  params.gamma = p.at("gamma").as_number();
  params.tolerance = p.at("tolerance").as_number();
  return params;
}

}  // namespace

Json Svr::to_json() const {
  Json j = Json::object();
  j["type"] = name();
  j["params"] = svr_params_json(params_);
  j["effective_epsilon"] = effective_epsilon_;
  j["feat_mean"] = Json::array_of(feat_mean_.to_vector());
  j["feat_scale"] = Json::array_of(feat_scale_.to_vector());
  j["target_mean"] = target_mean_;
  j["target_scale"] = target_scale_;
  j["bias"] = bias_;
  j["sv_coef"] = Json::array_of(sv_coef_.to_vector());
  // Nested per-vector rows (the text format) sliced back out of the flat
  // row-major matrix.
  const std::size_t d = feat_mean_.size();
  Json svs = Json::array();
  for (std::size_t s = 0; s < sv_coef_.size(); ++s) {
    svs.push_back(Json::array_of(std::vector<double>(
        sv_flat_.begin() + static_cast<std::ptrdiff_t>(s * d),
        sv_flat_.begin() + static_cast<std::ptrdiff_t>((s + 1) * d))));
  }
  j["support_vectors"] = std::move(svs);
  return j;
}

std::unique_ptr<Svr> Svr::from_json(const Json& j) {
  const std::string& type = j.at("type").as_string();
  ANB_CHECK(type == "esvr" || type == "nusvr",
            "Svr::from_json: wrong type tag");
  auto model = std::make_unique<Svr>(svr_params_from_json(type, j.at("params")));
  model->effective_epsilon_ = j.at("effective_epsilon").as_number();
  std::vector<double> feat_mean = j.at("feat_mean").as_double_vector();
  std::vector<double> feat_scale = j.at("feat_scale").as_double_vector();
  model->target_mean_ = j.at("target_mean").as_number();
  model->target_scale_ = j.at("target_scale").as_number();
  model->bias_ = j.at("bias").as_number();
  std::vector<double> sv_coef = j.at("sv_coef").as_double_vector();
  ANB_CHECK(feat_mean.size() == feat_scale.size(),
            "Svr::from_json: feature mean/scale size mismatch");
  std::vector<double> sv_flat;
  sv_flat.reserve(sv_coef.size() * feat_mean.size());
  for (const auto& jsv : j.at("support_vectors").as_array()) {
    const std::vector<double> sv = jsv.as_double_vector();
    ANB_CHECK(sv.size() == feat_mean.size(),
              "Svr::from_json: support vector dimension mismatch");
    sv_flat.insert(sv_flat.end(), sv.begin(), sv.end());
  }
  ANB_CHECK(sv_flat.size() == sv_coef.size() * feat_mean.size(),
            "Svr::from_json: coef/support-vector count mismatch");
  ANB_CHECK(!sv_coef.empty(), "Svr::from_json: no support vectors");
  model->feat_mean_ = io::ArrayRef<double>(std::move(feat_mean));
  model->feat_scale_ = io::ArrayRef<double>(std::move(feat_scale));
  model->sv_coef_ = io::ArrayRef<double>(std::move(sv_coef));
  model->sv_flat_ = io::ArrayRef<double>(std::move(sv_flat));
  return model;
}

Json Svr::to_binary(bin::Writer& w) const {
  ANB_CHECK(!sv_coef_.empty(), "Svr::to_binary: model not fitted");
  Json j = Json::object();
  j["type"] = name();
  j["params"] = svr_params_json(params_);
  j["effective_epsilon"] = effective_epsilon_;
  j["target_mean"] = target_mean_;
  j["target_scale"] = target_scale_;
  j["bias"] = bias_;
  j["feat_mean"] =
      static_cast<int>(w.add_array(bin::Tag::kF64, feat_mean_.span()));
  j["feat_scale"] =
      static_cast<int>(w.add_array(bin::Tag::kF64, feat_scale_.span()));
  j["sv_coef"] =
      static_cast<int>(w.add_array(bin::Tag::kF64, sv_coef_.span()));
  j["sv_flat"] =
      static_cast<int>(w.add_array(bin::Tag::kF64, sv_flat_.span()));
  return j;
}

std::unique_ptr<Svr> Svr::from_binary(const Json& meta, const bin::Reader& r) {
  const std::string& type = meta.at("type").as_string();
  ANB_CHECK(type == "esvr" || type == "nusvr",
            "Svr::from_binary: wrong type tag");
  auto model =
      std::make_unique<Svr>(svr_params_from_json(type, meta.at("params")));
  model->effective_epsilon_ = meta.at("effective_epsilon").as_number();
  model->target_mean_ = meta.at("target_mean").as_number();
  model->target_scale_ = meta.at("target_scale").as_number();
  model->bias_ = meta.at("bias").as_number();
  auto f64 = [&](const char* key) {
    return r.array<double>(
        static_cast<std::uint32_t>(meta.at(key).as_int()), bin::Tag::kF64);
  };
  model->feat_mean_ = f64("feat_mean");
  model->feat_scale_ = f64("feat_scale");
  model->sv_coef_ = f64("sv_coef");
  model->sv_flat_ = f64("sv_flat");
  ANB_CHECK(model->feat_mean_.size() == model->feat_scale_.size(),
            "Svr::from_binary: feature mean/scale size mismatch");
  ANB_CHECK(!model->sv_coef_.empty(), "Svr::from_binary: no support vectors");
  ANB_CHECK(model->sv_flat_.size() ==
                model->sv_coef_.size() * model->feat_mean_.size(),
            "Svr::from_binary: coef/support-vector count mismatch");
  return model;
}

}  // namespace anb
