#include "anb/surrogate/flat_forest.hpp"

#include <algorithm>
#include <limits>

#include "anb/util/error.hpp"

namespace anb {

namespace {

/// Rows per block of the tree-major traversal. 64 rows x 63 features x 8
/// bytes ≈ 32 KB of features per block — small enough that the block plus
/// one tree's nodes stay resident in L1/L2 while the tree is re-walked for
/// every row of the block.
constexpr std::size_t kRowBlock = 64;

/// Advance one row one level. Leaves self-loop, so the step is uniform
/// whether or not the row has reached its leaf — and "index unchanged" is
/// exactly the leaf test (internal nodes never point at themselves; the
/// constructor validates this).
inline std::int32_t step(const FlatNode* nodes, std::int32_t at,
                         const double* x) {
  const FlatNode node = nodes[at];
  return x[node.feature] < node.split ? node.left : node.right;
}

}  // namespace

FlatForest::FlatForest(std::span<const RegressionTree> trees) {
  std::vector<FlatNode> nodes;
  std::vector<std::int32_t> roots;
  std::size_t total = 0;
  for (const auto& tree : trees) total += tree.nodes().size();
  nodes.reserve(total);
  roots.reserve(trees.size());

  for (const auto& tree : trees) {
    const auto& src = tree.nodes();
    ANB_CHECK(!src.empty(), "FlatForest: tree with no nodes");
    const auto base = static_cast<std::int32_t>(nodes.size());
    roots.push_back(base);
    const auto count = static_cast<std::int32_t>(src.size());
    for (std::int32_t i = 0; i < count; ++i) {
      const TreeNode& n = src[static_cast<std::size_t>(i)];
      FlatNode fn;
      if (n.feature >= 0) {
        ANB_CHECK(n.left >= 0 && n.left < count && n.right >= 0 &&
                      n.right < count,
                  "FlatForest: dangling child index");
        ANB_CHECK(n.left != i && n.right != i,
                  "FlatForest: internal node is its own child");
        fn.split = n.threshold;
        fn.feature = n.feature;
        fn.left = base + n.left;
        fn.right = base + n.right;
      } else {
        // Leaf: value in the split slot, children self-loop. A row that
        // has reached its leaf becomes a fixed point of step().
        fn.split = n.value;
        fn.feature = 0;
        fn.left = base + i;
        fn.right = base + i;
      }
      nodes.push_back(fn);
    }
  }
  nodes_ = io::ArrayRef<FlatNode>(std::move(nodes));
  roots_ = io::ArrayRef<std::int32_t>(std::move(roots));
  validate();
}

FlatForest::FlatForest(io::ArrayRef<FlatNode> nodes,
                       io::ArrayRef<std::int32_t> roots)
    : nodes_(std::move(nodes)), roots_(std::move(roots)) {
  validate();
}

void FlatForest::validate() {
  // Full structural audit: after this, accumulate()/predict_tree() may
  // index nodes_ and x without per-step checks even when the arrays are
  // untrusted views into a binary artifact.
  max_feature_ = -1;
  const std::size_t num_nodes = nodes_.size();
  const std::size_t num_trees = roots_.size();
  ANB_CHECK(num_nodes <= static_cast<std::size_t>(
                             std::numeric_limits<std::int32_t>::max()),
            "FlatForest: node count exceeds int32 indexing");
  if (num_trees == 0) {
    ANB_CHECK(num_nodes == 0, "FlatForest: nodes without any tree roots");
    return;
  }
  ANB_CHECK(roots_[0] == 0, "FlatForest: first tree root must be 0");
  for (std::size_t t = 0; t < num_trees; ++t) {
    const std::int32_t lo = roots_[t];
    const std::int32_t hi = t + 1 < num_trees
                                ? roots_[t + 1]
                                : static_cast<std::int32_t>(num_nodes);
    ANB_CHECK(lo < hi && hi <= static_cast<std::int32_t>(num_nodes),
              "FlatForest: tree roots not ascending / tree empty");
    for (std::int32_t i = lo; i < hi; ++i) {
      const FlatNode& n = nodes_[static_cast<std::size_t>(i)];
      ANB_CHECK(n.left >= lo && n.left < hi && n.right >= lo && n.right < hi,
                "FlatForest: child index escapes its tree");
      if (n.left == i && n.right == i) {
        // Leaf. Canonical form pins the feature slot to 0 (step() still
        // reads x[feature] on self-loop passes, so it must be in range;
        // 0 also makes the binary round-trip byte-stable).
        ANB_CHECK(n.feature == 0, "FlatForest: leaf feature slot must be 0");
      } else {
        ANB_CHECK(n.left != i && n.right != i,
                  "FlatForest: internal node is its own child");
        ANB_CHECK(n.feature >= 0, "FlatForest: negative feature index");
        max_feature_ = std::max(max_feature_, n.feature);
      }
    }
  }
}

double FlatForest::predict_tree(std::size_t t, std::span<const double> x) const {
  ANB_CHECK(t < roots_.size(), "FlatForest::predict_tree: tree index out of "
                               "range");
  ANB_CHECK(max_feature_ < static_cast<std::int32_t>(x.size()),
            "FlatForest::predict_tree: feature index out of range");
  const FlatNode* const nodes = nodes_.data();
  std::int32_t at = roots_[t];
  for (std::int32_t next = step(nodes, at, x.data()); next != at;
       next = step(nodes, at, x.data())) {
    at = next;
  }
  return nodes[at].split;
}

std::vector<RegressionTree> FlatForest::to_trees() const {
  std::vector<RegressionTree> out;
  out.reserve(roots_.size());
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const std::int32_t lo = roots_[t];
    const std::int32_t hi = t + 1 < roots_.size()
                                ? roots_[t + 1]
                                : static_cast<std::int32_t>(nodes_.size());
    std::vector<TreeNode> nodes(static_cast<std::size_t>(hi - lo));
    for (std::int32_t i = lo; i < hi; ++i) {
      const FlatNode& fn = nodes_[static_cast<std::size_t>(i)];
      TreeNode& n = nodes[static_cast<std::size_t>(i - lo)];
      if (fn.left == i && fn.right == i) {
        n.feature = -1;
        n.value = fn.split;
      } else {
        n.feature = fn.feature;
        n.threshold = fn.split;
        n.left = fn.left - lo;
        n.right = fn.right - lo;
      }
    }
    out.emplace_back(std::move(nodes));
  }
  return out;
}

void FlatForest::accumulate(std::span<const double> rows,
                            std::size_t num_features, double scale,
                            std::span<double> out) const {
  ANB_CHECK(!roots_.empty(), "FlatForest::accumulate: empty forest");
  ANB_CHECK(num_features > 0 &&
                rows.size() == out.size() * num_features,
            "FlatForest::accumulate: row matrix / output size mismatch");
  ANB_CHECK(max_feature_ < static_cast<std::int32_t>(num_features),
            "FlatForest::accumulate: feature index out of range");

  const FlatNode* const nodes = nodes_.data();
  const double* const data = rows.data();
  const std::size_t n = out.size();

  for (std::size_t begin = 0; begin < n; begin += kRowBlock) {
    const std::size_t nb = std::min(n - begin, kRowBlock);
    const double* const block = data + begin * num_features;
    // Two consecutive trees walk four rows in lockstep: eight mutually
    // independent pointer-chase chains overlap in flight (the scalar
    // path's main stall is this chain's serial latency). Pairing trees
    // instead of widening to eight rows keeps the settle waste small:
    // the loop runs to the deeper of the two trees' four-row descents,
    // and consecutive boosted trees have near-identical depths. The
    // fixed point of step() (self-looping leaves) is the combined
    // "everyone reached a leaf" test.
    std::size_t t = 0;
    for (; t + 2 <= roots_.size(); t += 2) {
      const std::int32_t root0 = roots_[t];
      const std::int32_t root1 = roots_[t + 1];
      std::size_t i = 0;
      for (; i + 4 <= nb; i += 4) {
        const double* const x0 = block + i * num_features;
        const double* const x1 = x0 + num_features;
        const double* const x2 = x1 + num_features;
        const double* const x3 = x2 + num_features;
        std::int32_t a0 = root0, a1 = root0, a2 = root0, a3 = root0;
        std::int32_t c0 = root1, c1 = root1, c2 = root1, c3 = root1;
        while (true) {
          const std::int32_t b0 = step(nodes, a0, x0);
          const std::int32_t b1 = step(nodes, a1, x1);
          const std::int32_t b2 = step(nodes, a2, x2);
          const std::int32_t b3 = step(nodes, a3, x3);
          const std::int32_t d0 = step(nodes, c0, x0);
          const std::int32_t d1 = step(nodes, c1, x1);
          const std::int32_t d2 = step(nodes, c2, x2);
          const std::int32_t d3 = step(nodes, c3, x3);
          const bool settled = (b0 == a0) & (b1 == a1) & (b2 == a2) &
                               (b3 == a3) & (d0 == c0) & (d1 == c1) &
                               (d2 == c2) & (d3 == c3);
          a0 = b0;
          a1 = b1;
          a2 = b2;
          a3 = b3;
          c0 = d0;
          c1 = d1;
          c2 = d2;
          c3 = d3;
          if (settled) break;
        }
        // Per row, tree t's contribution is added before tree t+1's —
        // the same accumulation order as the scalar loop.
        out[begin + i] += scale * nodes[a0].split;
        out[begin + i] += scale * nodes[c0].split;
        out[begin + i + 1] += scale * nodes[a1].split;
        out[begin + i + 1] += scale * nodes[c1].split;
        out[begin + i + 2] += scale * nodes[a2].split;
        out[begin + i + 2] += scale * nodes[c2].split;
        out[begin + i + 3] += scale * nodes[a3].split;
        out[begin + i + 3] += scale * nodes[c3].split;
      }
      for (; i < nb; ++i) {
        const double* const x = block + i * num_features;
        std::int32_t a = root0, c = root1;
        while (true) {
          const std::int32_t b = step(nodes, a, x);
          const std::int32_t d = step(nodes, c, x);
          const bool settled = (b == a) & (d == c);
          a = b;
          c = d;
          if (settled) break;
        }
        out[begin + i] += scale * nodes[a].split;
        out[begin + i] += scale * nodes[c].split;
      }
    }
    for (; t < roots_.size(); ++t) {
      const std::int32_t root = roots_[t];
      std::size_t i = 0;
      for (; i + 4 <= nb; i += 4) {
        const double* const x0 = block + i * num_features;
        const double* const x1 = x0 + num_features;
        const double* const x2 = x1 + num_features;
        const double* const x3 = x2 + num_features;
        std::int32_t a0 = root, a1 = root, a2 = root, a3 = root;
        while (true) {
          const std::int32_t b0 = step(nodes, a0, x0);
          const std::int32_t b1 = step(nodes, a1, x1);
          const std::int32_t b2 = step(nodes, a2, x2);
          const std::int32_t b3 = step(nodes, a3, x3);
          const bool settled =
              (b0 == a0) & (b1 == a1) & (b2 == a2) & (b3 == a3);
          a0 = b0;
          a1 = b1;
          a2 = b2;
          a3 = b3;
          if (settled) break;
        }
        out[begin + i] += scale * nodes[a0].split;
        out[begin + i + 1] += scale * nodes[a1].split;
        out[begin + i + 2] += scale * nodes[a2].split;
        out[begin + i + 3] += scale * nodes[a3].split;
      }
      for (; i < nb; ++i) {
        const double* const x = block + i * num_features;
        std::int32_t at = root;
        for (std::int32_t next = step(nodes, at, x); next != at;
             next = step(nodes, at, x)) {
          at = next;
        }
        out[begin + i] += scale * nodes[at].split;
      }
    }
  }
}

}  // namespace anb
