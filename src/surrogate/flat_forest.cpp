#include "anb/surrogate/flat_forest.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>

#include "anb/obs/registry.hpp"
#include "anb/util/error.hpp"
#include "anb/util/simd.hpp"
#include "descent_kernels.hpp"

namespace anb {

namespace {

/// Rows per block of the tree-major traversal. 64 rows x 63 features x 8
/// bytes ≈ 32 KB of features per block — small enough that the block plus
/// one tree's nodes stay resident in L1/L2 while the tree is re-walked for
/// every row of the block.
constexpr std::size_t kRowBlock = 64;

/// Advance one row one level. Leaves self-loop, so the step is uniform
/// whether or not the row has reached its leaf — and "index unchanged" is
/// exactly the leaf test (internal nodes never point at themselves; the
/// constructor validates this).
inline std::int32_t step(const FlatNode* nodes, std::int32_t at,
                         const double* x) {
  const FlatNode node = nodes[at];
  return x[node.feature] < node.split ? node.left : node.right;
}

/// Process-wide forced descent path (0 == kAuto). Relaxed is enough: the
/// override is test/bench scaffolding flipped while the engine is quiet.
std::atomic<int> g_forced_path{0};

/// Max distinct thresholds per feature the quantized path can encode: a
/// uint8 row code must order x against every threshold, and code 255 is
/// reserved so NaN rows can sit above every split code.
constexpr std::size_t kMaxThresholds = 255;

}  // namespace

const char* descent_path_name(DescentPath p) {
  switch (p) {
    case DescentPath::kAuto:
      return "auto";
    case DescentPath::kInterleaved:
      return "interleaved";
    case DescentPath::kSimd:
      return "simd";
    case DescentPath::kQuantized:
      return "quantized";
    case DescentPath::kMasked:
      return "masked";
  }
  return "unknown";
}

void set_descent_path_override(DescentPath p) {
  g_forced_path.store(static_cast<int>(p), std::memory_order_relaxed);
}

DescentPath descent_path_override() {
  return static_cast<DescentPath>(g_forced_path.load(std::memory_order_relaxed));
}

/// Derived lookaside for the SIMD paths. The on-disk .anbb format and the
/// in-memory source of truth stay AoS (FlatNode); these arrays are a pure
/// cache, rebuilt from nodes_ on demand and never serialized.
struct FlatForest::SimdTables {
  // Structure-of-arrays node layout, 64-byte aligned: one gather per
  // field instead of strided 24-byte AoS loads.
  simd::AlignedBuf<double> value;
  simd::AlignedBuf<std::int32_t> feature;
  simd::AlignedBuf<std::int32_t> left;
  simd::AlignedBuf<std::int32_t> right;
  simd::AlignedBuf<std::int32_t> roots;

  // Quantized descent tables (only when quant_ok):
  //  - qnodes: packed u64 per node (see detail::QuantView).
  //  - thr: per-feature sorted distinct thresholds, padded with +inf to a
  //    power of two so the row quantizer's branchless binary search runs
  //    a fixed ladder per feature. thr_off[f] is the feature's start;
  //    thr_half[f] is the first search step (L/2), 0 for unused features.
  bool quant_ok = false;
  std::size_t d_q = 0;  ///< quantized feature-code stride (max_feature+1)
  simd::AlignedBuf<std::uint64_t> qnodes;
  simd::AlignedBuf<double> thr;
  std::vector<std::uint32_t> thr_off;
  std::vector<std::uint32_t> thr_half;

  // Masked leaf-set tables (only when masked_ok: quant_ok and every tree
  // has <= 8 leaves). Internal nodes grouped per tree in mk_node_off
  // ranges; leaves numbered left to right per tree, values in mk_leaf at
  // mk_leaf_off. See detail::MaskedView for the evaluation scheme.
  bool masked_ok = false;
  simd::AlignedBuf<std::uint32_t> mk_feature;
  simd::AlignedBuf<std::uint8_t> mk_qsplit_x;  ///< threshold code ^ 0x80
  simd::AlignedBuf<std::uint8_t> mk_mask;      ///< ~(left-subtree leaf bits)
  simd::AlignedBuf<std::uint32_t> mk_node_off;
  simd::AlignedBuf<double> mk_leaf;
  simd::AlignedBuf<std::uint32_t> mk_leaf_off;

  detail::SoaView view;
  detail::QuantView qview;
  detail::MaskedView mview;
};

namespace {

/// Pick the kernel table for a dispatch target. AVX2 kernels live in
/// their own -mavx2 TU and may be absent (non-x86 toolchain); anything
/// unavailable degrades to the scalar instantiation, which is always
/// compiled into this TU.
const detail::DescentKernels& kernels_for(simd::Target target) {
  static const detail::DescentKernels scalar =
      detail::kernels::make_kernels<simd::ScalarIsa>();
#if defined(__ARM_NEON)
  static const detail::DescentKernels neon =
      detail::kernels::make_kernels<simd::NeonIsa>();
#endif
  switch (target) {
    case simd::Target::kAvx2:
      if (const auto* k = detail::avx2_descent_kernels()) return *k;
      break;
    case simd::Target::kNeon:
#if defined(__ARM_NEON)
      return neon;
#else
      break;
#endif
    case simd::Target::kScalar:
      break;
  }
  return scalar;
}

/// Quantize a row block against the forest's threshold tables: code(r,f)
/// counts thresholds of feature f that are <= x. Because thr_f is sorted
/// and distinct, `x < thr_f[j]  <=>  code < j+1`, so the descent's byte
/// compare against qsplit = j+1 reproduces every double compare exactly.
/// NaN gets code 255 (>= every qsplit <= 255): the walk always goes
/// right, matching IEEE `NaN < t == false` on the scalar path. +/-inf
/// need no special case — thresholds are finite, so the search counts all
/// or none.
inline std::uint8_t quantize_value(const FlatForest::SimdTables& tb,
                                   std::size_t f, double xv) {
  if (xv != xv) return 255;
  std::uint32_t pos = 0;
  if (const std::uint32_t half = tb.thr_half[f]) {
    const double* const t = tb.thr.data() + tb.thr_off[f];
    for (std::uint32_t stepw = half; stepw != 0; stepw >>= 1)
      if (t[pos + stepw - 1] <= xv) pos += stepw;
  }
  return static_cast<std::uint8_t>(pos);
}

void quantize_block(const FlatForest::SimdTables& tb, const double* rows,
                    std::size_t n, std::size_t num_features,
                    std::uint8_t* codes) {
  const std::size_t d_q = tb.d_q;
  for (std::size_t r = 0; r < n; ++r) {
    const double* const x = rows + r * num_features;
    std::uint8_t* const c = codes + r * d_q;
    for (std::size_t f = 0; f < d_q; ++f) c[f] = quantize_value(tb, f, x[f]);
  }
}

/// The masked engine's input layout: feature-major (stride n, so one
/// 32-byte load covers 32 rows of a feature) with every code XOR 0x80 so
/// the kernel's signed byte compare orders the unsigned codes. Rows are
/// read contiguously; the d_q strided byte streams each stay within one
/// cache line for 64 consecutive rows.
void quantize_transposed(const FlatForest::SimdTables& tb, const double* rows,
                         std::size_t n, std::size_t num_features,
                         std::uint8_t* codes_t) {
  const std::size_t d_q = tb.d_q;
  for (std::size_t r = 0; r < n; ++r) {
    const double* const x = rows + r * num_features;
    for (std::size_t f = 0; f < d_q; ++f)
      codes_t[f * n + r] =
          static_cast<std::uint8_t>(quantize_value(tb, f, x[f]) ^ 0x80);
  }
}

}  // namespace

FlatForest::FlatForest(std::span<const RegressionTree> trees) {
  std::vector<FlatNode> nodes;
  std::vector<std::int32_t> roots;
  std::size_t total = 0;
  for (const auto& tree : trees) total += tree.nodes().size();
  nodes.reserve(total);
  roots.reserve(trees.size());

  for (const auto& tree : trees) {
    const auto& src = tree.nodes();
    ANB_CHECK(!src.empty(), "FlatForest: tree with no nodes");
    const auto base = static_cast<std::int32_t>(nodes.size());
    roots.push_back(base);
    const auto count = static_cast<std::int32_t>(src.size());
    for (std::int32_t i = 0; i < count; ++i) {
      const TreeNode& n = src[static_cast<std::size_t>(i)];
      FlatNode fn;
      if (n.feature >= 0) {
        ANB_CHECK(n.left >= 0 && n.left < count && n.right >= 0 &&
                      n.right < count,
                  "FlatForest: dangling child index");
        ANB_CHECK(n.left != i && n.right != i,
                  "FlatForest: internal node is its own child");
        fn.split = n.threshold;
        fn.feature = n.feature;
        fn.left = base + n.left;
        fn.right = base + n.right;
      } else {
        // Leaf: value in the split slot, children self-loop. A row that
        // has reached its leaf becomes a fixed point of step().
        fn.split = n.value;
        fn.feature = 0;
        fn.left = base + i;
        fn.right = base + i;
      }
      nodes.push_back(fn);
    }
  }
  nodes_ = io::ArrayRef<FlatNode>(std::move(nodes));
  roots_ = io::ArrayRef<std::int32_t>(std::move(roots));
  validate();
}

FlatForest::FlatForest(io::ArrayRef<FlatNode> nodes,
                       io::ArrayRef<std::int32_t> roots)
    : nodes_(std::move(nodes)), roots_(std::move(roots)) {
  validate();
}

FlatForest::FlatForest() = default;

FlatForest::~FlatForest() = default;

FlatForest::FlatForest(FlatForest&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      roots_(std::move(other.roots_)),
      max_feature_(other.max_feature_) {}

FlatForest& FlatForest::operator=(FlatForest&& other) noexcept {
  if (this != &other) {
    nodes_ = std::move(other.nodes_);
    roots_ = std::move(other.roots_);
    max_feature_ = other.max_feature_;
    MutexLock lock(simd_mu_);
    simd_cache_.store(nullptr, std::memory_order_relaxed);
    simd_owned_.reset();
  }
  return *this;
}

FlatForest::FlatForest(const FlatForest& other)
    : nodes_(other.nodes_),
      roots_(other.roots_),
      max_feature_(other.max_feature_) {}

FlatForest& FlatForest::operator=(const FlatForest& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    roots_ = other.roots_;
    max_feature_ = other.max_feature_;
    MutexLock lock(simd_mu_);
    simd_cache_.store(nullptr, std::memory_order_relaxed);
    simd_owned_.reset();
  }
  return *this;
}

void FlatForest::validate() {
  // Full structural audit: after this, accumulate()/predict_tree() may
  // index nodes_ and x without per-step checks even when the arrays are
  // untrusted views into a binary artifact.
  max_feature_ = -1;
  const std::size_t num_nodes = nodes_.size();
  const std::size_t num_trees = roots_.size();
  ANB_CHECK(num_nodes <= static_cast<std::size_t>(
                             std::numeric_limits<std::int32_t>::max()),
            "FlatForest: node count exceeds int32 indexing");
  if (num_trees == 0) {
    ANB_CHECK(num_nodes == 0, "FlatForest: nodes without any tree roots");
    return;
  }
  ANB_CHECK(roots_[0] == 0, "FlatForest: first tree root must be 0");
  for (std::size_t t = 0; t < num_trees; ++t) {
    const std::int32_t lo = roots_[t];
    const std::int32_t hi = t + 1 < num_trees
                                ? roots_[t + 1]
                                : static_cast<std::int32_t>(num_nodes);
    ANB_CHECK(lo < hi && hi <= static_cast<std::int32_t>(num_nodes),
              "FlatForest: tree roots not ascending / tree empty");
    for (std::int32_t i = lo; i < hi; ++i) {
      const FlatNode& n = nodes_[static_cast<std::size_t>(i)];
      ANB_CHECK(n.left >= lo && n.left < hi && n.right >= lo && n.right < hi,
                "FlatForest: child index escapes its tree");
      if (n.left == i && n.right == i) {
        // Leaf. Canonical form pins the feature slot to 0 (step() still
        // reads x[feature] on self-loop passes, so it must be in range;
        // 0 also makes the binary round-trip byte-stable).
        ANB_CHECK(n.feature == 0, "FlatForest: leaf feature slot must be 0");
      } else {
        ANB_CHECK(n.left != i && n.right != i,
                  "FlatForest: internal node is its own child");
        ANB_CHECK(n.feature >= 0, "FlatForest: negative feature index");
        max_feature_ = std::max(max_feature_, n.feature);
      }
    }
  }
}

const FlatForest::SimdTables& FlatForest::simd_tables() const {
  if (const SimdTables* cached = simd_cache_.load(std::memory_order_acquire))
    return *cached;

  MutexLock lock(simd_mu_);
  if (const SimdTables* cached = simd_cache_.load(std::memory_order_relaxed))
    return *cached;

  // Build off the validated AoS arrays. Deliberately lazy: constructing a
  // FlatForest (including the mmap'd artifact load) must stay free — the
  // cold-start contract in bench/load_latency — so the first accumulate()
  // pays the one-time derivation instead.
  auto tb = std::make_unique<SimdTables>();
  const std::size_t num_nodes = nodes_.size();
  const std::size_t num_trees = roots_.size();

  tb->value = simd::AlignedBuf<double>(num_nodes);
  tb->feature = simd::AlignedBuf<std::int32_t>(num_nodes);
  tb->left = simd::AlignedBuf<std::int32_t>(num_nodes);
  tb->right = simd::AlignedBuf<std::int32_t>(num_nodes);
  tb->roots = simd::AlignedBuf<std::int32_t>(num_trees);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const FlatNode& n = nodes_[i];
    tb->value[i] = n.split;
    tb->feature[i] = n.feature;
    tb->left[i] = n.left;
    tb->right[i] = n.right;
  }
  for (std::size_t t = 0; t < num_trees; ++t) tb->roots[t] = roots_[t];

  // Quantized tables. Eligibility: every feature index and tree-local
  // child offset must fit 16 bits, every internal threshold must be
  // finite, and no feature may carry more than 255 distinct thresholds
  // (the uint8 code must order x against all of them, with 255 reserved
  // for NaN). Histogram-trained forests qualify by construction —
  // thresholds are bin edges, at most max_bins-1 <= 255 per feature
  // (hist_gbdt.cpp); exact-split forests qualify whenever features take
  // few distinct values, which holds for the one-hot architecture
  // encodings this repo serves.
  tb->d_q = static_cast<std::size_t>(max_feature_ + 1);
  if (tb->d_q == 0) tb->d_q = 1;  // all-leaf forest: codes never read
  bool ok = max_feature_ <= 0xFFFF &&
            num_nodes <= static_cast<std::size_t>(
                             std::numeric_limits<std::int32_t>::max());
  std::vector<std::vector<double>> sets(tb->d_q);
  if (ok) {
    for (std::size_t i = 0; i < num_nodes && ok; ++i) {
      const FlatNode& n = nodes_[i];
      if (n.left == static_cast<std::int32_t>(i) &&
          n.right == static_cast<std::int32_t>(i))
        continue;  // leaf
      if (!std::isfinite(n.split)) {
        ok = false;
        break;
      }
      sets[static_cast<std::size_t>(n.feature)].push_back(n.split);
    }
  }
  if (ok) {
    for (auto& s : sets) {
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      if (s.size() > kMaxThresholds) {
        ok = false;
        break;
      }
    }
  }
  if (ok) {
    for (std::size_t t = 0; t < num_trees && ok; ++t) {
      const std::size_t lo = static_cast<std::size_t>(roots_[t]);
      const std::size_t hi = t + 1 < num_trees
                                 ? static_cast<std::size_t>(roots_[t + 1])
                                 : num_nodes;
      if (hi - lo > 0x10000) ok = false;  // local child offsets need u16
    }
  }
  if (ok) {
    // Padded threshold ladders for the branchless row quantizer.
    tb->thr_off.assign(tb->d_q, 0);
    tb->thr_half.assign(tb->d_q, 0);
    std::size_t total = 0;
    for (std::size_t f = 0; f < tb->d_q; ++f) {
      tb->thr_off[f] = static_cast<std::uint32_t>(total);
      const std::size_t k = sets[f].size();
      if (k == 0) continue;
      const std::size_t padded = std::bit_ceil(k + 1);
      tb->thr_half[f] = static_cast<std::uint32_t>(padded / 2);
      total += padded;
    }
    tb->thr = simd::AlignedBuf<double>(total);
    for (std::size_t f = 0; f < tb->d_q; ++f) {
      const auto& s = sets[f];
      double* const dst = tb->thr.data() + tb->thr_off[f];
      const std::size_t padded = s.empty() ? 0 : std::bit_ceil(s.size() + 1);
      for (std::size_t j = 0; j < padded; ++j)
        dst[j] = j < s.size() ? s[j]
                              : std::numeric_limits<double>::infinity();
    }

    // Packed quantized nodes: children tree-local, threshold replaced by
    // its rank+1 in the feature's ladder (exact double match by
    // construction — the ladder was built from these very splits).
    tb->qnodes = simd::AlignedBuf<std::uint64_t>(num_nodes);
    for (std::size_t t = 0; t < num_trees; ++t) {
      const auto lo = roots_[t];
      const auto hi = t + 1 < num_trees
                          ? roots_[t + 1]
                          : static_cast<std::int32_t>(num_nodes);
      for (std::int32_t i = lo; i < hi; ++i) {
        const FlatNode& n = nodes_[static_cast<std::size_t>(i)];
        const auto l = static_cast<std::uint64_t>(n.left - lo);
        const auto r = static_cast<std::uint64_t>(n.right - lo);
        std::uint64_t feat = 0;
        std::uint64_t qsplit = 0;
        if (!(n.left == i && n.right == i)) {
          const auto& s = sets[static_cast<std::size_t>(n.feature)];
          const auto it = std::lower_bound(s.begin(), s.end(), n.split);
          ANB_CHECK(it != s.end() && *it == n.split,
                    "FlatForest: quantized threshold ladder out of sync");
          feat = static_cast<std::uint64_t>(n.feature);
          qsplit = static_cast<std::uint64_t>(it - s.begin()) + 1;
        }
        tb->qnodes[static_cast<std::size_t>(i)] =
            l | (r << 16) | (feat << 32) | (qsplit << 48);
      }
    }
    tb->quant_ok = true;
  }

  // Masked leaf-set tables. On top of quantization eligibility the
  // leaf-set mask is one byte, so every tree must have <= 8 leaves —
  // true by construction for the default Gbdt (max_depth 3) and HistGbdt
  // (max_leaves 8) forests; deep RandomForest trees fail the count and
  // keep the stepping engines.
  if (tb->quant_ok) {
    bool mok = true;
    std::size_t total_leaves = 0;
    for (std::size_t t = 0; t < num_trees && mok; ++t) {
      const auto lo = roots_[t];
      const auto hi = t + 1 < num_trees
                          ? roots_[t + 1]
                          : static_cast<std::int32_t>(num_nodes);
      std::size_t leaves = 0;
      for (std::int32_t i = lo; i < hi; ++i) {
        const FlatNode& n = nodes_[static_cast<std::size_t>(i)];
        if (n.left == i && n.right == i) ++leaves;
      }
      if (leaves > 8) mok = false;
      total_leaves += leaves;
    }
    if (mok) {
      const std::size_t total_internal = num_nodes - total_leaves;
      tb->mk_feature = simd::AlignedBuf<std::uint32_t>(total_internal);
      tb->mk_qsplit_x = simd::AlignedBuf<std::uint8_t>(total_internal);
      tb->mk_mask = simd::AlignedBuf<std::uint8_t>(total_internal);
      tb->mk_node_off = simd::AlignedBuf<std::uint32_t>(num_trees + 1);
      tb->mk_leaf = simd::AlignedBuf<double>(total_leaves);
      tb->mk_leaf_off = simd::AlignedBuf<std::uint32_t>(num_trees);
      std::size_t nk = 0;
      std::size_t nl = 0;
      for (std::size_t t = 0; t < num_trees; ++t) {
        tb->mk_node_off[t] = static_cast<std::uint32_t>(nk);
        tb->mk_leaf_off[t] = static_cast<std::uint32_t>(nl);
        std::uint32_t next_leaf = 0;
        // In-order walk: leaves numbered left to right, each internal
        // node's mask clears exactly its left subtree's leaf bits. The
        // node entry order within a tree is irrelevant to the kernel
        // (the AND-reduction is commutative).
        const auto dfs = [&](const auto& self,
                             std::int32_t i) -> std::uint8_t {
          const FlatNode& n = nodes_[static_cast<std::size_t>(i)];
          if (n.left == i && n.right == i) {
            const std::uint32_t idx = next_leaf++;
            tb->mk_leaf[nl + idx] = n.split;
            return static_cast<std::uint8_t>(1u << idx);
          }
          const std::uint8_t lbits = self(self, n.left);
          const auto& s = sets[static_cast<std::size_t>(n.feature)];
          const auto it = std::lower_bound(s.begin(), s.end(), n.split);
          const auto qsplit =
              static_cast<std::uint32_t>(it - s.begin()) + 1;
          tb->mk_feature[nk] = static_cast<std::uint32_t>(n.feature);
          tb->mk_qsplit_x[nk] = static_cast<std::uint8_t>(qsplit ^ 0x80u);
          tb->mk_mask[nk] = static_cast<std::uint8_t>(~lbits);
          ++nk;
          const std::uint8_t rbits = self(self, n.right);
          return static_cast<std::uint8_t>(lbits | rbits);
        };
        dfs(dfs, roots_[t]);
        nl += next_leaf;
      }
      tb->mk_node_off[num_trees] = static_cast<std::uint32_t>(nk);
      tb->masked_ok = true;
    }
  }

  tb->view = detail::SoaView{tb->value.data(), tb->feature.data(),
                             tb->left.data(),  tb->right.data(),
                             tb->roots.data(), num_trees};
  tb->qview = detail::QuantView{tb->qnodes.data()};
  tb->mview = detail::MaskedView{
      tb->mk_feature.data(), tb->mk_qsplit_x.data(),  tb->mk_mask.data(),
      tb->mk_node_off.data(), tb->mk_leaf.data(), tb->mk_leaf_off.data()};

  const SimdTables* raw = tb.get();
  simd_owned_ = std::move(tb);
  simd_cache_.store(raw, std::memory_order_release);
  return *raw;
}

bool FlatForest::quantized_available() const {
  if (empty()) return false;
  return simd_tables().quant_ok;
}

bool FlatForest::masked_available() const {
  if (empty()) return false;
  return simd_tables().masked_ok;
}

double FlatForest::predict_tree(std::size_t t, std::span<const double> x) const {
  ANB_CHECK(t < roots_.size(), "FlatForest::predict_tree: tree index out of "
                               "range");
  ANB_CHECK(max_feature_ < static_cast<std::int32_t>(x.size()),
            "FlatForest::predict_tree: feature index out of range");
  const FlatNode* const nodes = nodes_.data();
  std::int32_t at = roots_[t];
  for (std::int32_t next = step(nodes, at, x.data()); next != at;
       next = step(nodes, at, x.data())) {
    at = next;
  }
  return nodes[at].split;
}

std::vector<RegressionTree> FlatForest::to_trees() const {
  std::vector<RegressionTree> out;
  out.reserve(roots_.size());
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const std::int32_t lo = roots_[t];
    const std::int32_t hi = t + 1 < roots_.size()
                                ? roots_[t + 1]
                                : static_cast<std::int32_t>(nodes_.size());
    std::vector<TreeNode> nodes(static_cast<std::size_t>(hi - lo));
    for (std::int32_t i = lo; i < hi; ++i) {
      const FlatNode& fn = nodes_[static_cast<std::size_t>(i)];
      TreeNode& n = nodes[static_cast<std::size_t>(i - lo)];
      if (fn.left == i && fn.right == i) {
        n.feature = -1;
        n.value = fn.split;
      } else {
        n.feature = fn.feature;
        n.threshold = fn.split;
        n.left = fn.left - lo;
        n.right = fn.right - lo;
      }
    }
    out.emplace_back(std::move(nodes));
  }
  return out;
}

namespace {

/// The PR 2 engine, unchanged: two trees x four rows of scalar walks in
/// lockstep. Still the dispatch floor — it is what runs when SIMD is off
/// (ANB_SIMD=off), when the CPU offers no vector target, and for tiny
/// batches that cannot fill 8 lanes.
void interleaved_accumulate(const FlatNode* nodes,
                            std::span<const std::int32_t> roots,
                            std::span<const double> rows,
                            std::size_t num_features, double scale,
                            std::span<double> out) {
  const double* const data = rows.data();
  const std::size_t n = out.size();

  for (std::size_t begin = 0; begin < n; begin += kRowBlock) {
    const std::size_t nb = std::min(n - begin, kRowBlock);
    const double* const block = data + begin * num_features;
    // Two consecutive trees walk four rows in lockstep: eight mutually
    // independent pointer-chase chains overlap in flight (the scalar
    // path's main stall is this chain's serial latency). Pairing trees
    // instead of widening to eight rows keeps the settle waste small:
    // the loop runs to the deeper of the two trees' four-row descents,
    // and consecutive boosted trees have near-identical depths. The
    // fixed point of step() (self-looping leaves) is the combined
    // "everyone reached a leaf" test.
    std::size_t t = 0;
    for (; t + 2 <= roots.size(); t += 2) {
      const std::int32_t root0 = roots[t];
      const std::int32_t root1 = roots[t + 1];
      std::size_t i = 0;
      for (; i + 4 <= nb; i += 4) {
        const double* const x0 = block + i * num_features;
        const double* const x1 = x0 + num_features;
        const double* const x2 = x1 + num_features;
        const double* const x3 = x2 + num_features;
        std::int32_t a0 = root0, a1 = root0, a2 = root0, a3 = root0;
        std::int32_t c0 = root1, c1 = root1, c2 = root1, c3 = root1;
        while (true) {
          const std::int32_t b0 = step(nodes, a0, x0);
          const std::int32_t b1 = step(nodes, a1, x1);
          const std::int32_t b2 = step(nodes, a2, x2);
          const std::int32_t b3 = step(nodes, a3, x3);
          const std::int32_t d0 = step(nodes, c0, x0);
          const std::int32_t d1 = step(nodes, c1, x1);
          const std::int32_t d2 = step(nodes, c2, x2);
          const std::int32_t d3 = step(nodes, c3, x3);
          const bool settled = (b0 == a0) & (b1 == a1) & (b2 == a2) &
                               (b3 == a3) & (d0 == c0) & (d1 == c1) &
                               (d2 == c2) & (d3 == c3);
          a0 = b0;
          a1 = b1;
          a2 = b2;
          a3 = b3;
          c0 = d0;
          c1 = d1;
          c2 = d2;
          c3 = d3;
          if (settled) break;
        }
        // Per row, tree t's contribution is added before tree t+1's —
        // the same accumulation order as the scalar loop.
        out[begin + i] += scale * nodes[a0].split;
        out[begin + i] += scale * nodes[c0].split;
        out[begin + i + 1] += scale * nodes[a1].split;
        out[begin + i + 1] += scale * nodes[c1].split;
        out[begin + i + 2] += scale * nodes[a2].split;
        out[begin + i + 2] += scale * nodes[c2].split;
        out[begin + i + 3] += scale * nodes[a3].split;
        out[begin + i + 3] += scale * nodes[c3].split;
      }
      for (; i < nb; ++i) {
        const double* const x = block + i * num_features;
        std::int32_t a = root0, c = root1;
        while (true) {
          const std::int32_t b = step(nodes, a, x);
          const std::int32_t d = step(nodes, c, x);
          const bool settled = (b == a) & (d == c);
          a = b;
          c = d;
          if (settled) break;
        }
        out[begin + i] += scale * nodes[a].split;
        out[begin + i] += scale * nodes[c].split;
      }
    }
    for (; t < roots.size(); ++t) {
      const std::int32_t root = roots[t];
      std::size_t i = 0;
      for (; i + 4 <= nb; i += 4) {
        const double* const x0 = block + i * num_features;
        const double* const x1 = x0 + num_features;
        const double* const x2 = x1 + num_features;
        const double* const x3 = x2 + num_features;
        std::int32_t a0 = root, a1 = root, a2 = root, a3 = root;
        while (true) {
          const std::int32_t b0 = step(nodes, a0, x0);
          const std::int32_t b1 = step(nodes, a1, x1);
          const std::int32_t b2 = step(nodes, a2, x2);
          const std::int32_t b3 = step(nodes, a3, x3);
          const bool settled =
              (b0 == a0) & (b1 == a1) & (b2 == a2) & (b3 == a3);
          a0 = b0;
          a1 = b1;
          a2 = b2;
          a3 = b3;
          if (settled) break;
        }
        out[begin + i] += scale * nodes[a0].split;
        out[begin + i + 1] += scale * nodes[a1].split;
        out[begin + i + 2] += scale * nodes[a2].split;
        out[begin + i + 3] += scale * nodes[a3].split;
      }
      for (; i < nb; ++i) {
        const double* const x = block + i * num_features;
        std::int32_t at = root;
        for (std::int32_t next = step(nodes, at, x); next != at;
             next = step(nodes, at, x)) {
          at = next;
        }
        out[begin + i] += scale * nodes[at].split;
      }
    }
  }
}

}  // namespace

void FlatForest::accumulate(std::span<const double> rows,
                            std::size_t num_features, double scale,
                            std::span<double> out) const {
  ANB_CHECK(!roots_.empty(), "FlatForest::accumulate: empty forest");
  ANB_CHECK(num_features > 0 &&
                rows.size() == out.size() * num_features,
            "FlatForest::accumulate: row matrix / output size mismatch");
  ANB_CHECK(max_feature_ < static_cast<std::int32_t>(num_features),
            "FlatForest::accumulate: feature index out of range");

  const std::size_t n = out.size();
  if (n == 0) return;

  // Dispatch: forced path (test/bench hook) wins; otherwise pick by the
  // active SIMD target. The SIMD kernels index rows with i32 lane
  // offsets, so oversized batches fall back to the interleaved walk (the
  // parallel predict_matrix chunking keeps real batches far below this).
  const DescentPath forced = descent_path_override();
  const simd::Target target = simd::active_target();
  DescentPath path = forced;
  if (path == DescentPath::kAuto) {
    if (target == simd::Target::kScalar || n < 8) {
      path = DescentPath::kInterleaved;
    } else {
      // The masked leaf-set engine is the only one measured decisively
      // faster than the interleaved walk on current x86 cores — the
      // gather-stepping kSimd/kQuantized engines are bound by their
      // serial node-gather chains and land at or below the eight scalar
      // chains of the interleaved walk (DESIGN.md "SIMD descent"). They
      // stay forceable for the differential tests and benches, but auto
      // only leaves the interleaved floor when masks apply.
      path = simd_tables().masked_ok ? DescentPath::kMasked
                                     : DescentPath::kInterleaved;
    }
  }

  if (path == DescentPath::kSimd || path == DescentPath::kQuantized ||
      path == DescentPath::kMasked) {
    const SimdTables& tb = simd_tables();
    if (path == DescentPath::kMasked && !tb.masked_ok) {
      ANB_CHECK(forced == DescentPath::kAuto,
                "FlatForest::accumulate: masked descent forced but "
                "unavailable for this forest");
      path = DescentPath::kInterleaved;
    }
    if (path == DescentPath::kQuantized && !tb.quant_ok) {
      ANB_CHECK(forced == DescentPath::kAuto,
                "FlatForest::accumulate: quantized descent forced but "
                "unavailable for this forest");
      path = DescentPath::kSimd;
    }
    // The stepping kernels index rows with i32 lane offsets; the masked
    // kernel indexes with size_t and has no such cap. The parallel
    // predict_matrix chunking keeps real batches far below this anyway.
    constexpr std::size_t kMaxOff =
        static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());
    const bool fits = n * num_features <= kMaxOff && n * tb.d_q <= kMaxOff;
    if (!fits && path != DescentPath::kMasked) {
      ANB_CHECK(forced == DescentPath::kAuto,
                "FlatForest::accumulate: batch exceeds SIMD i32 indexing");
      path = DescentPath::kInterleaved;
    }
  }

  if (path == DescentPath::kInterleaved) {
    interleaved_accumulate(nodes_.data(), roots_.span(), rows, num_features,
                           scale, out);
    return;
  }

  const SimdTables& tb = simd_tables();
  const detail::DescentKernels& kernels = kernels_for(target);

  if (obs::metrics_enabled()) {
    static obs::Counter& simd_rows = obs::counter("anb.query.simd.rows");
    static obs::Gauge& dispatch =
        obs::gauge("anb.query.simd.dispatch_target");
    simd_rows.add(n);
    dispatch.set(static_cast<double>(static_cast<int>(target)));
  }

  if (path == DescentPath::kSimd) {
    kernels.f64(tb.view, rows.data(), num_features, scale, out.data(), n);
    return;
  }

  if (path == DescentPath::kMasked) {
    // Masked leaf-set evaluation: quantize the batch feature-major (XOR
    // 0x80 for the kernel's signed byte compares), then AND-reduce
    // per-node leaf masks — no gathers, no settle loop.
    static thread_local std::vector<std::uint8_t> codes_t;
    codes_t.resize(n * tb.d_q);
    quantize_transposed(tb, rows.data(), n, num_features, codes_t.data());
    kernels.masked(tb.mview, roots_.size(), codes_t.data(), scale,
                   out.data(), n);
    return;
  }

  // Quantized: encode the block's feature values as uint8 threshold
  // ranks, then descend on byte compares. The scratch is thread-local so
  // parallel predict_matrix chunks reuse their allocation; +3 pad bytes
  // keep the AVX2 byte gather's dword loads inside the buffer.
  static thread_local std::vector<std::uint8_t> codes;
  codes.resize(n * tb.d_q + 3);
  quantize_block(tb, rows.data(), n, num_features, codes.data());
  kernels.quant(tb.view, tb.qview, codes.data(), tb.d_q, scale, out.data(),
                n);
}

}  // namespace anb
