#include "anb/surrogate/gbdt.hpp"

#include <algorithm>
#include <cmath>

#include "anb/surrogate/train_context.hpp"
#include "anb/util/binary.hpp"
#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"
#include "anb/util/stats.hpp"

// GCC 12 at -O2 mis-attributes the std::vector destructor in fit() as
// freeing a non-heap pointer (bogus inlining artifact; ASan runs clean).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

namespace anb {

Gbdt::Gbdt(GbdtParams params) : params_(std::move(params)) {
  ANB_CHECK(params_.n_estimators >= 1, "Gbdt: n_estimators must be >= 1");
  ANB_CHECK(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0,
            "Gbdt: learning_rate must be in (0, 1]");
  ANB_CHECK(params_.max_depth >= 1, "Gbdt: max_depth must be >= 1");
  ANB_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0,
            "Gbdt: subsample must be in (0, 1]");
  ANB_CHECK(params_.colsample > 0.0 && params_.colsample <= 1.0,
            "Gbdt: colsample must be in (0, 1]");
}

namespace {
/// Rows per chunk for the element-wise gradient / prediction-update loops.
constexpr std::size_t kRowChunk = 2048;
}  // namespace

void Gbdt::fit(const Dataset& train, Rng& rng) {
  ANB_CHECK(train.size() >= 2, "Gbdt::fit: need at least 2 rows");
  const ColumnIndex columns(train);
  fit_impl(train, columns, rng);
}

void Gbdt::fit(const Dataset& train, TrainContext& ctx, Rng& rng) {
  ANB_CHECK(&ctx.data() == &train,
            "Gbdt::fit: context built for a different dataset");
  ANB_CHECK(train.size() >= 2, "Gbdt::fit: need at least 2 rows");
  fit_impl(train, ctx.columns(), rng);
}

void Gbdt::fit_impl(const Dataset& train, const ColumnIndex& columns,
                    Rng& rng) {
  ANB_SPAN("anb.fit.gbdt");
  obs::counter("anb.fit.gbdt.count").add(1);
  trees_.clear();
  const std::size_t n = train.size();
  const std::size_t d = train.num_features();

  base_score_ = mean(train.targets());

  TreeParams tp;
  tp.max_depth = params_.max_depth;
  tp.lambda = params_.lambda;
  tp.gamma = params_.gamma;
  tp.min_child_weight = params_.min_child_weight;
  tp.min_samples_leaf = 1.0;
  tp.features_per_node =
      params_.colsample < 1.0
          ? std::max(1, static_cast<int>(std::lround(
                            params_.colsample * static_cast<double>(d))))
          : -1;

  std::vector<double> pred(n, base_score_);
  std::vector<double> g(n), h(n, 1.0), weight(n, 1.0);
  for (int t = 0; t < params_.n_estimators; ++t) {
    // Squared loss: g = prediction residual, constant hessian. Element-wise
    // over rows, so the chunked parallel loop is bit-identical to serial.
    parallel_for_chunks(n, kRowChunk, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        g[i] = pred[i] - train.target(i);
    });
    if (params_.subsample < 1.0) {
      for (std::size_t i = 0; i < n; ++i)
        weight[i] = rng.bernoulli(params_.subsample) ? 1.0 : 0.0;
    }
    RegressionTree tree = build_tree(train, columns, g, h, weight, tp, rng);
    parallel_for_chunks(n, kRowChunk, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        pred[i] += params_.learning_rate * tree.predict(train.row(i));
    });
    trees_.push_back(std::move(tree));
  }
  rebuild_flat();
}

// Depth-capped boosting (default max_depth 3) keeps every tree at <= 8
// leaves, so fitted models qualify for the masked SIMD descent engine
// whenever their per-feature threshold counts fit the byte-code budget
// (DESIGN.md "SIMD descent").
void Gbdt::rebuild_flat() { flat_ = FlatForest(trees_); }

double Gbdt::predict(std::span<const double> x) const {
  // Walks flat_ so binary-loaded models (which never materialize trees_)
  // share one code path; predict_tree performs the identical comparisons
  // and the loop the identical accumulation order as the per-tree walk,
  // so results are unchanged bit for bit.
  ANB_CHECK(!flat_.empty(), "Gbdt::predict: model not fitted");
  double acc = base_score_;
  for (std::size_t t = 0; t < flat_.num_trees(); ++t)
    acc += params_.learning_rate * flat_.predict_tree(t, x);
  return acc;
}

void Gbdt::predict_batch(std::span<const double> rows,
                         std::size_t num_features,
                         std::span<double> out) const {
  ANB_CHECK(!flat_.empty(), "Gbdt::predict_batch: model not fitted");
  std::fill(out.begin(), out.end(), base_score_);
  flat_.accumulate(rows, num_features, params_.learning_rate, out);
}

namespace {

Json gbdt_params_json(const GbdtParams& p) {
  Json params = Json::object();
  params["n_estimators"] = p.n_estimators;
  params["learning_rate"] = p.learning_rate;
  params["max_depth"] = p.max_depth;
  params["lambda"] = p.lambda;
  params["gamma"] = p.gamma;
  params["min_child_weight"] = p.min_child_weight;
  params["subsample"] = p.subsample;
  params["colsample"] = p.colsample;
  return params;
}

}  // namespace

Json Gbdt::to_json() const {
  Json j = Json::object();
  j["type"] = name();
  j["base_score"] = base_score_;
  j["params"] = gbdt_params_json(params_);
  Json trees = Json::array();
  if (trees_.empty()) {
    for (const auto& tree : flat_.to_trees()) trees.push_back(tree.to_json());
  } else {
    for (const auto& tree : trees_) trees.push_back(tree.to_json());
  }
  j["trees"] = std::move(trees);
  return j;
}

Json Gbdt::to_binary(bin::Writer& w) const {
  ANB_CHECK(!flat_.empty(), "Gbdt::to_binary: model not fitted");
  Json j = Json::object();
  j["type"] = name();
  j["base_score"] = base_score_;
  j["params"] = gbdt_params_json(params_);
  j["nodes"] = static_cast<int>(w.add_array(bin::Tag::kFlatNode, flat_.nodes()));
  j["roots"] = static_cast<int>(w.add_array(bin::Tag::kI32, flat_.roots()));
  return j;
}

std::unique_ptr<Gbdt> Gbdt::from_binary(const Json& meta,
                                        const bin::Reader& r) {
  ANB_CHECK(meta.at("type").as_string() == "xgb",
            "Gbdt::from_binary: wrong type tag");
  const Json& p = meta.at("params");
  GbdtParams params;
  params.n_estimators = p.at("n_estimators").as_int();
  params.learning_rate = p.at("learning_rate").as_number();
  params.max_depth = p.at("max_depth").as_int();
  params.lambda = p.at("lambda").as_number();
  params.gamma = p.at("gamma").as_number();
  params.min_child_weight = p.at("min_child_weight").as_number();
  params.subsample = p.at("subsample").as_number();
  params.colsample = p.at("colsample").as_number();
  auto model = std::make_unique<Gbdt>(params);
  model->base_score_ = meta.at("base_score").as_number();
  model->flat_ = FlatForest(
      r.array<FlatNode>(static_cast<std::uint32_t>(meta.at("nodes").as_int()),
                        bin::Tag::kFlatNode),
      r.array<std::int32_t>(
          static_cast<std::uint32_t>(meta.at("roots").as_int()),
          bin::Tag::kI32));
  ANB_CHECK(!model->flat_.empty(), "Gbdt::from_binary: empty forest");
  return model;
}

std::unique_ptr<Gbdt> Gbdt::from_json(const Json& j) {
  ANB_CHECK(j.at("type").as_string() == "xgb",
            "Gbdt::from_json: wrong type tag");
  const Json& p = j.at("params");
  GbdtParams params;
  params.n_estimators = p.at("n_estimators").as_int();
  params.learning_rate = p.at("learning_rate").as_number();
  params.max_depth = p.at("max_depth").as_int();
  params.lambda = p.at("lambda").as_number();
  params.gamma = p.at("gamma").as_number();
  params.min_child_weight = p.at("min_child_weight").as_number();
  params.subsample = p.at("subsample").as_number();
  params.colsample = p.at("colsample").as_number();
  auto model = std::make_unique<Gbdt>(params);
  model->base_score_ = j.at("base_score").as_number();
  for (const auto& jt : j.at("trees").as_array())
    model->trees_.push_back(RegressionTree::from_json(jt));
  model->rebuild_flat();
  return model;
}

}  // namespace anb
