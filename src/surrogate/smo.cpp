#include "anb/surrogate/smo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "anb/util/error.hpp"

namespace anb {

namespace {
constexpr double kTau = 1e-12;
}

SmoSolver::Result SmoSolver::solve(const Problem& prob) {
  const int n = prob.n;
  ANB_CHECK(n > 0, "SmoSolver: empty problem");
  ANB_CHECK(prob.p.size() == static_cast<std::size_t>(n) &&
                prob.y.size() == static_cast<std::size_t>(n) &&
                prob.c.size() == static_cast<std::size_t>(n),
            "SmoSolver: inconsistent problem arrays");
  ANB_CHECK(static_cast<bool>(prob.q_column), "SmoSolver: missing Q accessor");

  Result res;
  res.alpha.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double>& a = res.alpha;
  // alpha = 0 -> gradient is just the linear term.
  std::vector<double> grad(prob.p);
  std::vector<double> q_i(static_cast<std::size_t>(n));
  std::vector<double> q_j(static_cast<std::size_t>(n));

  auto in_up = [&](int t) {
    return (prob.y[static_cast<std::size_t>(t)] > 0 &&
            a[static_cast<std::size_t>(t)] < prob.c[static_cast<std::size_t>(t)]) ||
           (prob.y[static_cast<std::size_t>(t)] < 0 &&
            a[static_cast<std::size_t>(t)] > 0);
  };
  auto in_low = [&](int t) {
    return (prob.y[static_cast<std::size_t>(t)] > 0 &&
            a[static_cast<std::size_t>(t)] > 0) ||
           (prob.y[static_cast<std::size_t>(t)] < 0 &&
            a[static_cast<std::size_t>(t)] < prob.c[static_cast<std::size_t>(t)]);
  };

  for (res.iterations = 0; res.iterations < prob.max_iterations;
       ++res.iterations) {
    // Maximal violating pair.
    int i = -1, j = -1;
    double m_up = -std::numeric_limits<double>::infinity();
    double m_low = std::numeric_limits<double>::infinity();
    for (int t = 0; t < n; ++t) {
      const double v = -prob.y[static_cast<std::size_t>(t)] *
                       grad[static_cast<std::size_t>(t)];
      if (in_up(t) && v > m_up) {
        m_up = v;
        i = t;
      }
      if (in_low(t) && v < m_low) {
        m_low = v;
        j = t;
      }
    }
    if (i < 0 || j < 0 || m_up - m_low < prob.tolerance) {
      res.converged = true;
      break;
    }

    prob.q_column(i, q_i);
    prob.q_column(j, q_j);

    const auto si = static_cast<std::size_t>(i);
    const auto sj = static_cast<std::size_t>(j);
    const double ci = prob.c[si];
    const double cj = prob.c[sj];
    const double old_ai = a[si];
    const double old_aj = a[sj];

    if (prob.y[si] != prob.y[sj]) {
      double quad = q_i[si] + q_j[sj] + 2.0 * q_i[sj];
      if (quad <= 0) quad = kTau;
      const double delta = (-grad[si] - grad[sj]) / quad;
      const double diff = a[si] - a[sj];
      a[si] += delta;
      a[sj] += delta;
      if (diff > 0) {
        if (a[sj] < 0) {
          a[sj] = 0;
          a[si] = diff;
        }
      } else {
        if (a[si] < 0) {
          a[si] = 0;
          a[sj] = -diff;
        }
      }
      if (diff > ci - cj) {
        if (a[si] > ci) {
          a[si] = ci;
          a[sj] = ci - diff;
        }
      } else {
        if (a[sj] > cj) {
          a[sj] = cj;
          a[si] = cj + diff;
        }
      }
    } else {
      double quad = q_i[si] + q_j[sj] - 2.0 * q_i[sj];
      if (quad <= 0) quad = kTau;
      const double delta = (grad[si] - grad[sj]) / quad;
      const double sum = a[si] + a[sj];
      a[si] -= delta;
      a[sj] += delta;
      if (sum > ci) {
        if (a[si] > ci) {
          a[si] = ci;
          a[sj] = sum - ci;
        }
      } else {
        if (a[sj] < 0) {
          a[sj] = 0;
          a[si] = sum;
        }
      }
      if (sum > cj) {
        if (a[sj] > cj) {
          a[sj] = cj;
          a[si] = sum - cj;
        }
      } else {
        if (a[si] < 0) {
          a[si] = 0;
          a[sj] = sum;
        }
      }
    }

    const double dai = a[si] - old_ai;
    const double daj = a[sj] - old_aj;
    if (dai == 0.0 && daj == 0.0) {
      // Numerically stuck pair; treat as converged to avoid spinning.
      res.converged = true;
      break;
    }
    for (int t = 0; t < n; ++t) {
      grad[static_cast<std::size_t>(t)] +=
          q_i[static_cast<std::size_t>(t)] * dai +
          q_j[static_cast<std::size_t>(t)] * daj;
    }
  }

  // KKT offset (libsvm's calculate_rho).
  double ub = std::numeric_limits<double>::infinity();
  double lb = -std::numeric_limits<double>::infinity();
  double sum_free = 0.0;
  int n_free = 0;
  for (int t = 0; t < n; ++t) {
    const auto st = static_cast<std::size_t>(t);
    const double yg = prob.y[st] * grad[st];
    if (a[st] >= prob.c[st]) {
      if (prob.y[st] < 0) {
        ub = std::min(ub, yg);
      } else {
        lb = std::max(lb, yg);
      }
    } else if (a[st] <= 0.0) {
      if (prob.y[st] > 0) {
        ub = std::min(ub, yg);
      } else {
        lb = std::max(lb, yg);
      }
    } else {
      ++n_free;
      sum_free += yg;
    }
  }
  res.rho = n_free > 0 ? sum_free / n_free : (ub + lb) / 2.0;
  return res;
}

}  // namespace anb
