#include "anb/surrogate/hist_gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "anb/surrogate/train_context.hpp"
#include "anb/util/binary.hpp"
#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"
#include "anb/util/stats.hpp"

namespace anb {

namespace {

struct HistCell {
  double g = 0.0, h = 0.0, w = 0.0;
};

struct SplitCandidate {
  double gain = -std::numeric_limits<double>::infinity();
  int feature = -1;
  int bin = -1;  ///< rows with bin <= `bin` go left
};

double leaf_gain(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

/// A growable leaf during best-first construction.
struct Leaf {
  int node_id = 0;
  std::vector<std::uint32_t> rows;
  double g = 0.0, h = 0.0, w = 0.0;
  std::vector<HistCell> hist;  // [feature * max_hist_bins + bin]
  SplitCandidate best;
};

/// Minimum per-leaf work (cells touched) before histogram construction
/// fans out across features. parallel_for spawns short-lived threads, so
/// small leaves run inline; either path produces identical bits — each
/// histogram cell receives its contributions in leaf-row order regardless.
constexpr std::size_t kMinParallelHistWork = 1u << 16;

/// Rows per chunk for the element-wise gradient / prediction-update loops.
constexpr std::size_t kRowChunk = 2048;

}  // namespace

HistGbdt::HistGbdt(HistGbdtParams params) : params_(std::move(params)) {
  ANB_CHECK(params_.n_estimators >= 1, "HistGbdt: n_estimators must be >= 1");
  ANB_CHECK(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0,
            "HistGbdt: learning_rate must be in (0, 1]");
  ANB_CHECK(params_.max_leaves >= 2, "HistGbdt: max_leaves must be >= 2");
  ANB_CHECK(params_.max_bins >= 2 && params_.max_bins <= 256,
            "HistGbdt: max_bins must be in [2, 256]");
  ANB_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0,
            "HistGbdt: subsample must be in (0, 1]");
  ANB_CHECK(params_.colsample > 0.0 && params_.colsample <= 1.0,
            "HistGbdt: colsample must be in (0, 1]");
}

void HistGbdt::fit(const Dataset& train, Rng& rng) {
  ANB_CHECK(train.size() >= 2, "HistGbdt::fit: need at least 2 rows");
  const BinnedMatrix binned(train, params_.max_bins);
  fit(train, binned, rng);
}

void HistGbdt::fit(const Dataset& train, TrainContext& ctx, Rng& rng) {
  ANB_CHECK(&ctx.data() == &train,
            "HistGbdt::fit: context built for a different dataset");
  ANB_CHECK(train.size() >= 2, "HistGbdt::fit: need at least 2 rows");
  fit(train, ctx.bins(params_.max_bins), rng);
}

void HistGbdt::fit(const Dataset& train, const BinnedMatrix& binned,
                   Rng& rng) {
  ANB_CHECK(train.size() >= 2, "HistGbdt::fit: need at least 2 rows");
  ANB_CHECK(binned.num_rows() == train.size() &&
                binned.num_features() == train.num_features(),
            "HistGbdt::fit: bin matrix shape mismatch");
  ANB_CHECK(binned.max_bins() == params_.max_bins,
            "HistGbdt::fit: bin matrix built with a different max_bins");
  ANB_SPAN("anb.fit.histgbdt");
  obs::counter("anb.fit.histgbdt.count").add(1);
  trees_.clear();
  const std::size_t n = train.size();
  const std::size_t d = train.num_features();

  const auto max_hist_bins = static_cast<std::size_t>(binned.max_hist_bins());
  const std::size_t hist_size = d * max_hist_bins;

  base_score_ = mean(train.targets());
  std::vector<double> pred(n, base_score_);
  std::vector<double> g(n), h(n, 1.0);

  // Per-feature split scan over a finished histogram. Bit-for-bit the same
  // scan as a serial pass: bins ascend within the feature, ties keep the
  // lowest bin (strict >).
  auto scan_feature = [&](const Leaf& leaf, std::size_t f,
                          double parent_gain) {
    SplitCandidate best;
    const int nb = binned.num_bins(f);
    const HistCell* cells = leaf.hist.data() + f * max_hist_bins;
    double gl = 0.0, hl = 0.0, wl = 0.0;
    for (int b = 0; b + 1 < nb; ++b) {
      const HistCell& cell = cells[b];
      gl += cell.g;
      hl += cell.h;
      wl += cell.w;
      const double gr = leaf.g - gl;
      const double hr = leaf.h - hl;
      if (hl < params_.min_child_weight || hr < params_.min_child_weight)
        continue;
      if (wl < 1.0 || leaf.w - wl < 1.0) continue;
      const double gain = leaf_gain(gl, hl, params_.lambda) +
                          leaf_gain(gr, hr, params_.lambda) - parent_gain;
      if (gain > best.gain) best = {gain, static_cast<int>(f), b};
    }
    return best;
  };

  // Reusable per-feature candidate slots for the parallel scan.
  std::vector<SplitCandidate> feature_best(d);

  // Builds `leaf`'s histogram and finds its best split in one pass over the
  // features. With a parent, the histogram is derived by sibling
  // subtraction (parent minus the already-built `sibling`); otherwise it is
  // accumulated from the leaf's rows. Fans out across features when the
  // work is large enough: feature slices are disjoint, and every cell sums
  // its rows in leaf order, so the result is independent of thread count.
  auto build_and_find = [&](Leaf& leaf, const Leaf* parent,
                            const Leaf* sibling,
                            const std::vector<char>& feat_ok) {
    leaf.hist.assign(hist_size, HistCell{});
    const double parent_gain = leaf_gain(leaf.g, leaf.h, params_.lambda);
    auto body = [&](std::size_t f) {
      feature_best[f] = SplitCandidate{};
      if (!feat_ok[f]) return;
      HistCell* cells = leaf.hist.data() + f * max_hist_bins;
      if (parent != nullptr) {
        const HistCell* pc = parent->hist.data() + f * max_hist_bins;
        const HistCell* sc = sibling->hist.data() + f * max_hist_bins;
        for (std::size_t b = 0; b < max_hist_bins; ++b) {
          cells[b].g = pc[b].g - sc[b].g;
          cells[b].h = pc[b].h - sc[b].h;
          cells[b].w = pc[b].w - sc[b].w;
        }
      } else {
        const std::uint8_t* codes = binned.codes(f).data();
        for (std::uint32_t row : leaf.rows) {
          HistCell& cell = cells[codes[row]];
          cell.g += g[row];
          cell.h += h[row];
          cell.w += 1.0;
        }
      }
      feature_best[f] = scan_feature(leaf, f, parent_gain);
    };
    const std::size_t work =
        parent != nullptr ? hist_size : leaf.rows.size() * d;
    if (work >= kMinParallelHistWork) {
      parallel_for(d, body);
    } else {
      for (std::size_t f = 0; f < d; ++f) body(f);
    }
    leaf.best = SplitCandidate{};
    for (std::size_t f = 0; f < d; ++f) {
      if (feature_best[f].gain > leaf.best.gain) leaf.best = feature_best[f];
    }
  };

  for (int t = 0; t < params_.n_estimators; ++t) {
    parallel_for_chunks(n, kRowChunk, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        g[i] = pred[i] - train.target(i);
    });

    // Per-tree row bagging and feature sampling (serial: consumes `rng`).
    std::vector<std::uint32_t> root_rows;
    root_rows.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (params_.subsample >= 1.0 || rng.bernoulli(params_.subsample))
        root_rows.push_back(static_cast<std::uint32_t>(i));
    }
    if (root_rows.empty()) root_rows.push_back(0);
    std::vector<char> feat_ok(d, 1);
    if (params_.colsample < 1.0) {
      std::fill(feat_ok.begin(), feat_ok.end(), 0);
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::lround(params_.colsample * static_cast<double>(d))));
      for (std::size_t f : rng.sample_indices(d, k)) feat_ok[f] = 1;
    }

    std::vector<TreeNode> nodes(1);
    std::vector<Leaf> leaves;  // indexed by heap payload
    auto make_leaf = [&](int node_id, std::vector<std::uint32_t> rows) {
      Leaf leaf;
      leaf.node_id = node_id;
      leaf.rows = std::move(rows);
      for (std::uint32_t row : leaf.rows) {
        leaf.g += g[row];
        leaf.h += h[row];
        leaf.w += 1.0;
      }
      return leaf;
    };

    {
      Leaf root = make_leaf(0, std::move(root_rows));
      build_and_find(root, nullptr, nullptr, feat_ok);
      leaves.push_back(std::move(root));
    }

    // Max-heap of splittable leaves by gain.
    using HeapItem = std::pair<double, std::size_t>;
    std::priority_queue<HeapItem> heap;
    heap.emplace(leaves[0].best.gain, 0);

    int leaf_count = 1;
    while (leaf_count < params_.max_leaves && !heap.empty()) {
      const auto [gain, li] = heap.top();
      heap.pop();
      if (gain <= params_.min_split_gain) break;
      Leaf& leaf = leaves[li];
      const SplitCandidate split = leaf.best;

      // Partition rows on the binned feature.
      const std::uint8_t* split_codes =
          binned.codes(static_cast<std::size_t>(split.feature)).data();
      std::vector<std::uint32_t> left_rows, right_rows;
      for (std::uint32_t row : leaf.rows) {
        const int b = split_codes[row];
        (b <= split.bin ? left_rows : right_rows).push_back(row);
      }
      ANB_ASSERT(!left_rows.empty() && !right_rows.empty(),
                 "HistGbdt: degenerate split");

      // emplace_back below may reallocate `nodes`: finish every write
      // through the parent reference first and keep the child indices in
      // locals (heap-use-after-free otherwise; caught by ASan).
      const int left_child = static_cast<int>(nodes.size());
      {
        TreeNode& parent = nodes[static_cast<std::size_t>(leaf.node_id)];
        parent.feature = split.feature;
        parent.threshold =
            binned.edge(static_cast<std::size_t>(split.feature), split.bin);
        parent.left = left_child;
        parent.right = left_child + 1;
      }
      nodes.emplace_back();
      nodes.emplace_back();

      Leaf small = make_leaf(left_child, std::move(left_rows));
      Leaf big = make_leaf(left_child + 1, std::move(right_rows));
      if (small.rows.size() > big.rows.size()) std::swap(small, big);

      // Histogram subtraction: build the smaller child, derive the sibling
      // from the parent without a second accumulation pass.
      build_and_find(small, nullptr, nullptr, feat_ok);
      build_and_find(big, &leaf, &small, feat_ok);
      leaf.hist.clear();
      leaf.hist.shrink_to_fit();

      const std::size_t small_idx = li;  // reuse the parent's slot
      leaves[small_idx] = std::move(small);
      leaves.push_back(std::move(big));
      heap.emplace(leaves[small_idx].best.gain, small_idx);
      heap.emplace(leaves.back().best.gain, leaves.size() - 1);
      ++leaf_count;
    }

    // Finalize leaf values and update predictions.
    for (const Leaf& leaf : leaves) {
      TreeNode& node = nodes[static_cast<std::size_t>(leaf.node_id)];
      if (node.feature >= 0) continue;  // became an internal node
      node.value = leaf.w > 0.0 ? -leaf.g / (leaf.h + params_.lambda) : 0.0;
    }
    RegressionTree tree(std::move(nodes));
    parallel_for_chunks(n, kRowChunk, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        pred[i] += params_.learning_rate * tree.predict(train.row(i));
    });
    trees_.push_back(std::move(tree));
  }
  rebuild_flat();
}

// Histogram training snaps every split to a bin edge, so each feature
// carries at most max_bins distinct thresholds and the leaf count is
// capped at max_leaves (default 8): fitted models qualify for both the
// quantized and masked SIMD descent engines by construction (DESIGN.md
// "SIMD descent" — the engine tables are derived lazily from flat_).
void HistGbdt::rebuild_flat() { flat_ = FlatForest(trees_); }

double HistGbdt::predict(std::span<const double> x) const {
  // Same flat_ walk as Gbdt::predict — one code path for fitted and
  // binary-loaded models, bit-identical to the per-tree walk.
  ANB_CHECK(!flat_.empty(), "HistGbdt::predict: model not fitted");
  double acc = base_score_;
  for (std::size_t t = 0; t < flat_.num_trees(); ++t)
    acc += params_.learning_rate * flat_.predict_tree(t, x);
  return acc;
}

void HistGbdt::predict_batch(std::span<const double> rows,
                             std::size_t num_features,
                             std::span<double> out) const {
  ANB_CHECK(!flat_.empty(), "HistGbdt::predict_batch: model not fitted");
  std::fill(out.begin(), out.end(), base_score_);
  flat_.accumulate(rows, num_features, params_.learning_rate, out);
}

namespace {

Json hist_gbdt_params_json(const HistGbdtParams& p) {
  Json params = Json::object();
  params["n_estimators"] = p.n_estimators;
  params["learning_rate"] = p.learning_rate;
  params["max_leaves"] = p.max_leaves;
  params["max_bins"] = p.max_bins;
  params["lambda"] = p.lambda;
  params["min_child_weight"] = p.min_child_weight;
  params["min_split_gain"] = p.min_split_gain;
  params["subsample"] = p.subsample;
  params["colsample"] = p.colsample;
  return params;
}

}  // namespace

Json HistGbdt::to_json() const {
  Json j = Json::object();
  j["type"] = name();
  j["base_score"] = base_score_;
  j["params"] = hist_gbdt_params_json(params_);
  Json trees = Json::array();
  if (trees_.empty()) {
    for (const auto& tree : flat_.to_trees()) trees.push_back(tree.to_json());
  } else {
    for (const auto& tree : trees_) trees.push_back(tree.to_json());
  }
  j["trees"] = std::move(trees);
  return j;
}

Json HistGbdt::to_binary(bin::Writer& w) const {
  ANB_CHECK(!flat_.empty(), "HistGbdt::to_binary: model not fitted");
  Json j = Json::object();
  j["type"] = name();
  j["base_score"] = base_score_;
  j["params"] = hist_gbdt_params_json(params_);
  j["nodes"] = static_cast<int>(w.add_array(bin::Tag::kFlatNode, flat_.nodes()));
  j["roots"] = static_cast<int>(w.add_array(bin::Tag::kI32, flat_.roots()));
  return j;
}

std::unique_ptr<HistGbdt> HistGbdt::from_binary(const Json& meta,
                                                const bin::Reader& r) {
  ANB_CHECK(meta.at("type").as_string() == "lgb",
            "HistGbdt::from_binary: wrong type tag");
  const Json& p = meta.at("params");
  HistGbdtParams params;
  params.n_estimators = p.at("n_estimators").as_int();
  params.learning_rate = p.at("learning_rate").as_number();
  params.max_leaves = p.at("max_leaves").as_int();
  params.max_bins = p.at("max_bins").as_int();
  params.lambda = p.at("lambda").as_number();
  params.min_child_weight = p.at("min_child_weight").as_number();
  params.min_split_gain = p.at("min_split_gain").as_number();
  params.subsample = p.at("subsample").as_number();
  params.colsample = p.at("colsample").as_number();
  auto model = std::make_unique<HistGbdt>(params);
  model->base_score_ = meta.at("base_score").as_number();
  model->flat_ = FlatForest(
      r.array<FlatNode>(static_cast<std::uint32_t>(meta.at("nodes").as_int()),
                        bin::Tag::kFlatNode),
      r.array<std::int32_t>(
          static_cast<std::uint32_t>(meta.at("roots").as_int()),
          bin::Tag::kI32));
  ANB_CHECK(!model->flat_.empty(), "HistGbdt::from_binary: empty forest");
  return model;
}

std::unique_ptr<HistGbdt> HistGbdt::from_json(const Json& j) {
  ANB_CHECK(j.at("type").as_string() == "lgb",
            "HistGbdt::from_json: wrong type tag");
  const Json& p = j.at("params");
  HistGbdtParams params;
  params.n_estimators = p.at("n_estimators").as_int();
  params.learning_rate = p.at("learning_rate").as_number();
  params.max_leaves = p.at("max_leaves").as_int();
  params.max_bins = p.at("max_bins").as_int();
  params.lambda = p.at("lambda").as_number();
  params.min_child_weight = p.at("min_child_weight").as_number();
  params.min_split_gain = p.at("min_split_gain").as_number();
  params.subsample = p.at("subsample").as_number();
  params.colsample = p.at("colsample").as_number();
  auto model = std::make_unique<HistGbdt>(params);
  model->base_score_ = j.at("base_score").as_number();
  for (const auto& jt : j.at("trees").as_array())
    model->trees_.push_back(RegressionTree::from_json(jt));
  model->rebuild_flat();
  return model;
}

}  // namespace anb
