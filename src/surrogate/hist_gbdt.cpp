#include "anb/surrogate/hist_gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "anb/util/error.hpp"
#include "anb/util/stats.hpp"

namespace anb {

namespace {

/// Quantile binning of one feature column. `edges[k]` separates bin k from
/// bin k+1 (x goes to bin k iff x < edges[k] and x >= edges[k-1]).
struct FeatureBins {
  std::vector<double> edges;
  int num_bins() const { return static_cast<int>(edges.size()) + 1; }
  int bin_of(double x) const {
    return static_cast<int>(
        std::upper_bound(edges.begin(), edges.end(), x) - edges.begin());
  }
};

FeatureBins make_bins(const Dataset& data, std::size_t f, int max_bins) {
  std::vector<double> values(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) values[i] = data.feature(i, f);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  FeatureBins bins;
  if (static_cast<int>(values.size()) <= max_bins) {
    for (std::size_t k = 0; k + 1 < values.size(); ++k)
      bins.edges.push_back(0.5 * (values[k] + values[k + 1]));
  } else {
    // Quantile edges over distinct values.
    for (int b = 1; b < max_bins; ++b) {
      const auto pos = static_cast<std::size_t>(
          static_cast<double>(b) * static_cast<double>(values.size()) /
          max_bins);
      const std::size_t at = std::min(pos, values.size() - 1);
      const double edge =
          at > 0 ? 0.5 * (values[at - 1] + values[at]) : values[0];
      if (bins.edges.empty() || edge > bins.edges.back())
        bins.edges.push_back(edge);
    }
  }
  return bins;
}

struct HistCell {
  double g = 0.0, h = 0.0, w = 0.0;
};

struct SplitCandidate {
  double gain = -std::numeric_limits<double>::infinity();
  int feature = -1;
  int bin = -1;  ///< rows with bin <= `bin` go left
};

double leaf_gain(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

/// A growable leaf during best-first construction.
struct Leaf {
  int node_id = 0;
  std::vector<std::uint32_t> rows;
  double g = 0.0, h = 0.0, w = 0.0;
  std::vector<HistCell> hist;  // [feature * max_hist_bins + bin]
  SplitCandidate best;
};

}  // namespace

HistGbdt::HistGbdt(HistGbdtParams params) : params_(std::move(params)) {
  ANB_CHECK(params_.n_estimators >= 1, "HistGbdt: n_estimators must be >= 1");
  ANB_CHECK(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0,
            "HistGbdt: learning_rate must be in (0, 1]");
  ANB_CHECK(params_.max_leaves >= 2, "HistGbdt: max_leaves must be >= 2");
  ANB_CHECK(params_.max_bins >= 2 && params_.max_bins <= 256,
            "HistGbdt: max_bins must be in [2, 256]");
  ANB_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0,
            "HistGbdt: subsample must be in (0, 1]");
  ANB_CHECK(params_.colsample > 0.0 && params_.colsample <= 1.0,
            "HistGbdt: colsample must be in (0, 1]");
}

void HistGbdt::fit(const Dataset& train, Rng& rng) {
  ANB_CHECK(train.size() >= 2, "HistGbdt::fit: need at least 2 rows");
  trees_.clear();
  const std::size_t n = train.size();
  const std::size_t d = train.num_features();

  // --- one-time binning ---
  std::vector<FeatureBins> bins;
  bins.reserve(d);
  int max_hist_bins = 1;
  for (std::size_t f = 0; f < d; ++f) {
    bins.push_back(make_bins(train, f, params_.max_bins));
    max_hist_bins = std::max(max_hist_bins, bins.back().num_bins());
  }
  // Binned matrix, row-major.
  std::vector<std::uint8_t> binned(n * d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t f = 0; f < d; ++f)
      binned[i * d + f] =
          static_cast<std::uint8_t>(bins[f].bin_of(train.feature(i, f)));

  base_score_ = mean(train.targets());
  std::vector<double> pred(n, base_score_);
  std::vector<double> g(n), h(n, 1.0);

  const auto hist_size = d * static_cast<std::size_t>(max_hist_bins);

  auto build_hist = [&](Leaf& leaf, const std::vector<char>& feat_ok) {
    leaf.hist.assign(hist_size, HistCell{});
    for (std::uint32_t row : leaf.rows) {
      const std::uint8_t* rb = &binned[row * d];
      for (std::size_t f = 0; f < d; ++f) {
        if (!feat_ok[f]) continue;
        auto& cell = leaf.hist[f * static_cast<std::size_t>(max_hist_bins) + rb[f]];
        cell.g += g[row];
        cell.h += h[row];
        cell.w += 1.0;
      }
    }
  };

  auto find_best = [&](Leaf& leaf, const std::vector<char>& feat_ok) {
    leaf.best = SplitCandidate{};
    const double parent = leaf_gain(leaf.g, leaf.h, params_.lambda);
    for (std::size_t f = 0; f < d; ++f) {
      if (!feat_ok[f]) continue;
      const int nb = bins[f].num_bins();
      double gl = 0.0, hl = 0.0, wl = 0.0;
      for (int b = 0; b + 1 < nb; ++b) {
        const auto& cell =
            leaf.hist[f * static_cast<std::size_t>(max_hist_bins) +
                      static_cast<std::size_t>(b)];
        gl += cell.g;
        hl += cell.h;
        wl += cell.w;
        const double gr = leaf.g - gl;
        const double hr = leaf.h - hl;
        if (hl < params_.min_child_weight || hr < params_.min_child_weight)
          continue;
        if (wl < 1.0 || leaf.w - wl < 1.0) continue;
        const double gain = leaf_gain(gl, hl, params_.lambda) +
                            leaf_gain(gr, hr, params_.lambda) - parent;
        if (gain > leaf.best.gain) leaf.best = {gain, static_cast<int>(f), b};
      }
    }
  };

  for (int t = 0; t < params_.n_estimators; ++t) {
    for (std::size_t i = 0; i < n; ++i) g[i] = pred[i] - train.target(i);

    // Per-tree row bagging and feature sampling.
    std::vector<std::uint32_t> root_rows;
    root_rows.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (params_.subsample >= 1.0 || rng.bernoulli(params_.subsample))
        root_rows.push_back(static_cast<std::uint32_t>(i));
    }
    if (root_rows.empty()) root_rows.push_back(0);
    std::vector<char> feat_ok(d, 1);
    if (params_.colsample < 1.0) {
      std::fill(feat_ok.begin(), feat_ok.end(), 0);
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::lround(params_.colsample * static_cast<double>(d))));
      for (std::size_t f : rng.sample_indices(d, k)) feat_ok[f] = 1;
    }

    std::vector<TreeNode> nodes(1);
    std::vector<Leaf> leaves;  // indexed by heap payload
    auto make_leaf = [&](int node_id, std::vector<std::uint32_t> rows) {
      Leaf leaf;
      leaf.node_id = node_id;
      leaf.rows = std::move(rows);
      for (std::uint32_t row : leaf.rows) {
        leaf.g += g[row];
        leaf.h += h[row];
        leaf.w += 1.0;
      }
      return leaf;
    };

    {
      Leaf root = make_leaf(0, std::move(root_rows));
      build_hist(root, feat_ok);
      find_best(root, feat_ok);
      leaves.push_back(std::move(root));
    }

    // Max-heap of splittable leaves by gain.
    using HeapItem = std::pair<double, std::size_t>;
    std::priority_queue<HeapItem> heap;
    heap.emplace(leaves[0].best.gain, 0);

    int leaf_count = 1;
    while (leaf_count < params_.max_leaves && !heap.empty()) {
      const auto [gain, li] = heap.top();
      heap.pop();
      if (gain <= params_.min_split_gain) break;
      Leaf& leaf = leaves[li];
      const SplitCandidate split = leaf.best;

      // Partition rows on the binned feature.
      std::vector<std::uint32_t> left_rows, right_rows;
      for (std::uint32_t row : leaf.rows) {
        const int b = binned[row * d + static_cast<std::size_t>(split.feature)];
        (b <= split.bin ? left_rows : right_rows).push_back(row);
      }
      ANB_ASSERT(!left_rows.empty() && !right_rows.empty(),
                 "HistGbdt: degenerate split");

      // emplace_back below may reallocate `nodes`: finish every write
      // through the parent reference first and keep the child indices in
      // locals (heap-use-after-free otherwise; caught by ASan).
      const int left_child = static_cast<int>(nodes.size());
      {
        TreeNode& parent = nodes[static_cast<std::size_t>(leaf.node_id)];
        parent.feature = split.feature;
        parent.threshold =
            bins[static_cast<std::size_t>(split.feature)]
                .edges[static_cast<std::size_t>(split.bin)];
        parent.left = left_child;
        parent.right = left_child + 1;
      }
      nodes.emplace_back();
      nodes.emplace_back();

      Leaf small = make_leaf(left_child, std::move(left_rows));
      Leaf big = make_leaf(left_child + 1, std::move(right_rows));
      if (small.rows.size() > big.rows.size()) std::swap(small, big);

      // Histogram subtraction: build the smaller child, derive the sibling.
      build_hist(small, feat_ok);
      big.hist.resize(hist_size);
      for (std::size_t c = 0; c < hist_size; ++c) {
        big.hist[c].g = leaf.hist[c].g - small.hist[c].g;
        big.hist[c].h = leaf.hist[c].h - small.hist[c].h;
        big.hist[c].w = leaf.hist[c].w - small.hist[c].w;
      }
      leaf.hist.clear();
      leaf.hist.shrink_to_fit();
      find_best(small, feat_ok);
      find_best(big, feat_ok);

      const std::size_t small_idx = li;  // reuse the parent's slot
      leaves[small_idx] = std::move(small);
      leaves.push_back(std::move(big));
      heap.emplace(leaves[small_idx].best.gain, small_idx);
      heap.emplace(leaves.back().best.gain, leaves.size() - 1);
      ++leaf_count;
    }

    // Finalize leaf values and update predictions.
    for (const Leaf& leaf : leaves) {
      TreeNode& node = nodes[static_cast<std::size_t>(leaf.node_id)];
      if (node.feature >= 0) continue;  // became an internal node
      node.value = leaf.w > 0.0 ? -leaf.g / (leaf.h + params_.lambda) : 0.0;
    }
    RegressionTree tree(std::move(nodes));
    for (std::size_t i = 0; i < n; ++i)
      pred[i] += params_.learning_rate * tree.predict(train.row(i));
    trees_.push_back(std::move(tree));
  }
  rebuild_flat();
}

void HistGbdt::rebuild_flat() { flat_ = FlatForest(trees_); }

double HistGbdt::predict(std::span<const double> x) const {
  ANB_CHECK(!trees_.empty(), "HistGbdt::predict: model not fitted");
  double acc = base_score_;
  for (const auto& tree : trees_) acc += params_.learning_rate * tree.predict(x);
  return acc;
}

void HistGbdt::predict_batch(std::span<const double> rows,
                             std::size_t num_features,
                             std::span<double> out) const {
  ANB_CHECK(!trees_.empty(), "HistGbdt::predict_batch: model not fitted");
  std::fill(out.begin(), out.end(), base_score_);
  flat_.accumulate(rows, num_features, params_.learning_rate, out);
}

Json HistGbdt::to_json() const {
  Json j = Json::object();
  j["type"] = name();
  j["base_score"] = base_score_;
  Json params = Json::object();
  params["n_estimators"] = params_.n_estimators;
  params["learning_rate"] = params_.learning_rate;
  params["max_leaves"] = params_.max_leaves;
  params["max_bins"] = params_.max_bins;
  params["lambda"] = params_.lambda;
  params["min_child_weight"] = params_.min_child_weight;
  params["min_split_gain"] = params_.min_split_gain;
  params["subsample"] = params_.subsample;
  params["colsample"] = params_.colsample;
  j["params"] = std::move(params);
  Json trees = Json::array();
  for (const auto& tree : trees_) trees.push_back(tree.to_json());
  j["trees"] = std::move(trees);
  return j;
}

std::unique_ptr<HistGbdt> HistGbdt::from_json(const Json& j) {
  ANB_CHECK(j.at("type").as_string() == "lgb",
            "HistGbdt::from_json: wrong type tag");
  const Json& p = j.at("params");
  HistGbdtParams params;
  params.n_estimators = p.at("n_estimators").as_int();
  params.learning_rate = p.at("learning_rate").as_number();
  params.max_leaves = p.at("max_leaves").as_int();
  params.max_bins = p.at("max_bins").as_int();
  params.lambda = p.at("lambda").as_number();
  params.min_child_weight = p.at("min_child_weight").as_number();
  params.min_split_gain = p.at("min_split_gain").as_number();
  params.subsample = p.at("subsample").as_number();
  params.colsample = p.at("colsample").as_number();
  auto model = std::make_unique<HistGbdt>(params);
  model->base_score_ = j.at("base_score").as_number();
  for (const auto& jt : j.at("trees").as_array())
    model->trees_.push_back(RegressionTree::from_json(jt));
  model->rebuild_flat();
  return model;
}

}  // namespace anb
