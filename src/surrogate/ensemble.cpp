#include "anb/surrogate/ensemble.hpp"

#include <algorithm>
#include <cmath>

#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/binary.hpp"
#include "anb/util/error.hpp"

namespace anb {

EnsembleSurrogate::EnsembleSurrogate(Factory factory, int size,
                                     double bootstrap_frac)
    : factory_(std::move(factory)),
      target_size_(size),
      bootstrap_frac_(bootstrap_frac) {
  ANB_CHECK(static_cast<bool>(factory_), "EnsembleSurrogate: null factory");
  ANB_CHECK(target_size_ >= 2, "EnsembleSurrogate: size must be >= 2");
  ANB_CHECK(bootstrap_frac_ > 0.0 && bootstrap_frac_ <= 1.0,
            "EnsembleSurrogate: bootstrap_frac must be in (0, 1]");
}

EnsembleSurrogate::EnsembleSurrogate(
    std::vector<std::unique_ptr<Surrogate>> members)
    : members_(std::move(members)) {
  ANB_CHECK(members_.size() >= 2,
            "EnsembleSurrogate: need at least 2 members");
  for (const auto& m : members_)
    ANB_CHECK(m != nullptr, "EnsembleSurrogate: null member");
}

void EnsembleSurrogate::fit(const Dataset& train, Rng& rng) {
  ANB_CHECK(static_cast<bool>(factory_),
            "EnsembleSurrogate::fit: wrapper built from fitted members has "
            "no factory to refit with");
  ANB_CHECK(train.size() >= 4, "EnsembleSurrogate::fit: dataset too small");
  ANB_SPAN("anb.fit.ensemble");
  obs::counter("anb.fit.ensemble.count").add(1);
  members_.clear();
  const auto subset_size = std::max<std::size_t>(
      2, static_cast<std::size_t>(bootstrap_frac_ *
                                  static_cast<double>(train.size())));
  for (int k = 0; k < target_size_; ++k) {
    auto model = factory_();
    ANB_CHECK(model != nullptr, "EnsembleSurrogate: factory returned null");
    const auto idx = rng.sample_indices(train.size(), subset_size);
    const Dataset member_train = train.subset(idx);
    Rng fit_rng = rng.fork();
    model->fit(member_train, fit_rng);
    members_.push_back(std::move(model));
  }
}

double EnsembleSurrogate::predict(std::span<const double> x) const {
  return predict_dist(x).first;
}

void EnsembleSurrogate::predict_batch(std::span<const double> rows,
                                      std::size_t num_features,
                                      std::span<double> out) const {
  ANB_CHECK(!members_.empty(), "EnsembleSurrogate::predict_batch: not fitted");
  ANB_CHECK(num_features > 0 && rows.size() == out.size() * num_features,
            "EnsembleSurrogate::predict_batch: row matrix / output size "
            "mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  std::vector<double> tmp(out.size());
  for (const auto& m : members_) {
    m->predict_batch(rows, num_features, tmp);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += tmp[i];
  }
  const double n = static_cast<double>(members_.size());
  for (double& v : out) v /= n;
}

std::pair<double, double> EnsembleSurrogate::predict_dist(
    std::span<const double> x) const {
  ANB_CHECK(!members_.empty(), "EnsembleSurrogate: not fitted");
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& m : members_) {
    const double v = m->predict(x);
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(members_.size());
  const double mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - mean * mean);
  return {mean, std::sqrt(var)};
}

double EnsembleSurrogate::sample(std::span<const double> x, Rng& rng) const {
  const auto [mean, std] = predict_dist(x);
  return mean + std * rng.normal();
}

const Surrogate& EnsembleSurrogate::member(std::size_t i) const {
  ANB_CHECK(i < members_.size(), "EnsembleSurrogate: member out of range");
  return *members_[i];
}

Json EnsembleSurrogate::to_json() const {
  ANB_CHECK(!members_.empty(), "EnsembleSurrogate: not fitted");
  Json j = Json::object();
  j["type"] = name();
  Json arr = Json::array();
  for (const auto& m : members_) arr.push_back(m->to_json());
  j["members"] = std::move(arr);
  return j;
}

std::unique_ptr<EnsembleSurrogate> EnsembleSurrogate::from_json(const Json& j) {
  ANB_CHECK(j.at("type").as_string() == "ensemble",
            "EnsembleSurrogate::from_json: wrong type tag");
  std::vector<std::unique_ptr<Surrogate>> members;
  for (const auto& jm : j.at("members").as_array())
    members.push_back(surrogate_from_json(jm));
  return std::make_unique<EnsembleSurrogate>(std::move(members));
}

Json EnsembleSurrogate::to_binary(bin::Writer& w) const {
  ANB_CHECK(!members_.empty(), "EnsembleSurrogate: not fitted");
  Json j = Json::object();
  j["type"] = name();
  Json arr = Json::array();
  for (const auto& m : members_) arr.push_back(m->to_binary(w));
  j["members"] = std::move(arr);
  return j;
}

std::unique_ptr<EnsembleSurrogate> EnsembleSurrogate::from_binary(
    const Json& meta, const bin::Reader& r) {
  ANB_CHECK(meta.at("type").as_string() == "ensemble",
            "EnsembleSurrogate::from_binary: wrong type tag");
  std::vector<std::unique_ptr<Surrogate>> members;
  for (const auto& jm : meta.at("members").as_array())
    members.push_back(surrogate_from_binary(jm, r));
  return std::make_unique<EnsembleSurrogate>(std::move(members));
}

}  // namespace anb
