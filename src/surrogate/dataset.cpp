#include "anb/surrogate/dataset.hpp"

#include <charconv>
#include <sstream>

#include "anb/util/csv.hpp"
#include "anb/util/error.hpp"

namespace anb {

Dataset::Dataset(std::size_t num_features) : num_features_(num_features) {
  ANB_CHECK(num_features_ > 0, "Dataset: num_features must be > 0");
}

void Dataset::add(std::span<const double> x, double y) {
  ANB_CHECK(x.size() == num_features_,
            "Dataset::add: feature vector has wrong dimension");
  features_.insert(features_.end(), x.begin(), x.end());
  targets_.push_back(y);
}

std::span<const double> Dataset::row(std::size_t i) const {
  ANB_CHECK(i < size(), "Dataset::row: index out of range");
  return {features_.data() + i * num_features_, num_features_};
}

double Dataset::target(std::size_t i) const {
  ANB_CHECK(i < size(), "Dataset::target: index out of range");
  return targets_[i];
}

double Dataset::feature(std::size_t i, std::size_t f) const {
  ANB_CHECK(i < size() && f < num_features_,
            "Dataset::feature: index out of range");
  return features_[i * num_features_ + f];
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(num_features_);
  for (std::size_t i : indices) {
    out.add(row(i), target(i));
  }
  return out;
}

DatasetSplits Dataset::split(double train_frac, double val_frac,
                             Rng& rng) const {
  ANB_CHECK(train_frac >= 0 && val_frac >= 0 && train_frac + val_frac <= 1.0,
            "Dataset::split: fractions must be non-negative and sum to <= 1");
  ANB_CHECK(size() >= 3, "Dataset::split: need at least 3 rows");
  std::vector<std::size_t> idx(size());
  for (std::size_t i = 0; i < size(); ++i) idx[i] = i;
  rng.shuffle(idx);

  const auto n_rows = static_cast<double>(size());
  const auto n_train = static_cast<std::size_t>(train_frac * n_rows);
  const auto n_val = static_cast<std::size_t>(val_frac * n_rows);
  const std::span<const std::size_t> all(idx);
  DatasetSplits splits{subset(all.subspan(0, n_train)),
                       subset(all.subspan(n_train, n_val)),
                       subset(all.subspan(n_train + n_val))};
  return splits;
}

std::string Dataset::to_csv() const {
  std::vector<std::string> header;
  header.reserve(num_features_ + 1);
  for (std::size_t f = 0; f < num_features_; ++f)
    header.push_back("f" + std::to_string(f));
  header.push_back("target");
  CsvWriter writer(std::move(header));
  for (std::size_t i = 0; i < size(); ++i) {
    std::vector<double> cells(row(i).begin(), row(i).end());
    cells.push_back(target(i));
    writer.add_row(cells);
  }
  return writer.to_string();
}

Dataset Dataset::from_csv(const std::string& text) {
  const auto rows = parse_csv(text);
  ANB_CHECK(rows.size() >= 2, "Dataset::from_csv: need header plus data rows");
  const std::size_t cols = rows[0].size();
  ANB_CHECK(cols >= 2, "Dataset::from_csv: need at least one feature column");
  Dataset out(cols - 1);
  std::vector<double> x(cols - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    ANB_CHECK(rows[r].size() == cols,
              "Dataset::from_csv: ragged row " + std::to_string(r));
    for (std::size_t c = 0; c < cols; ++c) {
      double v = 0.0;
      const auto& cell = rows[r][c];
      const auto [ptr, ec] =
          std::from_chars(cell.data(), cell.data() + cell.size(), v);
      ANB_CHECK(ec == std::errc{} && ptr == cell.data() + cell.size(),
                "Dataset::from_csv: bad number '" + cell + "'");
      if (c + 1 == cols) {
        out.add(x, v);
      } else {
        x[c] = v;
      }
    }
  }
  return out;
}

}  // namespace anb
