#include "anb/surrogate/surrogate.hpp"

#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/util/error.hpp"
#include "anb/util/metrics.hpp"

namespace anb {

std::vector<double> Surrogate::predict_all(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out.push_back(predict(data.row(i)));
  return out;
}

FitMetrics Surrogate::evaluate(const Dataset& data) const {
  ANB_CHECK(data.size() >= 2, "Surrogate::evaluate: need at least 2 rows");
  const auto preds = predict_all(data);
  FitMetrics m;
  m.r2 = r2_score(data.targets(), preds);
  m.kendall_tau = kendall_tau(data.targets(), preds);
  m.mae = mae(data.targets(), preds);
  m.rmse = rmse(data.targets(), preds);
  return m;
}

std::unique_ptr<Surrogate> surrogate_from_json(const Json& j) {
  const std::string& type = j.at("type").as_string();
  if (type == "xgb") return Gbdt::from_json(j);
  if (type == "lgb") return HistGbdt::from_json(j);
  if (type == "rf") return RandomForest::from_json(j);
  if (type == "esvr" || type == "nusvr") return Svr::from_json(j);
  if (type == "ensemble") return EnsembleSurrogate::from_json(j);
  throw Error("surrogate_from_json: unknown surrogate type '" + type + "'");
}

}  // namespace anb
