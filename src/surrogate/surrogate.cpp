#include "anb/surrogate/surrogate.hpp"

#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/surrogate/train_context.hpp"
#include "anb/util/error.hpp"
#include "anb/util/metrics.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

void Surrogate::fit(const Dataset& train, TrainContext& ctx, Rng& rng) {
  ANB_CHECK(&ctx.data() == &train,
            "Surrogate::fit: context built for a different dataset");
  fit(train, rng);
}

namespace {
/// Rows per parallel_for_chunks work item in predict_matrix. Large enough
/// to amortize thread dispatch, small enough to spread a NAS population
/// across workers.
constexpr std::size_t kPredictChunk = 256;
}  // namespace

void Surrogate::predict_batch(std::span<const double> rows,
                              std::size_t num_features,
                              std::span<double> out) const {
  ANB_CHECK(num_features > 0 && rows.size() == out.size() * num_features,
            "Surrogate::predict_batch: row matrix / output size mismatch");
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = predict(rows.subspan(i * num_features, num_features));
}

void Surrogate::predict_matrix(std::span<const double> rows,
                               std::size_t num_features,
                               std::span<double> out) const {
  ANB_CHECK(num_features > 0 && rows.size() == out.size() * num_features,
            "Surrogate::predict_matrix: row matrix / output size mismatch");
  parallel_for_chunks(out.size(), kPredictChunk,
                      [&](std::size_t begin, std::size_t end) {
                        predict_batch(
                            rows.subspan(begin * num_features,
                                         (end - begin) * num_features),
                            num_features, out.subspan(begin, end - begin));
                      });
}

std::vector<double> Surrogate::predict_all(const Dataset& data) const {
  std::vector<double> out(data.size());
  predict_matrix(data.features_flat(), data.num_features(), out);
  return out;
}

FitMetrics Surrogate::evaluate(const Dataset& data) const {
  ANB_CHECK(data.size() >= 2, "Surrogate::evaluate: need at least 2 rows");
  const auto preds = predict_all(data);
  FitMetrics m;
  m.r2 = r2_score(data.targets(), preds);
  m.kendall_tau = kendall_tau(data.targets(), preds);
  m.mae = mae(data.targets(), preds);
  m.rmse = rmse(data.targets(), preds);
  return m;
}

std::unique_ptr<Surrogate> surrogate_from_json(const Json& j) {
  const std::string& type = j.at("type").as_string();
  if (type == "xgb") return Gbdt::from_json(j);
  if (type == "lgb") return HistGbdt::from_json(j);
  if (type == "rf") return RandomForest::from_json(j);
  if (type == "esvr" || type == "nusvr") return Svr::from_json(j);
  if (type == "ensemble") return EnsembleSurrogate::from_json(j);
  throw Error("surrogate_from_json: unknown surrogate type '" + type + "'");
}

std::unique_ptr<Surrogate> surrogate_from_binary(const Json& meta,
                                                 const bin::Reader& r) {
  const std::string& type = meta.at("type").as_string();
  if (type == "xgb") return Gbdt::from_binary(meta, r);
  if (type == "lgb") return HistGbdt::from_binary(meta, r);
  if (type == "rf") return RandomForest::from_binary(meta, r);
  if (type == "esvr" || type == "nusvr") return Svr::from_binary(meta, r);
  if (type == "ensemble") return EnsembleSurrogate::from_binary(meta, r);
  throw Error("surrogate_from_binary: unknown surrogate type '" + type + "'");
}

}  // namespace anb
