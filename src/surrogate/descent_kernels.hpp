#pragma once

// Internal header (not installed): the templated SIMD descent kernels for
// FlatForest, instantiated once per ISA translation unit. flat_forest.cpp
// instantiates ScalarIsa (and NeonIsa on ARM); flat_forest_avx2.cpp —
// the only TU compiled with -mavx2 — instantiates Avx2Isa. The Isa types
// are disjoint across TUs (Avx2Isa is not even defined without -mavx2),
// so no linker merging can ever route baseline callers into AVX2 code.
//
// Kernel shape (mirrors the PR 2 interleaved walk, one tier wider): per
// 64-row block, two consecutive trees descend 16 rows in lockstep — four
// 8-lane chains of mutually independent gathers in flight, which is what
// hides the ~L2-latency serial node-load chain that bounds the scalar
// walk. Self-looping leaves make "no lane moved" the combined leaf test.
//
// Exactness contract (same as FlatForest::accumulate): every lane takes
// exactly the scalar `x[feature] < split` decisions (quantized descent
// proves its byte compare equivalent — see flat_forest.cpp), and each
// row's accumulation `out += scale * leaf` happens in tree order with
// mul and add unfused.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "anb/util/simd.hpp"

namespace anb::detail {

/// Structure-of-arrays view of a FlatForest (64-byte-aligned arrays owned
/// by FlatForest's lazily built SimdTables). `value` holds the split
/// threshold for internal nodes and the leaf value for leaves — the same
/// dual use as FlatNode::split.
struct SoaView {
  const double* value = nullptr;
  const std::int32_t* feature = nullptr;
  const std::int32_t* left = nullptr;
  const std::int32_t* right = nullptr;
  const std::int32_t* roots = nullptr;
  std::size_t num_trees = 0;
};

/// Quantized node array: one packed word per node,
///   bits  0..15  left child   (tree-local offset)
///   bits 16..31  right child  (tree-local offset)
///   bits 32..47  feature index
///   bits 48..63  quantized threshold code (0 for leaves)
/// Children are tree-local so they fit 16 bits; the kernel adds the
/// tree's root back per step. One 8-byte gather fetches a whole node.
struct QuantView {
  const std::uint64_t* qnodes = nullptr;
};

/// Masked leaf-set evaluation tables (the QuickScorer scheme of Lucchese
/// et al., SIGIR'15, specialized to <= 8 leaves per tree). Leaves are
/// numbered left to right; each internal node carries an 8-bit mask with
/// zeros exactly at the leaves of its *left* subtree. Evaluating a tree
/// on a row ANDs the masks of every node whose condition `code < qsplit`
/// is false; the lowest set bit of the result is the exit leaf:
///  - the exit leaf survives: a false node with the exit leaf in its left
///    subtree would be a path ancestor whose condition sent the row left;
///  - any leaf left of the exit is killed by the path node where the
///    descent turned right (its left subtree holds that leaf).
/// Nodes are therefore processed in arbitrary order with no per-node
/// dependence — a straight-line AND-reduction over 32-row byte vectors,
/// no gathers and no settle loop, cost proportional to node count rather
/// than depth.
struct MaskedView {
  const std::uint32_t* feature = nullptr;   ///< per internal node
  const std::uint8_t* qsplit_x = nullptr;   ///< threshold code ^ 0x80
  const std::uint8_t* mask = nullptr;       ///< ~(left-subtree leaf bits)
  const std::uint32_t* node_off = nullptr;  ///< per-tree [t, t+1) node range
  const double* leaf = nullptr;             ///< leaf values, trees back to back
  const std::uint32_t* leaf_off = nullptr;  ///< per-tree start into `leaf`
};

using F64Fn = void (*)(const SoaView& f, const double* rows, std::size_t d,
                       double scale, double* out, std::size_t n);
using QuantFn = void (*)(const SoaView& f, const QuantView& q,
                         const std::uint8_t* codes, std::size_t d_codes,
                         double scale, double* out, std::size_t n);
using MaskedFn = void (*)(const MaskedView& m, std::size_t num_trees,
                          const std::uint8_t* codes_t, double scale,
                          double* out, std::size_t n);

/// Per-ISA kernel entry points, dispatched at run time by
/// FlatForest::accumulate.
struct DescentKernels {
  F64Fn f64 = nullptr;
  QuantFn quant = nullptr;
  MaskedFn masked = nullptr;
};

/// The AVX2 instantiation, or nullptr when the toolchain/architecture
/// cannot build it. Defined in flat_forest_avx2.cpp.
const DescentKernels* avx2_descent_kernels();

namespace kernels {

/// Stepper for the full-precision path: gathers feature index, compares
/// the gathered feature value against the gathered threshold, selects the
/// gathered child. Children in the SoA arrays are forest-global, so the
/// per-tree base is unused.
template <class Isa>
struct F64Step {
  using Elem = double;
  using V = typename Isa::VI32;

  const SoaView& f;
  const double* rows;

  V step(V at, V /*base*/, V rowoff) const {
    const V feat = Isa::gather_i32(f.feature, at);
    const V m = Isa::cmplt_f64(rows, Isa::add(rowoff, feat), f.value, at);
    return Isa::select(m, Isa::gather_i32(f.left, at),
                       Isa::gather_i32(f.right, at));
  }
  std::int32_t sstep(std::int32_t at, std::int32_t /*base*/,
                     const double* x) const {
    return x[f.feature[at]] < f.value[at] ? f.left[at] : f.right[at];
  }
  void prefetch_tree(std::int32_t root) const {
    simd::prefetch(f.value + root);
    simd::prefetch(f.feature + root);
    simd::prefetch(f.left + root);
    simd::prefetch(f.right + root);
  }
};

/// Stepper for the quantized path: one u64 gather fetches the packed
/// node, one byte gather fetches the row's precomputed threshold code,
/// and the branch is a signed i32 compare of two small unsigned values.
/// Leaves pack feature=0, qsplit=0, left=right=self: `code < 0` is false,
/// so leaves stay fixed points.
template <class Isa>
struct QuantStep {
  using Elem = std::uint8_t;
  using V = typename Isa::VI32;

  const QuantView& q;
  const std::uint8_t* codes;

  V step(V at, V base, V rowoff) const {
    V lo, hi;
    Isa::gather_u64(q.qnodes, at, lo, hi);
    const V feat = Isa::low16(hi);
    const V qsplit = Isa::high16(hi);
    const V code = Isa::gather_u8(codes, Isa::add(rowoff, feat));
    const V m = Isa::cmplt(code, qsplit);
    const V local = Isa::select(m, Isa::low16(lo), Isa::high16(lo));
    return Isa::add(base, local);
  }
  std::int32_t sstep(std::int32_t at, std::int32_t base,
                     const std::uint8_t* crow) const {
    const std::uint64_t w = q.qnodes[at];
    const auto feat = static_cast<std::int32_t>((w >> 32) & 0xFFFF);
    const auto qsplit = static_cast<std::int32_t>(w >> 48);
    const auto local = static_cast<std::int32_t>(
        static_cast<std::int32_t>(crow[feat]) < qsplit ? (w & 0xFFFF)
                                                       : ((w >> 16) & 0xFFFF));
    return base + local;
  }
  void prefetch_tree(std::int32_t root) const {
    simd::prefetch(q.qnodes + root);
  }
};

/// Two trees x 8 rows: two independent gather chains.
template <class Isa, class Step>
inline void descend8_pair(const Step& st, const double* value,
                          const std::int32_t* rowoff, std::int32_t r0,
                          std::int32_t r1, double scale, double* out) {
  using V = typename Isa::VI32;
  const V off = Isa::load(rowoff);
  const V base0 = Isa::splat(r0);
  const V base1 = Isa::splat(r1);
  V a = base0;
  V c = base1;
  while (true) {
    const V b = st.step(a, base0, off);
    const V d = st.step(c, base1, off);
    const V settled = Isa::bit_and(Isa::cmpeq(b, a), Isa::cmpeq(d, c));
    a = b;
    c = d;
    if (Isa::all_true(settled)) break;
  }
  // Tree r0 before tree r1 for every row — scalar accumulation order.
  Isa::axpy_leaf(value, a, scale, out);
  Isa::axpy_leaf(value, c, scale, out);
}

/// Two trees x 16 rows: four independent gather chains — enough
/// outstanding loads to cover the per-step gather latency on wide cores.
template <class Isa, class Step>
inline void descend16_pair(const Step& st, const double* value,
                           const std::int32_t* rowoff, std::int32_t r0,
                           std::int32_t r1, double scale, double* out) {
  using V = typename Isa::VI32;
  const V off0 = Isa::load(rowoff);
  const V off1 = Isa::load(rowoff + 8);
  const V base0 = Isa::splat(r0);
  const V base1 = Isa::splat(r1);
  V a0 = base0;
  V a1 = base0;
  V c0 = base1;
  V c1 = base1;
  while (true) {
    const V b0 = st.step(a0, base0, off0);
    const V b1 = st.step(a1, base0, off1);
    const V d0 = st.step(c0, base1, off0);
    const V d1 = st.step(c1, base1, off1);
    const V settled =
        Isa::bit_and(Isa::bit_and(Isa::cmpeq(b0, a0), Isa::cmpeq(b1, a1)),
                     Isa::bit_and(Isa::cmpeq(d0, c0), Isa::cmpeq(d1, c1)));
    a0 = b0;
    a1 = b1;
    c0 = d0;
    c1 = d1;
    if (Isa::all_true(settled)) break;
  }
  Isa::axpy_leaf(value, a0, scale, out);
  Isa::axpy_leaf(value, c0, scale, out);
  Isa::axpy_leaf(value, a1, scale, out + 8);
  Isa::axpy_leaf(value, c1, scale, out + 8);
}

/// One tree x 8 rows (odd-tree remainder).
template <class Isa, class Step>
inline void descend8_single(const Step& st, const double* value,
                            const std::int32_t* rowoff, std::int32_t r0,
                            double scale, double* out) {
  using V = typename Isa::VI32;
  const V off = Isa::load(rowoff);
  const V base = Isa::splat(r0);
  V a = base;
  while (true) {
    const V b = st.step(a, base, off);
    const V settled = Isa::cmpeq(b, a);
    a = b;
    if (Isa::all_true(settled)) break;
  }
  Isa::axpy_leaf(value, a, scale, out);
}

/// One tree x 16 rows (odd-tree remainder, two chains).
template <class Isa, class Step>
inline void descend16_single(const Step& st, const double* value,
                             const std::int32_t* rowoff, std::int32_t r0,
                             double scale, double* out) {
  using V = typename Isa::VI32;
  const V off0 = Isa::load(rowoff);
  const V off1 = Isa::load(rowoff + 8);
  const V base = Isa::splat(r0);
  V a0 = base;
  V a1 = base;
  while (true) {
    const V b0 = st.step(a0, base, off0);
    const V b1 = st.step(a1, base, off1);
    const V settled = Isa::bit_and(Isa::cmpeq(b0, a0), Isa::cmpeq(b1, a1));
    a0 = b0;
    a1 = b1;
    if (Isa::all_true(settled)) break;
  }
  Isa::axpy_leaf(value, a0, scale, out);
  Isa::axpy_leaf(value, a1, scale, out + 8);
}

/// Driver shared by both steppers: 64-row blocks (same blocking as the
/// interleaved path), tree pairs, 16/8-row SIMD groups, scalar tail rows.
/// `data`/`stride` address the per-row inputs the scalar tail needs
/// (feature doubles for F64Step, code bytes for QuantStep); the caller
/// guarantees n * stride fits int32 (checked in FlatForest::accumulate).
template <class Isa, class Step>
void run_descent(const SoaView& f, const Step& st,
                 const typename Step::Elem* data, std::size_t stride,
                 double scale, double* out, std::size_t n) {
  constexpr std::size_t kRowBlock = 64;
  const std::int32_t* const roots = f.roots;
  const std::size_t num_trees = f.num_trees;
  std::int32_t rowoff[kRowBlock];

  for (std::size_t begin = 0; begin < n; begin += kRowBlock) {
    const std::size_t nb = std::min(n - begin, kRowBlock);
    for (std::size_t i = 0; i < nb; ++i)
      rowoff[i] = static_cast<std::int32_t>((begin + i) * stride);
    std::size_t t = 0;
    for (; t + 2 <= num_trees; t += 2) {
      if (t + 4 <= num_trees) {
        st.prefetch_tree(roots[t + 2]);
        st.prefetch_tree(roots[t + 3]);
      }
      const std::int32_t r0 = roots[t];
      const std::int32_t r1 = roots[t + 1];
      std::size_t i = 0;
      for (; i + 16 <= nb; i += 16)
        descend16_pair<Isa>(st, f.value, rowoff + i, r0, r1, scale,
                            out + begin + i);
      for (; i + 8 <= nb; i += 8)
        descend8_pair<Isa>(st, f.value, rowoff + i, r0, r1, scale,
                           out + begin + i);
      for (; i < nb; ++i) {
        const auto* const x = data + (begin + i) * stride;
        std::int32_t a = r0;
        std::int32_t c = r1;
        while (true) {
          const std::int32_t b = st.sstep(a, r0, x);
          const std::int32_t d = st.sstep(c, r1, x);
          const bool settled = (b == a) & (d == c);
          a = b;
          c = d;
          if (settled) break;
        }
        out[begin + i] += scale * f.value[a];
        out[begin + i] += scale * f.value[c];
      }
    }
    if (t < num_trees) {
      const std::int32_t r0 = roots[t];
      std::size_t i = 0;
      for (; i + 16 <= nb; i += 16)
        descend16_single<Isa>(st, f.value, rowoff + i, r0, scale,
                              out + begin + i);
      for (; i + 8 <= nb; i += 8)
        descend8_single<Isa>(st, f.value, rowoff + i, r0, scale,
                             out + begin + i);
      for (; i < nb; ++i) {
        const auto* const x = data + (begin + i) * stride;
        std::int32_t at = r0;
        for (std::int32_t next = st.sstep(at, r0, x); next != at;
             next = st.sstep(at, r0, x)) {
          at = next;
        }
        out[begin + i] += scale * f.value[at];
      }
    }
  }
}

/// Masked leaf-set evaluation (see MaskedView). `codes_t` is the batch's
/// quantized feature matrix transposed to feature-major (stride n) with
/// every code XOR 0x80, so one unaligned 32-byte load covers 32 rows of
/// one feature and the signed byte compare reproduces the unsigned
/// `code < qsplit` decision. Full 64-row blocks run two 32-row vector
/// accumulators; the tail block falls back to a per-row scalar loop. The
/// exit-leaf lookup `countr_zero` never sees 0: the exit leaf's bit
/// survives every mask by construction.
template <class Isa>
void run_masked(const MaskedView& m, std::size_t num_trees,
                const std::uint8_t* codes_t, double scale, double* out,
                std::size_t n) {
  using VU8 = typename Isa::VU8;
  constexpr std::size_t kRowBlock = 64;
  alignas(64) std::uint8_t accb[kRowBlock];

  for (std::size_t begin = 0; begin < n; begin += kRowBlock) {
    const std::size_t nb = std::min(n - begin, kRowBlock);
    if (nb == kRowBlock) {
      for (std::size_t t = 0; t < num_trees; ++t) {
        VU8 acc0 = Isa::b_ones();
        VU8 acc1 = Isa::b_ones();
        const std::uint32_t k1 = m.node_off[t + 1];
        for (std::uint32_t k = m.node_off[t]; k < k1; ++k) {
          const std::uint8_t* const c =
              codes_t + static_cast<std::size_t>(m.feature[k]) * n + begin;
          const VU8 split = Isa::b_splat(m.qsplit_x[k]);
          const VU8 msk = Isa::b_splat(m.mask[k]);
          // Condition true (code < qsplit): compare lanes are 0xFF, the
          // OR saturates and the node constrains nothing. Condition
          // false: the node's leaf mask is ANDed in.
          acc0 = Isa::b_and(
              acc0, Isa::b_or(Isa::b_cmplt_s8(Isa::b_load(c), split), msk));
          acc1 = Isa::b_and(
              acc1,
              Isa::b_or(Isa::b_cmplt_s8(Isa::b_load(c + 32), split), msk));
        }
        Isa::b_store(accb, acc0);
        Isa::b_store(accb + 32, acc1);
        const double* const lv = m.leaf + m.leaf_off[t];
        double* const o = out + begin;
        // Tree t's contribution lands before tree t+1's for every row —
        // the scalar accumulation order, mul and add unfused.
        for (std::size_t i = 0; i < kRowBlock; ++i)
          o[i] += scale * lv[std::countr_zero(accb[i])];
      }
    } else {
      for (std::size_t t = 0; t < num_trees; ++t) {
        const std::uint32_t k0 = m.node_off[t];
        const std::uint32_t k1 = m.node_off[t + 1];
        const double* const lv = m.leaf + m.leaf_off[t];
        for (std::size_t i = 0; i < nb; ++i) {
          std::uint8_t acc = 0xFF;
          for (std::uint32_t k = k0; k < k1; ++k) {
            const std::uint8_t cx =
                codes_t[static_cast<std::size_t>(m.feature[k]) * n + begin +
                        i];
            if (static_cast<std::int8_t>(cx) >=
                static_cast<std::int8_t>(m.qsplit_x[k]))
              acc &= m.mask[k];
          }
          out[begin + i] += scale * lv[std::countr_zero(acc)];
        }
      }
    }
  }
}

template <class Isa>
void run_f64(const SoaView& f, const double* rows, std::size_t d,
             double scale, double* out, std::size_t n) {
  const F64Step<Isa> st{f, rows};
  run_descent<Isa>(f, st, rows, d, scale, out, n);
}

template <class Isa>
void run_quant(const SoaView& f, const QuantView& q,
               const std::uint8_t* codes, std::size_t d_codes, double scale,
               double* out, std::size_t n) {
  const QuantStep<Isa> st{q, codes};
  run_descent<Isa>(f, st, codes, d_codes, scale, out, n);
}

template <class Isa>
DescentKernels make_kernels() {
  return DescentKernels{&run_f64<Isa>, &run_quant<Isa>, &run_masked<Isa>};
}

}  // namespace kernels
}  // namespace anb::detail
