// The one translation unit compiled with -mavx2 (plus -mno-fma
// -ffp-contract=off so no mul+add ever fuses — bit-identity depends on
// it). It instantiates the descent kernels for Avx2Isa and nothing else:
// Avx2Isa is only defined under __AVX2__, and no other Isa is ever named
// here, so the instantiation sets of this TU and flat_forest.cpp are
// disjoint — the linker cannot substitute AVX2 code into baseline paths.
// Callers reach these kernels only through avx2_descent_kernels(), and
// FlatForest::accumulate only takes that pointer after the runtime CPU
// probe (simd::cpu_supports) says AVX2 is safe to execute.
//
// On non-x86 toolchains (or compilers without -mavx2) CMake omits the
// flag, __AVX2__ stays undefined, and this TU degrades to the nullptr
// stub — dispatch then falls back to the scalar kernels.

#include "descent_kernels.hpp"

namespace anb::detail {

#if defined(__AVX2__)

const DescentKernels* avx2_descent_kernels() {
  static const DescentKernels k = kernels::make_kernels<simd::Avx2Isa>();
  return &k;
}

#else

const DescentKernels* avx2_descent_kernels() { return nullptr; }

#endif

}  // namespace anb::detail
