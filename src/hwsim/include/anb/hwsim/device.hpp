#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anb/ir/model_ir.hpp"
#include "anb/util/error.hpp"

namespace anb {

/// A measurement failed in a way that a re-run may fix: the device dropped
/// off the network, the runtime crashed, the job scheduler preempted the
/// run. The collection pipeline retries these with a bounded budget.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// A measurement exceeded its wall-clock budget. Retryable, like
/// TransientError, but reported separately (persistent timeouts usually
/// mean the model is pathological for the device, not that the fleet is
/// flaky).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Fault-injection sites armed by tests to simulate fleet failures inside
/// Device::measure_* (see anb/util/fault.hpp). All three are keyed by
/// hash(metric-salted seed, device kind, attempt), so seeded-Bernoulli
/// decisions are a pure function of the work item — thread-count invariant
/// and reproducible. The measurement *value* never depends on the attempt
/// number: a retry of a failed attempt returns exactly the fault-free
/// reading, which is what makes robust collection bit-identical to a clean
/// run for every architecture that survives.
inline constexpr const char* kMeasureTransientFaultSite =
    "hwsim.measure.transient";                 ///< throws TransientError
inline constexpr const char* kMeasureTimeoutFaultSite =
    "hwsim.measure.timeout";                   ///< throws TimeoutError
inline constexpr const char* kMeasureOutlierFaultSite =
    "hwsim.measure.outlier";  ///< heavy-tail spike on the reading

/// The six accelerator platforms benchmarked in the paper (§3.3.2), plus
/// two extension platforms (mobile NPU, server CPU) whose op-efficiency
/// profiles differ enough from the matrix engines to reorder Pareto fronts
/// (depthwise and SE cost structure flips relative to GPUs/TPUs).
enum class DeviceKind {
  kTpuV2,      ///< Google Cloud TPUv2 (bf16, Torch/XLA)
  kTpuV3,      ///< Google Cloud TPUv3
  kA100,       ///< NVIDIA A100 (fp16 tensor cores)
  kRtx3090,    ///< NVIDIA RTX 3090
  kZcu102,     ///< Xilinx Zynq UltraScale+ ZCU102, Vitis-AI DPU (int8)
  kVck190,     ///< Xilinx Versal AI Core VCK190, Vitis-AI DPU (int8)
  kMobileNpu,  ///< Mobile-SoC NPU (int8, native depthwise engine)
  kServerCpu,  ///< AVX-512 server CPU (int8 VNNI, no matrix-engine bias)
};

const char* device_kind_name(DeviceKind kind);
DeviceKind device_kind_from_name(const std::string& name);

/// Which on-device metrics a platform supports. Throughput is available on
/// every device; end-to-end latency is only published for the FPGA DPUs,
/// matching the paper's ANB-{device}-{metric} dataset matrix.
bool device_supports_latency(DeviceKind kind);

/// Numeric description of one accelerator for the per-layer roofline model.
///
/// Per-layer time = max(compute, memory) + fixed issue overhead, where
/// compute uses an op-kind- and shape-dependent fraction of peak, and memory
/// moves activations (per image) plus weights (amortized over the batch).
struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kA100;

  double peak_flops = 1e12;        ///< ops/s at native precision (2 per MAC)
  double mem_bandwidth = 1e11;     ///< bytes/s
  double bytes_per_elem = 2.0;     ///< fp16/bf16 = 2, int8 = 1
  int measure_batch = 128;         ///< batch used for throughput runs
  int compute_cores = 1;           ///< parallel DPU cores (FPGAs)

  /// Fraction of peak reached by each op class when well-shaped.
  double conv_eff = 0.5;       ///< regular conv (stem / 1x1 / head)
  double dwconv_eff = 0.1;     ///< depthwise conv — poor on matrix engines
  double fc_eff = 0.4;
  double elementwise_eff = 0.5;  ///< pool / scale / add bandwidth fraction

  /// Channel alignment of the matrix engine: convs with fewer channels than
  /// this underutilize the array (sqrt(in_c*out_c)/align, capped at 1).
  double channel_align = 64.0;

  /// Per-layer issue overhead (kernel launch / instruction fetch), seconds.
  double layer_overhead_s = 3e-6;

  /// Extra overhead for ops the accelerator cannot pipeline natively and
  /// bounces to a slow path (DPUs: global pooling + FC + scale of SE blocks
  /// run outside the systolic pipeline). Seconds per affected layer.
  double fallback_overhead_s = 0.0;

  /// Fixed per-inference cost (DMA setup, host sync), seconds.
  double base_overhead_s = 1e-5;

  /// Relative stddev of one timing measurement.
  double measurement_noise = 0.01;
  /// Number of timed runs averaged after warm-up discarding (paper: 4 on
  /// TPUs, 2 on GPUs; we use 3 on FPGAs).
  int timed_runs = 2;

  // --- energy model (extension beyond the paper; HW-NAS-Bench offers
  // energy, Accel-NASBench does not — see DESIGN.md E12) -------------------
  double idle_power_w = 50.0;     ///< board/baseline power while busy
  double energy_per_flop_j = 1e-12;   ///< switching energy per op
  double energy_per_byte_j = 20e-12;  ///< DRAM access energy per byte

  // --- peak-memory model (second extension metric, PerfMetric::kPeakMemory)
  /// Fixed runtime/allocator footprint (code, workspace, descriptors), MB.
  double mem_overhead_mb = 16.0;
  /// Whether all weights stay resident in device memory for the whole run
  /// (GPUs/TPUs/CPU) or stream per layer (DPUs / mobile NPU tiling).
  bool weights_resident = true;
};

/// Per-layer roofline accelerator model.
///
/// `throughput_fps` / `latency_ms` are the deterministic expected values;
/// `measure_*` add per-run measurement noise and apply the paper's
/// warm-up-and-average protocol, seeded so measurements are reproducible.
class Device {
 public:
  explicit Device(DeviceSpec spec);

  const DeviceSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  DeviceKind kind() const { return spec_.kind; }
  bool supports_latency() const { return device_supports_latency(spec_.kind); }

  /// Expected end-to-end time for one batch of `batch` images, seconds.
  double batch_time_s(const ModelIR& ir, int batch) const;

  /// Expected steady-state throughput at the device's measurement batch,
  /// images/second (all compute cores engaged).
  double throughput_fps(const ModelIR& ir) const;

  /// Expected single-image latency, milliseconds (one core, batch 1).
  double latency_ms(const ModelIR& ir) const;

  /// Noisy measured throughput following the device protocol. `attempt`
  /// distinguishes re-measurements of the same sample for fault injection
  /// only — the returned value is identical for every attempt (the noise
  /// stream is keyed by `seed` alone), so retries reproduce the fault-free
  /// reading exactly. Throws TransientError/TimeoutError when the
  /// corresponding fault site fires.
  double measure_throughput(const ModelIR& ir, std::uint64_t seed,
                            std::uint64_t attempt = 0) const;

  /// Noisy measured latency (FPGAs only; throws otherwise).
  double measure_latency(const ModelIR& ir, std::uint64_t seed,
                         std::uint64_t attempt = 0) const;

  /// Expected inference energy per image in millijoules at the measurement
  /// batch: static power x time + per-op switching + DRAM traffic. This is
  /// the E12 extension metric (not part of the paper's dataset matrix).
  double energy_mj_per_image(const ModelIR& ir) const;

  /// Noisy measured energy following the same protocol as throughput.
  double measure_energy(const ModelIR& ir, std::uint64_t seed,
                        std::uint64_t attempt = 0) const;

  /// Expected peak device-memory footprint at the measurement batch, MB:
  /// runtime overhead + weights (all resident, or streamed per layer) +
  /// the largest per-layer activation working set.
  double peak_memory_mb(const ModelIR& ir) const;

  /// Noisy measured peak memory (allocator jitter), same protocol.
  double measure_peak_memory(const ModelIR& ir, std::uint64_t seed,
                             std::uint64_t attempt = 0) const;

 private:
  double layer_time_s(const Layer& layer, int batch) const;
  /// `time_like` orients an injected outlier spike: slow timings inflate
  /// time-like readings (latency, energy) and deflate throughput.
  double measure(double expected, std::uint64_t seed, std::uint64_t attempt,
                 bool time_like) const;

  DeviceSpec spec_;
};

/// Factory for the paper's six platforms (plus the two extension
/// platforms) with calibrated spec numbers.
Device make_device(DeviceKind kind);

/// The paper's six devices in the paper's order (TPUv2, TPUv3, A100, RTX,
/// ZCU, VCK). Intentionally excludes the extension platforms so datasets
/// collected against the paper matrix stay bit-identical.
std::vector<Device> device_catalog();

/// device_catalog() plus the extension platforms (mobile NPU, server CPU).
std::vector<Device> extended_device_catalog();

}  // namespace anb
