#include "anb/hwsim/device.hpp"

#include <algorithm>
#include <cmath>

#include "anb/util/error.hpp"
#include "anb/util/fault.hpp"
#include "anb/util/rng.hpp"

namespace anb {

const char* device_kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kTpuV2: return "tpuv2";
    case DeviceKind::kTpuV3: return "tpuv3";
    case DeviceKind::kA100: return "a100";
    case DeviceKind::kRtx3090: return "rtx3090";
    case DeviceKind::kZcu102: return "zcu102";
    case DeviceKind::kVck190: return "vck190";
    case DeviceKind::kMobileNpu: return "npu-mobile";
    case DeviceKind::kServerCpu: return "cpu-server";
  }
  return "unknown";
}

DeviceKind device_kind_from_name(const std::string& name) {
  for (DeviceKind kind :
       {DeviceKind::kTpuV2, DeviceKind::kTpuV3, DeviceKind::kA100,
        DeviceKind::kRtx3090, DeviceKind::kZcu102, DeviceKind::kVck190,
        DeviceKind::kMobileNpu, DeviceKind::kServerCpu}) {
    if (name == device_kind_name(kind)) return kind;
  }
  throw Error("device_kind_from_name: unknown device '" + name + "'");
}

bool device_supports_latency(DeviceKind kind) {
  return kind == DeviceKind::kZcu102 || kind == DeviceKind::kVck190;
}

Device::Device(DeviceSpec spec) : spec_(std::move(spec)) {
  ANB_CHECK(spec_.peak_flops > 0 && spec_.mem_bandwidth > 0,
            "Device: peak_flops and mem_bandwidth must be positive");
  ANB_CHECK(spec_.measure_batch >= 1, "Device: measure_batch must be >= 1");
  ANB_CHECK(spec_.compute_cores >= 1, "Device: compute_cores must be >= 1");
  ANB_CHECK(spec_.timed_runs >= 1, "Device: timed_runs must be >= 1");
}

double Device::layer_time_s(const Layer& layer, int batch) const {
  const double b = batch;

  // --- compute roof ---
  double eff = spec_.conv_eff;
  bool slow_path = false;
  switch (layer.kind) {
    case OpKind::kConv2d: {
      // Thin channel dims underutilize the matrix engine (e.g. the 3-channel
      // stem); saturates at the device's alignment width.
      const double util =
          std::min(1.0, std::sqrt(static_cast<double>(layer.in_c) *
                                  static_cast<double>(layer.out_c)) /
                            spec_.channel_align);
      eff = spec_.conv_eff * util;
      break;
    }
    case OpKind::kDepthwiseConv2d:
      eff = spec_.dwconv_eff;
      break;
    case OpKind::kFullyConnected:
      eff = spec_.fc_eff;
      slow_path = spec_.fallback_overhead_s > 0 && layer.out_h == 1 &&
                  layer.in_c != 0 && layer.name.find(".se.") != std::string::npos;
      break;
    case OpKind::kGlobalAvgPool:
    case OpKind::kScale:
    case OpKind::kAdd:
      eff = spec_.elementwise_eff;
      slow_path = spec_.fallback_overhead_s > 0 &&
                  layer.kind != OpKind::kAdd;  // pool/scale leave the pipeline
      break;
  }
  eff = std::max(eff, 1e-3);
  const double compute_s =
      b * 2.0 * static_cast<double>(layer.macs) / (spec_.peak_flops * eff);

  // --- memory roof: activations move per image, weights once per batch ---
  const double act_bytes =
      b * spec_.bytes_per_elem *
      static_cast<double>(layer.input_elems + layer.output_elems);
  const double weight_bytes =
      spec_.bytes_per_elem * static_cast<double>(layer.weight_elems);
  double bw = spec_.mem_bandwidth;
  if (layer.kind != OpKind::kConv2d && layer.kind != OpKind::kDepthwiseConv2d &&
      layer.kind != OpKind::kFullyConnected) {
    bw *= std::max(spec_.elementwise_eff, 1e-3);
  }
  const double memory_s = (act_bytes + weight_bytes) / bw;

  double t = std::max(compute_s, memory_s) + spec_.layer_overhead_s;
  if (slow_path) t += spec_.fallback_overhead_s;
  return t;
}

double Device::batch_time_s(const ModelIR& ir, int batch) const {
  ANB_CHECK(batch >= 1, "Device::batch_time_s: batch must be >= 1");
  ANB_CHECK(!ir.layers.empty(), "Device::batch_time_s: empty model");
  double t = spec_.base_overhead_s;
  for (const auto& layer : ir.layers) t += layer_time_s(layer, batch);
  return t;
}

double Device::throughput_fps(const ModelIR& ir) const {
  const double t = batch_time_s(ir, spec_.measure_batch);
  return spec_.compute_cores * static_cast<double>(spec_.measure_batch) / t;
}

double Device::latency_ms(const ModelIR& ir) const {
  return batch_time_s(ir, 1) * 1e3;
}

double Device::measure(double expected, std::uint64_t seed,
                       std::uint64_t attempt, bool time_like) const {
  const std::uint64_t mixed =
      hash_combine(seed, static_cast<std::uint64_t>(spec_.kind) + 1);

  // Injected fleet faults. The key is a pure function of (seed, device,
  // attempt): the decision never depends on thread scheduling, and a retry
  // (next attempt) re-rolls the fault while leaving the measurement value
  // below — which is keyed by `mixed` alone — untouched.
  double outlier_multiplier = 0.0;
  if (fault::any_armed()) {
    const std::uint64_t key = hash_combine(mixed, attempt);
    if (fault::should_fire(kMeasureTransientFaultSite, key)) {
      throw TransientError("Device::measure: injected transient failure on " +
                           spec_.name);
    }
    if (fault::should_fire(kMeasureTimeoutFaultSite, key)) {
      throw TimeoutError("Device::measure: injected timeout on " + spec_.name);
    }
    if (const auto f = fault::should_fire(kMeasureOutlierFaultSite, key)) {
      // Heavy-tail (Pareto) slowdown: m = (1 + floor) * (1 - u)^(-1/alpha),
      // alpha = 1.5. The floor keeps every injected spike well outside any
      // reasonable outlier tolerance, so the median-of-k resolve always
      // sees it as corrupt and the accepted value stays the clean reading.
      constexpr double kAlpha = 1.5;
      constexpr double kFloor = 0.25;
      const double u = f->uniform();
      outlier_multiplier =
          std::min(1e3, (1.0 + kFloor) * std::pow(1.0 - u, -1.0 / kAlpha));
    }
  }

  // Warm-up runs (XLA graph compilation on TPUs, cudnn autotune on GPUs) are
  // discarded per the paper's protocol, so only steady-state noise remains.
  Rng rng(mixed);
  double acc = 0.0;
  for (int run = 0; run < spec_.timed_runs; ++run) {
    acc += expected * (1.0 + spec_.measurement_noise * rng.normal());
  }
  double value = std::max(acc / spec_.timed_runs, expected * 0.5);
  if (outlier_multiplier > 0.0) {
    value = time_like ? value * outlier_multiplier
                      : value / outlier_multiplier;
  }
  return value;
}

double Device::measure_throughput(const ModelIR& ir, std::uint64_t seed,
                                  std::uint64_t attempt) const {
  return measure(throughput_fps(ir), hash_combine(seed, 0xA11CE), attempt,
                 /*time_like=*/false);
}

double Device::measure_latency(const ModelIR& ir, std::uint64_t seed,
                               std::uint64_t attempt) const {
  ANB_CHECK(supports_latency(),
            "measure_latency: only FPGA DPU platforms report latency");
  return measure(latency_ms(ir), hash_combine(seed, 0x1A7E2C), attempt,
                 /*time_like=*/true);
}

double Device::energy_mj_per_image(const ModelIR& ir) const {
  const int batch = spec_.measure_batch;
  const double time_per_image =
      batch_time_s(ir, batch) / (spec_.compute_cores * batch);
  double switching_j = 0.0;
  for (const auto& layer : ir.layers) {
    switching_j += spec_.energy_per_flop_j * 2.0 *
                   static_cast<double>(layer.macs);
    // Activations stream per image; weights amortize over the batch.
    switching_j += spec_.energy_per_byte_j * spec_.bytes_per_elem *
                   (static_cast<double>(layer.input_elems + layer.output_elems) +
                    static_cast<double>(layer.weight_elems) / batch);
  }
  const double static_j = spec_.idle_power_w * time_per_image;
  return (static_j + switching_j) * 1e3;
}

double Device::measure_energy(const ModelIR& ir, std::uint64_t seed,
                              std::uint64_t attempt) const {
  return measure(energy_mj_per_image(ir), hash_combine(seed, 0xE4E26F),
                 attempt, /*time_like=*/true);
}

double Device::peak_memory_mb(const ModelIR& ir) const {
  ANB_CHECK(!ir.layers.empty(), "Device::peak_memory_mb: empty model");
  const double b = spec_.measure_batch;
  double max_working_set = 0.0;
  double resident_weights = 0.0;
  for (const auto& layer : ir.layers) {
    const double act_bytes =
        b * spec_.bytes_per_elem *
        static_cast<double>(layer.input_elems + layer.output_elems);
    const double weight_bytes =
        spec_.bytes_per_elem * static_cast<double>(layer.weight_elems);
    if (spec_.weights_resident) {
      resident_weights += weight_bytes;
      max_working_set = std::max(max_working_set, act_bytes);
    } else {
      // Streaming runtimes tile one layer's weights at a time, so the peak
      // is the worst single-layer (activations + weights) footprint.
      max_working_set = std::max(max_working_set, act_bytes + weight_bytes);
    }
  }
  return spec_.mem_overhead_mb +
         (resident_weights + max_working_set) / (1024.0 * 1024.0);
}

double Device::measure_peak_memory(const ModelIR& ir, std::uint64_t seed,
                                   std::uint64_t attempt) const {
  return measure(peak_memory_mb(ir), hash_combine(seed, 0x3E30B1),
                 attempt, /*time_like=*/true);
}

Device make_device(DeviceKind kind) {
  DeviceSpec s;
  s.kind = kind;
  s.name = device_kind_name(kind);
  switch (kind) {
    case DeviceKind::kTpuV2:
      // One TPUv2 chip via Torch/XLA. Values are *effective deployed*
      // numbers (nameplate x framework derate ~0.12): the systolic array
      // wants wide aligned channels and depthwise convs run at a tiny
      // fraction of peak under XLA. 4 timed runs after warm-up (paper).
      s.peak_flops = 5.6e12;
      s.mem_bandwidth = 0.087e12;
      s.bytes_per_elem = 2.0;
      s.measure_batch = 256;
      s.conv_eff = 0.50;
      s.dwconv_eff = 0.040;
      s.fc_eff = 0.45;
      s.elementwise_eff = 0.50;
      s.channel_align = 128.0;
      s.layer_overhead_s = 8e-6;
      s.base_overhead_s = 1.5e-4;
      s.measurement_noise = 0.015;
      s.timed_runs = 4;
      s.idle_power_w = 150.0;
      s.energy_per_flop_j = 0.8e-12;
      s.energy_per_byte_j = 25e-12;
      break;
    case DeviceKind::kTpuV3:
      // Effective deployed values (nameplate 123 TFLOPS bf16 x ~0.17).
      s.peak_flops = 20.5e12;
      s.mem_bandwidth = 0.15e12;
      s.bytes_per_elem = 2.0;
      s.measure_batch = 256;
      s.conv_eff = 0.55;
      s.dwconv_eff = 0.040;
      s.fc_eff = 0.50;
      s.elementwise_eff = 0.50;
      s.channel_align = 128.0;
      s.layer_overhead_s = 8e-6;
      s.base_overhead_s = 1.5e-4;
      s.measurement_noise = 0.015;
      s.timed_runs = 4;
      s.idle_power_w = 200.0;
      s.energy_per_flop_j = 0.6e-12;
      s.energy_per_byte_j = 25e-12;
      break;
    case DeviceKind::kA100:
      // fp16 tensor cores, effective deployed values (nameplate 312 TFLOPS /
      // 2.0 TB/s x framework derate ~0.15 for eager-mode convnets);
      // 2 timed runs after warm-up (paper).
      s.peak_flops = 45e12;
      s.mem_bandwidth = 0.30e12;
      s.bytes_per_elem = 2.0;
      s.measure_batch = 128;
      s.conv_eff = 0.55;
      s.dwconv_eff = 0.080;
      s.fc_eff = 0.50;
      s.elementwise_eff = 0.70;
      s.channel_align = 96.0;
      s.layer_overhead_s = 3e-6;
      s.base_overhead_s = 3e-5;
      s.measurement_noise = 0.010;
      s.timed_runs = 2;
      s.idle_power_w = 100.0;
      s.energy_per_flop_j = 0.5e-12;
      s.energy_per_byte_j = 20e-12;
      break;
    case DeviceKind::kRtx3090:
      // Effective deployed values (nameplate 142 TFLOPS fp16 x ~0.17).
      s.peak_flops = 24e12;
      s.mem_bandwidth = 0.158e12;
      s.bytes_per_elem = 2.0;
      s.measure_batch = 128;
      s.conv_eff = 0.50;
      s.dwconv_eff = 0.090;
      s.fc_eff = 0.45;
      s.elementwise_eff = 0.65;
      s.channel_align = 80.0;
      s.layer_overhead_s = 4e-6;
      s.base_overhead_s = 3e-5;
      s.measurement_noise = 0.010;
      s.timed_runs = 2;
      s.idle_power_w = 120.0;
      s.energy_per_flop_j = 0.9e-12;
      s.energy_per_byte_j = 25e-12;
      break;
    case DeviceKind::kZcu102:
      // Vitis-AI DPU (3x B4096 @ 287 MHz): ~3.5 TOPS int8 aggregate (we model
      // per-core peak and multiply throughput by cores). Depthwise is handled
      // natively but at reduced rate; SE's global-pool/FC/scale leave the
      // systolic pipeline (CPU round-trip) — the EdgeTPU-paper effect.
      s.peak_flops = 1.2e12;
      s.mem_bandwidth = 12e9;
      s.bytes_per_elem = 1.0;
      s.measure_batch = 1;   // DPU cores process one image each
      s.compute_cores = 3;
      s.conv_eff = 0.60;
      s.dwconv_eff = 0.25;
      s.fc_eff = 0.40;
      s.elementwise_eff = 0.50;
      s.channel_align = 16.0;
      s.layer_overhead_s = 2e-6;
      s.fallback_overhead_s = 5e-5;
      s.base_overhead_s = 2e-4;
      s.measurement_noise = 0.003;
      s.timed_runs = 3;
      s.idle_power_w = 20.0;
      s.energy_per_flop_j = 0.25e-12;
      s.energy_per_byte_j = 30e-12;
      break;
    case DeviceKind::kVck190:
      // Versal AI Core DPUCVDX8G: AIE array, ~20x the ZCU102 peak, on-chip
      // memory hierarchy gives much higher effective bandwidth; the DPU
      // runs batch-pipelined compute units (modelled as 4 cores).
      s.peak_flops = 28e12;
      s.mem_bandwidth = 120e9;
      s.bytes_per_elem = 1.0;
      s.measure_batch = 1;
      s.compute_cores = 4;
      s.conv_eff = 0.65;
      s.dwconv_eff = 0.30;
      s.fc_eff = 0.45;
      s.elementwise_eff = 0.55;
      s.channel_align = 32.0;
      s.layer_overhead_s = 1.5e-6;
      s.fallback_overhead_s = 1.5e-5;
      s.base_overhead_s = 1e-4;
      s.measurement_noise = 0.003;
      s.timed_runs = 3;
      s.idle_power_w = 35.0;
      s.energy_per_flop_j = 0.2e-12;
      s.energy_per_byte_j = 25e-12;
      break;
    case DeviceKind::kMobileNpu:
      // Mobile-SoC NPU (Hexagon/ANE-class, int8, batch 1). The inverted op
      // economics vs matrix engines: a native depthwise engine runs dwconv
      // at a HIGHER fraction of peak than regular conv, while SE's
      // pool/FC/scale bounce to the DSP with a harsh per-layer penalty and
      // LPDDR bandwidth is shared with the host. Depthwise-heavy SE-free
      // models win here — the Pareto front reorders relative to every GPU.
      s.peak_flops = 3.5e12;
      s.mem_bandwidth = 25e9;
      s.bytes_per_elem = 1.0;
      s.measure_batch = 1;
      s.conv_eff = 0.45;
      s.dwconv_eff = 0.50;
      s.fc_eff = 0.30;
      s.elementwise_eff = 0.35;
      s.channel_align = 32.0;
      s.layer_overhead_s = 5e-6;
      s.fallback_overhead_s = 1.2e-4;
      s.base_overhead_s = 3e-4;
      s.measurement_noise = 0.020;  // thermal throttling jitter
      s.timed_runs = 5;
      s.idle_power_w = 2.0;
      s.energy_per_flop_j = 0.15e-12;
      s.energy_per_byte_j = 40e-12;
      s.mem_overhead_mb = 8.0;
      s.weights_resident = false;  // tiled weight streaming
      break;
    case DeviceKind::kServerCpu:
      // AVX-512 VNNI server CPU (int8). No systolic array means no
      // channel-alignment cliff and near-conv depthwise throughput, and
      // SE runs natively in cache (zero fallback) — so SE-heavy thin
      // models that matrix engines punish come out ahead, reordering the
      // front in the opposite direction from the NPU.
      s.peak_flops = 3.0e12;
      s.mem_bandwidth = 0.10e12;
      s.bytes_per_elem = 1.0;
      s.measure_batch = 16;
      s.conv_eff = 0.35;
      s.dwconv_eff = 0.30;
      s.fc_eff = 0.40;
      s.elementwise_eff = 0.80;
      s.channel_align = 4.0;
      s.layer_overhead_s = 0.5e-6;
      s.base_overhead_s = 5e-6;
      s.measurement_noise = 0.020;  // OS scheduling noise
      s.timed_runs = 5;
      s.idle_power_w = 150.0;
      s.energy_per_flop_j = 5e-12;
      s.energy_per_byte_j = 60e-12;
      s.mem_overhead_mb = 64.0;
      break;
  }
  return Device(std::move(s));
}

std::vector<Device> device_catalog() {
  std::vector<Device> devices;
  for (DeviceKind kind :
       {DeviceKind::kTpuV2, DeviceKind::kTpuV3, DeviceKind::kA100,
        DeviceKind::kRtx3090, DeviceKind::kZcu102, DeviceKind::kVck190}) {
    devices.push_back(make_device(kind));
  }
  return devices;
}

std::vector<Device> extended_device_catalog() {
  std::vector<Device> devices = device_catalog();
  devices.push_back(make_device(DeviceKind::kMobileNpu));
  devices.push_back(make_device(DeviceKind::kServerCpu));
  return devices;
}

}  // namespace anb
