#include "anb/serve/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <span>
#include <utility>

#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb::serve {

namespace {

obs::Counter& batch_count() {
  static obs::Counter& c = obs::counter("anb.serve.batch.count");
  return c;
}
obs::Counter& batch_rows() {
  static obs::Counter& c = obs::counter("anb.serve.batch.rows");
  return c;
}
obs::Histogram& batch_size_hist() {
  static obs::Histogram& h = obs::histogram("anb.serve.batch.size");
  return h;
}

}  // namespace

std::string BucketKey::name() const {
  const std::string base = accuracy ? "ANB-Acc" : dataset_name(key);
  if (space == SpaceId::kMnasNet) return base;  // v1-compatible names
  return std::string(space_name(space)) + ":" + base;
}

/// One admitted submission: result slots for each of its rows plus the
/// completion callback. Rows of one group may be cut across several
/// flushes (batch_max boundaries); the last row delivered fires the
/// callback. `remaining` is the only cross-flush synchronization — the
/// acq_rel decrement orders every slot write before the callback.
struct Scheduler::Group {
  std::vector<double> values;
  std::atomic<std::size_t> remaining{0};
  BatchCallback done;
  Mutex error_mu;
  std::string error ANB_GUARDED_BY(error_mu);

  void deliver_error(const std::string& message) {
    MutexLock lock(error_mu);
    if (error.empty()) error = message;
  }

  void finish_row() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::string err;
      {
        MutexLock lock(error_mu);
        err = error;
      }
      done(std::move(values), std::move(err));
    }
  }
};

/// One pending row: which architecture, and where its value lands.
struct Scheduler::Row {
  std::uint64_t arch_index = 0;
  std::shared_ptr<Group> group;
  std::size_t slot = 0;
};

struct Scheduler::Bucket {
  std::deque<Row> rows;
  /// Registered on first use; obs handles are stable for process life.
  obs::Counter* rows_counter = nullptr;
};

/// An extracted unit of work, executed outside the lock.
struct Scheduler::Flush {
  BucketKey bucket;
  std::vector<Row> rows;
};

Scheduler::Scheduler(const AccelNASBench& bench,
                     const SchedulerOptions& options)
    : bench_(bench), options_(options) {
  ANB_CHECK(options.batch_max > 0, "SchedulerOptions.batch_max must be > 0");
  ANB_CHECK(options.queue_capacity > 0,
            "SchedulerOptions.queue_capacity must be > 0");
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::start() {
  unsigned n;
  {
    MutexLock lock(mu_);
    ANB_CHECK(!started_, "Scheduler::start called twice");
    started_ = true;
    draining_ = false;
    n = options_.worker_threads != 0 ? options_.worker_threads
                                     : default_num_threads();
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Scheduler::stop() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    draining_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  MutexLock lock(mu_);
  started_ = false;
}

Admit Scheduler::submit(const BucketKey& bucket,
                        std::vector<std::uint64_t> archs,
                        BatchCallback done) {
  ANB_CHECK(!archs.empty(), "Scheduler::submit with no rows");
  auto group = std::make_shared<Group>();
  group->values.assign(archs.size(), 0.0);
  group->remaining.store(archs.size(), std::memory_order_relaxed);
  group->done = std::move(done);

  bool full_bucket = false;
  {
    MutexLock lock(mu_);
    if (!started_ || draining_) return Admit::kStopped;
    if (total_rows_ + archs.size() > options_.queue_capacity) {
      return Admit::kQueueFull;
    }
    Bucket& b = buckets_[bucket];
    if (b.rows_counter == nullptr) {
      b.rows_counter = &obs::counter("anb.serve.rows." + bucket.name());
    }
    for (std::size_t i = 0; i < archs.size(); ++i) {
      b.rows.push_back(Row{archs[i], group, i});
    }
    total_rows_ += archs.size();
    full_bucket = b.rows.size() >= options_.batch_max;
  }
  // A full bucket may satisfy several windowed waiters; a trickle needs
  // only one worker to start its coalescing window.
  if (full_bucket) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
  return Admit::kOk;
}

void Scheduler::pause() {
  MutexLock lock(mu_);
  paused_ = true;
}

void Scheduler::resume() {
  {
    MutexLock lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

SchedulerStats Scheduler::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

Scheduler::Flush Scheduler::extract_flush() {
  Flush flush;
  Bucket* best = nullptr;
  for (auto& [key, bucket] : buckets_) {
    if (bucket.rows.empty()) continue;
    if (best == nullptr || bucket.rows.size() > best->rows.size()) {
      best = &bucket;
      flush.bucket = key;
    }
  }
  ANB_ASSERT(best != nullptr, "extract_flush with no pending rows");
  const std::size_t take =
      std::min<std::size_t>(best->rows.size(), options_.batch_max);
  flush.rows.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    flush.rows.push_back(std::move(best->rows.front()));
    best->rows.pop_front();
  }
  total_rows_ -= take;
  stats_.batches += 1;
  stats_.rows += take;
  stats_.bucket_rows[flush.bucket.name()] += take;
  return flush;
}

void Scheduler::worker_loop() {
  const auto window = std::chrono::microseconds(options_.coalesce_wait_us);
  for (;;) {
    Flush flush;
    {
      MutexLock lock(mu_);
      for (;;) {
        cv_.wait(mu_, [this]() ANB_REQUIRES(mu_) {
          return draining_ || (total_rows_ > 0 && !paused_);
        });
        if (total_rows_ == 0) {
          if (draining_) return;
          continue;  // another worker took the rows between notify and wake
        }
        if (paused_ && !draining_) continue;  // paused after wake; re-wait
        // Coalescing window: no bucket is full yet, so hold the flush for
        // up to the deadline hoping more rows arrive. Waking early on a
        // full bucket keeps throughput; waking on the timeout bounds
        // latency. Draining flushes immediately.
        if (!draining_) {
          const bool bucket_full = [this]() ANB_REQUIRES(mu_) {
            for (const auto& [key, bucket] : buckets_) {
              if (bucket.rows.size() >= options_.batch_max) return true;
            }
            return false;
          }();
          if (!bucket_full) {
            cv_.wait_for(mu_, window, [this]() ANB_REQUIRES(mu_) {
              if (draining_) return true;
              for (const auto& [key, bucket] : buckets_) {
                if (bucket.rows.size() >= options_.batch_max) return true;
              }
              return false;
            });
          }
          if (total_rows_ == 0) continue;  // raced: someone else flushed
          if (paused_ && !draining_) continue;
        }
        flush = extract_flush();
        break;
      }
    }
    execute_flush(std::move(flush));
  }
}

void Scheduler::execute_flush(Flush&& flush) {
  ANB_SPAN("anb.serve.flush");
  const std::size_t n = flush.rows.size();
  batch_count().add(1);
  batch_rows().add(n);
  batch_size_hist().observe(n);
  {
    // The per-bucket obs counter was registered under mu_ at submit time;
    // re-look it up by name here (cheap, and avoids holding a Bucket
    // pointer outside the lock).
    obs::counter("anb.serve.rows." + flush.bucket.name()).add(n);
  }

  const SearchSpace& sp = anb::space(flush.bucket.space);
  std::vector<Arch> archs;
  archs.reserve(n);
  for (const Row& row : flush.rows) {
    archs.push_back(sp.from_index(row.arch_index));
  }

  std::vector<double> values;
  std::string error;
  try {
    values = flush.bucket.accuracy
                 ? bench_.query_accuracy_batch(std::span<const Arch>(archs))
                 : bench_.query_perf_batch(std::span<const Arch>(archs),
                                           flush.bucket.key);
  } catch (const Error& e) {
    error = e.what();
  }

  for (std::size_t i = 0; i < n; ++i) {
    Row& row = flush.rows[i];
    if (error.empty()) {
      row.group->values[row.slot] = values[i];
    } else {
      row.group->deliver_error(error);
    }
    row.group->finish_row();
  }
}

}  // namespace anb::serve
