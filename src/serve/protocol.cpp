#include "anb/serve/protocol.hpp"

#include <cstring>

#include "anb/fbnet/fbnet_space.hpp"
#include "anb/searchspace/space.hpp"

namespace anb::serve {

namespace {

// Little-endian scalar append/read. The protocol is only spoken over a
// local socket, so both ends share byte order; fixing little-endian in
// the spec keeps captures and fuzz corpora portable anyway.

template <typename T>
void put(std::vector<char>& out, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T get(std::span<const char> buf, std::size_t offset) {
  T v;
  std::memcpy(&v, buf.data() + offset, sizeof(T));
  return v;
}

/// Reads payload scalars left to right, throwing the typed short-payload
/// error when the frame promised fewer bytes than the type needs.
class PayloadReader {
 public:
  PayloadReader(std::span<const char> payload, MsgType type)
      : payload_(payload), type_(type) {}

  template <typename T>
  T read() {
    if (offset_ + sizeof(T) > payload_.size()) {
      throw ProtocolError(
          ErrorCode::kBadPayload,
          std::string("truncated payload in ") + msg_type_name(type_) +
              " frame: need " + std::to_string(offset_ + sizeof(T)) +
              " bytes, have " + std::to_string(payload_.size()));
    }
    T v = get<T>(payload_, offset_);
    offset_ += sizeof(T);
    return v;
  }

  /// All payload bytes must be consumed: trailing garbage means the
  /// length prefix and the type disagree about the layout.
  void finish() {
    if (offset_ != payload_.size()) {
      throw ProtocolError(
          ErrorCode::kBadPayload,
          std::string("oversized payload in ") + msg_type_name(type_) +
              " frame: " + std::to_string(payload_.size() - offset_) +
              " trailing bytes");
    }
  }

 private:
  std::span<const char> payload_;
  MsgType type_;
  std::size_t offset_ = 0;
};

/// Validation of the u16 space id: it must name a registered space.
/// Returns the resolved space, which then bounds the arch indices.
const SearchSpace& checked_space(std::uint16_t raw) {
  register_builtin_spaces();
  if (raw == static_cast<std::uint16_t>(SpaceId::kMnasNet) ||
      raw == static_cast<std::uint16_t>(SpaceId::kFbnet)) {
    return anb::space(static_cast<SpaceId>(raw));
  }
  throw ProtocolError(ErrorCode::kUnknownSpace,
                      "unknown search-space id " + std::to_string(raw));
}

/// Shared validation of one architecture index.
std::uint64_t checked_arch_index(const SearchSpace& sp, std::uint64_t index) {
  if (index >= sp.cardinality()) {
    throw ProtocolError(ErrorCode::kBadArchIndex,
                        "architecture index " + std::to_string(index) +
                            " out of range (cardinality " +
                            std::to_string(sp.cardinality()) + " in space " +
                            sp.name() + ")");
  }
  return index;
}

MetricKey checked_metric_key(std::uint8_t device, std::uint8_t metric) {
  constexpr std::uint8_t kNumDevices =
      static_cast<std::uint8_t>(DeviceKind::kServerCpu) + 1;
  constexpr std::uint8_t kNumMetrics =
      static_cast<std::uint8_t>(PerfMetric::kPeakMemory) + 1;
  if (device >= kNumDevices || metric >= kNumMetrics) {
    throw ProtocolError(ErrorCode::kBadMetricKey,
                        "bad metric key bytes (device=" +
                            std::to_string(device) +
                            ", metric=" + std::to_string(metric) + ")");
  }
  return MetricKey{static_cast<DeviceKind>(device),
                   static_cast<PerfMetric>(metric)};
}

std::vector<std::uint64_t> read_batch(const SearchSpace& sp,
                                      PayloadReader& r) {
  const std::uint32_t count = r.read<std::uint32_t>();
  if (count > kMaxBatchRows) {
    throw ProtocolError(ErrorCode::kBatchTooLarge,
                        "batch of " + std::to_string(count) +
                            " rows exceeds the limit of " +
                            std::to_string(kMaxBatchRows));
  }
  std::vector<std::uint64_t> archs;
  archs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    archs.push_back(checked_arch_index(sp, r.read<std::uint64_t>()));
  }
  return archs;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kPing: return "Ping";
    case MsgType::kQueryAccuracy: return "QueryAccuracy";
    case MsgType::kQueryPerf: return "QueryPerf";
    case MsgType::kQueryAccuracyBatch: return "QueryAccuracyBatch";
    case MsgType::kQueryPerfBatch: return "QueryPerfBatch";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kHelloOk: return "HelloOk";
    case MsgType::kPong: return "Pong";
    case MsgType::kValue: return "Value";
    case MsgType::kValueBatch: return "ValueBatch";
    case MsgType::kRetryLater: return "RetryLater";
    case MsgType::kError: return "Error";
    case MsgType::kBye: return "Bye";
  }
  return "unknown";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadMagic: return "BadMagic";
    case ErrorCode::kBadVersion: return "BadVersion";
    case ErrorCode::kBadLength: return "BadLength";
    case ErrorCode::kBadPayload: return "BadPayload";
    case ErrorCode::kUnknownType: return "UnknownType";
    case ErrorCode::kBadArchIndex: return "BadArchIndex";
    case ErrorCode::kBadMetricKey: return "BadMetricKey";
    case ErrorCode::kBatchTooLarge: return "BatchTooLarge";
    case ErrorCode::kNoSurrogate: return "NoSurrogate";
    case ErrorCode::kShuttingDown: return "ShuttingDown";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kUnknownSpace: return "UnknownSpace";
  }
  return "unknown";
}

std::vector<char> encode_frame(MsgType type, std::uint64_t request_id,
                               std::span<const char> payload) {
  ANB_CHECK(payload.size() <= kMaxFrameBytes - kHeaderBytes,
            "encode_frame: payload too large");
  std::vector<char> out;
  out.reserve(4 + kHeaderBytes + payload.size());
  put<std::uint32_t>(out,
                     static_cast<std::uint32_t>(kHeaderBytes + payload.size()));
  put<std::uint32_t>(out, kFrameMagic);
  put<std::uint16_t>(out, kProtocolVersion);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(type));
  put<std::uint64_t>(out, request_id);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<char> encode_hello(std::uint64_t request_id,
                               std::uint64_t client_id,
                               std::uint32_t incarnation) {
  std::vector<char> payload;
  put<std::uint64_t>(payload, client_id);
  put<std::uint32_t>(payload, incarnation);
  return encode_frame(MsgType::kHello, request_id, payload);
}

std::vector<char> encode_ping(std::uint64_t request_id) {
  return encode_frame(MsgType::kPing, request_id, {});
}

std::vector<char> encode_query_accuracy(std::uint64_t request_id,
                                        std::uint64_t arch_index,
                                        SpaceId space) {
  std::vector<char> payload;
  put<std::uint16_t>(payload, static_cast<std::uint16_t>(space));
  put<std::uint64_t>(payload, arch_index);
  return encode_frame(MsgType::kQueryAccuracy, request_id, payload);
}

std::vector<char> encode_query_perf(std::uint64_t request_id, MetricKey key,
                                    std::uint64_t arch_index, SpaceId space) {
  std::vector<char> payload;
  put<std::uint16_t>(payload, static_cast<std::uint16_t>(space));
  put<std::uint8_t>(payload, static_cast<std::uint8_t>(key.device));
  put<std::uint8_t>(payload, static_cast<std::uint8_t>(key.metric));
  put<std::uint64_t>(payload, arch_index);
  return encode_frame(MsgType::kQueryPerf, request_id, payload);
}

std::vector<char> encode_query_accuracy_batch(
    std::uint64_t request_id, std::span<const std::uint64_t> arch_indices,
    SpaceId space) {
  std::vector<char> payload;
  put<std::uint16_t>(payload, static_cast<std::uint16_t>(space));
  put<std::uint32_t>(payload,
                     static_cast<std::uint32_t>(arch_indices.size()));
  for (std::uint64_t index : arch_indices) put<std::uint64_t>(payload, index);
  return encode_frame(MsgType::kQueryAccuracyBatch, request_id, payload);
}

std::vector<char> encode_query_perf_batch(
    std::uint64_t request_id, MetricKey key,
    std::span<const std::uint64_t> arch_indices, SpaceId space) {
  std::vector<char> payload;
  put<std::uint16_t>(payload, static_cast<std::uint16_t>(space));
  put<std::uint8_t>(payload, static_cast<std::uint8_t>(key.device));
  put<std::uint8_t>(payload, static_cast<std::uint8_t>(key.metric));
  put<std::uint32_t>(payload,
                     static_cast<std::uint32_t>(arch_indices.size()));
  for (std::uint64_t index : arch_indices) put<std::uint64_t>(payload, index);
  return encode_frame(MsgType::kQueryPerfBatch, request_id, payload);
}

std::vector<char> encode_shutdown(std::uint64_t request_id) {
  return encode_frame(MsgType::kShutdown, request_id, {});
}

std::vector<char> encode_empty_reply(MsgType type, std::uint64_t request_id) {
  return encode_frame(type, request_id, {});
}

std::vector<char> encode_value(std::uint64_t request_id, double value) {
  std::vector<char> payload;
  put<double>(payload, value);
  return encode_frame(MsgType::kValue, request_id, payload);
}

std::vector<char> encode_values(std::uint64_t request_id,
                                std::span<const double> values) {
  std::vector<char> payload;
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(values.size()));
  for (double v : values) put<double>(payload, v);
  return encode_frame(MsgType::kValueBatch, request_id, payload);
}

std::vector<char> encode_error(std::uint64_t request_id, ErrorCode code,
                               const std::string& message) {
  std::vector<char> payload;
  put<std::uint16_t>(payload, static_cast<std::uint16_t>(code));
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(message.size()));
  payload.insert(payload.end(), message.begin(), message.end());
  return encode_frame(MsgType::kError, request_id, payload);
}

Decoded decode_frame(std::span<const char> buf) {
  Decoded d;
  if (buf.size() < 4) return d;  // kNeedMore
  const std::uint32_t length = get<std::uint32_t>(buf, 0);
  // The length prefix is validated before it sizes anything: a corrupt
  // prefix must not drive an allocation or a long blocking read.
  if (length < kHeaderBytes || length > kMaxFrameBytes) {
    d.status = DecodeStatus::kBad;
    d.code = ErrorCode::kBadLength;
    d.message = "frame length " + std::to_string(length) +
                " outside [" + std::to_string(kHeaderBytes) + ", " +
                std::to_string(kMaxFrameBytes) + "]";
    return d;
  }
  if (buf.size() < 4u + length) return d;  // kNeedMore
  const std::uint32_t magic = get<std::uint32_t>(buf, 4);
  if (magic != kFrameMagic) {
    d.status = DecodeStatus::kBad;
    d.code = ErrorCode::kBadMagic;
    d.message = "bad frame magic";
    return d;
  }
  const std::uint16_t version = get<std::uint16_t>(buf, 8);
  if (version != kProtocolVersion) {
    d.status = DecodeStatus::kBad;
    d.code = ErrorCode::kBadVersion;
    d.message = "protocol version " + std::to_string(version) +
                " (this server speaks " + std::to_string(kProtocolVersion) +
                ")";
    return d;
  }
  d.status = DecodeStatus::kFrame;
  d.type = static_cast<MsgType>(get<std::uint16_t>(buf, 10));
  d.request_id = get<std::uint64_t>(buf, 12);
  d.payload = buf.subspan(4 + kHeaderBytes, length - kHeaderBytes);
  d.consumed = 4u + length;
  return d;
}

Request parse_request(const Decoded& frame) {
  ANB_ASSERT(frame.status == DecodeStatus::kFrame,
             "parse_request on a non-frame");
  Request req;
  req.type = frame.type;
  req.request_id = frame.request_id;
  PayloadReader r(frame.payload, frame.type);
  switch (frame.type) {
    case MsgType::kHello:
      req.client_id = r.read<std::uint64_t>();
      req.incarnation = r.read<std::uint32_t>();
      break;
    case MsgType::kPing:
    case MsgType::kShutdown:
      break;
    case MsgType::kQueryAccuracy: {
      const SearchSpace& sp = checked_space(r.read<std::uint16_t>());
      req.space = sp.id();
      req.archs.push_back(checked_arch_index(sp, r.read<std::uint64_t>()));
      break;
    }
    case MsgType::kQueryPerf: {
      const SearchSpace& sp = checked_space(r.read<std::uint16_t>());
      req.space = sp.id();
      const auto device = r.read<std::uint8_t>();
      const auto metric = r.read<std::uint8_t>();
      req.key = checked_metric_key(device, metric);
      req.archs.push_back(checked_arch_index(sp, r.read<std::uint64_t>()));
      break;
    }
    case MsgType::kQueryAccuracyBatch: {
      const SearchSpace& sp = checked_space(r.read<std::uint16_t>());
      req.space = sp.id();
      req.archs = read_batch(sp, r);
      break;
    }
    case MsgType::kQueryPerfBatch: {
      const SearchSpace& sp = checked_space(r.read<std::uint16_t>());
      req.space = sp.id();
      const auto device = r.read<std::uint8_t>();
      const auto metric = r.read<std::uint8_t>();
      req.key = checked_metric_key(device, metric);
      req.archs = read_batch(sp, r);
      break;
    }
    default:
      throw ProtocolError(ErrorCode::kUnknownType,
                          "unknown request type " +
                              std::to_string(static_cast<unsigned>(
                                  frame.type)));
  }
  r.finish();
  return req;
}

Reply parse_reply(const Decoded& frame) {
  ANB_ASSERT(frame.status == DecodeStatus::kFrame,
             "parse_reply on a non-frame");
  Reply reply;
  reply.type = frame.type;
  reply.request_id = frame.request_id;
  PayloadReader r(frame.payload, frame.type);
  switch (frame.type) {
    case MsgType::kHelloOk:
    case MsgType::kPong:
    case MsgType::kRetryLater:
    case MsgType::kBye:
      break;
    case MsgType::kValue:
      reply.value = r.read<double>();
      break;
    case MsgType::kValueBatch: {
      const std::uint32_t count = r.read<std::uint32_t>();
      if (count > kMaxBatchRows) {
        throw ProtocolError(ErrorCode::kBatchTooLarge,
                            "reply batch too large");
      }
      reply.values.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        reply.values.push_back(r.read<double>());
      }
      break;
    }
    case MsgType::kError: {
      reply.code = static_cast<ErrorCode>(r.read<std::uint16_t>());
      const std::uint32_t len = r.read<std::uint32_t>();
      for (std::uint32_t i = 0; i < len; ++i) {
        reply.message.push_back(r.read<char>());
      }
      break;
    }
    default:
      throw ProtocolError(ErrorCode::kUnknownType,
                          "unknown response type " +
                              std::to_string(static_cast<unsigned>(
                                  frame.type)));
  }
  r.finish();
  return reply;
}

}  // namespace anb::serve
