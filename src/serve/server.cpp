#include "anb/serve/server.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "anb/obs/registry.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/serve/protocol.hpp"
#include "anb/util/error.hpp"
#include "anb/util/fault.hpp"
#include "anb/util/rng.hpp"

namespace anb::serve {

namespace {

obs::Counter& connections_counter() {
  static obs::Counter& c = obs::counter("anb.serve.connections");
  return c;
}
obs::Counter& requests_counter() {
  static obs::Counter& c = obs::counter("anb.serve.requests");
  return c;
}
obs::Counter& ok_counter() {
  static obs::Counter& c = obs::counter("anb.serve.responses.ok");
  return c;
}
obs::Counter& error_counter() {
  static obs::Counter& c = obs::counter("anb.serve.responses.error");
  return c;
}
obs::Counter& retry_counter() {
  static obs::Counter& c = obs::counter("anb.serve.retry_later");
  return c;
}

/// Fault-decision key for one request on one connection: pure in the
/// client's self-declared identity and the request id, so an armed
/// Bernoulli site fires on the same requests no matter how connections
/// interleave or how many server threads run (the ServeReport invariance
/// contract). Requests sent before kHello key under kAnonymousClient.
std::uint64_t fault_key(std::uint64_t client_id, std::uint32_t incarnation,
                        std::uint64_t request_id) {
  return hash_combine(hash_combine(client_id, incarnation), request_id);
}

/// request_id sits at a fixed offset in every encoded frame (after the
/// u32 length, u32 magic, u16 version, u16 type). The writer re-reads it
/// from queued response frames to key the slow-write fault per response.
std::uint64_t frame_request_id(const std::vector<char>& frame) {
  std::uint64_t id = 0;
  if (frame.size() >= 20) __builtin_memcpy(&id, frame.data() + 12, sizeof(id));
  return id;
}

}  // namespace

/// One accepted client connection. Owned jointly (shared_ptr) by the
/// server's connection list, the reader/writer threads, and any pending
/// scheduler callbacks — whoever finishes last frees it.
///
/// Threading: `socket` is used concurrently by the reader (recv) and
/// writer (send); stream sockets permit that, and teardown only ever uses
/// shutdown() from other threads, never close(), so no thread can observe
/// a recycled descriptor. Identity fields are written by the reader
/// (kHello) and read by the writer for fault keys, hence atomics. The
/// outcome counters are relaxed atomics folded into ServeReport sums.
struct Server::Connection {
  net::Socket socket;
  std::thread reader;
  std::thread writer;

  std::atomic<std::uint64_t> client_id{kAnonymousClient};
  std::atomic<std::uint32_t> incarnation{0};

  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> error{0};
  std::atomic<std::uint64_t> retry_later{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> stall_faults{0};
  std::atomic<std::uint64_t> slow_faults{0};

  std::atomic<bool> reader_done{false};
  std::atomic<bool> writer_done{false};

  Mutex out_mu;
  CondVar out_cv;
  std::deque<std::vector<char>> outbox ANB_GUARDED_BY(out_mu);
  bool closing ANB_GUARDED_BY(out_mu) = false;  ///< drain outbox, then exit
  bool aborted ANB_GUARDED_BY(out_mu) = false;  ///< exit now, discard outbox
  std::size_t outbox_capacity = 1024;

  /// Queue a response frame for the writer. Returns false — discarding
  /// the frame — once the connection is closing/aborted or the bounded
  /// outbox is full (the latter also aborts the connection: a client that
  /// stopped reading must never pin server memory). Never blocks, so
  /// scheduler callbacks stay non-blocking.
  bool enqueue(std::vector<char> frame) {
    bool overflow = false;
    {
      MutexLock lock(out_mu);
      if (closing || aborted) return false;
      if (outbox.size() >= outbox_capacity) {
        aborted = true;
        overflow = true;
      } else {
        outbox.push_back(std::move(frame));
      }
    }
    out_cv.notify_one();
    if (overflow) socket.shutdown_both();  // wake the reader too
    return !overflow;
  }

  /// Ask the writer to finish. With `abort` the outbox is discarded and
  /// both socket directions are shut; without, the writer drains queued
  /// responses first (graceful close — the fuzz contract requires the
  /// typed error reply to reach the client before EOF).
  void begin_close(bool abort) {
    {
      MutexLock lock(out_mu);
      closing = true;
      if (abort) aborted = true;
    }
    out_cv.notify_all();
    if (abort) socket.shutdown_both();
  }

  void writer_loop() {
    for (;;) {
      std::deque<std::vector<char>> pending;
      {
        MutexLock lock(out_mu);
        out_cv.wait(out_mu, [this]() ANB_REQUIRES(out_mu) {
          return !outbox.empty() || closing || aborted;
        });
        if (aborted) break;
        if (outbox.empty() && closing) break;
        pending.swap(outbox);
      }
      bool alive = true;
      for (std::vector<char>& frame : pending) {
        if (fault::any_armed()) {
          const std::uint64_t key =
              fault_key(client_id.load(std::memory_order_relaxed),
                        incarnation.load(std::memory_order_relaxed),
                        frame_request_id(frame));
          if (auto f = fault::should_fire(kServeWriteSlowSite, key)) {
            slow_faults.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(
                200 + static_cast<long>(f->uniform() * 2000.0)));
          }
        }
        if (!socket.send_all(frame)) {
          alive = false;
          break;
        }
      }
      if (!alive) {
        {
          MutexLock lock(out_mu);
          aborted = true;
        }
        socket.shutdown_both();  // reader sees EOF and exits
        break;
      }
    }
    // Writer owns the final half-close: everything queued before `closing`
    // has been sent (or the connection aborted), so signalling EOF now is
    // safe and lets well-behaved clients distinguish "server finished"
    // from "server died".
    socket.shutdown_both();
    writer_done.store(true, std::memory_order_release);
  }
};

Server::Server(const AccelNASBench& bench, ServeOptions options)
    : bench_(bench),
      options_(std::move(options)),
      scheduler_(bench, options_.scheduler) {}

Server::~Server() { stop(); }

void Server::start() {
  MutexLock lock(mu_);
  ANB_CHECK(!running_, "Server::start called twice");
  ANB_CHECK(accept_thread_.joinable() == false, "Server already started");
  socket_path_ = options_.socket_path.empty()
                     ? net::unique_socket_path("anbd")
                     : options_.socket_path;
  listener_ = std::make_unique<net::Listener>(socket_path_);
  if (options_.coalescing) scheduler_.start();
  running_ = true;
  stop_requested_ = false;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  std::vector<std::shared_ptr<Connection>> conns;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    stop_requested_ = true;
  }
  shutdown_cv_.notify_all();
  if (listener_) listener_->interrupt();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain order matters: the scheduler finishes first so every admitted
  // request's response lands in an outbox, then writers flush those
  // outboxes, then readers are unblocked. Half-closing only the read side
  // keeps queued responses deliverable.
  if (options_.coalescing) scheduler_.stop();
  {
    MutexLock lock(mu_);
    conns.swap(connections_);
  }
  for (auto& conn : conns) {
    conn->begin_close(/*abort=*/false);
    conn->socket.shutdown_read();
  }
  for (auto& conn : conns) {
    if (conn->writer.joinable()) conn->writer.join();
    if (conn->reader.joinable()) conn->reader.join();
    conn->socket.close();
  }
  {
    // Fold final counters into the same closed-connection aggregate the
    // reaper uses, so report() is one code path.
    MutexLock lock(mu_);
    for (auto& conn : conns) absorb_connection(*conn);
  }
  listener_.reset();  // unlinks the socket path
}

bool Server::running() const {
  MutexLock lock(mu_);
  return running_;
}

const std::string& Server::socket_path() const { return socket_path_; }

void Server::wait() {
  {
    MutexLock lock(mu_);
    shutdown_cv_.wait(mu_, [this]() ANB_REQUIRES(mu_) {
      return stop_requested_;
    });
  }
  stop();
}

void Server::absorb_connection(const Connection& conn) {
  ClientReport& row =
      closed_clients_[conn.client_id.load(std::memory_order_relaxed)];
  row.received += conn.received.load(std::memory_order_relaxed);
  row.ok += conn.ok.load(std::memory_order_relaxed);
  row.error += conn.error.load(std::memory_order_relaxed);
  row.retry_later += conn.retry_later.load(std::memory_order_relaxed);
  row.dropped += conn.dropped.load(std::memory_order_relaxed);
  row.stall_faults += conn.stall_faults.load(std::memory_order_relaxed);
  row.slow_faults += conn.slow_faults.load(std::memory_order_relaxed);
}

ServeReport Server::report() const {
  ServeReport r;
  {
    MutexLock lock(mu_);
    r.connections_accepted = connections_accepted_;
    r.clients = closed_clients_;
    for (const auto& conn : connections_) {
      ClientReport& row =
          r.clients[conn->client_id.load(std::memory_order_relaxed)];
      row.received += conn->received.load(std::memory_order_relaxed);
      row.ok += conn->ok.load(std::memory_order_relaxed);
      row.error += conn->error.load(std::memory_order_relaxed);
      row.retry_later += conn->retry_later.load(std::memory_order_relaxed);
      row.dropped += conn->dropped.load(std::memory_order_relaxed);
      row.stall_faults += conn->stall_faults.load(std::memory_order_relaxed);
      row.slow_faults += conn->slow_faults.load(std::memory_order_relaxed);
    }
  }
  for (const auto& [id, row] : r.clients) {
    r.requests_received += row.received;
    r.responses_ok += row.ok;
    r.responses_error += row.error;
    r.retry_later += row.retry_later;
    r.dropped += row.dropped;
  }
  const SchedulerStats stats = scheduler_.stats();
  r.batches = stats.batches;
  r.rows = stats.rows;
  r.bucket_rows = stats.bucket_rows;
  return r;
}

void Server::accept_loop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;
      // Reap finished connections so a long-lived daemon does not
      // accumulate descriptors and thread objects; their counters move
      // into the closed-connection aggregate first, keeping report()
      // exact.
      for (std::size_t i = 0; i < connections_.size();) {
        auto& conn = connections_[i];
        if (conn->reader_done.load(std::memory_order_acquire) &&
            conn->writer_done.load(std::memory_order_acquire)) {
          conn->reader.join();
          conn->writer.join();
          conn->socket.close();
          absorb_connection(*conn);
          connections_.erase(connections_.begin() +
                             static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    net::Socket sock = listener_->accept(/*timeout_ms=*/50);
    if (!sock.valid()) continue;
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(sock);
    conn->outbox_capacity = options_.outbox_capacity;
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;  // Connection closes the socket
      connections_.push_back(conn);
      connections_accepted_ += 1;
    }
    connections_counter().add(1);
    conn->writer = std::thread([conn] { conn->writer_loop(); });
    conn->reader = std::thread([this, conn] { handle_connection(conn); });
  }
}

Server::HandleResult Server::handle_request(
    const std::shared_ptr<Connection>& conn, const Decoded& frame) {
  conn->received.fetch_add(1, std::memory_order_relaxed);
  requests_counter().add(1);

  Request req;
  try {
    req = parse_request(frame);
  } catch (const ProtocolError& e) {
    conn->error.fetch_add(1, std::memory_order_relaxed);
    error_counter().add(1);
    conn->enqueue(encode_error(frame.request_id, e.code(), e.what()));
    return HandleResult::kKeep;  // payload errors are per-request
  }

  // A kHello adopts its identity *before* the fault checks, so a dropped
  // hello is keyed by the (client_id, incarnation) it announced — a
  // reconnect with a bumped incarnation then draws a fresh decision.
  // (Keyed under the stale identity, every client's first hello would
  // share one key and a firing drop policy could sever hellos forever.)
  if (req.type == MsgType::kHello) {
    conn->client_id.store(req.client_id, std::memory_order_relaxed);
    conn->incarnation.store(req.incarnation, std::memory_order_relaxed);
  }

  if (fault::any_armed()) {
    const std::uint64_t key =
        fault_key(conn->client_id.load(std::memory_order_relaxed),
                  conn->incarnation.load(std::memory_order_relaxed),
                  frame.request_id);
    if (auto f = fault::should_fire(kServeReadStallSite, key)) {
      conn->stall_faults.fetch_add(1, std::memory_order_relaxed);
      // A stalled client: its reader thread sleeps, its own responses
      // wait, and nothing else does — the isolation the fault tests pin.
      std::this_thread::sleep_for(std::chrono::microseconds(
          200 + static_cast<long>(f->uniform() * 2000.0)));
    }
    if (fault::should_fire(kServeDropSite, key)) {
      conn->dropped.fetch_add(1, std::memory_order_relaxed);
      return HandleResult::kDrop;
    }
  }

  switch (req.type) {
    case MsgType::kHello:
      conn->ok.fetch_add(1, std::memory_order_relaxed);
      ok_counter().add(1);
      conn->enqueue(encode_empty_reply(MsgType::kHelloOk, req.request_id));
      return HandleResult::kKeep;
    case MsgType::kPing:
      conn->ok.fetch_add(1, std::memory_order_relaxed);
      ok_counter().add(1);
      conn->enqueue(encode_empty_reply(MsgType::kPong, req.request_id));
      return HandleResult::kKeep;
    case MsgType::kShutdown: {
      conn->ok.fetch_add(1, std::memory_order_relaxed);
      ok_counter().add(1);
      conn->enqueue(encode_empty_reply(MsgType::kBye, req.request_id));
      {
        MutexLock lock(mu_);
        stop_requested_ = true;
      }
      // The accept loop and wait() observe the flag; actually stopping
      // must happen off this thread (stop() joins readers — us).
      shutdown_cv_.notify_all();
      return HandleResult::kKeep;
    }
    default:
      break;  // query types below
  }

  const bool scalar = req.type == MsgType::kQueryAccuracy ||
                      req.type == MsgType::kQueryPerf;
  const bool accuracy = req.type == MsgType::kQueryAccuracy ||
                        req.type == MsgType::kQueryAccuracyBatch;
  const BucketKey bucket{req.space, accuracy, req.key};

  // The space id parsed as *registered*; it must also be the one this
  // server's benchmark was built over. Answered before any queueing so
  // the typed error is deterministic and immediate.
  if (req.space != bench_.space()) {
    conn->error.fetch_add(1, std::memory_order_relaxed);
    error_counter().add(1);
    conn->enqueue(encode_error(
        req.request_id, ErrorCode::kUnknownSpace,
        std::string("this server serves space '") +
            space_name(bench_.space()) + "', request targeted '" +
            space_name(req.space) + "'"));
    return HandleResult::kKeep;
  }

  // Surrogate presence is a per-request property, answered before any
  // queueing so kNoSurrogate is deterministic and immediate.
  const bool available =
      accuracy ? bench_.has_accuracy() : bench_.has_perf(req.key);
  if (!available) {
    conn->error.fetch_add(1, std::memory_order_relaxed);
    error_counter().add(1);
    conn->enqueue(encode_error(
        req.request_id, ErrorCode::kNoSurrogate,
        "no surrogate installed for " + bucket.name()));
    return HandleResult::kKeep;
  }

  if (!options_.coalescing) {
    // Baseline path: answer synchronously on the reader thread via the
    // scalar/batch query API. Identical values by the determinism
    // contract; the bench compares its throughput against coalescing.
    try {
      const SearchSpace& sp = anb::space(req.space);
      std::vector<double> values;
      values.reserve(req.archs.size());
      for (std::uint64_t index : req.archs) {
        const Arch arch = sp.from_index(index);
        values.push_back(accuracy ? bench_.query_accuracy(arch)
                                  : bench_.query_perf(arch, req.key));
      }
      conn->ok.fetch_add(1, std::memory_order_relaxed);
      ok_counter().add(1);
      conn->enqueue(scalar ? encode_value(req.request_id, values[0])
                           : encode_values(req.request_id, values));
    } catch (const Error& e) {
      conn->error.fetch_add(1, std::memory_order_relaxed);
      error_counter().add(1);
      conn->enqueue(
          encode_error(req.request_id, ErrorCode::kInternal, e.what()));
    }
    return HandleResult::kKeep;
  }

  const std::uint64_t request_id = req.request_id;
  const Admit admitted = scheduler_.submit(
      bucket, std::move(req.archs),
      [conn, request_id, scalar](std::vector<double> values,
                                 std::string error) {
        if (!error.empty()) {
          conn->error.fetch_add(1, std::memory_order_relaxed);
          error_counter().add(1);
          conn->enqueue(
              encode_error(request_id, ErrorCode::kInternal, error));
          return;
        }
        conn->ok.fetch_add(1, std::memory_order_relaxed);
        ok_counter().add(1);
        conn->enqueue(scalar ? encode_value(request_id, values[0])
                             : encode_values(request_id, values));
      });
  switch (admitted) {
    case Admit::kOk:
      break;
    case Admit::kQueueFull:
      conn->retry_later.fetch_add(1, std::memory_order_relaxed);
      retry_counter().add(1);
      conn->enqueue(encode_empty_reply(MsgType::kRetryLater, request_id));
      break;
    case Admit::kStopped:
      conn->error.fetch_add(1, std::memory_order_relaxed);
      error_counter().add(1);
      conn->enqueue(encode_error(request_id, ErrorCode::kShuttingDown,
                                 "server is draining"));
      break;
  }
  return HandleResult::kKeep;
}

void Server::handle_connection(std::shared_ptr<Connection> conn) {
  std::vector<char> buf;
  char chunk[4096];
  bool open = true;
  while (open) {
    // Drain every complete frame currently buffered before reading more.
    for (;;) {
      const Decoded frame = decode_frame(buf);
      if (frame.status == DecodeStatus::kNeedMore) break;
      if (frame.status == DecodeStatus::kBad) {
        // The stream framing is broken; a typed reply tells the client
        // why, then the connection closes (the writer drains it out).
        conn->received.fetch_add(1, std::memory_order_relaxed);
        requests_counter().add(1);
        conn->error.fetch_add(1, std::memory_order_relaxed);
        error_counter().add(1);
        conn->enqueue(encode_error(frame.request_id, frame.code,
                                   frame.message));
        conn->begin_close(/*abort=*/false);
        open = false;
        break;
      }
      const HandleResult result = handle_request(conn, frame);
      buf.erase(buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(frame.consumed));
      if (result == HandleResult::kDrop) {
        conn->begin_close(/*abort=*/true);
        open = false;
        break;
      }
      if (result == HandleResult::kClose) {
        conn->begin_close(/*abort=*/false);
        open = false;
        break;
      }
    }
    if (!open) break;
    const std::size_t n = conn->socket.recv_some(chunk);
    if (n == 0) {  // EOF (client finished or teardown shut the read side)
      conn->begin_close(/*abort=*/false);
      break;
    }
    buf.insert(buf.end(), chunk, chunk + n);
  }
  conn->reader_done.store(true, std::memory_order_release);
}

}  // namespace anb::serve
