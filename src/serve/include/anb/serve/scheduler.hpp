#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/thread_annotations.hpp"

// The coalescing micro-batch scheduler: the systems core of anbd. Many
// concurrent scalar queries are worth little individually — FlatForest's
// SIMD descent only pays off on wide batches (PR 8) — so the scheduler
// queues incoming rows into per-target buckets and flushes each bucket
// into a single AccelNASBench batched query when either threshold hits:
//
//   - the bucket reaches `batch_max` rows (a full SIMD batch), or
//   - `coalesce_wait_us` elapses with rows pending (latency bound).
//
// Determinism contract: coalescing NEVER changes a response value. A
// flushed batch runs through query_*_batch, which is bit-identical to
// per-row scalar queries by the PR 2/8 contracts; rows of different
// requests never mix arithmetically. So the same request multiset yields
// bit-identical values regardless of arrival interleaving, batch cut
// points, worker count, or whether coalescing is on at all — enforced by
// tests/serve/serve_determinism_test.cpp.

namespace anb::serve {

/// Which surrogate a row targets: the accuracy model or one MetricKey,
/// within one search space. Rows only ever coalesce within a bucket, so
/// rows of different spaces can never mix in one batched query.
struct BucketKey {
  SpaceId space = SpaceId::kMnasNet;
  bool accuracy = true;
  MetricKey key;  ///< meaningful iff !accuracy

  friend bool operator==(const BucketKey&, const BucketKey&) = default;
  friend auto operator<=>(const BucketKey&, const BucketKey&) = default;

  /// Dataset-style name: "ANB-Acc" or dataset_name(key); non-MnasNet
  /// buckets carry a "<space>:" prefix so report rows stay unambiguous.
  std::string name() const;
};

struct SchedulerOptions {
  /// Flush a bucket as soon as it holds this many rows.
  std::uint32_t batch_max = 64;
  /// Flush a non-empty bucket at most this long after rows arrive.
  std::uint32_t coalesce_wait_us = 200;
  /// Admission control: total rows pending across all buckets. A submit
  /// that would exceed it is rejected (the server answers kRetryLater).
  std::size_t queue_capacity = 4096;
  /// Flush workers; 0 = anb::default_num_threads(). With >= 2 workers,
  /// one in-flight flush never delays another bucket's deadline.
  unsigned worker_threads = 0;
};

/// Counters of a scheduler's lifetime, for ServeReport. Sums only, so
/// merge order cannot matter.
struct SchedulerStats {
  std::uint64_t batches = 0;
  std::uint64_t rows = 0;
  std::map<std::string, std::uint64_t> bucket_rows;  ///< by BucketKey::name()
};

/// Admission-control outcome of submit().
enum class Admit {
  kOk,         ///< rows queued; the callback will fire exactly once
  kQueueFull,  ///< bounded queue would overflow — retry later
  kStopped,    ///< scheduler is draining/stopped — no new work
};

class Scheduler {
 public:
  /// Called exactly once per admitted submission, on a worker thread.
  /// `values[i]` answers `archs[i]` of the submission; `error` is empty on
  /// success (non-empty means an unexpected benchmark failure — the values
  /// are meaningless). Callbacks must not block: they run on the flush
  /// workers, and a blocking callback would hold up other buckets.
  using BatchCallback =
      std::function<void(std::vector<double> values, std::string error)>;

  /// `bench` must outlive the scheduler and have its surrogates installed
  /// before start(); queries are const and thread-safe.
  Scheduler(const AccelNASBench& bench, const SchedulerOptions& options);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void start();

  /// Drain: flush everything pending, run all callbacks, join workers.
  /// Idempotent. After stop(), submit() returns kStopped.
  void stop();

  /// Queue `archs` (architecture indices) against `bucket`. The caller
  /// must have verified the benchmark has a surrogate for the bucket.
  Admit submit(const BucketKey& bucket, std::vector<std::uint64_t> archs,
               BatchCallback done);

  /// Hold all flushing (submissions still accepted until the queue
  /// fills). Deterministic admission-control tests use this to fill the
  /// queue to an exact level before any flush can race the count.
  void pause();
  void resume();

  SchedulerStats stats() const;

 private:
  struct Group;
  struct Row;
  struct Bucket;
  struct Flush;

  void worker_loop();
  /// Largest bucket first; ties broken by key order. Requires mu_ held.
  Flush extract_flush() ANB_REQUIRES(mu_);
  void execute_flush(Flush&& flush);

  const AccelNASBench& bench_;
  const SchedulerOptions options_;

  mutable Mutex mu_;
  CondVar cv_;
  bool started_ ANB_GUARDED_BY(mu_) = false;
  bool draining_ ANB_GUARDED_BY(mu_) = false;
  bool paused_ ANB_GUARDED_BY(mu_) = false;
  std::size_t total_rows_ ANB_GUARDED_BY(mu_) = 0;
  std::map<BucketKey, Bucket> buckets_ ANB_GUARDED_BY(mu_);
  SchedulerStats stats_ ANB_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
};

}  // namespace anb::serve
