#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/serve/protocol.hpp"
#include "anb/serve/scheduler.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/net.hpp"
#include "anb/util/thread_annotations.hpp"

// anbd's serving core: a Server open()s-once benchmark process that
// answers protocol frames over a unix-domain socket. Each accepted
// connection gets a reader thread (frame parsing, request handling,
// scheduler submission) and a writer thread draining a bounded response
// outbox — so a client that stops reading, or a fault-injected slow
// write, can never hold up a scheduler worker or another connection.
// See DESIGN.md "Serving & micro-batch coalescing".

namespace anb::serve {

/// Fault-injection sites on the connection paths (anb/util/fault.hpp).
/// All three key their Bernoulli decision on
/// hash(client_id, incarnation, request_id) — identity from the
/// connection's kHello (a hello request keys under the identity it
/// announces), request ids chosen by the client — so armed runs fire
/// identically at any server thread count or interleaving: the
/// ServeReport invariance contract of tests/serve/serve_fault_test.cpp.
/// Clients with at most one request in flight get exact slow-write
/// accounting too (response frames are keyed by the same request_id).
///
/// read.stall: the reader sleeps (fault-magnitude-scaled) before handling
/// a request — a slow client occupying only its own connection threads.
/// write.slow: the writer sleeps before a send.
/// drop: the server closes the connection instead of answering — the
/// client sees EOF mid-conversation and must reconnect (bumping its
/// incarnation so retried requests draw fresh fault decisions).
inline constexpr const char* kServeReadStallSite = "serve.conn.read.stall";
inline constexpr const char* kServeWriteSlowSite = "serve.conn.write.slow";
inline constexpr const char* kServeDropSite = "serve.conn.drop";

/// client_id reported for connections that never sent kHello.
inline constexpr std::uint64_t kAnonymousClient = ~std::uint64_t{0};

struct ServeOptions {
  /// Unix socket path; empty picks a fresh net::unique_socket_path.
  std::string socket_path;
  /// Coalesce concurrent scalar queries into batched predictions. When
  /// off, every request is answered synchronously on its connection's
  /// reader thread via the scalar query path (the bench's comparison
  /// baseline).
  bool coalescing = true;
  SchedulerOptions scheduler;
  /// Per-connection bound on queued-but-unsent responses. A client that
  /// stops reading past this is forcibly disconnected (never blocks the
  /// server).
  std::size_t outbox_capacity = 1024;
};

/// Per-client accounting, keyed by the kHello client id. Counts request
/// *outcomes* (a response was produced), which is what the determinism
/// contract can promise — whether a response also reached a client that
/// vanished mid-flight is the client's business. Conservation law:
/// received == ok + error + retry_later + dropped.
struct ClientReport {
  std::uint64_t received = 0;
  std::uint64_t ok = 0;
  std::uint64_t error = 0;
  std::uint64_t retry_later = 0;
  std::uint64_t dropped = 0;       ///< requests eaten by a drop fault
  std::uint64_t stall_faults = 0;
  std::uint64_t slow_faults = 0;

  friend bool operator==(const ClientReport&, const ClientReport&) = default;
};

/// Whole-server accounting; totals are sums of the per-client rows plus
/// anonymous traffic, scheduler stats come from the flush path. Exact and
/// thread-invariant after quiescence (stop(), or all clients done).
struct ServeReport {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t retry_later = 0;
  std::uint64_t dropped = 0;
  std::uint64_t batches = 0;
  std::uint64_t rows = 0;
  std::map<std::uint64_t, ClientReport> clients;
  std::map<std::string, std::uint64_t> bucket_rows;
};

class Server {
 public:
  /// `bench` must outlive the server; its surrogates must be installed
  /// before start(). Queries on it are const and thread-safe.
  explicit Server(const AccelNASBench& bench, ServeOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket, start the scheduler and the accept loop. The
  /// socket path is available (and connectable) once start() returns.
  void start();

  /// Graceful stop: refuse new connections, drain the scheduler (every
  /// admitted request still gets its response), flush outboxes, join all
  /// threads, unlink the socket. Idempotent.
  void stop();

  bool running() const;
  const std::string& socket_path() const;

  /// Block until a client sends kShutdown or another thread calls
  /// stop(); performs the stop before returning (daemon main loop).
  void wait();

  /// Merged accounting snapshot. Deterministic once quiescent.
  ServeReport report() const;

  /// The scheduler, for tests that pause/resume flushing to make
  /// admission-control outcomes exact.
  Scheduler& scheduler_for_test() { return scheduler_; }

 private:
  struct Connection;

  /// Outcome of handling one decoded frame.
  enum class HandleResult {
    kKeep,   ///< keep reading from this connection
    kClose,  ///< graceful close (drain outbox first)
    kDrop,   ///< drop fault: abort without a reply
  };

  void accept_loop();
  void handle_connection(std::shared_ptr<Connection> conn);
  HandleResult handle_request(const std::shared_ptr<Connection>& conn,
                              const Decoded& frame);
  /// Fold a finished connection's counters into closed_clients_.
  void absorb_connection(const Connection& conn) ANB_REQUIRES(mu_);

  const AccelNASBench& bench_;
  const ServeOptions options_;
  Scheduler scheduler_;

  mutable Mutex mu_;
  CondVar shutdown_cv_;
  bool running_ ANB_GUARDED_BY(mu_) = false;
  bool stop_requested_ ANB_GUARDED_BY(mu_) = false;
  std::uint64_t connections_accepted_ ANB_GUARDED_BY(mu_) = 0;
  std::vector<std::shared_ptr<Connection>> connections_ ANB_GUARDED_BY(mu_);
  /// Counters of reaped connections, merged by client id so report()
  /// stays exact across connection churn.
  std::map<std::uint64_t, ClientReport> closed_clients_ ANB_GUARDED_BY(mu_);

  std::unique_ptr<net::Listener> listener_;
  std::string socket_path_;
  std::thread accept_thread_;
};

}  // namespace anb::serve
