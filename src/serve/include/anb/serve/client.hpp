#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/serve/protocol.hpp"
#include "anb/util/net.hpp"

// Blocking client for the anbd protocol: one request in flight at a time,
// replies matched by echoed request id. This is the reference client the
// tests, the bench, and `anbench query-remote` share; it is deliberately
// synchronous — searcher loops issue one query per candidate, and the
// server's coalescing exists precisely so many such simple clients still
// fill SIMD batches.
//
// Not thread-safe: one Client per thread (they are cheap — a socket and a
// buffer).

namespace anb::serve {

/// The server closed the connection mid-conversation (drop fault, server
/// stop, or crash). Callers that retry should reconnect with a bumped
/// incarnation so retried requests draw fresh fault decisions.
class Disconnected : public Error {
 public:
  explicit Disconnected(const std::string& what) : Error(what) {}
};

/// The server answered kError; carries the typed code.
class RemoteError : public Error {
 public:
  RemoteError(ErrorCode code, const std::string& what)
      : Error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// The server answered kRetryLater (admission control).
class RetryLater : public Error {
 public:
  RetryLater() : Error("server queue full: retry later") {}
};

class Client {
 public:
  /// Connect to the server socket. Throws anb::Error on failure.
  explicit Client(const std::string& socket_path);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Identify this client to the server. The (client_id, incarnation)
  /// pair keys the server's per-client report rows and its fault-decision
  /// hashes; tests re-hello with incarnation+1 after a Disconnected.
  void hello(std::uint64_t client_id, std::uint32_t incarnation);

  void ping();

  /// Scalar queries return the response value bit-exactly as sent (raw
  /// IEEE-754 transport — no text round-trip). `space` tags the indices'
  /// search space (protocol v2); it must match the space the server's
  /// benchmark was built over, else the server answers kUnknownSpace.
  double query_accuracy(std::uint64_t arch_index,
                        SpaceId space = SpaceId::kMnasNet);
  double query_perf(MetricKey key, std::uint64_t arch_index,
                    SpaceId space = SpaceId::kMnasNet);

  std::vector<double> query_accuracy_batch(
      std::span<const std::uint64_t> arch_indices,
      SpaceId space = SpaceId::kMnasNet);
  std::vector<double> query_perf_batch(
      MetricKey key, std::span<const std::uint64_t> arch_indices,
      SpaceId space = SpaceId::kMnasNet);

  /// Ask the server to stop gracefully; returns after its kBye.
  void shutdown_server();

  /// Send a pre-encoded frame and wait for the matching reply — the
  /// escape hatch the protocol-fuzz and fault tests use to speak frames
  /// the typed API would never produce. Throws Disconnected on EOF,
  /// RemoteError/RetryLater on those reply types.
  Reply call(std::span<const char> frame, std::uint64_t request_id);

  /// Receive the next reply frame as-is, whatever its request id or type
  /// (kError/kRetryLater come back as Reply values, not exceptions). For
  /// tests that pipeline several raw frames and match replies by echoed
  /// id. Throws Disconnected on EOF.
  Reply recv_reply();

  /// Raw access for tests that need to send garbage or half-frames.
  net::Socket& socket() { return socket_; }

  std::uint64_t next_request_id() { return next_request_id_++; }

 private:
  Reply read_reply(std::uint64_t expect_id);

  net::Socket socket_;
  std::uint64_t next_request_id_ = 1;
  std::vector<char> buf_;
};

}  // namespace anb::serve
