#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/util/error.hpp"

// Wire protocol of the anbd benchmark server: length-prefixed binary
// frames over a local stream socket. See DESIGN.md "Serving & micro-batch
// coalescing" for the layout table and the validation order.
//
// Every frame is
//
//   u32 length     — byte count of the rest of the frame (header+payload);
//                    must be in [kHeaderBytes, kMaxFrameBytes]
//   u32 magic      — kFrameMagic ("ANBQ")
//   u16 version    — kProtocolVersion, exact match required
//   u16 type       — MsgType
//   u64 request_id — echoed verbatim in the response
//   payload        — type-specific, little-endian, fixed layout
//
// all little-endian. Malformed input never crashes the server: payload
// errors (bad metric, out-of-range architecture index, short payload) get
// a typed kError reply on the same connection; framing errors (bad magic,
// bad version, oversized length) get a typed reply followed by connection
// close, because the byte stream can no longer be trusted. The contract
// is exercised by tests/serve/protocol_fuzz_test.cpp.

namespace anb::serve {

inline constexpr std::uint32_t kFrameMagic = 0x51424E41u;  // "ANBQ"
/// v1 spoke MnasNet-only queries; v2 prefixes every query payload with a
/// u16 search-space id (SpaceId numeric value) so one daemon protocol
/// covers all registered spaces. Exact match is still required — a v1
/// client gets a typed kBadVersion reply, not silent misdecoding.
inline constexpr std::uint16_t kProtocolVersion = 2;

/// Bytes of (magic, version, type, request_id) — the frame minus the
/// length prefix and payload.
inline constexpr std::uint32_t kHeaderBytes = 16;

/// Upper bound on the length prefix: large enough for a maximal batch
/// frame, small enough that a corrupted prefix cannot make the server
/// allocate gigabytes. Checked before any allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Largest row count a single batch request may carry.
inline constexpr std::uint32_t kMaxBatchRows = 4096;

enum class MsgType : std::uint16_t {
  // Requests.
  kHello = 1,               ///< u64 client_id, u32 incarnation
  kPing = 2,                ///< empty
  kQueryAccuracy = 3,       ///< u16 space, u64 arch_index
  kQueryPerf = 4,           ///< u16 space, u8 device, u8 metric, u64 arch_index
  kQueryAccuracyBatch = 5,  ///< u16 space, u32 count, count x u64 arch_index
  kQueryPerfBatch = 6,      ///< u16 space, u8 device, u8 metric, u32 count,
                            ///< count x u64
  kShutdown = 7,            ///< empty; asks the server to stop gracefully

  // Responses.
  kHelloOk = 128,     ///< empty
  kPong = 129,        ///< empty
  kValue = 130,       ///< f64 (raw IEEE-754 bits — the determinism contract
                      ///< compares these bit patterns)
  kValueBatch = 131,  ///< u32 count, count x f64
  kRetryLater = 132,  ///< empty; admission control rejected the request
  kError = 133,       ///< u16 ErrorCode, u32 msg_len, msg bytes
  kBye = 134,         ///< empty; graceful-shutdown acknowledgement
};

const char* msg_type_name(MsgType type);

/// Typed error codes carried by kError replies.
enum class ErrorCode : std::uint16_t {
  kBadMagic = 1,
  kBadVersion = 2,
  kBadLength = 3,        ///< length prefix outside [kHeaderBytes, kMaxFrameBytes]
  kBadPayload = 4,       ///< payload shorter/longer than the type demands
  kUnknownType = 5,
  kBadArchIndex = 6,     ///< index >= the space's cardinality()
  kBadMetricKey = 7,     ///< device/metric byte outside the enum range
  kBatchTooLarge = 8,    ///< count > kMaxBatchRows
  kNoSurrogate = 9,      ///< benchmark has no model for the requested target
  kShuttingDown = 10,    ///< server is draining; connection will close
  kInternal = 11,        ///< unexpected server-side failure
  kUnknownSpace = 12,    ///< space id not registered, or not this server's
};

const char* error_code_name(ErrorCode code);

/// Thrown by parse_request() on a payload the frame header promised but
/// cannot deliver; the server converts it into a kError reply.
class ProtocolError : public Error {
 public:
  ProtocolError(ErrorCode code, const std::string& what)
      : Error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// A decoded request frame.
struct Request {
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  std::uint64_t client_id = 0;      ///< kHello
  std::uint32_t incarnation = 0;    ///< kHello
  SpaceId space = SpaceId::kMnasNet;  ///< query types
  MetricKey key;                    ///< kQueryPerf*
  std::vector<std::uint64_t> archs; ///< query types; scalar queries hold one
};

/// A decoded response frame (client side).
struct Reply {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  double value = 0.0;                ///< kValue
  std::vector<double> values;        ///< kValueBatch
  ErrorCode code = ErrorCode::kInternal;  ///< kError
  std::string message;               ///< kError
};

// --------------------------------------------------------------- encoding

/// Assemble a full frame (length prefix + header + payload).
std::vector<char> encode_frame(MsgType type, std::uint64_t request_id,
                               std::span<const char> payload);

std::vector<char> encode_hello(std::uint64_t request_id,
                               std::uint64_t client_id,
                               std::uint32_t incarnation);
std::vector<char> encode_ping(std::uint64_t request_id);
std::vector<char> encode_query_accuracy(std::uint64_t request_id,
                                        std::uint64_t arch_index,
                                        SpaceId space = SpaceId::kMnasNet);
std::vector<char> encode_query_perf(std::uint64_t request_id, MetricKey key,
                                    std::uint64_t arch_index,
                                    SpaceId space = SpaceId::kMnasNet);
std::vector<char> encode_query_accuracy_batch(
    std::uint64_t request_id, std::span<const std::uint64_t> arch_indices,
    SpaceId space = SpaceId::kMnasNet);
std::vector<char> encode_query_perf_batch(
    std::uint64_t request_id, MetricKey key,
    std::span<const std::uint64_t> arch_indices,
    SpaceId space = SpaceId::kMnasNet);
std::vector<char> encode_shutdown(std::uint64_t request_id);

std::vector<char> encode_empty_reply(MsgType type, std::uint64_t request_id);
std::vector<char> encode_value(std::uint64_t request_id, double value);
std::vector<char> encode_values(std::uint64_t request_id,
                                std::span<const double> values);
std::vector<char> encode_error(std::uint64_t request_id, ErrorCode code,
                               const std::string& message);

// --------------------------------------------------------------- decoding

/// Outcome of scanning a receive buffer for one frame.
enum class DecodeStatus {
  kNeedMore,  ///< buffer holds a valid prefix of a frame; read more bytes
  kFrame,     ///< one well-framed message decoded (header validated)
  kBad,       ///< unrecoverable framing error; reply typed error and close
};

/// A decoded frame boundary: header fields plus a view of the payload
/// bytes (into the caller's buffer) and the total bytes consumed.
struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMore;
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  std::span<const char> payload;
  std::size_t consumed = 0;   ///< bytes of `buf` this frame occupied
  ErrorCode code = ErrorCode::kInternal;  ///< kBad only
  std::string message;                    ///< kBad only
};

/// Scan the front of `buf` for one frame. Validates length prefix, magic,
/// and version — in that order — before trusting anything else. Never
/// throws; framing problems come back as kBad with a typed code.
Decoded decode_frame(std::span<const char> buf);

/// Parse a validated frame into a Request. Throws ProtocolError on any
/// payload violation (unknown type, short/long payload, bad metric bytes,
/// out-of-range architecture index, oversized batch).
Request parse_request(const Decoded& frame);

/// Parse a validated frame into a Reply (client side). Throws
/// ProtocolError on response payloads that do not match their type.
Reply parse_reply(const Decoded& frame);

}  // namespace anb::serve
