#include "anb/serve/client.hpp"

#include <utility>

#include "anb/util/error.hpp"

namespace anb::serve {

Client::Client(const std::string& socket_path)
    : socket_(net::Socket::connect_unix(socket_path)) {}

void Client::hello(std::uint64_t client_id, std::uint32_t incarnation) {
  const std::uint64_t id = next_request_id_++;
  const Reply reply = call(encode_hello(id, client_id, incarnation), id);
  ANB_CHECK(reply.type == MsgType::kHelloOk,
            "unexpected hello reply: " + std::string(msg_type_name(reply.type)));
}

void Client::ping() {
  const std::uint64_t id = next_request_id_++;
  const Reply reply = call(encode_ping(id), id);
  ANB_CHECK(reply.type == MsgType::kPong,
            "unexpected ping reply: " + std::string(msg_type_name(reply.type)));
}

double Client::query_accuracy(std::uint64_t arch_index, SpaceId space) {
  const std::uint64_t id = next_request_id_++;
  const Reply reply = call(encode_query_accuracy(id, arch_index, space), id);
  ANB_CHECK(reply.type == MsgType::kValue,
            "unexpected query reply: " + std::string(msg_type_name(reply.type)));
  return reply.value;
}

double Client::query_perf(MetricKey key, std::uint64_t arch_index,
                          SpaceId space) {
  const std::uint64_t id = next_request_id_++;
  const Reply reply = call(encode_query_perf(id, key, arch_index, space), id);
  ANB_CHECK(reply.type == MsgType::kValue,
            "unexpected query reply: " + std::string(msg_type_name(reply.type)));
  return reply.value;
}

std::vector<double> Client::query_accuracy_batch(
    std::span<const std::uint64_t> arch_indices, SpaceId space) {
  const std::uint64_t id = next_request_id_++;
  Reply reply = call(encode_query_accuracy_batch(id, arch_indices, space), id);
  ANB_CHECK(reply.type == MsgType::kValueBatch,
            "unexpected batch reply: " + std::string(msg_type_name(reply.type)));
  ANB_CHECK(reply.values.size() == arch_indices.size(),
            "batch reply row count mismatch");
  return std::move(reply.values);
}

std::vector<double> Client::query_perf_batch(
    MetricKey key, std::span<const std::uint64_t> arch_indices,
    SpaceId space) {
  const std::uint64_t id = next_request_id_++;
  Reply reply = call(encode_query_perf_batch(id, key, arch_indices, space), id);
  ANB_CHECK(reply.type == MsgType::kValueBatch,
            "unexpected batch reply: " + std::string(msg_type_name(reply.type)));
  ANB_CHECK(reply.values.size() == arch_indices.size(),
            "batch reply row count mismatch");
  return std::move(reply.values);
}

void Client::shutdown_server() {
  const std::uint64_t id = next_request_id_++;
  const Reply reply = call(encode_shutdown(id), id);
  ANB_CHECK(reply.type == MsgType::kBye,
            "unexpected shutdown reply: " +
                std::string(msg_type_name(reply.type)));
}

Reply Client::call(std::span<const char> frame, std::uint64_t request_id) {
  if (!socket_.send_all(frame)) {
    throw Disconnected("server closed connection during send");
  }
  return read_reply(request_id);
}

Reply Client::recv_reply() {
  char chunk[4096];
  for (;;) {
    const Decoded frame = decode_frame(buf_);
    if (frame.status == DecodeStatus::kBad) {
      throw Error("malformed reply frame from server: " + frame.message);
    }
    if (frame.status == DecodeStatus::kFrame) {
      Reply reply = parse_reply(frame);
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(frame.consumed));
      return reply;
    }
    const std::size_t n = socket_.recv_some(chunk);
    if (n == 0) {
      throw Disconnected("server closed connection while awaiting reply");
    }
    buf_.insert(buf_.end(), chunk, chunk + n);
  }
}

Reply Client::read_reply(std::uint64_t expect_id) {
  Reply reply = recv_reply();
  // Single outstanding request: replies arrive in order, so an id
  // mismatch means a protocol bug, not a race.
  ANB_CHECK(reply.request_id == expect_id,
            "reply id mismatch (pipelining through the blocking "
            "client is not supported)");
  if (reply.type == MsgType::kError) {
    throw RemoteError(reply.code, reply.message);
  }
  if (reply.type == MsgType::kRetryLater) throw RetryLater();
  return reply;
}

}  // namespace anb::serve
