#include "anb/fbnet/fbnet_space.hpp"

#include <cmath>
#include <sstream>

#include "anb/ir/builder.hpp"
#include "anb/util/error.hpp"

namespace anb {

const char* fbnet_op_name(FbnetOp op) {
  switch (op) {
    case FbnetOp::kE1K3: return "e1k3";
    case FbnetOp::kE1K5: return "e1k5";
    case FbnetOp::kE3K3: return "e3k3";
    case FbnetOp::kE3K5: return "e3k5";
    case FbnetOp::kE6K3: return "e6k3";
    case FbnetOp::kE6K5: return "e6k5";
    case FbnetOp::kSkip: return "skip";
  }
  return "unknown";
}

int fbnet_op_expansion(FbnetOp op) {
  switch (op) {
    case FbnetOp::kE1K3:
    case FbnetOp::kE1K5: return 1;
    case FbnetOp::kE3K3:
    case FbnetOp::kE3K5: return 3;
    case FbnetOp::kE6K3:
    case FbnetOp::kE6K5: return 6;
    case FbnetOp::kSkip: break;
  }
  throw Error("fbnet_op_expansion: skip has no expansion");
}

int fbnet_op_kernel(FbnetOp op) {
  switch (op) {
    case FbnetOp::kE1K3:
    case FbnetOp::kE3K3:
    case FbnetOp::kE6K3: return 3;
    case FbnetOp::kE1K5:
    case FbnetOp::kE3K5:
    case FbnetOp::kE6K5: return 5;
    case FbnetOp::kSkip: break;
  }
  throw Error("fbnet_op_kernel: skip has no kernel");
}

std::string FbnetArchitecture::to_string() const {
  std::string out;
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    if (i) out += '-';
    out += fbnet_op_name(ops[static_cast<std::size_t>(i)]);
  }
  return out;
}

FbnetArchitecture FbnetArchitecture::from_string(const std::string& s) {
  FbnetArchitecture arch;
  std::istringstream in(s);
  std::string token;
  int i = 0;
  while (std::getline(in, token, '-')) {
    ANB_CHECK(i < kFbnetNumLayers,
              "FbnetArchitecture::from_string: too many layers");
    bool found = false;
    for (int o = 0; o < kFbnetNumOps; ++o) {
      if (token == fbnet_op_name(static_cast<FbnetOp>(o))) {
        arch.ops[static_cast<std::size_t>(i)] = static_cast<FbnetOp>(o);
        found = true;
        break;
      }
    }
    ANB_CHECK(found, "FbnetArchitecture::from_string: unknown op '" + token +
                         "'");
    ++i;
  }
  ANB_CHECK(i == kFbnetNumLayers,
            "FbnetArchitecture::from_string: expected " +
                std::to_string(kFbnetNumLayers) + " layers, got " +
                std::to_string(i));
  return arch;
}

std::uint64_t FbnetArchitecture::hash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (FbnetOp op : ops) {
    h ^= static_cast<std::uint64_t>(op) + 1;
    h *= 0x100000001B3ULL;
  }
  return h;
}

const FbnetSpace& FbnetSpace::instance() {
  static const FbnetSpace space;
  return space;
}

const std::array<FbnetSpace::LayerSlot, kFbnetNumLayers>& FbnetSpace::slots() {
  // FBNet macro: per-stage (layers, channels, stride of the first layer):
  // (1,16,1) (4,24,2) (4,32,2) (4,64,2) (4,112,1) (4,184,2) (1,352,1).
  static const std::array<LayerSlot, kFbnetNumLayers> table = [] {
    std::array<LayerSlot, kFbnetNumLayers> slots{};
    struct Stage {
      int layers, channels, stride;
    };
    const Stage stages[] = {{1, 16, 1},  {4, 24, 2}, {4, 32, 2}, {4, 64, 2},
                            {4, 112, 1}, {4, 184, 2}, {1, 352, 1}};
    int i = 0;
    int in_c = kStemChannels;
    for (const auto& stage : stages) {
      for (int l = 0; l < stage.layers; ++l) {
        LayerSlot slot;
        slot.out_c = stage.channels;
        slot.stride = l == 0 ? stage.stride : 1;
        slot.skip_allowed = slot.stride == 1 && in_c == stage.channels;
        slots[static_cast<std::size_t>(i++)] = slot;
        in_c = stage.channels;
      }
    }
    ANB_ASSERT(i == kFbnetNumLayers, "FBNet slot table size mismatch");
    return slots;
  }();
  return table;
}

int FbnetSpace::num_ops(int layer) {
  ANB_CHECK(layer >= 0 && layer < kFbnetNumLayers,
            "FbnetSpace::num_ops: layer out of range");
  return slots()[static_cast<std::size_t>(layer)].skip_allowed
             ? kFbnetNumOps
             : kFbnetNumOps - 1;
}

double FbnetSpace::log10_cardinality() {
  double log10 = 0.0;
  for (int i = 0; i < kFbnetNumLayers; ++i) log10 += std::log10(num_ops(i));
  return log10;
}

void FbnetSpace::validate(const FbnetArchitecture& arch) {
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    const FbnetOp op = arch.ops[static_cast<std::size_t>(i)];
    const auto raw = static_cast<int>(op);
    ANB_CHECK(raw >= 0 && raw < kFbnetNumOps,
              "FbnetSpace: invalid op at layer " + std::to_string(i));
    if (op == FbnetOp::kSkip) {
      ANB_CHECK(slots()[static_cast<std::size_t>(i)].skip_allowed,
                "FbnetSpace: skip is illegal at layer " + std::to_string(i) +
                    " (shape-changing position)");
    }
  }
}

bool FbnetSpace::is_valid(const FbnetArchitecture& arch) {
  try {
    validate(arch);
    return true;
  } catch (const Error&) {
    return false;
  }
}

Arch FbnetSpace::from_ops(const FbnetArchitecture& ops) {
  validate(ops);
  Arch arch;
  arch.space = SpaceId::kFbnet;
  arch.n = kFbnetNumLayers;
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    arch.d[static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(ops.ops[static_cast<std::size_t>(i)]);
  }
  return arch;
}

FbnetArchitecture FbnetSpace::to_ops(const Arch& arch) {
  instance().validate(arch);
  FbnetArchitecture out;
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    out.ops[static_cast<std::size_t>(i)] =
        static_cast<FbnetOp>(arch.d[static_cast<std::size_t>(i)]);
  }
  return out;
}

const std::vector<int>& FbnetSpace::decision_sizes() const {
  static const std::vector<int> sizes = [] {
    std::vector<int> out;
    out.reserve(kFbnetNumLayers);
    for (int i = 0; i < kFbnetNumLayers; ++i) out.push_back(num_ops(i));
    return out;
  }();
  return sizes;
}

Arch FbnetSpace::sample(Rng& rng) const {
  // One option pick per layer, in layer order — the draw pattern of the
  // pre-interface static sampler, so pinned-seed fbnet experiments (e13)
  // reproduce bit-identically.
  Arch arch = make_arch();
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    arch.d[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(
        rng.uniform_index(static_cast<std::uint64_t>(num_ops(i))));
  }
  return arch;
}

std::vector<double> FbnetSpace::features(const Arch& arch) const {
  return features(to_ops(arch));
}

std::string FbnetSpace::arch_to_string(const Arch& arch) const {
  return to_ops(arch).to_string();
}

Arch FbnetSpace::arch_from_string(const std::string& s) const {
  return from_ops(FbnetArchitecture::from_string(s));
}

FbnetArchitecture FbnetSpace::mutate(const FbnetArchitecture& arch, Rng& rng) {
  validate(arch);
  FbnetArchitecture out = arch;
  const int layer = static_cast<int>(rng.uniform_index(kFbnetNumLayers));
  const int options = num_ops(layer);
  const int current = static_cast<int>(out.ops[static_cast<std::size_t>(layer)]);
  const int offset =
      1 + static_cast<int>(rng.uniform_index(
              static_cast<std::uint64_t>(options - 1)));
  out.ops[static_cast<std::size_t>(layer)] =
      static_cast<FbnetOp>((current + offset) % options);
  ANB_ASSERT(!(out == arch), "FbnetSpace::mutate produced identical arch");
  return out;
}

std::vector<double> FbnetSpace::features(const FbnetArchitecture& arch) {
  validate(arch);
  std::vector<double> f(
      static_cast<std::size_t>(kFbnetNumLayers * kFbnetNumOps), 0.0);
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    f[static_cast<std::size_t>(i * kFbnetNumOps +
                               static_cast<int>(arch.ops[static_cast<std::size_t>(i)]))] =
        1.0;
  }
  return f;
}

ModelIR build_fbnet_ir(const FbnetArchitecture& arch, int resolution) {
  FbnetSpace::validate(arch);
  ANB_CHECK(resolution >= 32 && resolution <= 1024,
            "build_fbnet_ir: resolution must be in [32, 1024]");

  ModelIR ir;
  ir.resolution = resolution;

  IrBuilder b(resolution);
  b.conv("stem.conv", FbnetSpace::kStemChannels, 3, 2);
  const auto& slots = FbnetSpace::slots();
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    const FbnetOp op = arch.ops[static_cast<std::size_t>(i)];
    if (op == FbnetOp::kSkip) continue;  // identity
    const auto& slot = slots[static_cast<std::size_t>(i)];
    b.mbconv("l" + std::to_string(i + 1), slot.out_c, fbnet_op_expansion(op),
             fbnet_op_kernel(op), slot.stride, /*se=*/false);
  }
  b.conv("head.conv", FbnetSpace::kHeadChannels, 1, 1);
  b.global_avg_pool("head.pool");
  b.fully_connected("head.fc", MacroSkeleton::kNumClasses);

  ir.layers = b.take();
  return ir;
}

void register_builtin_spaces() { register_space(FbnetSpace::instance()); }

}  // namespace anb
