#include "anb/fbnet/fbnet_sim.hpp"

#include <algorithm>
#include <cmath>

#include "anb/util/error.hpp"

namespace anb {

namespace {

// Position importance: the 22 slots grouped by stage, later stages heavier
// (same shape rationale as the MnasNet simulator's stage weights).
double layer_weight(int layer) {
  static const std::array<double, 7> stage_weight{0.40, 0.55, 0.70, 1.00,
                                                  1.10, 1.25, 0.90};
  static const std::array<int, 7> stage_layers{1, 4, 4, 4, 4, 4, 1};
  int remaining = layer;
  for (int s = 0; s < 7; ++s) {
    if (remaining < stage_layers[static_cast<std::size_t>(s)])
      return stage_weight[static_cast<std::size_t>(s)] /
             stage_layers[static_cast<std::size_t>(s)];
    remaining -= stage_layers[static_cast<std::size_t>(s)];
  }
  throw Error("layer_weight: layer out of range");
}

double op_gain(FbnetOp op, int layer) {
  if (op == FbnetOp::kSkip) return 0.0;
  double gain = 0.0;
  switch (fbnet_op_expansion(op)) {
    case 1: gain = 0.0; break;
    case 3: gain = 1.6; break;
    case 6: gain = 2.3; break;
    default: break;
  }
  // 5x5 kernels pay off in the mid-network receptive-field growth region.
  if (fbnet_op_kernel(op) == 5) {
    gain += (layer >= 5 && layer <= 16) ? 0.35 : 0.10;
  }
  return gain;
}

constexpr double kAccFloor = 0.48;
constexpr double kAccRange = 0.46;
constexpr double kQualityScale = 9.0;
constexpr double kLatentWiggleSigma = 0.07;
constexpr int kNumMotifs = 48;
constexpr double kMotifWeightSigma = 0.14;

// log-MAC bounds of the FBNet space at 224 (all-skip-eligible minimal vs
// all-e6k5 maximal; verified in fbnet tests).
constexpr double kLogMacsMin = 17.5;
constexpr double kLogMacsMax = 20.5;

}  // namespace

FbnetTrainingSimulator::FbnetTrainingSimulator(std::uint64_t world_seed)
    : world_seed_(world_seed) {
  Rng rng(hash_combine(world_seed_, 0xFB307F1FULL));
  motifs_.reserve(kNumMotifs);
  for (int m = 0; m < kNumMotifs; ++m) {
    Motif motif;
    motif.arity = rng.bernoulli(1.0 / 3.0) ? 3 : 2;
    const auto picks = rng.sample_indices(
        kFbnetNumLayers, static_cast<std::size_t>(motif.arity));
    for (int a = 0; a < motif.arity; ++a) {
      const int layer = static_cast<int>(picks[static_cast<std::size_t>(a)]);
      motif.layer[static_cast<std::size_t>(a)] = layer;
      motif.op[static_cast<std::size_t>(a)] = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(FbnetSpace::num_ops(layer))));
    }
    motif.weight = rng.normal(0.0, kMotifWeightSigma);
    motifs_.push_back(motif);
  }
}

double FbnetTrainingSimulator::arch_noise_unit(const FbnetArchitecture& arch,
                                               std::uint64_t stream) const {
  Rng rng(hash_combine(hash_combine(world_seed_, arch.hash()), stream));
  return rng.normal();
}

double FbnetTrainingSimulator::latent_quality(
    const FbnetArchitecture& arch) const {
  FbnetSpace::validate(arch);
  double q = 0.0;
  int non_skip = 0;
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    const FbnetOp op = arch.ops[static_cast<std::size_t>(i)];
    q += layer_weight(i) * op_gain(op, i);
    non_skip += op != FbnetOp::kSkip;
  }
  // Too many skipped layers starve the network of depth.
  if (non_skip < 14) q -= 0.22 * (14 - non_skip);

  // Sparse (layer, op) motif interactions.
  for (const auto& motif : motifs_) {
    bool active = true;
    for (int a = 0; a < motif.arity && active; ++a) {
      active = static_cast<int>(
                   arch.ops[static_cast<std::size_t>(
                       motif.layer[static_cast<std::size_t>(a)])]) ==
               motif.op[static_cast<std::size_t>(a)];
    }
    if (active) q += motif.weight;
  }

  q += kLatentWiggleSigma * arch_noise_unit(arch, 1);
  return q;
}

ArchTraits FbnetTrainingSimulator::traits(const FbnetArchitecture& arch) const {
  // Every public query (train / expected_accuracy / training_cost_hours)
  // funnels through here; reject out-of-range op codes before they index
  // the motif tables.
  for (const FbnetOp op : arch.ops) {
    ANB_CHECK(static_cast<int>(op) >= 0 &&
                  static_cast<int>(op) < kFbnetNumOps,
              "FbnetTrainingSimulator: architecture has out-of-range op");
  }
  const double q = latent_quality(arch);
  ArchTraits traits;
  traits.reference_accuracy =
      kAccFloor + kAccRange * (1.0 - std::exp(-q / kQualityScale));

  const ModelIR ir = build_fbnet_ir(arch, 224);
  traits.macs_224 = static_cast<double>(ir.total_macs());
  const double log_macs = std::log(traits.macs_224);
  traits.size_factor = std::clamp(
      (log_macs - kLogMacsMin) / (kLogMacsMax - kLogMacsMin), 0.0, 1.0);

  int non_skip = 0;
  double mean_expansion = 0.0;
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    const FbnetOp op = arch.ops[static_cast<std::size_t>(i)];
    if (op == FbnetOp::kSkip) continue;
    ++non_skip;
    mean_expansion += fbnet_op_expansion(op);
  }
  mean_expansion /= std::max(1, non_skip);
  traits.depth_norm = std::clamp((non_skip - 6) / 16.0, 0.0, 1.0);
  traits.expand_norm = std::clamp((mean_expansion - 1.0) / 5.0, 0.0, 1.0);
  traits.res_wiggle = arch_noise_unit(arch, 2);
  traits.epoch_wiggle = arch_noise_unit(arch, 3);
  return traits;
}

double FbnetTrainingSimulator::reference_accuracy(
    const FbnetArchitecture& arch) const {
  return expected_accuracy(arch, reference_scheme());
}

double FbnetTrainingSimulator::expected_accuracy(
    const FbnetArchitecture& arch, const TrainingScheme& scheme) const {
  return scheme_expected_accuracy(traits(arch), scheme);
}

double FbnetTrainingSimulator::training_cost_hours(
    const FbnetArchitecture& arch, const TrainingScheme& scheme) const {
  return scheme_training_cost_hours(traits(arch), scheme);
}

TrainResult FbnetTrainingSimulator::train(const FbnetArchitecture& arch,
                                          const TrainingScheme& scheme,
                                          std::uint64_t run_seed) const {
  TrainResult result;
  const double mean_acc = expected_accuracy(arch, scheme);
  const double sigma = scheme_seed_noise_sigma(scheme);
  Rng rng(hash_combine(
      hash_combine(hash_combine(world_seed_, arch.hash()), scheme.hash()),
      run_seed));
  result.top1 = std::clamp(mean_acc + sigma * rng.normal(), 0.001, 0.999);
  result.gpu_hours = training_cost_hours(arch, scheme);
  return result;
}

}  // namespace anb
