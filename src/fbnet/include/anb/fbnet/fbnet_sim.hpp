#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "anb/fbnet/fbnet_space.hpp"
#include "anb/trainsim/curve.hpp"
#include "anb/trainsim/simulator.hpp"

namespace anb {

/// Training simulator for the FBNet-style generalizability space.
///
/// Shares the scheme-response model (learning curves, resolution/batch
/// effects, cost) with the MnasNet simulator via anb/trainsim/curve.hpp;
/// only the latent quality model is space-specific: per-layer op gains with
/// position-dependent weights, a depth/capacity balance over skip choices,
/// sparse (layer, op) motif interactions, and an idiosyncratic component.
/// This is what "generalizability study" means operationally — the paper's
/// proxy-search and surrogate pipeline runs unmodified against this space.
class FbnetTrainingSimulator {
 public:
  explicit FbnetTrainingSimulator(std::uint64_t world_seed = 42);

  TrainResult train(const FbnetArchitecture& arch,
                    const TrainingScheme& scheme,
                    std::uint64_t run_seed = 0) const;

  double reference_accuracy(const FbnetArchitecture& arch) const;
  double expected_accuracy(const FbnetArchitecture& arch,
                           const TrainingScheme& scheme) const;
  double training_cost_hours(const FbnetArchitecture& arch,
                             const TrainingScheme& scheme) const;

  double latent_quality(const FbnetArchitecture& arch) const;
  ArchTraits traits(const FbnetArchitecture& arch) const;

  std::uint64_t world_seed() const { return world_seed_; }

 private:
  double arch_noise_unit(const FbnetArchitecture& arch,
                         std::uint64_t stream) const;

  struct Motif {
    std::array<int, 3> layer{};
    std::array<int, 3> op{};
    int arity = 2;
    double weight = 0.0;
  };

  std::uint64_t world_seed_;
  std::vector<Motif> motifs_;
};

}  // namespace anb
