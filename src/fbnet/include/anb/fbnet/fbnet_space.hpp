#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "anb/ir/model_ir.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/util/rng.hpp"

namespace anb {

/// Candidate operator of one FBNet-style searchable layer: a mobile
/// inverted bottleneck with the given expansion/kernel, or identity skip.
enum class FbnetOp {
  kE1K3,  ///< MBConv e=1 k=3
  kE1K5,
  kE3K3,
  kE3K5,
  kE6K3,
  kE6K5,
  kSkip,  ///< identity (only legal where shape is preserved)
};

inline constexpr int kFbnetNumOps = 7;
inline constexpr int kFbnetNumLayers = 22;

const char* fbnet_op_name(FbnetOp op);
int fbnet_op_expansion(FbnetOp op);  ///< throws for kSkip
int fbnet_op_kernel(FbnetOp op);     ///< throws for kSkip

/// A point in the FBNet-style space: one op per searchable layer.
struct FbnetArchitecture {
  std::array<FbnetOp, kFbnetNumLayers> ops{};

  bool operator==(const FbnetArchitecture&) const = default;
  std::string to_string() const;  ///< dash-separated op names
  static FbnetArchitecture from_string(const std::string& s);
  std::uint64_t hash() const;
};

/// The layer-wise generalizability search space (paper §3.1: "for
/// experiments with additional search spaces ... see our GitHub"; FBNet [17]
/// is the space HW-NAS-Bench also covers), registered as SpaceId::kFbnet.
///
/// Macro-skeleton (fixed): stem 16ch s2, then 22 searchable TBS layers over
/// stages with channels (16,24,32,64,112,184,352) and per-stage layer counts
/// (1,4,4,4,4,4,1); head 1504ch, 1000 classes. Identity skip is legal only
/// on layers whose input and output shapes match (never the first layer of
/// a strided or channel-changing stage) — the genotype encodes that by
/// giving skip-legal layers 7 options and the rest 6, so every in-range
/// decision vector is a legal architecture and the index bijection is
/// gap-free. Cardinality 6^7 · 7^15 ≈ 1.3×10^18 (fits std::uint64_t).
class FbnetSpace final : public SearchSpace {
 public:
  struct LayerSlot {
    int out_c = 16;
    int stride = 1;
    bool skip_allowed = false;
  };

  /// The process-wide instance. Resolvable through the registry only
  /// after register_builtin_spaces() (or an explicit register_space).
  static const FbnetSpace& instance();

  static const std::array<LayerSlot, kFbnetNumLayers>& slots();
  static constexpr int kStemChannels = 16;
  static constexpr int kHeadChannels = 1504;

  /// Option count of layer `i` (7 where skip is legal, else 6).
  static int num_ops(int layer);
  static double log10_cardinality();

  /// Typed conversions between the opaque genotype (decision i = op index
  /// of layer i) and the op view the simulator/IR consume. from_ops throws
  /// on illegal skips; to_ops throws on a non-FBNet genotype.
  static Arch from_ops(const FbnetArchitecture& arch);
  static FbnetArchitecture to_ops(const Arch& arch);

  /// Typed legacy helpers over FbnetArchitecture, kept alongside the
  /// interface overloads (the base Arch versions remain visible).
  using SearchSpace::features;
  using SearchSpace::is_valid;
  using SearchSpace::mutate;
  using SearchSpace::validate;
  static void validate(const FbnetArchitecture& arch);
  static bool is_valid(const FbnetArchitecture& arch);
  /// Change exactly one layer's op to a different legal one.
  static FbnetArchitecture mutate(const FbnetArchitecture& arch, Rng& rng);
  /// One-hot encoding, kFbnetNumLayers x kFbnetNumOps = 154 dims (illegal
  /// skip positions simply never activate their last column).
  static std::vector<double> features(const FbnetArchitecture& arch);

  SpaceId id() const override { return SpaceId::kFbnet; }
  int num_decisions() const override { return kFbnetNumLayers; }
  const std::vector<int>& decision_sizes() const override;
  int feature_dim() const override { return kFbnetNumLayers * kFbnetNumOps; }
  Arch sample(Rng& rng) const override;
  std::vector<double> features(const Arch& arch) const override;
  std::string arch_to_string(const Arch& arch) const override;
  Arch arch_from_string(const std::string& s) const override;
};

/// Lower to the same ModelIR the device models consume. Skip ops contribute
/// no layers. `ModelIR::arch` is left default (this is not a MnasNet arch).
ModelIR build_fbnet_ir(const FbnetArchitecture& arch, int resolution = 224);

/// Register every in-tree space (currently FbnetSpace; MnasSpace is always
/// resolvable) with the searchspace registry. Idempotent and thread-safe;
/// call before resolving SpaceId::kFbnet through anb::space(). Linking
/// anb_fbnet alone does not register — static initialization order and
/// linker dead-stripping make that unreliable, so registration is explicit.
void register_builtin_spaces();

}  // namespace anb
