#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "anb/hpo/configspace.hpp"

namespace anb {

/// Objective to *minimize*. (Negate for maximization problems such as the
/// paper's rank-correlation objective.)
using HpoObjective = std::function<double(const Configuration&)>;

/// One evaluated configuration.
struct HpoTrial {
  Configuration config;
  double value = 0.0;
};

/// Outcome of an HPO run.
struct HpoResult {
  Configuration best;
  double best_value = 0.0;
  std::vector<HpoTrial> history;
};

/// Exhaustive grid search — the optimizer the paper uses for its
/// training-proxy search (§3.2: trivially parallel, low-dimensional space).
/// `filter` (optional) skips invalid grid points (e.g. e_s > e_f);
/// `early_stop` (optional) aborts once a good-enough value is found.
class GridSearch {
 public:
  struct Options {
    int points_per_range = 5;
    std::function<bool(const Configuration&)> filter;
    std::function<bool(double best_so_far)> early_stop;
  };

  static HpoResult run(const ConfigSpace& space, const HpoObjective& objective,
                       const Options& options);
  static HpoResult run(const ConfigSpace& space,
                       const HpoObjective& objective) {
    return run(space, objective, Options{});
  }
};

/// Pure random search baseline.
class RandomSearchHpo {
 public:
  static HpoResult run(const ConfigSpace& space, const HpoObjective& objective,
                       int n_trials, Rng& rng);
};

/// SMAC-style Bayesian optimization: random-forest surrogate over the
/// unit-cube encoding + expected-improvement acquisition, with interleaved
/// random configurations (the paper tunes its benchmark surrogates with
/// SMAC3, §3.3.3).
///
/// Configurations are always sampled and recorded on the calling thread in
/// a fixed order, and EI candidates are scored concurrently against the
/// (const) forest, so results are identical for any thread count. With
/// `parallel_objective` the initial design's objective calls also run
/// concurrently — identical results require the objective to be pure.
class SmacLite {
 public:
  struct Options {
    int n_trials = 50;
    int n_init = 8;            ///< initial random design
    int n_candidates = 500;    ///< EI candidate pool per iteration
    int random_interleave = 4; ///< every k-th trial is random
    std::function<bool(const Configuration&)> filter;
    /// Evaluate the initial design's objective calls concurrently. Leave
    /// false unless the objective is thread-safe and does not touch shared
    /// mutable state (the filter always runs on the calling thread).
    bool parallel_objective = false;
  };

  static HpoResult run(const ConfigSpace& space, const HpoObjective& objective,
                       const Options& options, Rng& rng);
};

}  // namespace anb
