#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "anb/util/rng.hpp"

namespace anb {

/// A concrete assignment of values to every hyperparameter of a ConfigSpace.
/// Values are stored as doubles; integer/categorical parameters hold exact
/// integral values.
class Configuration {
 public:
  Configuration() = default;

  void set(const std::string& name, double value) { values_[name] = value; }
  double get(const std::string& name) const;
  int get_int(const std::string& name) const;
  bool has(const std::string& name) const { return values_.count(name) > 0; }
  std::size_t size() const { return values_.size(); }
  const std::map<std::string, double>& values() const { return values_; }

  std::string to_string() const;
  bool operator==(const Configuration&) const = default;

 private:
  std::map<std::string, double> values_;
};

/// A mixed hyperparameter space in the style of the ConfigSpace library
/// (used by the paper for surrogate hyperparameter representation, §3.3.3).
///
/// Supports categorical (explicit numeric choices), integer ranges, and
/// float ranges with optional log-scaling. Provides uniform sampling,
/// exhaustive grid enumeration, unit-cube encoding (the input representation
/// for SMAC's random-forest model), and neighborhood moves for local search.
class ConfigSpace {
 public:
  void add_categorical(const std::string& name, std::vector<double> choices);
  void add_int(const std::string& name, int lo, int hi);
  void add_float(const std::string& name, double lo, double hi,
                 bool log_scale = false);

  std::size_t num_params() const { return params_.size(); }
  const std::vector<std::string>& param_names() const { return names_; }

  /// Uniform random configuration (log-uniform for log-scale floats).
  Configuration sample(Rng& rng) const;

  /// Cartesian-product grid. Float/int ranges contribute
  /// `points_per_range` evenly spaced values; categoricals all choices.
  /// Throws if the grid would exceed `max_size`.
  std::vector<Configuration> grid(int points_per_range = 5,
                                  std::size_t max_size = 2'000'000) const;

  /// Map a configuration into [0,1]^d in a fixed parameter order
  /// (categoricals by choice index, log floats by log position).
  std::vector<double> to_unit_vector(const Configuration& config) const;

  /// Mutate one randomly chosen parameter to a different value
  /// (neighboring grid point for ranges, different choice for categoricals).
  Configuration neighbor(const Configuration& config, Rng& rng) const;

  /// Throws anb::Error unless every parameter is present and within range.
  void validate(const Configuration& config) const;

 private:
  enum class Kind { kCategorical, kInt, kFloat, kLogFloat };
  struct Param {
    std::string name;
    Kind kind = Kind::kCategorical;
    std::vector<double> choices;  // categorical
    double lo = 0.0, hi = 1.0;    // ranges
  };

  const Param& find(const std::string& name) const;
  void add_param(Param param);

  std::vector<Param> params_;
  std::vector<std::string> names_;
};

}  // namespace anb
