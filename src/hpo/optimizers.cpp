#include "anb/hpo/optimizers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "anb/surrogate/random_forest.hpp"
#include "anb/util/error.hpp"

namespace anb {

namespace {

void record(HpoResult& result, Configuration config, double value) {
  if (result.history.empty() || value < result.best_value) {
    result.best = config;
    result.best_value = value;
  }
  result.history.push_back({std::move(config), value});
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.141592653589793);
}

/// Expected improvement for minimization.
double expected_improvement(double mean, double std, double f_best) {
  if (std < 1e-12) return std::max(0.0, f_best - mean);
  const double z = (f_best - mean) / std;
  return (f_best - mean) * normal_cdf(z) + std * normal_pdf(z);
}

}  // namespace

HpoResult GridSearch::run(const ConfigSpace& space,
                          const HpoObjective& objective,
                          const Options& options) {
  ANB_CHECK(static_cast<bool>(objective), "GridSearch: missing objective");
  HpoResult result;
  result.best_value = std::numeric_limits<double>::infinity();
  for (auto& config : space.grid(options.points_per_range)) {
    if (options.filter && !options.filter(config)) continue;
    const double value = objective(config);
    record(result, std::move(config), value);
    if (options.early_stop && options.early_stop(result.best_value)) break;
  }
  ANB_CHECK(!result.history.empty(),
            "GridSearch: filter rejected every grid point");
  return result;
}

HpoResult RandomSearchHpo::run(const ConfigSpace& space,
                               const HpoObjective& objective, int n_trials,
                               Rng& rng) {
  ANB_CHECK(static_cast<bool>(objective), "RandomSearchHpo: missing objective");
  ANB_CHECK(n_trials >= 1, "RandomSearchHpo: n_trials must be >= 1");
  HpoResult result;
  result.best_value = std::numeric_limits<double>::infinity();
  for (int t = 0; t < n_trials; ++t) {
    Configuration config = space.sample(rng);
    const double value = objective(config);
    record(result, std::move(config), value);
  }
  return result;
}

HpoResult SmacLite::run(const ConfigSpace& space,
                        const HpoObjective& objective, const Options& options,
                        Rng& rng) {
  ANB_CHECK(static_cast<bool>(objective), "SmacLite: missing objective");
  ANB_CHECK(options.n_trials >= 1, "SmacLite: n_trials must be >= 1");
  ANB_CHECK(options.n_init >= 2, "SmacLite: n_init must be >= 2");

  HpoResult result;
  result.best_value = std::numeric_limits<double>::infinity();

  auto sample_valid = [&]() {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      Configuration c = space.sample(rng);
      if (!options.filter || options.filter(c)) return c;
    }
    throw Error("SmacLite: filter rejected 1000 consecutive samples");
  };

  // Initial random design.
  const int n_init = std::min(options.n_init, options.n_trials);
  for (int t = 0; t < n_init; ++t) {
    Configuration config = sample_valid();
    const double value = objective(config);
    record(result, std::move(config), value);
  }

  RandomForestParams rf_params;
  rf_params.n_trees = 60;
  rf_params.max_depth = 12;
  rf_params.min_samples_leaf = 1.0;
  rf_params.max_features_frac = 0.8;

  for (int t = n_init; t < options.n_trials; ++t) {
    Configuration next;
    const bool interleave_random =
        options.random_interleave > 0 && t % options.random_interleave == 0;
    if (interleave_random) {
      next = sample_valid();
    } else {
      // Fit the RF model on all observations so far.
      Dataset obs(space.num_params());
      for (const auto& trial : result.history)
        obs.add(space.to_unit_vector(trial.config), trial.value);
      RandomForest model(rf_params);
      Rng fit_rng = rng.fork();
      model.fit(obs, fit_rng);

      // Candidate pool: random configs plus neighbors of the incumbent.
      double best_ei = -1.0;
      for (int c = 0; c < options.n_candidates; ++c) {
        Configuration cand = c % 4 == 0
                                 ? space.neighbor(result.best, rng)
                                 : space.sample(rng);
        if (options.filter && !options.filter(cand)) continue;
        const auto [mean, std] =
            model.predict_mean_std(space.to_unit_vector(cand));
        const double ei = expected_improvement(mean, std, result.best_value);
        if (ei > best_ei) {
          best_ei = ei;
          next = std::move(cand);
        }
      }
      if (next.size() == 0) next = sample_valid();
    }
    const double value = objective(next);
    record(result, std::move(next), value);
  }
  return result;
}

}  // namespace anb
