#include "anb/hpo/optimizers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

namespace {

void record(HpoResult& result, Configuration config, double value) {
  if (result.history.empty() || value < result.best_value) {
    result.best = config;
    result.best_value = value;
  }
  result.history.push_back({std::move(config), value});
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.141592653589793);
}

/// Expected improvement for minimization.
double expected_improvement(double mean, double std, double f_best) {
  if (std < 1e-12) return std::max(0.0, f_best - mean);
  const double z = (f_best - mean) / std;
  return (f_best - mean) * normal_cdf(z) + std * normal_pdf(z);
}

/// Candidates per work item when scoring the EI pool; each item walks the
/// whole forest, so chunks amortize dispatch without starving workers.
constexpr std::size_t kEiChunk = 64;

}  // namespace

HpoResult GridSearch::run(const ConfigSpace& space,
                          const HpoObjective& objective,
                          const Options& options) {
  ANB_CHECK(static_cast<bool>(objective), "GridSearch: missing objective");
  HpoResult result;
  result.best_value = std::numeric_limits<double>::infinity();
  auto grid = space.grid(options.points_per_range);
  result.history.reserve(grid.size());
  for (auto& config : grid) {
    if (options.filter && !options.filter(config)) continue;
    const double value = objective(config);
    record(result, std::move(config), value);
    if (options.early_stop && options.early_stop(result.best_value)) break;
  }
  ANB_CHECK(!result.history.empty(),
            "GridSearch: filter rejected every grid point");
  return result;
}

HpoResult RandomSearchHpo::run(const ConfigSpace& space,
                               const HpoObjective& objective, int n_trials,
                               Rng& rng) {
  ANB_CHECK(static_cast<bool>(objective), "RandomSearchHpo: missing objective");
  ANB_CHECK(n_trials >= 1, "RandomSearchHpo: n_trials must be >= 1");
  HpoResult result;
  result.best_value = std::numeric_limits<double>::infinity();
  result.history.reserve(static_cast<std::size_t>(n_trials));
  for (int t = 0; t < n_trials; ++t) {
    Configuration config = space.sample(rng);
    const double value = objective(config);
    record(result, std::move(config), value);
  }
  return result;
}

HpoResult SmacLite::run(const ConfigSpace& space,
                        const HpoObjective& objective, const Options& options,
                        Rng& rng) {
  ANB_CHECK(static_cast<bool>(objective), "SmacLite: missing objective");
  ANB_CHECK(options.n_trials >= 1, "SmacLite: n_trials must be >= 1");
  ANB_CHECK(options.n_init >= 2, "SmacLite: n_init must be >= 2");
  ANB_SPAN("anb.hpo.smac");
  obs::counter("anb.hpo.smac.runs").add(1);
  obs::counter("anb.hpo.smac.trials")
      .add(static_cast<std::uint64_t>(options.n_trials));

  HpoResult result;
  result.best_value = std::numeric_limits<double>::infinity();
  result.history.reserve(static_cast<std::size_t>(options.n_trials));

  auto sample_valid = [&]() {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      Configuration c = space.sample(rng);
      if (!options.filter || options.filter(c)) return c;
    }
    throw Error("SmacLite: filter rejected 1000 consecutive samples");
  };

  // Initial random design: configurations sampled serially (they consume
  // `rng`), objective calls optionally fanned out, results recorded in
  // sample order — so a pure objective yields the same history either way.
  const int n_init = std::min(options.n_init, options.n_trials);
  {
    std::vector<Configuration> init;
    init.reserve(static_cast<std::size_t>(n_init));
    for (int t = 0; t < n_init; ++t) init.push_back(sample_valid());
    std::vector<double> values(init.size());
    auto eval = [&](std::size_t i) { values[i] = objective(init[i]); };
    if (options.parallel_objective) {
      parallel_for(init.size(), eval);
    } else {
      for (std::size_t i = 0; i < init.size(); ++i) eval(i);
    }
    for (std::size_t i = 0; i < init.size(); ++i)
      record(result, std::move(init[i]), values[i]);
  }

  RandomForestParams rf_params;
  rf_params.n_trees = 60;
  rf_params.max_depth = 12;
  rf_params.min_samples_leaf = 1.0;
  rf_params.max_features_frac = 0.8;

  // Observations grow with the history; appending the new trials each
  // refit matches a from-scratch rebuild row-for-row without the
  // quadratic re-encoding cost.
  Dataset obs(space.num_params());
  std::size_t obs_rows = 0;
  auto sync_obs = [&]() {
    for (; obs_rows < result.history.size(); ++obs_rows) {
      const HpoTrial& trial = result.history[obs_rows];
      obs.add(space.to_unit_vector(trial.config), trial.value);
    }
  };

  for (int t = n_init; t < options.n_trials; ++t) {
    Configuration next;
    const bool interleave_random =
        options.random_interleave > 0 && t % options.random_interleave == 0;
    if (interleave_random) {
      next = sample_valid();
    } else {
      // Fit the RF model on all observations so far.
      sync_obs();
      RandomForest model(rf_params);
      Rng fit_rng = rng.fork();
      model.fit(obs, fit_rng);

      // Candidate pool: random configs plus neighbors of the incumbent.
      // Generation and filtering stay on this thread (both consume `rng`
      // or call user code); scoring against the now-const forest fans out,
      // and the argmax scans in generation order with a strict `>`, so the
      // selected candidate matches a serial scan exactly.
      std::vector<Configuration> cands;
      cands.reserve(static_cast<std::size_t>(options.n_candidates));
      for (int c = 0; c < options.n_candidates; ++c) {
        Configuration cand = c % 4 == 0
                                 ? space.neighbor(result.best, rng)
                                 : space.sample(rng);
        if (options.filter && !options.filter(cand)) continue;
        cands.push_back(std::move(cand));
      }
      std::vector<double> ei(cands.size());
      parallel_for_chunks(
          cands.size(), kEiChunk, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              const auto [mean, std] =
                  model.predict_mean_std(space.to_unit_vector(cands[i]));
              ei[i] = expected_improvement(mean, std, result.best_value);
            }
          });
      double best_ei = -1.0;
      std::size_t best_idx = cands.size();
      for (std::size_t i = 0; i < cands.size(); ++i) {
        if (ei[i] > best_ei) {
          best_ei = ei[i];
          best_idx = i;
        }
      }
      if (best_idx < cands.size()) next = std::move(cands[best_idx]);
      if (next.size() == 0) next = sample_valid();
    }
    const double value = objective(next);
    record(result, std::move(next), value);
  }
  return result;
}

}  // namespace anb
