#include "anb/hpo/configspace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "anb/util/error.hpp"

namespace anb {

double Configuration::get(const std::string& name) const {
  auto it = values_.find(name);
  ANB_CHECK(it != values_.end(),
            "Configuration: missing parameter '" + name + "'");
  return it->second;
}

int Configuration::get_int(const std::string& name) const {
  const double v = get(name);
  const double r = std::round(v);
  ANB_CHECK(std::abs(v - r) < 1e-9,
            "Configuration: parameter '" + name + "' is not integral");
  return static_cast<int>(r);
}

std::string Configuration::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : values_) {
    if (!first) os << ", ";
    first = false;
    os << k << "=" << v;
  }
  os << "}";
  return os.str();
}

void ConfigSpace::add_param(Param param) {
  for (const auto& existing : params_) {
    ANB_CHECK(existing.name != param.name,
              "ConfigSpace: duplicate parameter '" + param.name + "'");
  }
  names_.push_back(param.name);
  params_.push_back(std::move(param));
}

void ConfigSpace::add_categorical(const std::string& name,
                                  std::vector<double> choices) {
  ANB_CHECK(!choices.empty(), "ConfigSpace: categorical needs >= 1 choice");
  Param p;
  p.name = name;
  p.kind = Kind::kCategorical;
  p.choices = std::move(choices);
  add_param(std::move(p));
}

void ConfigSpace::add_int(const std::string& name, int lo, int hi) {
  ANB_CHECK(lo <= hi, "ConfigSpace: int range lo must be <= hi");
  Param p;
  p.name = name;
  p.kind = Kind::kInt;
  p.lo = lo;
  p.hi = hi;
  add_param(std::move(p));
}

void ConfigSpace::add_float(const std::string& name, double lo, double hi,
                            bool log_scale) {
  ANB_CHECK(lo < hi, "ConfigSpace: float range lo must be < hi");
  if (log_scale) ANB_CHECK(lo > 0.0, "ConfigSpace: log range needs lo > 0");
  Param p;
  p.name = name;
  p.kind = log_scale ? Kind::kLogFloat : Kind::kFloat;
  p.lo = lo;
  p.hi = hi;
  add_param(std::move(p));
}

const ConfigSpace::Param& ConfigSpace::find(const std::string& name) const {
  for (const auto& p : params_) {
    if (p.name == name) return p;
  }
  throw Error("ConfigSpace: unknown parameter '" + name + "'");
}

Configuration ConfigSpace::sample(Rng& rng) const {
  ANB_CHECK(!params_.empty(), "ConfigSpace::sample: empty space");
  Configuration c;
  for (const auto& p : params_) {
    switch (p.kind) {
      case Kind::kCategorical:
        c.set(p.name, rng.pick(p.choices));
        break;
      case Kind::kInt:
        c.set(p.name, static_cast<double>(rng.uniform_int(
                          static_cast<std::int64_t>(p.lo),
                          static_cast<std::int64_t>(p.hi))));
        break;
      case Kind::kFloat:
        c.set(p.name, rng.uniform(p.lo, p.hi));
        break;
      case Kind::kLogFloat:
        // Clamp: exp(log(hi)) can overshoot hi by one ulp.
        c.set(p.name,
              std::clamp(std::exp(rng.uniform(std::log(p.lo), std::log(p.hi))),
                         p.lo, p.hi));
        break;
    }
  }
  return c;
}

std::vector<Configuration> ConfigSpace::grid(int points_per_range,
                                             std::size_t max_size) const {
  ANB_CHECK(points_per_range >= 2, "ConfigSpace::grid: need >= 2 points");
  ANB_CHECK(!params_.empty(), "ConfigSpace::grid: empty space");

  std::vector<std::vector<double>> axes;
  std::size_t total = 1;
  for (const auto& p : params_) {
    std::vector<double> axis;
    switch (p.kind) {
      case Kind::kCategorical:
        axis = p.choices;
        break;
      case Kind::kInt: {
        const auto span = static_cast<int>(p.hi - p.lo);
        const int pts = std::min(points_per_range, span + 1);
        for (int k = 0; k < pts; ++k) {
          axis.push_back(std::round(
              p.lo + (pts > 1 ? span * static_cast<double>(k) / (pts - 1)
                              : 0.0)));
        }
        axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
        break;
      }
      case Kind::kFloat:
        for (int k = 0; k < points_per_range; ++k)
          axis.push_back(p.lo + (p.hi - p.lo) * k / (points_per_range - 1));
        break;
      case Kind::kLogFloat:
        for (int k = 0; k < points_per_range; ++k)
          axis.push_back(std::exp(std::log(p.lo) +
                                  (std::log(p.hi) - std::log(p.lo)) * k /
                                      (points_per_range - 1)));
        break;
    }
    total *= axis.size();
    ANB_CHECK(total <= max_size, "ConfigSpace::grid: grid too large");
    axes.push_back(std::move(axis));
  }

  std::vector<Configuration> out;
  out.reserve(total);
  std::vector<std::size_t> idx(params_.size(), 0);
  while (true) {
    Configuration c;
    for (std::size_t d = 0; d < params_.size(); ++d)
      c.set(params_[d].name, axes[d][idx[d]]);
    out.push_back(std::move(c));
    // Odometer increment.
    std::size_t d = 0;
    while (d < params_.size()) {
      if (++idx[d] < axes[d].size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == params_.size()) break;
  }
  return out;
}

std::vector<double> ConfigSpace::to_unit_vector(
    const Configuration& config) const {
  validate(config);
  std::vector<double> v;
  v.reserve(params_.size());
  for (const auto& p : params_) {
    const double x = config.get(p.name);
    switch (p.kind) {
      case Kind::kCategorical: {
        const auto it = std::find(p.choices.begin(), p.choices.end(), x);
        const auto pos = static_cast<double>(it - p.choices.begin());
        v.push_back(p.choices.size() > 1
                        ? pos / static_cast<double>(p.choices.size() - 1)
                        : 0.0);
        break;
      }
      case Kind::kInt:
      case Kind::kFloat:
        v.push_back(p.hi > p.lo ? (x - p.lo) / (p.hi - p.lo) : 0.0);
        break;
      case Kind::kLogFloat:
        v.push_back((std::log(x) - std::log(p.lo)) /
                    (std::log(p.hi) - std::log(p.lo)));
        break;
    }
  }
  return v;
}

Configuration ConfigSpace::neighbor(const Configuration& config,
                                    Rng& rng) const {
  validate(config);
  Configuration out = config;
  const auto& p = params_[rng.uniform_index(params_.size())];
  const double cur = config.get(p.name);
  switch (p.kind) {
    case Kind::kCategorical: {
      if (p.choices.size() < 2) break;
      double next = cur;
      while (next == cur) next = rng.pick(p.choices);
      out.set(p.name, next);
      break;
    }
    case Kind::kInt: {
      if (p.hi <= p.lo) break;
      const int step = rng.bernoulli(0.5) ? 1 : -1;
      double next = std::clamp(cur + step, p.lo, p.hi);
      if (next == cur) next = std::clamp(cur - step, p.lo, p.hi);
      out.set(p.name, next);
      break;
    }
    case Kind::kFloat: {
      const double sigma = 0.2 * (p.hi - p.lo);
      out.set(p.name, std::clamp(cur + sigma * rng.normal(), p.lo, p.hi));
      break;
    }
    case Kind::kLogFloat: {
      const double log_sigma = 0.2 * (std::log(p.hi) - std::log(p.lo));
      const double next = std::exp(std::clamp(
          std::log(cur) + log_sigma * rng.normal(), std::log(p.lo),
          std::log(p.hi)));
      out.set(p.name, std::clamp(next, p.lo, p.hi));
      break;
    }
  }
  return out;
}

void ConfigSpace::validate(const Configuration& config) const {
  ANB_CHECK(config.size() == params_.size(),
            "ConfigSpace::validate: wrong parameter count");
  for (const auto& p : params_) {
    const double x = config.get(p.name);
    switch (p.kind) {
      case Kind::kCategorical:
        ANB_CHECK(std::find(p.choices.begin(), p.choices.end(), x) !=
                      p.choices.end(),
                  "ConfigSpace: '" + p.name + "' has invalid choice");
        break;
      case Kind::kInt:
        ANB_CHECK(x == std::round(x) && x >= p.lo && x <= p.hi,
                  "ConfigSpace: '" + p.name + "' out of int range");
        break;
      case Kind::kFloat:
      case Kind::kLogFloat:
        ANB_CHECK(x >= p.lo && x <= p.hi,
                  "ConfigSpace: '" + p.name + "' out of range");
        break;
    }
  }
}

}  // namespace anb
