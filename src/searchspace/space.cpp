#include "anb/searchspace/space.hpp"

#include <algorithm>
#include <map>

#include "anb/util/error.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/thread_annotations.hpp"

namespace anb {

namespace {

template <typename T>
int option_index(const std::vector<T>& options, T value, const char* what) {
  auto it = std::find(options.begin(), options.end(), value);
  ANB_CHECK(it != options.end(),
            std::string("MnasSpace: invalid ") + what + " value");
  return static_cast<int>(it - options.begin());
}

/// Registry state: spaces have static storage duration, so bare pointers
/// are safe. Guarded for concurrent first-use registration (servers
/// resolve spaces from reader threads).
struct Registry {
  Mutex mu;
  std::map<SpaceId, const SearchSpace*> spaces ANB_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry r;
  return r;
}

/// MnasNet is the format's original, implicit space: make it resolvable
/// without any registration call (lazily, under the registry lock).
void ensure_mnas_registered(Registry& r) ANB_REQUIRES(r.mu) {
  const SpaceId id = SpaceId::kMnasNet;
  if (r.spaces.find(id) == r.spaces.end())
    r.spaces.emplace(id, &MnasSpace::instance());
}

}  // namespace

// --- SpaceId ---------------------------------------------------------------

const char* space_name(SpaceId id) {
  switch (id) {
    case SpaceId::kMnasNet:
      return "mnasnet";
    case SpaceId::kFbnet:
      return "fbnet";
  }
  throw Error("space_name: unknown SpaceId " +
              std::to_string(static_cast<unsigned>(id)));
}

SpaceId space_id_from_name(const std::string& name) {
  if (name == "mnasnet") return SpaceId::kMnasNet;
  if (name == "fbnet") return SpaceId::kFbnet;
  throw Error("space_id_from_name: unknown space name '" + name + "'");
}

// --- Arch ------------------------------------------------------------------

Arch::Arch(const Architecture& mnas) { *this = MnasSpace::from_blocks(mnas); }

Architecture Arch::mnas() const { return MnasSpace::to_blocks(*this); }

std::uint64_t Arch::hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;  // FNV-1a 64 prime
  };
  const auto id = static_cast<std::uint16_t>(space);
  mix(static_cast<std::uint8_t>(id & 0xFF));
  mix(static_cast<std::uint8_t>(id >> 8));
  mix(n);
  for (int i = 0; i < n; ++i) mix(static_cast<std::uint8_t>(d[static_cast<std::size_t>(i)]));
  return h;
}

std::string Arch::to_string() const {
  return anb::space(space).arch_to_string(*this);
}

// --- SearchSpace base ------------------------------------------------------

Arch SearchSpace::make_arch() const {
  Arch arch;
  arch.space = id();
  arch.n = static_cast<std::uint8_t>(num_decisions());
  return arch;
}

std::uint64_t SearchSpace::cardinality() const {
  std::uint64_t card = 1;
  for (int s : decision_sizes()) card *= static_cast<std::uint64_t>(s);
  return card;
}

void SearchSpace::validate(const Arch& arch) const {
  ANB_CHECK(arch.space == id(),
            std::string(name()) + ": genotype belongs to a different space");
  ANB_CHECK(arch.n == num_decisions(),
            std::string(name()) + ": genotype has wrong decision count");
  const auto& sizes = decision_sizes();
  for (int i = 0; i < arch.n; ++i) {
    const int v = arch.d[static_cast<std::size_t>(i)];
    ANB_CHECK(v >= 0 && v < sizes[static_cast<std::size_t>(i)],
              std::string(name()) + ": option index out of range");
  }
  for (int i = arch.n; i < kMaxDecisions; ++i) {
    ANB_CHECK(arch.d[static_cast<std::size_t>(i)] == 0,
              std::string(name()) + ": nonzero padding past n");
  }
}

bool SearchSpace::is_valid(const Arch& arch) const {
  try {
    validate(arch);
    return true;
  } catch (const Error&) {
    return false;
  }
}

Arch SearchSpace::mutate(const Arch& arch, Rng& rng) const {
  validate(arch);
  const auto& sizes = decision_sizes();
  // Pick a decision whose domain has >1 option (all in-tree spaces
  // guarantee this) and move it to a different value.
  const auto d = static_cast<std::size_t>(
      rng.uniform_index(static_cast<std::uint64_t>(num_decisions())));
  const int size = sizes[d];
  const int offset = 1 + static_cast<int>(rng.uniform_index(
                             static_cast<std::uint64_t>(size - 1)));
  Arch out = arch;
  out.d[d] = static_cast<std::int8_t>((out.d[d] + offset) % size);
  ANB_ASSERT(!(out == arch), "mutate produced an identical architecture");
  return out;
}

std::vector<Arch> SearchSpace::neighbors(const Arch& arch) const {
  validate(arch);
  const auto& sizes = decision_sizes();
  std::vector<Arch> out;
  for (int d = 0; d < num_decisions(); ++d) {
    for (int v = 0; v < sizes[static_cast<std::size_t>(d)]; ++v) {
      if (v == arch.d[static_cast<std::size_t>(d)]) continue;
      Arch next = arch;
      next.d[static_cast<std::size_t>(d)] = static_cast<std::int8_t>(v);
      out.push_back(next);
    }
  }
  return out;
}

std::uint64_t SearchSpace::to_index(const Arch& arch) const {
  validate(arch);
  const auto& sizes = decision_sizes();
  std::uint64_t index = 0;
  for (int d = 0; d < num_decisions(); ++d) {
    index = index * static_cast<std::uint64_t>(sizes[static_cast<std::size_t>(d)]) +
            static_cast<std::uint64_t>(arch.d[static_cast<std::size_t>(d)]);
  }
  return index;
}

std::vector<std::pair<int, int>> SearchSpace::crossover_groups() const {
  std::vector<std::pair<int, int>> groups;
  groups.reserve(static_cast<std::size_t>(num_decisions()));
  for (int d = 0; d < num_decisions(); ++d) groups.emplace_back(d, d + 1);
  return groups;
}

Arch SearchSpace::from_decisions(const std::vector<int>& decisions) const {
  ANB_CHECK(decisions.size() == static_cast<std::size_t>(num_decisions()),
            std::string(name()) + ": from_decisions wrong length");
  Arch arch = make_arch();
  for (std::size_t i = 0; i < decisions.size(); ++i)
    arch.d[i] = static_cast<std::int8_t>(decisions[i]);
  validate(arch);
  return arch;
}

Arch SearchSpace::from_index(std::uint64_t index) const {
  ANB_CHECK(index < cardinality(),
            std::string(name()) + ": from_index out of range");
  const auto& sizes = decision_sizes();
  Arch arch = make_arch();
  for (int d = num_decisions() - 1; d >= 0; --d) {
    const auto size = static_cast<std::uint64_t>(sizes[static_cast<std::size_t>(d)]);
    arch.d[static_cast<std::size_t>(d)] = static_cast<std::int8_t>(index % size);
    index /= size;
  }
  return arch;
}

// --- MnasSpace -------------------------------------------------------------

const MnasSpace& MnasSpace::instance() {
  static const MnasSpace space;
  return space;
}

const std::vector<int>& MnasSpace::expansion_options() {
  static const std::vector<int> opts{1, 4, 6};
  return opts;
}

const std::vector<int>& MnasSpace::kernel_options() {
  static const std::vector<int> opts{3, 5};
  return opts;
}

const std::vector<int>& MnasSpace::layer_options() {
  static const std::vector<int> opts{1, 2, 3};
  return opts;
}

const std::vector<int>& MnasSpace::decision_sizes() const {
  static const std::vector<int> sizes = [] {
    std::vector<int> out;
    out.reserve(kNumDecisions);
    for (int b = 0; b < kNumBlocks; ++b) {
      out.push_back(static_cast<int>(expansion_options().size()));
      out.push_back(static_cast<int>(kernel_options().size()));
      out.push_back(static_cast<int>(layer_options().size()));
      out.push_back(2);  // se
    }
    return out;
  }();
  return sizes;
}

std::vector<std::pair<int, int>> MnasSpace::crossover_groups() const {
  std::vector<std::pair<int, int>> groups;
  groups.reserve(kNumBlocks);
  for (int b = 0; b < kNumBlocks; ++b) groups.emplace_back(4 * b, 4 * b + 4);
  return groups;
}

int MnasSpace::feature_dim() const {
  // One-hot per block: expansion 3 + kernel 2 + layers 3 + se 1 (binary).
  return kNumBlocks * (3 + 2 + 3 + 1);
}

Arch MnasSpace::from_blocks(const Architecture& blocks) {
  Arch arch;
  arch.space = SpaceId::kMnasNet;
  arch.n = kNumDecisions;
  std::size_t i = 0;
  for (const auto& blk : blocks.blocks) {
    arch.d[i++] = static_cast<std::int8_t>(
        option_index(expansion_options(), blk.expansion, "expansion"));
    arch.d[i++] = static_cast<std::int8_t>(
        option_index(kernel_options(), blk.kernel, "kernel"));
    arch.d[i++] = static_cast<std::int8_t>(
        option_index(layer_options(), blk.layers, "layers"));
    arch.d[i++] = blk.se ? 1 : 0;
  }
  return arch;
}

Architecture MnasSpace::to_blocks(const Arch& arch) {
  instance().validate(arch);
  Architecture out;
  std::size_t i = 0;
  for (auto& blk : out.blocks) {
    blk.expansion =
        expansion_options()[static_cast<std::size_t>(arch.d[i++])];
    blk.kernel = kernel_options()[static_cast<std::size_t>(arch.d[i++])];
    blk.layers = layer_options()[static_cast<std::size_t>(arch.d[i++])];
    blk.se = arch.d[i++] == 1;
  }
  return out;
}

Arch MnasSpace::sample(Rng& rng) const {
  // Draw order matches the pre-interface static sampler exactly (an
  // option pick per decision, a Bernoulli for se) so pinned-seed
  // trajectories and golden checksums survive the redesign.
  Arch arch = make_arch();
  std::size_t i = 0;
  for (int b = 0; b < kNumBlocks; ++b) {
    arch.d[i++] = static_cast<std::int8_t>(
        rng.uniform_index(expansion_options().size()));
    arch.d[i++] = static_cast<std::int8_t>(
        rng.uniform_index(kernel_options().size()));
    arch.d[i++] = static_cast<std::int8_t>(
        rng.uniform_index(layer_options().size()));
    arch.d[i++] = rng.bernoulli(0.5) ? 1 : 0;
  }
  return arch;
}

std::vector<double> MnasSpace::features(const Arch& arch) const {
  const Architecture blocks = to_blocks(arch);
  std::vector<double> f;
  f.reserve(static_cast<std::size_t>(feature_dim()));
  for (const auto& blk : blocks.blocks) {
    for (int opt : expansion_options()) f.push_back(blk.expansion == opt);
    for (int opt : kernel_options()) f.push_back(blk.kernel == opt);
    for (int opt : layer_options()) f.push_back(blk.layers == opt);
    f.push_back(blk.se ? 1.0 : 0.0);
  }
  ANB_ASSERT(f.size() == static_cast<std::size_t>(feature_dim()),
             "feature vector size mismatch");
  return f;
}

std::string MnasSpace::arch_to_string(const Arch& arch) const {
  return to_blocks(arch).to_string();
}

Arch MnasSpace::arch_from_string(const std::string& s) const {
  return from_blocks(Architecture::from_string(s));
}

// --- Registry --------------------------------------------------------------

void register_space(const SearchSpace& sp) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  ensure_mnas_registered(r);
  const auto [it, inserted] = r.spaces.emplace(sp.id(), &sp);
  ANB_CHECK(inserted || it->second == &sp,
            std::string("register_space: SpaceId of '") + sp.name() +
                "' already registered to a different instance");
}

const SearchSpace& space(SpaceId id) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  ensure_mnas_registered(r);
  const auto it = r.spaces.find(id);
  ANB_CHECK(it != r.spaces.end(),
            "space: SpaceId " + std::to_string(static_cast<unsigned>(id)) +
                " is not registered (call register_builtin_spaces())");
  return *it->second;
}

const SearchSpace& space_from_name(const std::string& name) {
  return space(space_id_from_name(name));
}

bool space_registered(SpaceId id) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  ensure_mnas_registered(r);
  return r.spaces.find(id) != r.spaces.end();
}

std::vector<SpaceId> registered_spaces() {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  ensure_mnas_registered(r);
  std::vector<SpaceId> out;
  out.reserve(r.spaces.size());
  for (const auto& [id, sp] : r.spaces) out.push_back(id);
  return out;
}

}  // namespace anb
