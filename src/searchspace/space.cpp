#include "anb/searchspace/space.hpp"

#include <algorithm>

#include "anb/util/error.hpp"

namespace anb {

namespace {

template <typename T>
int option_index(const std::vector<T>& options, T value, const char* what) {
  auto it = std::find(options.begin(), options.end(), value);
  ANB_CHECK(it != options.end(),
            std::string("SearchSpace: invalid ") + what + " value");
  return static_cast<int>(it - options.begin());
}

}  // namespace

const std::vector<int>& SearchSpace::expansion_options() {
  static const std::vector<int> opts{1, 4, 6};
  return opts;
}

const std::vector<int>& SearchSpace::kernel_options() {
  static const std::vector<int> opts{3, 5};
  return opts;
}

const std::vector<int>& SearchSpace::layer_options() {
  static const std::vector<int> opts{1, 2, 3};
  return opts;
}

std::vector<int> SearchSpace::decision_sizes() {
  std::vector<int> sizes;
  sizes.reserve(kNumDecisions);
  for (int b = 0; b < kNumBlocks; ++b) {
    sizes.push_back(static_cast<int>(expansion_options().size()));
    sizes.push_back(static_cast<int>(kernel_options().size()));
    sizes.push_back(static_cast<int>(layer_options().size()));
    sizes.push_back(2);  // se
  }
  return sizes;
}

std::uint64_t SearchSpace::cardinality() {
  std::uint64_t card = 1;
  for (int s : decision_sizes()) card *= static_cast<std::uint64_t>(s);
  return card;
}

int SearchSpace::feature_dim() {
  // One-hot per block: expansion 3 + kernel 2 + layers 3 + se 1 (binary).
  return kNumBlocks * (3 + 2 + 3 + 1);
}

void SearchSpace::validate(const Architecture& arch) {
  for (const auto& blk : arch.blocks) {
    option_index(expansion_options(), blk.expansion, "expansion");
    option_index(kernel_options(), blk.kernel, "kernel");
    option_index(layer_options(), blk.layers, "layers");
  }
}

bool SearchSpace::is_valid(const Architecture& arch) {
  try {
    validate(arch);
    return true;
  } catch (const Error&) {
    return false;
  }
}

Architecture SearchSpace::sample(Rng& rng) {
  Architecture arch;
  for (auto& blk : arch.blocks) {
    blk.expansion = rng.pick(expansion_options());
    blk.kernel = rng.pick(kernel_options());
    blk.layers = rng.pick(layer_options());
    blk.se = rng.bernoulli(0.5);
  }
  return arch;
}

Architecture SearchSpace::mutate(const Architecture& arch, Rng& rng) {
  validate(arch);
  Architecture out = arch;
  const auto sizes = decision_sizes();
  // Pick a decision whose domain has >1 option (all do here) and move it to
  // a different value.
  const int d = static_cast<int>(rng.uniform_index(kNumDecisions));
  auto decisions = to_decisions(arch);
  const int size = sizes[static_cast<std::size_t>(d)];
  int offset = 1 + static_cast<int>(rng.uniform_index(
                       static_cast<std::uint64_t>(size - 1)));
  decisions[static_cast<std::size_t>(d)] =
      (decisions[static_cast<std::size_t>(d)] + offset) % size;
  out = from_decisions(decisions);
  ANB_ASSERT(!(out == arch), "mutate produced an identical architecture");
  return out;
}

std::vector<Architecture> SearchSpace::neighbors(const Architecture& arch) {
  validate(arch);
  const auto sizes = decision_sizes();
  const auto base = to_decisions(arch);
  std::vector<Architecture> out;
  for (int d = 0; d < kNumDecisions; ++d) {
    for (int v = 0; v < sizes[static_cast<std::size_t>(d)]; ++v) {
      if (v == base[static_cast<std::size_t>(d)]) continue;
      auto decisions = base;
      decisions[static_cast<std::size_t>(d)] = v;
      out.push_back(from_decisions(decisions));
    }
  }
  return out;
}

std::uint64_t SearchSpace::to_index(const Architecture& arch) {
  validate(arch);
  const auto sizes = decision_sizes();
  const auto decisions = to_decisions(arch);
  std::uint64_t index = 0;
  for (int d = 0; d < kNumDecisions; ++d) {
    index = index * static_cast<std::uint64_t>(sizes[static_cast<std::size_t>(d)]) +
            static_cast<std::uint64_t>(decisions[static_cast<std::size_t>(d)]);
  }
  return index;
}

Architecture SearchSpace::from_index(std::uint64_t index) {
  ANB_CHECK(index < cardinality(), "SearchSpace::from_index: out of range");
  const auto sizes = decision_sizes();
  std::vector<int> decisions(kNumDecisions, 0);
  for (int d = kNumDecisions - 1; d >= 0; --d) {
    const auto size = static_cast<std::uint64_t>(sizes[static_cast<std::size_t>(d)]);
    decisions[static_cast<std::size_t>(d)] = static_cast<int>(index % size);
    index /= size;
  }
  return from_decisions(decisions);
}

std::vector<int> SearchSpace::to_decisions(const Architecture& arch) {
  std::vector<int> decisions;
  decisions.reserve(kNumDecisions);
  for (const auto& blk : arch.blocks) {
    decisions.push_back(option_index(expansion_options(), blk.expansion,
                                     "expansion"));
    decisions.push_back(option_index(kernel_options(), blk.kernel, "kernel"));
    decisions.push_back(option_index(layer_options(), blk.layers, "layers"));
    decisions.push_back(blk.se ? 1 : 0);
  }
  return decisions;
}

Architecture SearchSpace::from_decisions(const std::vector<int>& decisions) {
  ANB_CHECK(decisions.size() == static_cast<std::size_t>(kNumDecisions),
            "SearchSpace::from_decisions: wrong length");
  const auto sizes = decision_sizes();
  for (int d = 0; d < kNumDecisions; ++d) {
    ANB_CHECK(decisions[static_cast<std::size_t>(d)] >= 0 &&
                  decisions[static_cast<std::size_t>(d)] <
                      sizes[static_cast<std::size_t>(d)],
              "SearchSpace::from_decisions: option index out of range");
  }
  Architecture arch;
  std::size_t i = 0;
  for (auto& blk : arch.blocks) {
    blk.expansion =
        expansion_options()[static_cast<std::size_t>(decisions[i++])];
    blk.kernel = kernel_options()[static_cast<std::size_t>(decisions[i++])];
    blk.layers = layer_options()[static_cast<std::size_t>(decisions[i++])];
    blk.se = decisions[i++] == 1;
  }
  return arch;
}

std::vector<double> SearchSpace::features(const Architecture& arch) {
  validate(arch);
  std::vector<double> f;
  f.reserve(static_cast<std::size_t>(feature_dim()));
  for (const auto& blk : arch.blocks) {
    for (int opt : expansion_options()) f.push_back(blk.expansion == opt);
    for (int opt : kernel_options()) f.push_back(blk.kernel == opt);
    for (int opt : layer_options()) f.push_back(blk.layers == opt);
    f.push_back(blk.se ? 1.0 : 0.0);
  }
  ANB_ASSERT(f.size() == static_cast<std::size_t>(feature_dim()),
             "feature vector size mismatch");
  return f;
}

}  // namespace anb
