#pragma once

#include <string>
#include <vector>

#include "anb/searchspace/architecture.hpp"

namespace anb {

/// A named reference model used as a comparison baseline in the paper's
/// Fig. 6 (EfficientNet-B0, MobileNetV3-Large, EfficientNet-EdgeTPU-S,
/// MnasNet-A1). Each is expressed as the closest point inside the searchable
/// MnasNet space (layer counts clipped to the space's {1,2,3} range), which
/// is how the paper is able to compare searched models directly against them.
struct ReferenceModel {
  std::string name;
  Architecture arch;
};

/// EfficientNet-B0-like: e=(1,6,…,6), mixed 3/5 kernels, SE everywhere.
ReferenceModel effnet_b0_like();

/// MobileNetV3-Large-like: lighter expansions, SE on middle/late stages.
ReferenceModel mobilenet_v3_like();

/// EfficientNet-EdgeTPU-S-like: no SE (EdgeTPU DPUs penalize SE), 3×3-heavy.
ReferenceModel effnet_edgetpu_s_like();

/// MnasNet-A1-like: the original MnasNet search result.
ReferenceModel mnasnet_a1_like();

/// All baselines above, in a stable order.
std::vector<ReferenceModel> reference_zoo();

}  // namespace anb
