#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "anb/searchspace/architecture.hpp"

namespace anb {

/// Stable identifier of a registered search space. Values are part of the
/// persistence and wire formats (the .anbb space section and the serve
/// protocol carry them as integers), so they are append-only: never renumber
/// or reuse an id. Benchmarks saved before the space section existed are
/// MnasNet by definition (the format's original, implicit space).
enum class SpaceId : std::uint16_t {
  kMnasNet = 1,
  kFbnet = 2,
};

/// Canonical lower-case space name ("mnasnet", "fbnet"); throws anb::Error
/// for an id that is not a known SpaceId value.
const char* space_name(SpaceId id);

/// Exact-match inverse of space_name (same contract as
/// device_kind_from_name: no prefixes, no case folding); throws anb::Error.
SpaceId space_id_from_name(const std::string& name);

/// Upper bound on decisions per genotype across all registered spaces
/// (MnasNet uses 28, FBNet 22). A new space needing more would grow this
/// constant — an in-memory layout change only, no persisted format carries
/// raw Arch bytes.
inline constexpr int kMaxDecisions = 32;

/// Space-tagged opaque genotype: the value type every space-generic layer
/// (NAS optimizers, benchmark queries, collection, serve) traffics in.
///
/// The representation is the flat categorical decision vector of the owning
/// space — `d[i]` is an option index in [0, decision_sizes()[i]) — padded
/// with zeros past `n` so defaulted equality and byte-wise hashing are
/// well-defined. Interpretation of the decisions (block configs, layer ops,
/// feature encodings, IR lowering) belongs to the SearchSpace registered
/// under `space`; this struct is deliberately dumb.
struct Arch {
  SpaceId space = SpaceId::kMnasNet;
  std::uint8_t n = 0;
  std::array<std::int8_t, kMaxDecisions> d{};

  Arch() = default;

  /// Implicit lift of the typed MnasNet value; throws if `blocks` holds
  /// option values outside the space.
  Arch(const Architecture& mnas);  // NOLINT(google-explicit-constructor)

  /// Typed MnasNet view; throws anb::Error when space != kMnasNet.
  Architecture mnas() const;

  bool operator==(const Arch&) const = default;

  /// Stable 64-bit hash (FNV-1a over space id and the decision bytes);
  /// equal genotypes hash equal. Used to key caches and dedupe samples.
  std::uint64_t hash() const;

  /// Human-readable id in the owning space's native format (the MnasNet
  /// "e6k5L3s1-..." compact form, FBNet's dash-separated op names).
  /// Requires the owning space to be registered.
  std::string to_string() const;
};

}  // namespace anb
