#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "anb/searchspace/space.hpp"
#include "anb/util/rng.hpp"

// Deprecated compatibility facade for the pre-interface, all-static
// `anb::SearchSpace` API (removed when the class became polymorphic).
// Every entry point is a thin wrapper over MnasSpace::instance(), typed on
// the MnasNet `Architecture` exactly as the old statics were. Kept for one
// release, mirroring the PR 5 MetricKey shim playbook; the sanctioned
// caller is tests/searchspace/legacy_compat_test.cpp and nothing else —
// new code resolves a space and uses the interface.
//
// The statics cannot live on anb::SearchSpace itself: a static
// `sample(Rng&)` cannot overload the virtual `sample(Rng&) const`
// ([over.load] forbids overloading on static-ness alone), so the facade
// lives in anb::legacy under the old class name.

namespace anb::legacy {

struct SearchSpace {
  [[deprecated("use MnasSpace::expansion_options()")]]
  static const std::vector<int>& expansion_options() {
    return MnasSpace::expansion_options();
  }

  [[deprecated("use MnasSpace::kernel_options()")]]
  static const std::vector<int>& kernel_options() {
    return MnasSpace::kernel_options();
  }

  [[deprecated("use MnasSpace::layer_options()")]]
  static const std::vector<int>& layer_options() {
    return MnasSpace::layer_options();
  }

  static constexpr int kNumDecisions = MnasSpace::kNumDecisions;

  [[deprecated("use MnasSpace::instance().decision_sizes()")]]
  static std::vector<int> decision_sizes() {
    return MnasSpace::instance().decision_sizes();
  }

  [[deprecated("use MnasSpace::instance().cardinality()")]]
  static std::uint64_t cardinality() {
    return MnasSpace::instance().cardinality();
  }

  [[deprecated("use MnasSpace::instance().feature_dim()")]]
  static int feature_dim() { return MnasSpace::instance().feature_dim(); }

  [[deprecated("use MnasSpace::instance().validate(Arch)")]]
  static void validate(const Architecture& arch) {
    MnasSpace::from_blocks(arch);  // throws on out-of-space options
  }

  [[deprecated("use MnasSpace::instance().is_valid(Arch)")]]
  static bool is_valid(const Architecture& arch) {
    try {
      MnasSpace::from_blocks(arch);
      return true;
    } catch (const Error&) {
      return false;
    }
  }

  [[deprecated("use MnasSpace::instance().sample(rng)")]]
  static Architecture sample(Rng& rng) {
    return MnasSpace::to_blocks(MnasSpace::instance().sample(rng));
  }

  [[deprecated("use MnasSpace::instance().mutate(arch, rng)")]]
  static Architecture mutate(const Architecture& arch, Rng& rng) {
    return MnasSpace::to_blocks(
        MnasSpace::instance().mutate(MnasSpace::from_blocks(arch), rng));
  }

  [[deprecated("use MnasSpace::instance().neighbors(arch)")]]
  static std::vector<Architecture> neighbors(const Architecture& arch) {
    std::vector<Architecture> out;
    for (const Arch& a :
         MnasSpace::instance().neighbors(MnasSpace::from_blocks(arch)))
      out.push_back(MnasSpace::to_blocks(a));
    return out;
  }

  [[deprecated("use MnasSpace::instance().to_index(arch)")]]
  static std::uint64_t to_index(const Architecture& arch) {
    return MnasSpace::instance().to_index(MnasSpace::from_blocks(arch));
  }

  [[deprecated("use MnasSpace::instance().from_index(index)")]]
  static Architecture from_index(std::uint64_t index) {
    return MnasSpace::to_blocks(MnasSpace::instance().from_index(index));
  }

  [[deprecated("the Arch decision bytes are the flat genotype")]]
  static std::vector<int> to_decisions(const Architecture& arch) {
    const Arch a = MnasSpace::from_blocks(arch);
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(a.n));
    for (int i = 0; i < a.n; ++i)
      out.push_back(a.d[static_cast<std::size_t>(i)]);
    return out;
  }

  [[deprecated("the Arch decision bytes are the flat genotype")]]
  static Architecture from_decisions(const std::vector<int>& decisions) {
    ANB_CHECK(decisions.size() == static_cast<std::size_t>(kNumDecisions),
              "SearchSpace::from_decisions: wrong length");
    Arch a;
    a.space = SpaceId::kMnasNet;
    a.n = kNumDecisions;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      ANB_CHECK(decisions[i] >= 0 && decisions[i] < 127,
                "SearchSpace::from_decisions: option index out of range");
      a.d[i] = static_cast<std::int8_t>(decisions[i]);
    }
    return MnasSpace::to_blocks(a);  // validates ranges per decision
  }

  [[deprecated("use MnasSpace::instance().features(arch)")]]
  static std::vector<double> features(const Architecture& arch) {
    return MnasSpace::instance().features(MnasSpace::from_blocks(arch));
  }
};

}  // namespace anb::legacy
