#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace anb {

/// Number of sequentially connected searchable blocks/stages in the MnasNet
/// search space (paper §3.1).
inline constexpr int kNumBlocks = 7;

/// Per-block searchable configuration of the MnasNet space.
///
/// Each block hosts `layers` mobile inverted bottleneck (MBConv) layers with
/// a shared expansion factor, depthwise kernel size, and an optional
/// squeeze-and-excitation (SE) module. Allowed values (paper §3.1):
///   expansion ∈ {1, 4, 6}, kernel ∈ {3, 5}, layers ∈ {1, 2, 3}, se ∈ {0, 1}.
struct BlockConfig {
  int expansion = 1;
  int kernel = 3;
  int layers = 1;
  bool se = false;

  bool operator==(const BlockConfig&) const = default;
};

/// A point in the MnasNet search space: 7 block configurations.
///
/// This is a plain value type; validity (allowed option values) is enforced
/// by SearchSpace::validate. The macro-skeleton (channel widths, strides,
/// stem/head) is fixed and owned by the IR expansion (anb/ir).
struct Architecture {
  std::array<BlockConfig, kNumBlocks> blocks{};

  bool operator==(const Architecture&) const = default;

  /// Compact human-readable id, e.g. "e6k5L3s1-..." (one group per block).
  std::string to_string() const;

  /// Parse the to_string() format; throws anb::Error on malformed input.
  static Architecture from_string(const std::string& s);

  /// Stable 64-bit hash (FNV-1a over the canonical encoding); architectures
  /// comparing equal hash equal. Used to key caches and dedupe samples.
  std::uint64_t hash() const;
};

}  // namespace anb
