#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "anb/searchspace/architecture.hpp"
#include "anb/searchspace/genotype.hpp"
#include "anb/util/rng.hpp"

namespace anb {

/// A searchable architecture space: the polymorphic interface every
/// space-generic layer programs against (NAS optimizers, proxy search,
/// collection, surrogate feature encoding, benchmark query/cache, serve).
///
/// Implementations are stateless singletons registered under a stable
/// SpaceId (see register_space / space()). All operations are const and
/// thread-safe; genotypes are space-tagged `Arch` values and every method
/// taking one validates that the tag matches this space.
///
/// The base class supplies the canonical mixed-radix index bijection,
/// neighbor enumeration, and the mutate operator generically from
/// `decision_sizes()`; spaces override behavior only where their native
/// semantics differ (sampling draw order, feature encodings, string forms).
class SearchSpace {
 public:
  virtual ~SearchSpace() = default;

  /// Stable registry identity (persisted in artifacts and on the wire).
  virtual SpaceId id() const = 0;

  /// Canonical name, equal to space_name(id()).
  const char* name() const { return space_name(id()); }

  /// Number of flat categorical decisions in a genotype.
  virtual int num_decisions() const = 0;

  /// Option count per decision, length num_decisions(). This is the
  /// genotype the REINFORCE policy samples.
  virtual const std::vector<int>& decision_sizes() const = 0;

  /// Total number of unique architectures (must fit std::uint64_t).
  std::uint64_t cardinality() const;

  /// Dimensionality of the feature encoding consumed by the surrogates.
  virtual int feature_dim() const = 0;

  /// Throws anb::Error if the genotype is not a member of this space
  /// (wrong space tag, wrong length, option index out of range, or
  /// nonzero padding past n).
  void validate(const Arch& arch) const;
  bool is_valid(const Arch& arch) const;

  /// Uniform random architecture.
  virtual Arch sample(Rng& rng) const = 0;

  /// Mutate exactly one decision to a different allowed value (the RE
  /// mutation operator). The result always differs from the input.
  virtual Arch mutate(const Arch& arch, Rng& rng) const;

  /// All architectures at Hamming distance 1 (one decision changed).
  virtual std::vector<Arch> neighbors(const Arch& arch) const;

  /// Canonical bijection with [0, cardinality()). Mixed-radix in decision
  /// order. Together with the space id this is the stable address of an
  /// architecture: caches key on (SpaceId, to_index) and the serve
  /// protocol ships exactly that pair.
  virtual std::uint64_t to_index(const Arch& arch) const;
  virtual Arch from_index(std::uint64_t index) const;

  /// Build a (validated) genotype from a flat decision vector — the
  /// constructor policy-gradient searchers use.
  Arch from_decisions(const std::vector<int>& decisions) const;

  /// Half-open decision ranges forming semantically coherent crossover
  /// units (MnasNet: one per block; default: one per decision). NSGA-II's
  /// uniform crossover swaps whole groups between parents.
  virtual std::vector<std::pair<int, int>> crossover_groups() const;

  /// Feature vector for surrogate input: pure architectural properties,
  /// no FLOPs/params leakage (paper §2.1).
  virtual std::vector<double> features(const Arch& arch) const = 0;

  /// Native human-readable form and its exact inverse.
  virtual std::string arch_to_string(const Arch& arch) const = 0;
  virtual Arch arch_from_string(const std::string& s) const = 0;

 protected:
  /// Genotype skeleton tagged for this space (n set, decisions zero).
  Arch make_arch() const;
};

/// The MnasNet hierarchical block-based search space (paper §3.1).
///
/// Seven sequential blocks, each with four categorical decisions:
/// expansion ∈ {1,4,6}, kernel ∈ {3,5}, layers ∈ {1,2,3}, se ∈ {no,yes}.
/// Cardinality (3·2·3·2)^7 = 36^7 ≈ 7.8×10^10 ≈ 10^11 unique models,
/// matching the paper's figure. Decision order is block-major
/// (block0: e,k,L,se, block1: e,k,L,se, ...), which keeps to_index
/// bit-compatible with the pre-interface static encoding.
class MnasSpace final : public SearchSpace {
 public:
  /// The process-wide instance (stateless; auto-registered on first
  /// registry lookup).
  static const MnasSpace& instance();

  /// Allowed option values, in canonical order.
  static const std::vector<int>& expansion_options();
  static const std::vector<int>& kernel_options();
  static const std::vector<int>& layer_options();
  // SE options are {false, true}.

  /// Number of flat categorical decisions (7 blocks × 4 = 28).
  static constexpr int kNumDecisions = kNumBlocks * 4;

  /// Typed conversions between the opaque genotype and the block view the
  /// IR/training layers consume. from_blocks throws on option values
  /// outside the space; to_blocks throws on a non-MnasNet genotype.
  static Arch from_blocks(const Architecture& arch);
  static Architecture to_blocks(const Arch& arch);

  SpaceId id() const override { return SpaceId::kMnasNet; }
  int num_decisions() const override { return kNumDecisions; }
  const std::vector<int>& decision_sizes() const override;
  /// One crossover group per block (4 decisions each).
  std::vector<std::pair<int, int>> crossover_groups() const override;
  int feature_dim() const override;  ///< 7 × (3+2+3+1) = 63 one-hot dims
  Arch sample(Rng& rng) const override;
  std::vector<double> features(const Arch& arch) const override;
  std::string arch_to_string(const Arch& arch) const override;
  Arch arch_from_string(const std::string& s) const override;
};

/// Register a space implementation under its id(). Idempotent for the
/// same instance; throws anb::Error if a different instance already owns
/// the id. `space` must have static storage duration.
void register_space(const SearchSpace& space);

/// Resolve a registered space. MnasSpace is always available (registered
/// lazily); other spaces must have been registered — linking a library
/// is not enough, call its registration hook (anb::register_builtin_spaces
/// covers every in-tree space). Throws anb::Error naming the id when the
/// space is unknown.
const SearchSpace& space(SpaceId id);

/// space() by canonical name; exact-match contract, throws anb::Error.
const SearchSpace& space_from_name(const std::string& name);

/// True when `id` resolves without throwing.
bool space_registered(SpaceId id);

/// Ids of all currently registered spaces, ascending.
std::vector<SpaceId> registered_spaces();

}  // namespace anb
