#pragma once

#include <cstdint>
#include <vector>

#include "anb/searchspace/architecture.hpp"
#include "anb/util/rng.hpp"

namespace anb {

/// The MnasNet hierarchical block-based search space (paper §3.1).
///
/// Seven sequential blocks, each with four categorical decisions:
/// expansion ∈ {1,4,6}, kernel ∈ {3,5}, layers ∈ {1,2,3}, se ∈ {no,yes}.
/// Cardinality (3·2·3·2)^7 = 36^7 ≈ 7.8×10^10 ≈ 10^11 unique models,
/// matching the paper's figure.
///
/// The class provides every space-level operation the rest of the system
/// needs: validation, uniform sampling, mutation (for regularized
/// evolution), canonical integer index <-> architecture bijection, the
/// flat decision view used by the REINFORCE policy, and the one-hot
/// feature encoding consumed by the surrogates.
class SearchSpace {
 public:
  /// Allowed option values, in canonical order.
  static const std::vector<int>& expansion_options();
  static const std::vector<int>& kernel_options();
  static const std::vector<int>& layer_options();
  // SE options are {false, true}.

  /// Number of flat categorical decisions (7 blocks × 4 = 28).
  static constexpr int kNumDecisions = kNumBlocks * 4;

  /// Option count for each flat decision, in block-major order
  /// (block0: e,k,L,se, block1: e,k,L,se, ...). Sizes are {3,2,3,2} repeated.
  static std::vector<int> decision_sizes();

  /// Total number of unique architectures (36^7).
  static std::uint64_t cardinality();

  /// Dimensionality of the one-hot feature encoding (7 × (3+2+3+1) = 63).
  static int feature_dim();

  /// Throws anb::Error if any block option is outside the space.
  static void validate(const Architecture& arch);
  static bool is_valid(const Architecture& arch);

  /// Uniform random architecture.
  static Architecture sample(Rng& rng);

  /// Mutate exactly one decision to a different allowed value (the RE
  /// mutation operator). The result always differs from the input.
  static Architecture mutate(const Architecture& arch, Rng& rng);

  /// All architectures at Hamming distance 1 (one decision changed).
  static std::vector<Architecture> neighbors(const Architecture& arch);

  /// Canonical bijection with [0, cardinality()). Mixed-radix in
  /// block-major, decision-major order.
  static std::uint64_t to_index(const Architecture& arch);
  static Architecture from_index(std::uint64_t index);

  /// Flat categorical decision vector (28 option indices) and its inverse.
  /// This is the genotype the REINFORCE policy samples.
  static std::vector<int> to_decisions(const Architecture& arch);
  static Architecture from_decisions(const std::vector<int>& decisions);

  /// One-hot feature vector (63 dims: e 3 + k 2 + L 3 + se 1 per block).
  /// This is the surrogate input representation: pure architectural
  /// properties, no FLOPs/params leakage (paper §2.1).
  static std::vector<double> features(const Architecture& arch);
};

}  // namespace anb
