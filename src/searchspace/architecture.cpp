#include "anb/searchspace/architecture.hpp"

#include <cstdio>
#include <sstream>

#include "anb/util/error.hpp"

namespace anb {

std::string Architecture::to_string() const {
  std::string out;
  for (int b = 0; b < kNumBlocks; ++b) {
    if (b) out += '-';
    const auto& blk = blocks[static_cast<std::size_t>(b)];
    char buf[32];
    std::snprintf(buf, sizeof(buf), "e%dk%dL%ds%d", blk.expansion, blk.kernel,
                  blk.layers, blk.se ? 1 : 0);
    out += buf;
  }
  return out;
}

Architecture Architecture::from_string(const std::string& s) {
  Architecture arch;
  std::istringstream in(s);
  std::string group;
  int b = 0;
  while (std::getline(in, group, '-')) {
    ANB_CHECK(b < kNumBlocks, "Architecture::from_string: too many blocks");
    int e = 0, k = 0, L = 0, se = 0;
    const int matched =
        std::sscanf(group.c_str(), "e%dk%dL%ds%d", &e, &k, &L, &se);
    ANB_CHECK(matched == 4,
              "Architecture::from_string: malformed block '" + group + "'");
    ANB_CHECK(se == 0 || se == 1,
              "Architecture::from_string: se must be 0 or 1");
    arch.blocks[static_cast<std::size_t>(b)] = BlockConfig{e, k, L, se == 1};
    ++b;
  }
  ANB_CHECK(b == kNumBlocks,
            "Architecture::from_string: expected " +
                std::to_string(kNumBlocks) + " blocks, got " +
                std::to_string(b));
  return arch;
}

std::uint64_t Architecture::hash() const {
  // FNV-1a over the block fields.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  for (const auto& blk : blocks) {
    mix(static_cast<std::uint64_t>(blk.expansion));
    mix(static_cast<std::uint64_t>(blk.kernel));
    mix(static_cast<std::uint64_t>(blk.layers));
    mix(blk.se ? 2u : 1u);
  }
  return h;
}

}  // namespace anb
