#include "anb/searchspace/zoo.hpp"

#include "anb/searchspace/space.hpp"
#include "anb/util/error.hpp"

namespace anb {

namespace {

Architecture make(std::array<BlockConfig, kNumBlocks> blocks) {
  Architecture arch{blocks};
  MnasSpace::from_blocks(arch);  // throws on out-of-space option values
  return arch;
}

}  // namespace

ReferenceModel effnet_b0_like() {
  // EfficientNet-B0 stages (e, k, L, se) with L clipped into {1,2,3}:
  // true B0 repeats are (1,2,2,3,3,4,1).
  return {"effnet-b0",
          make({BlockConfig{1, 3, 1, true}, BlockConfig{6, 3, 2, true},
                BlockConfig{6, 5, 2, true}, BlockConfig{6, 3, 3, true},
                BlockConfig{6, 5, 3, true}, BlockConfig{6, 5, 3, true},
                BlockConfig{6, 3, 1, true}})};
}

ReferenceModel mobilenet_v3_like() {
  // MobileNetV3-Large flavor: lower expansions early, SE from stage 3 on,
  // 5x5 kernels in the SE stages.
  return {"mobilenetv3-l",
          make({BlockConfig{1, 3, 1, false}, BlockConfig{4, 3, 2, false},
                BlockConfig{4, 5, 3, true}, BlockConfig{6, 3, 3, false},
                BlockConfig{6, 3, 2, true}, BlockConfig{6, 5, 3, true},
                BlockConfig{6, 5, 1, true}})};
}

ReferenceModel effnet_edgetpu_s_like() {
  // EfficientNet-EdgeTPU-S: designed for a DPU-like accelerator — drops SE
  // entirely and prefers 3x3 kernels and ordinary convs in early stages.
  return {"effnet-edgetpu-s",
          make({BlockConfig{1, 3, 1, false}, BlockConfig{6, 3, 2, false},
                BlockConfig{6, 3, 3, false}, BlockConfig{6, 3, 3, false},
                BlockConfig{6, 5, 3, false}, BlockConfig{6, 5, 3, false},
                BlockConfig{6, 3, 1, false}})};
}

ReferenceModel mnasnet_a1_like() {
  // MnasNet-A1: mixed kernels, SE on some stages, expansions mostly 6 with
  // 3 on early stages (the space lacks e=3; 4 is the nearest option).
  return {"mnasnet-a1",
          make({BlockConfig{1, 3, 1, false}, BlockConfig{6, 3, 2, false},
                BlockConfig{4, 5, 3, true}, BlockConfig{6, 3, 3, false},
                BlockConfig{6, 3, 2, true}, BlockConfig{6, 5, 3, true},
                BlockConfig{6, 3, 1, false}})};
}

std::vector<ReferenceModel> reference_zoo() {
  return {effnet_b0_like(), mobilenet_v3_like(), effnet_edgetpu_s_like(),
          mnasnet_a1_like()};
}

}  // namespace anb
