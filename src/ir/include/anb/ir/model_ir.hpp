#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "anb/searchspace/architecture.hpp"

namespace anb {

/// Primitive operator kinds produced by expanding an MnasNet-space model.
///
/// Squeeze-and-excitation is decomposed into GlobalAvgPool + two
/// FullyConnected layers + a channel-wise Scale so device models can price
/// each stage separately (the global pooling is what stalls DPU pipelines).
/// Activations and batch-norm are folded into the preceding conv, matching
/// deployment graphs after standard inference-time fusion.
enum class OpKind {
  kConv2d,           ///< regular convolution (stem, expand/project 1x1, head)
  kDepthwiseConv2d,  ///< depthwise k×k convolution
  kGlobalAvgPool,    ///< spatial global average pooling
  kFullyConnected,   ///< dense layer (SE squeeze/excite, classifier)
  kScale,            ///< channel-wise multiply (SE apply)
  kAdd,              ///< element-wise residual addition
};

const char* op_kind_name(OpKind kind);

/// One executable layer with fully resolved tensor shapes and costs.
/// Element counts are stored instead of bytes so devices can apply their own
/// datatype width (fp16 on GPUs/TPUs, int8 on DPUs).
struct Layer {
  OpKind kind = OpKind::kConv2d;
  std::string name;  ///< e.g. "b3.l1.dwconv"

  int in_h = 1, in_w = 1, in_c = 1;
  int out_h = 1, out_w = 1, out_c = 1;
  int kernel = 1;
  int stride = 1;

  std::uint64_t macs = 0;          ///< multiply-accumulate count
  std::uint64_t params = 0;        ///< weights incl. folded BN scale/shift
  std::uint64_t input_elems = 0;   ///< activation reads
  std::uint64_t output_elems = 0;  ///< activation writes
  std::uint64_t weight_elems = 0;  ///< parameter reads
};

/// A fully expanded model: the architecture lowered onto the fixed MnasNet
/// macro-skeleton (stem=32ch s2; stage widths 16/24/40/80/112/192/320 with
/// strides 1/2/2/2/1/2/1; head 1280ch; 1000 classes) at a given input
/// resolution.
struct ModelIR {
  Architecture arch;
  int resolution = 224;
  std::vector<Layer> layers;

  std::uint64_t total_macs() const;
  std::uint64_t total_params() const;
  /// Total activation element traffic (reads + writes across layers).
  std::uint64_t total_activation_elems() const;
  /// GFLOPs counting one MAC as two floating-point operations.
  double gflops() const;
  /// Parameter count in millions.
  double mparams() const;
};

/// Fixed macro-skeleton constants (not searchable, as in the paper).
struct MacroSkeleton {
  static constexpr int kStemChannels = 32;
  static constexpr int kHeadChannels = 1280;
  static constexpr int kNumClasses = 1000;
  static const std::array<int, kNumBlocks>& stage_channels();
  static const std::array<int, kNumBlocks>& stage_strides();
  /// SE bottleneck width = max(1, block_input_channels / 4), the
  /// EfficientNet convention.
  static int se_channels(int block_in_c);
};

/// Expand `arch` at `resolution` (must be in [32, 1024]).
/// Throws anb::Error on invalid architectures.
ModelIR build_ir(const Architecture& arch, int resolution = 224);

}  // namespace anb
