#pragma once

#include <string>
#include <vector>

#include "anb/ir/model_ir.hpp"

namespace anb {

/// Incremental layer-graph builder: tracks the current tensor shape and
/// appends fully-costed layers. Used by the MnasNet lowering (build_ir) and
/// by additional search spaces (e.g. the FBNet-style generalizability space)
/// so every space produces the same ModelIR the device models consume.
class IrBuilder {
 public:
  explicit IrBuilder(int resolution);

  int h() const { return h_; }
  int w() const { return w_; }
  int c() const { return c_; }

  /// Regular convolution (stride with SAME padding), BN folded.
  void conv(const std::string& name, int out_c, int kernel, int stride);
  /// Depthwise k x k convolution.
  void dwconv(const std::string& name, int kernel, int stride);
  /// Spatial global average pooling to 1x1.
  void global_avg_pool(const std::string& name);
  /// Dense layer; requires the current shape to be 1x1 spatial.
  void fully_connected(const std::string& name, int out_c);
  /// SE gate: channel-wise multiply broadcast over (main_h, main_w);
  /// restores the spatial shape after the pooled SE side path.
  void scale(const std::string& name, int main_h, int main_w);
  /// Element-wise residual addition at the current shape.
  void add(const std::string& name);

  /// One full mobile inverted bottleneck layer (expand -> dwconv -> [SE] ->
  /// project -> [residual]); shared by MnasNet and FBNet lowerings.
  void mbconv(const std::string& prefix, int out_c, int expansion, int kernel,
              int stride, bool se);

  std::vector<Layer> take();

 private:
  void fill_in_shape(Layer& l);
  void finish(Layer& l);

  int h_, w_, c_;
  std::vector<Layer> layers_;
};

}  // namespace anb
