#include "anb/ir/builder.hpp"

#include "anb/util/error.hpp"

namespace anb {

namespace {
int ceil_div(int a, int b) { return (a + b - 1) / b; }
}  // namespace

IrBuilder::IrBuilder(int resolution) : h_(resolution), w_(resolution), c_(3) {
  ANB_CHECK(resolution >= 1, "IrBuilder: resolution must be >= 1");
}

void IrBuilder::fill_in_shape(Layer& l) {
  l.in_h = h_;
  l.in_w = w_;
  l.in_c = c_;
  l.input_elems = static_cast<std::uint64_t>(h_) *
                  static_cast<std::uint64_t>(w_) *
                  static_cast<std::uint64_t>(c_);
}

void IrBuilder::finish(Layer& l) {
  l.output_elems = static_cast<std::uint64_t>(l.out_h) *
                   static_cast<std::uint64_t>(l.out_w) *
                   static_cast<std::uint64_t>(l.out_c);
  h_ = l.out_h;
  w_ = l.out_w;
  c_ = l.out_c;
  layers_.push_back(l);
}

void IrBuilder::conv(const std::string& name, int out_c, int kernel,
                     int stride) {
  Layer l;
  l.kind = OpKind::kConv2d;
  l.name = name;
  fill_in_shape(l);
  l.kernel = kernel;
  l.stride = stride;
  l.out_h = ceil_div(h_, stride);
  l.out_w = ceil_div(w_, stride);
  l.out_c = out_c;
  const auto spatial =
      static_cast<std::uint64_t>(l.out_h) * static_cast<std::uint64_t>(l.out_w);
  l.macs = spatial * static_cast<std::uint64_t>(out_c) *
           static_cast<std::uint64_t>(c_) * static_cast<std::uint64_t>(kernel) *
           static_cast<std::uint64_t>(kernel);
  l.weight_elems = static_cast<std::uint64_t>(kernel) *
                   static_cast<std::uint64_t>(kernel) *
                   static_cast<std::uint64_t>(c_) *
                   static_cast<std::uint64_t>(out_c);
  l.params = l.weight_elems + 2ull * static_cast<std::uint64_t>(out_c);
  finish(l);
}

void IrBuilder::dwconv(const std::string& name, int kernel, int stride) {
  Layer l;
  l.kind = OpKind::kDepthwiseConv2d;
  l.name = name;
  fill_in_shape(l);
  l.kernel = kernel;
  l.stride = stride;
  l.out_h = ceil_div(h_, stride);
  l.out_w = ceil_div(w_, stride);
  l.out_c = c_;
  const auto spatial =
      static_cast<std::uint64_t>(l.out_h) * static_cast<std::uint64_t>(l.out_w);
  l.macs = spatial * static_cast<std::uint64_t>(c_) *
           static_cast<std::uint64_t>(kernel) *
           static_cast<std::uint64_t>(kernel);
  l.weight_elems = static_cast<std::uint64_t>(kernel) *
                   static_cast<std::uint64_t>(kernel) *
                   static_cast<std::uint64_t>(c_);
  l.params = l.weight_elems + 2ull * static_cast<std::uint64_t>(c_);
  finish(l);
}

void IrBuilder::global_avg_pool(const std::string& name) {
  Layer l;
  l.kind = OpKind::kGlobalAvgPool;
  l.name = name;
  fill_in_shape(l);
  l.out_h = 1;
  l.out_w = 1;
  l.out_c = c_;
  l.macs = static_cast<std::uint64_t>(h_) * static_cast<std::uint64_t>(w_) *
           static_cast<std::uint64_t>(c_);
  l.weight_elems = 0;
  l.params = 0;
  finish(l);
}

void IrBuilder::fully_connected(const std::string& name, int out_c) {
  Layer l;
  l.kind = OpKind::kFullyConnected;
  l.name = name;
  fill_in_shape(l);
  ANB_ASSERT(h_ == 1 && w_ == 1, "fully_connected requires 1x1 spatial");
  l.out_h = 1;
  l.out_w = 1;
  l.out_c = out_c;
  l.macs = static_cast<std::uint64_t>(c_) * static_cast<std::uint64_t>(out_c);
  l.weight_elems = l.macs;
  l.params = l.weight_elems + static_cast<std::uint64_t>(out_c);
  finish(l);
}

void IrBuilder::scale(const std::string& name, int main_h, int main_w) {
  Layer l;
  l.kind = OpKind::kScale;
  l.name = name;
  // Reads both the gate (c) and the main activation (main_h*main_w*c).
  l.in_h = main_h;
  l.in_w = main_w;
  l.in_c = c_;
  l.input_elems = static_cast<std::uint64_t>(main_h) *
                      static_cast<std::uint64_t>(main_w) *
                      static_cast<std::uint64_t>(c_) +
                  static_cast<std::uint64_t>(c_);
  l.out_h = main_h;
  l.out_w = main_w;
  l.out_c = c_;
  l.macs = static_cast<std::uint64_t>(main_h) *
           static_cast<std::uint64_t>(main_w) * static_cast<std::uint64_t>(c_);
  l.weight_elems = 0;
  l.params = 0;
  l.output_elems = l.macs;
  h_ = main_h;
  w_ = main_w;
  layers_.push_back(l);
}

void IrBuilder::add(const std::string& name) {
  Layer l;
  l.kind = OpKind::kAdd;
  l.name = name;
  fill_in_shape(l);
  l.input_elems *= 2;  // two operands
  l.out_h = h_;
  l.out_w = w_;
  l.out_c = c_;
  l.macs = static_cast<std::uint64_t>(h_) * static_cast<std::uint64_t>(w_) *
           static_cast<std::uint64_t>(c_);
  l.weight_elems = 0;
  l.params = 0;
  finish(l);
}

void IrBuilder::mbconv(const std::string& prefix, int out_c, int expansion,
                       int kernel, int stride, bool se) {
  const int block_in_c = c_;
  const int expanded_c = block_in_c * expansion;
  const bool residual = stride == 1 && block_in_c == out_c;

  if (expansion != 1) {
    conv(prefix + ".expand", expanded_c, 1, 1);
  }
  dwconv(prefix + ".dwconv", kernel, stride);
  if (se) {
    const int dw_h = h_;
    const int dw_w = w_;
    const int se_c = MacroSkeleton::se_channels(block_in_c);
    global_avg_pool(prefix + ".se.pool");
    fully_connected(prefix + ".se.squeeze", se_c);
    fully_connected(prefix + ".se.excite", expanded_c);
    scale(prefix + ".se.scale", dw_h, dw_w);
  }
  conv(prefix + ".project", out_c, 1, 1);
  if (residual) {
    add(prefix + ".residual");
  }
}

std::vector<Layer> IrBuilder::take() { return std::move(layers_); }

}  // namespace anb
