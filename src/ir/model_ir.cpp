#include "anb/ir/model_ir.hpp"

#include "anb/ir/builder.hpp"

#include <array>

#include "anb/searchspace/space.hpp"
#include "anb/util/error.hpp"

namespace anb {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2d: return "conv2d";
    case OpKind::kDepthwiseConv2d: return "dwconv2d";
    case OpKind::kGlobalAvgPool: return "gavgpool";
    case OpKind::kFullyConnected: return "fc";
    case OpKind::kScale: return "scale";
    case OpKind::kAdd: return "add";
  }
  return "unknown";
}

const std::array<int, kNumBlocks>& MacroSkeleton::stage_channels() {
  static const std::array<int, kNumBlocks> channels{16, 24,  40, 80,
                                                    112, 192, 320};
  return channels;
}

const std::array<int, kNumBlocks>& MacroSkeleton::stage_strides() {
  static const std::array<int, kNumBlocks> strides{1, 2, 2, 2, 1, 2, 1};
  return strides;
}

int MacroSkeleton::se_channels(int block_in_c) {
  ANB_CHECK(block_in_c >= 1, "se_channels: block_in_c must be >= 1");
  return std::max(1, block_in_c / 4);
}

std::uint64_t ModelIR::total_macs() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) total += l.macs;
  return total;
}

std::uint64_t ModelIR::total_params() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) total += l.params;
  return total;
}

std::uint64_t ModelIR::total_activation_elems() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) total += l.input_elems + l.output_elems;
  return total;
}

double ModelIR::gflops() const {
  return 2.0 * static_cast<double>(total_macs()) / 1e9;
}

double ModelIR::mparams() const {
  return static_cast<double>(total_params()) / 1e6;
}

ModelIR build_ir(const Architecture& arch, int resolution) {
  MnasSpace::from_blocks(arch);  // throws on out-of-space option values
  ANB_CHECK(resolution >= 32 && resolution <= 1024,
            "build_ir: resolution must be in [32, 1024]");

  ModelIR ir;
  ir.arch = arch;
  ir.resolution = resolution;

  IrBuilder b(resolution);
  b.conv("stem.conv", MacroSkeleton::kStemChannels, 3, 2);

  for (int s = 0; s < kNumBlocks; ++s) {
    const auto& blk = arch.blocks[static_cast<std::size_t>(s)];
    const int out_c =
        MacroSkeleton::stage_channels()[static_cast<std::size_t>(s)];
    const int stage_stride =
        MacroSkeleton::stage_strides()[static_cast<std::size_t>(s)];
    for (int layer = 0; layer < blk.layers; ++layer) {
      const std::string prefix =
          "b" + std::to_string(s + 1) + ".l" + std::to_string(layer + 1);
      const int stride = layer == 0 ? stage_stride : 1;
      b.mbconv(prefix, out_c, blk.expansion, blk.kernel, stride, blk.se);
    }
  }

  b.conv("head.conv", MacroSkeleton::kHeadChannels, 1, 1);
  b.global_avg_pool("head.pool");
  b.fully_connected("head.fc", MacroSkeleton::kNumClasses);

  ir.layers = b.take();
  return ir;
}

}  // namespace anb
