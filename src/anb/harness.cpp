#include "anb/anb/harness.hpp"

#include <algorithm>
#include <memory>
#include <span>

#include "anb/ir/model_ir.hpp"
#include "anb/nas/evolution.hpp"
#include "anb/nas/random_search.hpp"
#include "anb/nas/reinforce.hpp"
#include "anb/searchspace/zoo.hpp"
#include "anb/util/error.hpp"
#include "anb/util/pareto.hpp"
#include "anb/util/stats.hpp"

namespace anb {

std::vector<TrajectoryComparison> compare_trajectories(
    const AccelNASBench& bench, const SpaceSim& sim,
    const TrainingScheme& p_star, const TrajectoryConfig& config) {
  ANB_CHECK(config.n_evals >= 1 && config.n_sim_seeds >= 1,
            "compare_trajectories: invalid budgets");
  const SearchSpace& sp = sim.space();
  ANB_CHECK(sp.id() == bench.space(),
            "compare_trajectories: benchmark/simulator space mismatch");

  // True oracle: an actual (simulated) training run under p*.
  std::size_t true_run_counter = 0;
  SearchOracle true_oracle = EvalOracle([&](const Arch& arch) {
    return sim.train(arch, p_star, /*run_seed=*/true_run_counter++).top1;
  });
  // Benchmark-backed runs use the batched oracle: optimizers hand whole
  // populations to query_accuracy_batch, which dedupes against the query
  // cache and runs one vectorized prediction. Trajectories are identical
  // to the scalar path (batched prediction is bit-identical).
  SearchOracle sim_oracle = BatchEvalOracle([&](std::span<const Arch> archs) {
    return bench.query_accuracy_batch(archs);
  });

  std::vector<std::unique_ptr<NasOptimizer>> optimizers;
  optimizers.push_back(std::make_unique<RandomSearchNas>(sp));
  optimizers.push_back(
      std::make_unique<RegularizedEvolution>(RegularizedEvolutionParams{}, sp));
  optimizers.push_back(std::make_unique<Reinforce>(ReinforceParams{}, sp));

  std::vector<TrajectoryComparison> out;
  for (const auto& optimizer : optimizers) {
    TrajectoryComparison cmp;
    cmp.optimizer = optimizer->name();

    Rng true_rng(hash_combine(config.seed, 0x7101));
    cmp.true_incumbent =
        optimizer->run(true_oracle, config.n_evals, true_rng).incumbent;

    cmp.sim_mean_incumbent.assign(static_cast<std::size_t>(config.n_evals),
                                  0.0);
    for (int s = 0; s < config.n_sim_seeds; ++s) {
      Rng sim_rng(hash_combine(config.seed,
                               0x51A0 + static_cast<std::uint64_t>(s)));
      auto traj = optimizer->run(sim_oracle, config.n_evals, sim_rng);
      for (std::size_t i = 0; i < traj.incumbent.size(); ++i)
        cmp.sim_mean_incumbent[i] += traj.incumbent[i];
      cmp.sim_incumbents.push_back(std::move(traj.incumbent));
    }
    for (double& v : cmp.sim_mean_incumbent) v /= config.n_sim_seeds;
    out.push_back(std::move(cmp));
  }
  return out;
}

std::vector<TrajectoryComparison> compare_trajectories(
    const AccelNASBench& bench, const TrainingSimulator& sim,
    const TrainingScheme& p_star, const TrajectoryConfig& config) {
  return compare_trajectories(bench, MnasSpaceSim(sim), p_star, config);
}

ParetoOutcome pareto_search(const AccelNASBench& bench,
                            const ParetoSearchConfig& config) {
  ANB_CHECK(bench.has_accuracy(), "pareto_search: missing accuracy surrogate");
  ANB_CHECK(bench.has_perf(config.key),
            "pareto_search: missing perf surrogate for the target device");
  ANB_CHECK(config.n_targets >= 1 && config.n_evals_per_target >= 1,
            "pareto_search: invalid budgets");

  const SearchSpace& sp = anb::space(bench.space());
  const bool higher_better = config.key.metric == PerfMetric::kThroughput;

  // Estimate the device's performance range to place the reward targets.
  Rng range_rng(hash_combine(config.seed, 0xFA2));
  std::vector<double> sampled_perf;
  for (int i = 0; i < 256; ++i) {
    sampled_perf.push_back(
        bench.query_perf(sp.sample(range_rng), config.key));
  }

  ParetoOutcome out;
  for (int t = 0; t < config.n_targets; ++t) {
    const double q =
        config.n_targets > 1
            ? 0.1 + 0.8 * static_cast<double>(t) / (config.n_targets - 1)
            : 0.5;
    const double target = std::max(1e-9, quantile(sampled_perf, q));
    const double w = higher_better ? config.weight : -config.weight;

    SearchOracle reward_oracle = EvalOracle([&](const Arch& arch) {
      const double acc = bench.query_accuracy(arch);
      const double perf = bench.query_perf(arch, config.key);
      return mnasnet_reward(acc, std::max(perf, 1e-9), target, w);
    });

    Reinforce optimizer(ReinforceParams{}, sp);
    Rng rng(hash_combine(config.seed, 0xB10 + static_cast<std::uint64_t>(t)));
    const auto traj =
        optimizer.run(reward_oracle, config.n_evals_per_target, rng);
    // Batched re-scoring of the whole trajectory; every architecture was
    // already queried inside reward_oracle, so these are pure cache hits.
    const std::vector<double> accs = bench.query_accuracy_batch(
        std::span<const Arch>(traj.archs));
    const std::vector<double> perfs = bench.query_perf_batch(
        std::span<const Arch>(traj.archs), config.key);
    for (std::size_t i = 0; i < traj.archs.size(); ++i) {
      out.archs.push_back(traj.archs[i]);
      out.accuracy.push_back(accs[i]);
      out.perf.push_back(perfs[i]);
    }
  }

  out.front = pareto_front(out.accuracy, out.perf, /*maximize1=*/true,
                           /*maximize2=*/higher_better);

  // Dedupe identical architectures on the front (keep first occurrence).
  {
    std::vector<std::size_t> unique_front;
    std::vector<std::uint64_t> seen;
    for (std::size_t idx : out.front) {
      const std::uint64_t key = sp.to_index(out.archs[idx]);
      if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
        seen.push_back(key);
        unique_front.push_back(idx);
      }
    }
    out.front = std::move(unique_front);
  }

  // "Hand-picked" stars: spread selections along the front.
  const int n_picks =
      std::min<int>(config.n_picks, static_cast<int>(out.front.size()));
  for (int p = 0; p < n_picks; ++p) {
    const double pos = n_picks > 1
                           ? static_cast<double>(p) / (n_picks - 1)
                           : 0.5;
    const auto at = static_cast<std::size_t>(
        std::lround(pos * static_cast<double>(out.front.size() - 1)));
    out.picks.push_back(out.front[at]);
  }
  return out;
}

std::vector<TrueEvalRow> true_evaluation(const ParetoOutcome& outcome,
                                         const SpaceSim& sim, MetricKey key,
                                         const std::string& tag,
                                         std::uint64_t seed) {
  const Device dev = make_device(key.device);
  // FPGA DPUs run int8: the paper applies 8-bit post-training quantization
  // before deployment (§3.3.2), so reported accuracies take the PTQ hit.
  const bool quantized = device_supports_latency(key.device);
  auto measure = [&](const ModelIR& ir, std::uint64_t s) {
    switch (key.metric) {
      case PerfMetric::kThroughput: return dev.measure_throughput(ir, s);
      case PerfMetric::kLatency: return dev.measure_latency(ir, s);
      case PerfMetric::kEnergy: return dev.measure_energy(ir, s);
      case PerfMetric::kPeakMemory: return dev.measure_peak_memory(ir, s);
    }
    throw Error("true_evaluation: unknown metric");
  };
  auto accuracy_of = [&](const Arch& arch) {
    double acc = sim.train(arch, reference_scheme(), seed).top1;
    if (quantized) acc -= sim.int8_accuracy_drop(arch);
    return acc;
  };

  std::vector<TrueEvalRow> rows;
  char suffix = 'a';
  for (std::size_t pick : outcome.picks) {
    ANB_CHECK(pick < outcome.archs.size(),
              "true_evaluation: pick index out of range");
    TrueEvalRow row;
    row.name = "anb-" + tag + "-" + std::string(1, suffix++);
    row.accuracy = accuracy_of(outcome.archs[pick]);
    row.perf = measure(sim.lower(outcome.archs[pick], 224),
                       hash_combine(seed, pick));
    row.is_ours = true;
    rows.push_back(std::move(row));
  }
  // The reference-zoo baselines are MnasNet models; on other spaces there
  // is no published baseline set to compare against.
  if (sim.space().id() == SpaceId::kMnasNet) {
    for (const auto& baseline : reference_zoo()) {
      const Arch arch = MnasSpace::from_blocks(baseline.arch);
      TrueEvalRow row;
      row.name = baseline.name;
      row.accuracy = accuracy_of(arch);
      row.perf = measure(sim.lower(arch, 224),
                         hash_combine(seed, baseline.arch.hash()));
      row.is_ours = false;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<TrueEvalRow> true_evaluation(const ParetoOutcome& outcome,
                                         const TrainingSimulator& sim,
                                         MetricKey key, const std::string& tag,
                                         std::uint64_t seed) {
  return true_evaluation(outcome, MnasSpaceSim(sim), key, tag, seed);
}

}  // namespace anb
