#include "anb/anb/collection.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <set>
#include <utility>

#include "anb/ir/model_ir.hpp"
#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

void RetryPolicy::validate() const {
  ANB_CHECK(max_read_attempts >= 1,
            "RetryPolicy: max_read_attempts must be >= 1");
  ANB_CHECK(outlier_tolerance > 0.0,
            "RetryPolicy: outlier_tolerance must be > 0");
  ANB_CHECK(outlier_reads >= 3 && outlier_reads % 2 == 1,
            "RetryPolicy: outlier_reads must be an odd count >= 3");
  ANB_CHECK(max_quarantine_frac >= 0.0 && max_quarantine_frac <= 1.0,
            "RetryPolicy: max_quarantine_frac must be in [0, 1]");
}

Dataset CollectedData::make_dataset(std::span<const double> labels) const {
  ANB_CHECK(labels.size() == archs.size(),
            "CollectedData::make_dataset: label/arch count mismatch");
  const SearchSpace& sp = anb::space(space);
  Dataset out(static_cast<std::size_t>(sp.feature_dim()));
  for (std::size_t i = 0; i < archs.size(); ++i)
    out.add(sp.features(archs[i]), labels[i]);
  return out;
}

Dataset CollectedData::perf_dataset(MetricKey key) const {
  const auto it = perf.find(dataset_name(key));
  ANB_CHECK(it != perf.end(),
            "CollectedData: no labels for " + dataset_name(key));
  return make_dataset(it->second);
}

namespace {

/// Per-sample failure accounting, filled independently for each work item
/// inside the parallel measurement loop and reduced in index order — the
/// report totals are therefore exact and identical at any thread count.
struct SampleCounters {
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t transient_errors = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected_outliers = 0;
  bool outlier_resolved = false;
  bool quarantined = false;
};

bool readings_agree(double a, double b, double tolerance) {
  return std::abs(a - b) <= tolerance * std::max(std::abs(a), std::abs(b));
}

/// One robust sample following the RetryPolicy protocol. `read` performs a
/// physical measurement for the given attempt number and may throw
/// TransientError/TimeoutError; attempts are numbered monotonically across
/// the whole sample so injected faults are deterministic per reading.
/// Returns std::nullopt when some reading exhausted its retry budget (the
/// architecture is then quarantined by the caller).
std::optional<double> robust_sample(
    const std::function<double(std::uint64_t)>& read, const RetryPolicy& rp,
    SampleCounters& c) {
  std::uint64_t attempt = 0;
  const auto read_with_retry = [&]() -> std::optional<double> {
    for (int t = 0; t < rp.max_read_attempts; ++t) {
      ++c.attempts;
      try {
        return read(attempt++);
      } catch (const TransientError&) {
        ++c.transient_errors;
        ++c.retries;
      } catch (const TimeoutError&) {
        ++c.timeouts;
        ++c.retries;
      }
    }
    return std::nullopt;
  };

  const auto first = read_with_retry();
  if (!first) {
    c.quarantined = true;
    return std::nullopt;
  }
  const auto second = read_with_retry();
  if (!second) {
    c.quarantined = true;
    return std::nullopt;
  }
  if (readings_agree(*first, *second, rp.outlier_tolerance)) return *first;

  // Disagreement: one of the two readings is an outlier. Re-measure to
  // `outlier_reads` total readings and accept the median — on a device
  // whose clean readings repeat exactly (same seed), the median recovers
  // the fault-free value whenever a majority of readings is clean.
  c.outlier_resolved = true;
  std::vector<double> readings{*first, *second};
  while (static_cast<int>(readings.size()) < rp.outlier_reads) {
    const auto next = read_with_retry();
    if (!next) {
      c.quarantined = true;
      return std::nullopt;
    }
    readings.push_back(*next);
  }
  std::vector<double> sorted = readings;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  for (const double r : readings) {
    if (!readings_agree(r, median, rp.outlier_tolerance))
      ++c.rejected_outliers;
  }
  return median;
}

/// Keeps only the elements of `v` whose index is not marked quarantined.
template <typename T>
void drop_quarantined(std::vector<T>& v,
                      const std::vector<std::uint8_t>& quarantined) {
  std::vector<T> kept;
  kept.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (quarantined[i] == 0) kept.push_back(std::move(v[i]));
  }
  v = std::move(kept);
}

}  // namespace

DataCollector::DataCollector(const SpaceSim& sim, std::vector<Device> devices)
    : sim_(&sim), devices_(std::move(devices)) {}

DataCollector::DataCollector(const TrainingSimulator& simulator,
                             std::vector<Device> devices)
    : owned_(std::make_unique<MnasSpaceSim>(simulator)),
      sim_(owned_.get()),
      devices_(std::move(devices)) {}

CollectedData DataCollector::collect(const CollectionConfig& config) const {
  ANB_CHECK(config.n_archs >= 1, "DataCollector: n_archs must be >= 1");
  config.scheme.validate();
  config.retry.validate();
  ANB_SPAN("anb.collect");

  const SearchSpace& sp = sim_->space();
  CollectedData data;
  data.space = sp.id();
  Rng rng(config.seed);
  std::set<std::uint64_t> seen;
  data.archs.reserve(static_cast<std::size_t>(config.n_archs));
  while (static_cast<int>(data.archs.size()) < config.n_archs) {
    Arch arch = sp.sample(rng);
    if (!seen.insert(sp.to_index(arch)).second) continue;
    data.archs.push_back(arch);
  }
  const std::size_t n = data.archs.size();

  // Accuracy labels: one proxified training run per architecture. Each
  // run's randomness is keyed by its index, so the loop parallelizes with
  // bit-identical results (the paper used a 24-GPU cluster here).
  data.accuracy.resize(n);
  std::vector<double> gpu_hours(n, 0.0);
  {
    ANB_SPAN("anb.collect.accuracy");
    parallel_for(n, [&](std::size_t i) {
      const TrainResult run =
          sim_->train(data.archs[i], config.scheme, /*run_seed=*/i);
      data.accuracy[i] = run.top1;
      gpu_hours[i] = run.gpu_hours;
    });
  }
  for (double h : gpu_hours) data.total_gpu_hours += h;

  // Performance labels: robust warm-up-and-average measurement per device
  // (retry, outlier rejection, quarantine — see RetryPolicy). Model IRs
  // are shared across devices, built once up front.
  if (config.collect_perf) {
    std::vector<ModelIR> irs(n);
    {
      ANB_SPAN("anb.collect.ir_build");
      parallel_for(n, [&](std::size_t i) {
        irs[i] = sim_->lower(data.archs[i], 224);
      });
    }

    // Archs quarantined by a *kept* dataset; a dataset that fails as a
    // whole is dropped without poisoning the survivors.
    std::vector<std::uint8_t> quarantined(n, 0);

    const auto measure_dataset =
        [&](const std::string& name,
            const std::function<double(std::size_t, std::uint64_t)>& read) {
          ANB_SPAN("anb.collect.measure." + name);
          std::vector<double> values(n, 0.0);
          std::vector<SampleCounters> counters(n);
          parallel_for(n, [&](std::size_t i) {
            const auto value = robust_sample(
                [&](std::uint64_t attempt) { return read(i, attempt); },
                config.retry, counters[i]);
            if (value) values[i] = *value;
          });

          // Serial, index-ordered reduction: exact and thread-invariant.
          std::size_t n_quarantined = 0;
          for (const SampleCounters& c : counters) {
            data.report.attempts += c.attempts;
            data.report.retries += c.retries;
            data.report.transient_errors += c.transient_errors;
            data.report.timeouts += c.timeouts;
            data.report.rejected_outliers += c.rejected_outliers;
            data.report.outlier_resolves += c.outlier_resolved ? 1 : 0;
            n_quarantined += c.quarantined ? 1 : 0;
          }
          const double frac =
              static_cast<double>(n_quarantined) / static_cast<double>(n);
          if (frac > config.retry.max_quarantine_frac) {
            data.report.failed_datasets.push_back(name);
            return;  // dataset failed as a whole: skip, do not quarantine
          }
          for (std::size_t i = 0; i < n; ++i) {
            if (counters[i].quarantined) quarantined[i] = 1;
          }
          data.perf[name] = std::move(values);
        };

    for (const auto& device : devices_) {
      const auto seed_of = [&](std::size_t i) {
        return hash_combine(config.seed, i);
      };
      measure_dataset(dataset_name(MetricKey{device.kind(), PerfMetric::kThroughput}),
                      [&](std::size_t i, std::uint64_t attempt) {
                        return device.measure_throughput(irs[i], seed_of(i),
                                                         attempt);
                      });
      if (device.supports_latency()) {
        measure_dataset(dataset_name(MetricKey{device.kind(), PerfMetric::kLatency}),
                        [&](std::size_t i, std::uint64_t attempt) {
                          return device.measure_latency(irs[i], seed_of(i),
                                                        attempt);
                        });
      }
      if (config.collect_energy) {
        measure_dataset(dataset_name(MetricKey{device.kind(), PerfMetric::kEnergy}),
                        [&](std::size_t i, std::uint64_t attempt) {
                          return device.measure_energy(irs[i], seed_of(i),
                                                       attempt);
                        });
      }
      if (config.collect_peak_memory) {
        measure_dataset(dataset_name(MetricKey{device.kind(), PerfMetric::kPeakMemory}),
                        [&](std::size_t i, std::uint64_t attempt) {
                          return device.measure_peak_memory(irs[i], seed_of(i),
                                                            attempt);
                        });
      }
    }

    // Drop quarantined architectures from every surviving vector, keeping
    // rows aligned. The report keeps the dropped architectures themselves.
    if (std::find(quarantined.begin(), quarantined.end(), 1) !=
        quarantined.end()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (quarantined[i] != 0) data.report.quarantined.push_back(data.archs[i]);
      }
      drop_quarantined(data.archs, quarantined);
      drop_quarantined(data.accuracy, quarantined);
      for (auto& [name, labels] : data.perf)
        drop_quarantined(labels, quarantined);
    }
  }

  // Export the run's failure accounting to the metrics registry, once, from
  // the already thread-invariant CollectionReport — the counters inherit its
  // determinism instead of re-deriving it.
  obs::counter("anb.collect.archs").add(data.archs.size());
  obs::counter("anb.collect.attempts").add(data.report.attempts);
  obs::counter("anb.collect.retries").add(data.report.retries);
  obs::counter("anb.collect.transient_errors")
      .add(data.report.transient_errors);
  obs::counter("anb.collect.timeouts").add(data.report.timeouts);
  obs::counter("anb.collect.outlier_resolves")
      .add(data.report.outlier_resolves);
  obs::counter("anb.collect.rejected_outliers")
      .add(data.report.rejected_outliers);
  obs::counter("anb.collect.quarantined").add(data.report.quarantined.size());
  obs::counter("anb.collect.failed_datasets")
      .add(data.report.failed_datasets.size());
  return data;
}

}  // namespace anb
