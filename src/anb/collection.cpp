#include "anb/anb/collection.hpp"

#include <set>

#include "anb/ir/model_ir.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

Dataset CollectedData::make_dataset(std::span<const double> labels) const {
  ANB_CHECK(labels.size() == archs.size(),
            "CollectedData::make_dataset: label/arch count mismatch");
  Dataset out(static_cast<std::size_t>(SearchSpace::feature_dim()));
  for (std::size_t i = 0; i < archs.size(); ++i)
    out.add(SearchSpace::features(archs[i]), labels[i]);
  return out;
}

Dataset CollectedData::perf_dataset(DeviceKind kind, PerfMetric metric) const {
  const auto it = perf.find(dataset_name(kind, metric));
  ANB_CHECK(it != perf.end(), "CollectedData: no labels for " +
                                  dataset_name(kind, metric));
  return make_dataset(it->second);
}

DataCollector::DataCollector(const TrainingSimulator& simulator,
                             std::vector<Device> devices)
    : sim_(simulator), devices_(std::move(devices)) {}

CollectedData DataCollector::collect(const CollectionConfig& config) const {
  ANB_CHECK(config.n_archs >= 1, "DataCollector: n_archs must be >= 1");
  config.scheme.validate();

  CollectedData data;
  Rng rng(config.seed);
  std::set<std::uint64_t> seen;
  data.archs.reserve(static_cast<std::size_t>(config.n_archs));
  while (static_cast<int>(data.archs.size()) < config.n_archs) {
    Architecture arch = SearchSpace::sample(rng);
    if (!seen.insert(SearchSpace::to_index(arch)).second) continue;
    data.archs.push_back(arch);
  }

  // Accuracy labels: one proxified training run per architecture. Each
  // run's randomness is keyed by its index, so the loop parallelizes with
  // bit-identical results (the paper used a 24-GPU cluster here).
  data.accuracy.resize(data.archs.size());
  std::vector<double> gpu_hours(data.archs.size(), 0.0);
  parallel_for(data.archs.size(), [&](std::size_t i) {
    const TrainResult run =
        sim_.train(data.archs[i], config.scheme, /*run_seed=*/i);
    data.accuracy[i] = run.top1;
    gpu_hours[i] = run.gpu_hours;
  });
  for (double h : gpu_hours) data.total_gpu_hours += h;

  // Performance labels: warm-up-and-average measurement per device.
  if (config.collect_perf) {
    for (const auto& device : devices_) {
      auto& thr =
          data.perf[dataset_name(device.kind(), PerfMetric::kThroughput)];
      thr.reserve(data.archs.size());
      std::vector<double>* lat = nullptr;
      if (device.supports_latency()) {
        lat = &data.perf[dataset_name(device.kind(), PerfMetric::kLatency)];
        lat->reserve(data.archs.size());
      }
      std::vector<double>* enr = nullptr;
      if (config.collect_energy) {
        enr = &data.perf[dataset_name(device.kind(), PerfMetric::kEnergy)];
        enr->resize(data.archs.size());
      }
      thr.resize(data.archs.size());
      if (lat != nullptr) lat->resize(data.archs.size());
      parallel_for(data.archs.size(), [&](std::size_t i) {
        const ModelIR ir = build_ir(data.archs[i], 224);
        const std::uint64_t seed = hash_combine(config.seed, i);
        thr[i] = device.measure_throughput(ir, seed);
        if (lat != nullptr) (*lat)[i] = device.measure_latency(ir, seed);
        if (enr != nullptr) (*enr)[i] = device.measure_energy(ir, seed);
      });
    }
  }
  return data;
}

}  // namespace anb
