#include "anb/anb/proxy_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "anb/hpo/optimizers.hpp"
#include "anb/ir/model_ir.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/util/error.hpp"
#include "anb/util/metrics.hpp"

namespace anb {

ProxySearch::ProxySearch(const SpaceSim& sim) : sim_(&sim) {}

ProxySearch::ProxySearch(const TrainingSimulator& simulator)
    : owned_(std::make_unique<MnasSpaceSim>(simulator)), sim_(owned_.get()) {}

std::vector<Arch> ProxySearch::stratified_models(int n, Rng& rng) const {
  ANB_CHECK(n >= 2, "ProxySearch::stratified_models: n must be >= 2");
  // Draw a pool, dedupe, then stratify by FLOPs into n quantile buckets and
  // pick the params-median model of each bucket (even FLOPs x params spread).
  const SearchSpace& sp = sim_->space();
  const int pool_size = std::max(40 * n, 400);
  struct PoolEntry {
    Arch arch;
    double macs;
    double params;
  };
  std::vector<PoolEntry> pool;
  std::set<std::uint64_t> seen;
  while (static_cast<int>(pool.size()) < pool_size) {
    Arch arch = sp.sample(rng);
    if (!seen.insert(sp.to_index(arch)).second) continue;
    const ModelIR ir = sim_->lower(arch, 224);
    pool.push_back({arch, static_cast<double>(ir.total_macs()),
                    static_cast<double>(ir.total_params())});
  }
  std::sort(pool.begin(), pool.end(),
            [](const PoolEntry& a, const PoolEntry& b) {
              return a.macs < b.macs;
            });

  std::vector<Arch> models;
  models.reserve(static_cast<std::size_t>(n));
  const std::size_t bucket = pool.size() / static_cast<std::size_t>(n);
  for (int b = 0; b < n; ++b) {
    const std::size_t lo = static_cast<std::size_t>(b) * bucket;
    const std::size_t hi =
        b + 1 == n ? pool.size() : lo + bucket;
    // Params-median entry of the bucket.
    std::vector<std::size_t> idx;
    for (std::size_t i = lo; i < hi; ++i) idx.push_back(i);
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t c) {
      return pool[a].params < pool[c].params;
    });
    models.push_back(pool[idx[idx.size() / 2]].arch);
  }
  return models;
}

ProxyTrial ProxySearch::evaluate_scheme(
    const TrainingScheme& scheme, const std::vector<Arch>& models,
    std::span<const double> reference_acc, double t_spec_hours) const {
  ANB_CHECK(models.size() == reference_acc.size(),
            "ProxySearch::evaluate_scheme: model/reference size mismatch");
  std::vector<double> acc(models.size());
  double cost = 0.0;
  for (std::size_t i = 0; i < models.size(); ++i) {
    const TrainResult run = sim_->train(models[i], scheme, /*run_seed=*/0);
    acc[i] = run.top1;
    cost += run.gpu_hours;
  }
  ProxyTrial trial;
  trial.scheme = scheme;
  trial.tau = kendall_tau(acc, reference_acc);
  trial.cost_hours = cost / static_cast<double>(models.size());
  trial.feasible = trial.cost_hours <= t_spec_hours;
  return trial;
}

ProxySearchOutcome ProxySearch::finalize(
    std::vector<ProxyTrial> trials,
    const std::vector<Arch>& models) const {
  ANB_CHECK(!trials.empty(), "ProxySearch: no trials evaluated");
  const ProxyTrial* best = nullptr;
  for (const auto& t : trials) {
    if (!t.feasible) continue;
    if (best == nullptr || t.tau > best->tau) best = &t;
  }
  ANB_CHECK(best != nullptr,
            "ProxySearch: no scheme satisfied the t_spec budget");

  ProxySearchOutcome out;
  out.best = best->scheme;
  out.best_tau = best->tau;
  out.best_cost_hours = best->cost_hours;
  double ref_cost = 0.0;
  for (const auto& m : models)
    ref_cost += sim_->training_cost_hours(m, reference_scheme());
  out.reference_cost_hours = ref_cost / static_cast<double>(models.size());
  out.speedup = out.reference_cost_hours / out.best_cost_hours;
  out.trials = std::move(trials);
  return out;
}

ProxySearchOutcome ProxySearch::run_grid(const ProxySearchConfig& config) const {
  Rng rng(config.seed);
  const auto models = stratified_models(config.n_models, rng);
  std::vector<double> ref_acc(models.size());
  for (std::size_t i = 0; i < models.size(); ++i)
    ref_acc[i] = sim_->train(models[i], reference_scheme(), 0).top1;

  std::vector<ProxyTrial> trials;
  for (const auto& scheme : config.domains.enumerate_valid()) {
    trials.push_back(
        evaluate_scheme(scheme, models, ref_acc, config.t_spec_hours));
    if (config.early_stop_tau > 0.0 && trials.back().feasible &&
        trials.back().tau >= config.early_stop_tau) {
      break;
    }
  }
  return finalize(std::move(trials), models);
}

ConfigSpace ProxySearch::scheme_space(const ProxyDomains& domains) {
  auto to_doubles = [](const std::vector<int>& xs) {
    std::vector<double> out(xs.begin(), xs.end());
    return out;
  };
  ConfigSpace space;
  space.add_categorical("b", to_doubles(domains.batch_size));
  space.add_categorical("e_t", to_doubles(domains.total_epochs));
  space.add_categorical("e_s", to_doubles(domains.resize_start_epoch));
  space.add_categorical("e_f", to_doubles(domains.resize_finish_epoch));
  space.add_categorical("res_s", to_doubles(domains.res_start));
  space.add_categorical("res_f", to_doubles(domains.res_finish));
  return space;
}

TrainingScheme ProxySearch::scheme_from_config(const Configuration& config) {
  TrainingScheme s;
  s.batch_size = config.get_int("b");
  s.total_epochs = config.get_int("e_t");
  s.resize_start_epoch = config.get_int("e_s");
  s.resize_finish_epoch = config.get_int("e_f");
  s.res_start = config.get_int("res_s");
  s.res_finish = config.get_int("res_f");
  s.validate();
  return s;
}

bool ProxySearch::scheme_config_valid(const Configuration& config) {
  return config.get_int("e_s") <= config.get_int("e_f") &&
         config.get_int("e_f") <= config.get_int("e_t") &&
         config.get_int("res_s") <= config.get_int("res_f");
}

ProxySearchOutcome ProxySearch::run_with(const std::string& optimizer,
                                         const ProxySearchConfig& config,
                                         int budget) const {
  if (optimizer == "grid") return run_grid(config);

  Rng rng(config.seed);
  const auto models = stratified_models(config.n_models, rng);
  std::vector<double> ref_acc(models.size());
  for (std::size_t i = 0; i < models.size(); ++i)
    ref_acc[i] = sim_->train(models[i], reference_scheme(), 0).top1;

  std::vector<ProxyTrial> trials;
  // Minimized objective: -τ, with an infeasibility penalty proportional to
  // the budget overshoot so the optimizer is steered back into the region.
  HpoObjective objective = [&](const Configuration& c) {
    if (!scheme_config_valid(c)) return 10.0;  // invalid epoch/res ordering
    const TrainingScheme scheme = scheme_from_config(c);
    ProxyTrial trial =
        evaluate_scheme(scheme, models, ref_acc, config.t_spec_hours);
    trials.push_back(trial);
    double value = -trial.tau;
    if (!trial.feasible) {
      value += 1.0 + (trial.cost_hours - config.t_spec_hours) /
                         config.t_spec_hours;
    }
    return value;
  };

  const ConfigSpace space = scheme_space(config.domains);
  Rng opt_rng(hash_combine(config.seed, 0xBEEF));
  if (optimizer == "random") {
    RandomSearchHpo::run(space, objective, budget, opt_rng);
  } else if (optimizer == "smac") {
    SmacLite::Options options;
    options.n_trials = budget;
    options.filter = scheme_config_valid;
    SmacLite::run(space, objective, options, opt_rng);
  } else {
    throw Error("ProxySearch::run_with: unknown optimizer '" + optimizer +
                "'");
  }
  return finalize(std::move(trials), models);
}

}  // namespace anb
