#include "anb/anb/pipeline.hpp"

#include "anb/obs/span.hpp"
#include "anb/surrogate/ensemble.hpp"

#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {

TrainingScheme canonical_p_star() {
  // Grid-search winner under the default domains / 3 GPU-hour budget:
  // moderate epochs with a progressive 192->224 resolution ramp keeps
  // rankings intact (tau ~ 0.93) at ~7x lower cost than the reference.
  TrainingScheme p;
  p.batch_size = 512;
  p.total_epochs = 30;
  p.resize_start_epoch = 0;
  p.resize_finish_epoch = 15;
  p.res_start = 192;
  p.res_finish = 224;
  p.validate();
  return p;
}

PipelineResult construct_benchmark(const PipelineOptions& options) {
  ANB_SPAN("anb.pipeline.construct");
  PipelineResult result;
  const std::unique_ptr<SpaceSim> sim =
      make_space_sim(options.space, options.world_seed);

  // --- 1. training-proxy scheme -----------------------------------------
  if (options.run_proxy_search) {
    ANB_SPAN("anb.pipeline.proxy_search");
    ProxySearch search(*sim);
    result.proxy = search.run_grid(options.proxy);
    result.p_star = result.proxy.best;
  } else {
    result.p_star = canonical_p_star();
  }

  // --- 2. dataset collection ---------------------------------------------
  CollectionConfig collection;
  collection.n_archs = options.n_archs;
  collection.seed = hash_combine(options.world_seed, 0xC011EC7);
  collection.scheme = result.p_star;
  collection.collect_perf = options.collect_perf;
  collection.collect_energy = options.collect_energy;
  collection.collect_peak_memory = options.collect_peak_memory;
  std::vector<Device> devices;
  if (options.devices.empty()) {
    devices = device_catalog();
  } else {
    for (DeviceKind kind : options.devices) devices.push_back(make_device(kind));
  }
  DataCollector collector(*sim, devices);
  {
    ANB_SPAN("anb.pipeline.collect");
    result.data = collector.collect(collection);
  }
  result.bench.set_space(options.space);

  // --- 3. surrogate fitting ----------------------------------------------
  // Every dataset x metric fit is independent: each derives its seeds from
  // the task name alone, so the fitted models do not depend on evaluation
  // order and the whole batch can fan out across threads. Results land in
  // per-task slots and are assembled serially afterwards.
  auto fit_one = [&](const Dataset& full, const std::string& name,
                     FitMetrics& test_metrics) -> std::unique_ptr<Surrogate> {
    Rng split_rng(hash_combine(options.split_seed, name.size()));
    DatasetSplits splits =
        full.split(options.train_frac, options.val_frac, split_rng);
    std::unique_ptr<Surrogate> model;
    if (options.tune) {
      TuneOptions tuning = options.tuning;
      tuning.seed = hash_combine(options.world_seed, name.size() * 131);
      model = tune_surrogate(SurrogateKind::kXgb, splits.train, splits.val,
                             tuning)
                  .model;
    } else {
      model = make_default_surrogate(SurrogateKind::kXgb);
      Rng fit_rng(hash_combine(options.world_seed, 0xF17 + name.size()));
      model->fit(splits.train, fit_rng);
    }
    test_metrics = model->evaluate(splits.test);
    return model;
  };

  struct FitTask {
    Dataset data;  ///< materialized here (the accessors return by value)
    std::string name;
    bool is_accuracy = false;
    MetricKey key{};
  };
  std::vector<FitTask> tasks;
  if (!options.ensemble_accuracy) {
    tasks.push_back({result.data.accuracy_dataset(), "ANB-Acc", true, {}});
  }
  if (options.collect_perf) {
    for (const auto& device : devices) {
      std::vector<PerfMetric> metrics{PerfMetric::kThroughput};
      if (device.supports_latency()) metrics.push_back(PerfMetric::kLatency);
      if (options.collect_energy) metrics.push_back(PerfMetric::kEnergy);
      if (options.collect_peak_memory)
        metrics.push_back(PerfMetric::kPeakMemory);
      for (PerfMetric metric : metrics) {
        const MetricKey key{device.kind(), metric};
        const std::string name = dataset_name(key);
        // A dataset the collector dropped (too many quarantined archs, see
        // CollectionReport::failed_datasets) degrades gracefully: skip the
        // fit and report the gap instead of aborting the construction.
        if (result.data.perf.count(name) == 0) {
          result.skipped_datasets.push_back(name);
          continue;
        }
        tasks.push_back({result.data.perf_dataset(key), name, false, key});
      }
    }
  }

  std::vector<std::unique_ptr<Surrogate>> models(tasks.size());
  std::vector<FitMetrics> task_metrics(tasks.size());
  {
    ANB_SPAN("anb.pipeline.fit");
    parallel_for(tasks.size(), [&](std::size_t i) {
      models[i] = fit_one(tasks[i].data, tasks[i].name, task_metrics[i]);
    });
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ANB_CHECK(models[i] != nullptr,
              "construct_benchmark: fit task '" + tasks[i].name +
                  "' produced no model");
    result.test_metrics[tasks[i].name] = task_metrics[i];
    if (tasks[i].is_accuracy) {
      result.bench.set_accuracy_surrogate(std::move(models[i]));
    } else {
      result.bench.set_perf_surrogate(tasks[i].key, std::move(models[i]));
    }
  }

  if (options.ensemble_accuracy) {
    // Bootstrap ensemble of XGBs: mean queries plus NB301-style noise.
    ANB_SPAN("anb.pipeline.fit");
    Rng split_rng(hash_combine(options.split_seed, 7));
    DatasetSplits splits = result.data.accuracy_dataset().split(
        options.train_frac, options.val_frac, split_rng);
    auto ensemble = std::make_unique<EnsembleSurrogate>(
        [] { return make_default_surrogate(SurrogateKind::kXgb); },
        options.ensemble_size);
    Rng fit_rng(hash_combine(options.world_seed, 0xE5E3));
    ensemble->fit(splits.train, fit_rng);
    result.test_metrics["ANB-Acc"] = ensemble->evaluate(splits.test);
    result.bench.set_accuracy_surrogate(std::move(ensemble));
  }
  return result;
}

}  // namespace anb
