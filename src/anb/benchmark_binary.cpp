// Binary .anbb persistence of the whole benchmark: every surrogate's
// arrays land in container sections (anb/util/binary.hpp) and a single
// JSON meta section — written last — records the structure and the
// section indices. The text format (benchmark.cpp) stays the
// import/export interchange; this is the fast load path.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/binary.hpp"
#include "anb/util/error.hpp"
#include "anb/util/fault.hpp"

namespace anb {

namespace {
/// Layout of the Tag::kSpace section: a tiny versioned descriptor. The
/// section version covers this struct alone, so the space record can grow
/// without bumping the container's format version; a reader rejects
/// section versions it does not know. Artifacts written before the
/// multi-space redesign have no kSpace section and load as MnasNet.
inline constexpr std::uint32_t kSpaceSectionVersion = 1;
struct SpaceSection {
  std::uint32_t version = kSpaceSectionVersion;
  std::uint32_t space_id = 0;
};
static_assert(sizeof(SpaceSection) == 8);
}  // namespace

void AccelNASBench::save_binary(const std::string& path) const {
  ANB_SPAN("anb.benchmark.save_binary");
  bin::Writer w;
  const SpaceSection space_record{kSpaceSectionVersion,
                                  static_cast<std::uint32_t>(space_)};
  w.add_section(bin::Tag::kSpace,
                {reinterpret_cast<const char*>(&space_record),
                 sizeof(space_record)},
                alignof(SpaceSection));
  Json meta = Json::object();
  meta["format"] = "accel-nasbench-v1";
  if (accuracy_ != nullptr) meta["accuracy"] = accuracy_->to_binary(w);
  Json perf = Json::object();
  // std::map iteration order makes the section layout — and thus the whole
  // file — deterministic: save→load→save_binary is byte-stable.
  for (const auto& [key, surrogate] : perf_)
    perf[perf_json_key(key)] = surrogate->to_binary(w);
  meta["perf"] = std::move(perf);
  const std::string text = meta.dump();
  w.add_section(bin::Tag::kMeta, {text.data(), text.size()}, 1);
  const std::vector<char> file = w.finish();
  if (fault::any_armed()) {
    if (const auto fire = fault::should_fire(kBenchmarkSaveFaultSite)) {
      // Short write: a prefix of the container reaches disk, then the
      // write "fails". The header's file-size field and the checksum both
      // reject the truncated file at load time.
      const auto cut = static_cast<std::size_t>(
          fire->uniform() * static_cast<double>(file.size()));
      io::write_file(path, std::span<const char>(file).first(cut));
      throw Error("AccelNASBench::save_binary: injected short write to " +
                  path);
    }
  }
  io::write_file(path, file);
}

AccelNASBench AccelNASBench::load_binary_buffer(
    std::shared_ptr<const io::Buffer> buffer) {
  ANB_CHECK(buffer != nullptr,
            "AccelNASBench::load_binary: null buffer");
  if (fault::any_armed()) {
    if (const auto fire = fault::should_fire(kBenchmarkLoadFaultSite)) {
      // Short read: only a prefix of the container arrives. A heap copy
      // stands in for the truncated stream; the Reader's size check
      // throws anb::Error below. (No zero-copy concern on a fault path.)
      const auto cut = static_cast<std::size_t>(
          fire->uniform() * static_cast<double>(buffer->size()));
      buffer = io::Buffer::from_bytes(
          std::vector<char>(buffer->data(), buffer->data() + cut));
    }
  }
  const bin::Reader r(std::move(buffer));
  ANB_CHECK(r.num_sections() >= 1, "AccelNASBench: empty binary artifact");
  // The meta section is written last (after every surrogate's arrays).
  const auto meta_index = static_cast<std::uint32_t>(r.num_sections() - 1);
  const std::span<const char> meta_raw = r.section(meta_index, bin::Tag::kMeta);
  const Json meta = Json::parse(std::string(meta_raw.data(), meta_raw.size()));
  ANB_CHECK(meta.at("format").as_string() == "accel-nasbench-v1",
            "AccelNASBench: unsupported format tag");
  AccelNASBench bench;
  // Space section: optional for backward compatibility (absent ⇒ MnasNet,
  // the only space that existed before the section was introduced).
  for (std::uint32_t i = 0; i < meta_index; ++i) {
    if (r.tag(i) != bin::Tag::kSpace) continue;
    const std::span<const char> raw = r.section(i, bin::Tag::kSpace);
    ANB_CHECK(raw.size() == sizeof(SpaceSection),
              "AccelNASBench: malformed space section");
    SpaceSection record;
    std::memcpy(&record, raw.data(), sizeof(record));
    ANB_CHECK(record.version == kSpaceSectionVersion,
              "AccelNASBench: unsupported space section version " +
                  std::to_string(record.version));
    ANB_CHECK(record.space_id == static_cast<std::uint32_t>(SpaceId::kMnasNet) ||
                  record.space_id == static_cast<std::uint32_t>(SpaceId::kFbnet),
              "AccelNASBench: unknown space id " +
                  std::to_string(record.space_id) + " in artifact");
    bench.set_space(static_cast<SpaceId>(record.space_id));
    break;
  }
  if (meta.contains("accuracy"))
    bench.accuracy_ = surrogate_from_binary(meta.at("accuracy"), r);
  for (const auto& [key, payload] : meta.at("perf").as_object())
    bench.perf_[perf_json_key_parse(key)] = surrogate_from_binary(payload, r);
  return bench;
}

AccelNASBench AccelNASBench::load_binary(const std::string& path,
                                         io::MapMode mode) {
  ANB_SPAN("anb.benchmark.load_binary");
  try {
    auto buffer = mode == io::MapMode::kMap ? io::Buffer::map_file(path)
                                            : io::Buffer::read_file(path);
    return load_binary_buffer(std::move(buffer));
  } catch (const Error& e) {
    throw Error("AccelNASBench::load_binary: cannot load '" + path +
                "': " + e.what());
  }
}

AccelNASBench AccelNASBench::open(const std::string& path, io::MapMode mode) {
  ANB_SPAN("anb.benchmark.open");
  try {
    auto buffer = mode == io::MapMode::kMap ? io::Buffer::map_file(path)
                                            : io::Buffer::read_file(path);
    if (bin::has_magic(buffer->bytes()))
      return load_binary_buffer(std::move(buffer));
    return load_text(std::string(buffer->data(), buffer->size()));
  } catch (const Error& e) {
    throw Error("AccelNASBench::open: cannot load '" + path + "': " +
                e.what());
  }
}

}  // namespace anb
