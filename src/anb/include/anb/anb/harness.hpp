#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/anb/space_sim.hpp"
#include "anb/nas/optimizer.hpp"
#include "anb/trainsim/simulator.hpp"

namespace anb {

/// ---- Fig. 5: uni-objective trajectory comparison ------------------------

/// True-vs-simulated incumbent curves for one optimizer. Simulated
/// (surrogate-backed) runs are averaged over several seeds; the true run is
/// performed once, as in the paper (§4.1: true runs are too expensive to
/// repeat).
struct TrajectoryComparison {
  std::string optimizer;
  std::vector<double> true_incumbent;
  std::vector<std::vector<double>> sim_incumbents;
  std::vector<double> sim_mean_incumbent;
};

struct TrajectoryConfig {
  int n_evals = 300;
  int n_sim_seeds = 5;
  std::uint64_t seed = 3;
};

/// Run RS / RE / REINFORCE against (a) the space's training simulator with
/// scheme `p_star` ("true") and (b) the benchmark's accuracy surrogate
/// ("simulated"). Space-generic: the optimizers search sim.space(), which
/// must match the benchmark's space.
std::vector<TrajectoryComparison> compare_trajectories(
    const AccelNASBench& bench, const SpaceSim& sim,
    const TrainingScheme& p_star, const TrajectoryConfig& config);

/// MnasNet convenience: wraps the simulator in a MnasSpaceSim.
std::vector<TrajectoryComparison> compare_trajectories(
    const AccelNASBench& bench, const TrainingSimulator& sim,
    const TrainingScheme& p_star, const TrajectoryConfig& config);

/// ---- Fig. 4: bi-objective REINFORCE search -------------------------------

struct ParetoSearchConfig {
  MetricKey key{DeviceKind::kZcu102, PerfMetric::kThroughput};
  int n_targets = 7;             ///< reward-target sweep granularity
  int n_evals_per_target = 250;  ///< REINFORCE budget per target
  double weight = 0.07;          ///< MnasNet reward exponent |w|
  int n_picks = 3;               ///< "hand-picked" pareto models (Fig. 4 stars)
  std::uint64_t seed = 5;
};

/// All evaluations of a bi-objective search plus the resulting front.
struct ParetoOutcome {
  std::vector<Arch> archs;
  std::vector<double> accuracy;   ///< surrogate accuracy per arch
  std::vector<double> perf;       ///< surrogate throughput/latency per arch
  std::vector<std::size_t> front; ///< indices of the non-dominated subset
  std::vector<std::size_t> picks; ///< spread selection along the front
};

/// REINFORCE with the scalarized MnasNet reward acc·(perf/target)^±w,
/// sweeping `n_targets` targets across the device's performance range to
/// trace the front (zero-cost: only surrogate queries). Runs over the
/// benchmark's own search space.
ParetoOutcome pareto_search(const AccelNASBench& bench,
                            const ParetoSearchConfig& config);

/// ---- Fig. 6: true re-evaluation vs known baselines -----------------------

struct TrueEvalRow {
  std::string name;       ///< e.g. "anb-zcu102-a" or "effnet-b0"
  double accuracy = 0.0;  ///< reference-scheme top-1
  double perf = 0.0;      ///< measured device throughput/latency
  bool is_ours = false;   ///< searched by us vs existing baseline
};

/// Train each picked architecture with the reference scheme `r` and measure
/// it on the device. On the MnasNet space the reference-zoo baselines
/// (EfficientNet-B0, MobileNetV3, EdgeTPU-S, MnasNet-A1) are appended for
/// comparison; other spaces report only the searched models.
std::vector<TrueEvalRow> true_evaluation(const ParetoOutcome& outcome,
                                         const SpaceSim& sim, MetricKey key,
                                         const std::string& tag,
                                         std::uint64_t seed = 17);

/// MnasNet convenience: wraps the simulator in a MnasSpaceSim.
std::vector<TrueEvalRow> true_evaluation(const ParetoOutcome& outcome,
                                         const TrainingSimulator& sim,
                                         MetricKey key, const std::string& tag,
                                         std::uint64_t seed = 17);

}  // namespace anb
