#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anb/hpo/configspace.hpp"
#include "anb/surrogate/surrogate.hpp"

namespace anb {

/// The candidate surrogate families compared in Table 1.
enum class SurrogateKind { kXgb, kLgb, kRf, kEpsSvr, kNuSvr };

const char* surrogate_kind_name(SurrogateKind kind);
/// Paper-style display label ("XGB", "LGB", "RF", "eps-SVR", "nu-SVR").
const char* surrogate_kind_label(SurrogateKind kind);
std::vector<SurrogateKind> all_surrogate_kinds();

/// Hyperparameter space of one family (represented as a ConfigSpace, the
/// paper uses the ConfigSpace library + SMAC3, §3.3.3).
ConfigSpace surrogate_config_space(SurrogateKind kind);

/// Instantiate an unfitted surrogate from a configuration of its space.
std::unique_ptr<Surrogate> make_surrogate(SurrogateKind kind,
                                          const Configuration& config);

/// Sensible defaults (the space's center-ish point) for quick construction.
std::unique_ptr<Surrogate> make_default_surrogate(SurrogateKind kind);

/// Result of tune_surrogate.
struct TunedSurrogate {
  std::unique_ptr<Surrogate> model;  ///< fitted on `train`
  Configuration config;
  FitMetrics val_metrics;  ///< of the winning config
};

/// Options for the tuning loop.
struct TuneOptions {
  int n_trials = 24;          ///< SMAC objective evaluations
  std::uint64_t seed = 11;
  /// Cap on training rows used *during tuning* (kernel methods are O(n²));
  /// the final refit always uses the full training split. <= 0 disables.
  int tuning_subsample = 1600;
};

/// SMAC-tune hyperparameters on (train -> val RMSE), then refit the winner
/// on the full training split. Mirrors the paper's §3.3.3 pipeline.
TunedSurrogate tune_surrogate(SurrogateKind kind, const Dataset& train,
                              const Dataset& val, const TuneOptions& options);

}  // namespace anb
