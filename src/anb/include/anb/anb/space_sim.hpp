#pragma once

#include <cstdint>
#include <memory>

#include "anb/ir/model_ir.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/trainsim/scheme.hpp"
#include "anb/trainsim/simulator.hpp"

namespace anb {

/// Space-generic facade over a training simulator plus IR lowering: the
/// one interface the collection/proxy-search/harness layers program
/// against, so the full benchmark-construction pipeline runs unmodified
/// over any registered search space. Implementations are thread-safe and
/// deterministic given their world seed; every method validates that the
/// genotype's space tag matches space().
class SpaceSim {
 public:
  virtual ~SpaceSim() = default;

  /// The search space this simulator scores.
  virtual const SearchSpace& space() const = 0;

  /// Simulate one training run under `scheme` with a given seed.
  virtual TrainResult train(const Arch& arch, const TrainingScheme& scheme,
                            std::uint64_t run_seed = 0) const = 0;

  /// Noise-free accuracy under the reference scheme `r`.
  virtual double reference_accuracy(const Arch& arch) const = 0;

  /// Noise-free accuracy under an arbitrary scheme (mean over seeds).
  virtual double expected_accuracy(const Arch& arch,
                                   const TrainingScheme& scheme) const = 0;

  /// Simulated GPU-hours of one run (deterministic, no noise).
  virtual double training_cost_hours(const Arch& arch,
                                     const TrainingScheme& scheme) const = 0;

  /// Top-1 drop from 8-bit post-training quantization (DPU deployment).
  virtual double int8_accuracy_drop(const Arch& arch) const = 0;

  /// Lower to the device-facing layer IR at the given input resolution —
  /// what the hwsim roofline model measures.
  virtual ModelIR lower(const Arch& arch, int resolution) const = 0;
};

/// MnasNet adapter over an existing TrainingSimulator (non-owning; the
/// simulator must outlive the adapter). Lowering is build_ir().
class MnasSpaceSim final : public SpaceSim {
 public:
  explicit MnasSpaceSim(const TrainingSimulator& sim);

  const SearchSpace& space() const override;
  TrainResult train(const Arch& arch, const TrainingScheme& scheme,
                    std::uint64_t run_seed = 0) const override;
  double reference_accuracy(const Arch& arch) const override;
  double expected_accuracy(const Arch& arch,
                           const TrainingScheme& scheme) const override;
  double training_cost_hours(const Arch& arch,
                             const TrainingScheme& scheme) const override;
  double int8_accuracy_drop(const Arch& arch) const override;
  ModelIR lower(const Arch& arch, int resolution) const override;

  const TrainingSimulator& simulator() const { return sim_; }

 private:
  const TrainingSimulator& sim_;
};

/// Build the simulator stack for a space (owning). Also registers every
/// in-tree space (register_builtin_spaces), so the returned sim's space is
/// resolvable through the registry. Throws anb::Error for unknown ids.
std::unique_ptr<SpaceSim> make_space_sim(SpaceId id,
                                         std::uint64_t world_seed = 42);

}  // namespace anb
