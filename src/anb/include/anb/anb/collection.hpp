#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "anb/anb/benchmark.hpp"
#include "anb/anb/space_sim.hpp"
#include "anb/hwsim/device.hpp"
#include "anb/surrogate/dataset.hpp"
#include "anb/trainsim/scheme.hpp"
#include "anb/trainsim/simulator.hpp"

namespace anb {

/// Recovery policy of the on-device measurement pipeline. Real fleets time
/// out, crash, and return outlier timings; every reading therefore goes
/// through bounded retry, and every accepted sample through the
/// measure-repeat-reject protocol below (the HW-NAS-Bench-style guard that
/// makes device datasets trustworthy):
///
///   1. take two readings; if they agree within `outlier_tolerance`
///      (relative), accept the first;
///   2. otherwise re-measure up to `outlier_reads` total readings and
///      accept their median, counting every reading that deviates from the
///      median beyond the tolerance as a rejected outlier.
///
/// A reading that keeps failing (TransientError/TimeoutError) for
/// `max_read_attempts` consecutive attempts quarantines the architecture:
/// it is dropped from the collected dataset and reported. A device×metric
/// dataset that quarantines more than `max_quarantine_frac` of the
/// architectures is considered failed as a whole: it is skipped (not
/// emitted), reported, and its quarantines do not poison the surviving
/// datasets.
struct RetryPolicy {
  int max_read_attempts = 4;       ///< measurement tries per reading
  double outlier_tolerance = 0.05; ///< relative agreement threshold
  int outlier_reads = 5;           ///< readings in a median resolve (odd)
  double max_quarantine_frac = 0.25;

  void validate() const;
};

/// Configuration of the benchmark-construction data collection (§3.3).
struct CollectionConfig {
  int n_archs = 5200;        ///< paper: ~5.2k random architectures
  std::uint64_t seed = 7;
  TrainingScheme scheme;     ///< the proxy scheme p* used for training
  bool collect_perf = true;  ///< also run the 6-device measurement pipeline
  /// Also collect per-device energy (extension beyond the paper, E12).
  bool collect_energy = false;
  /// Also collect per-device peak memory (second extension metric).
  bool collect_peak_memory = false;
  RetryPolicy retry;
};

/// Exact accounting of the measurement pipeline's failure handling. All
/// counters are accumulated per work item and reduced in index order, so
/// they are identical at any thread count (and exactly zero on a fault-free
/// run except `attempts`, which counts the two protocol readings per
/// sample).
struct CollectionReport {
  std::uint64_t attempts = 0;     ///< measurement invocations, incl. retries
  std::uint64_t retries = 0;      ///< failed invocations that were retried
  std::uint64_t transient_errors = 0;  ///< TransientError count (⊂ retries)
  std::uint64_t timeouts = 0;          ///< TimeoutError count (⊂ retries)
  std::uint64_t outlier_resolves = 0;  ///< samples that needed median-of-k
  std::uint64_t rejected_outliers = 0; ///< readings discarded by the resolve
  /// dataset_name() of every device×metric dataset dropped because it
  /// quarantined more than RetryPolicy::max_quarantine_frac of the archs.
  std::vector<std::string> failed_datasets;
  /// Architectures dropped because some reading in a *kept* dataset
  /// exhausted its retry budget, in collection (index) order.
  std::vector<Arch> quarantined;

  /// True when nothing failed: no retries, no outlier resolves, no
  /// quarantined architecture, no dropped dataset.
  bool clean() const {
    return retries == 0 && outlier_resolves == 0 && rejected_outliers == 0 &&
           failed_datasets.empty() && quarantined.empty();
  }
};

/// The raw collected data: architectures plus their measured labels.
struct CollectedData {
  SpaceId space = SpaceId::kMnasNet;  ///< the space `archs` came from
  std::vector<Arch> archs;
  std::vector<double> accuracy;  ///< ANB-Acc labels (proxified top-1)
  /// ANB-{device}-{metric} labels, keyed by dataset_name(). Datasets that
  /// failed as a whole (see RetryPolicy) are absent.
  std::map<std::string, std::vector<double>> perf;
  double total_gpu_hours = 0.0;  ///< simulated training cost of collection
  /// Failure-handling accounting of the measurement pipeline. Quarantined
  /// architectures are already removed from `archs`/`accuracy`/`perf`.
  CollectionReport report;

  /// Feature-encoded dataset for a label vector.
  Dataset make_dataset(std::span<const double> labels) const;
  Dataset accuracy_dataset() const { return make_dataset(accuracy); }
  Dataset perf_dataset(MetricKey key) const;
};

/// Runs the Fig. 2 (bottom) pipeline: sample unique random architectures,
/// train each with the proxy scheme, and measure throughput/latency on the
/// accelerator fleet (int8-quantized DPU runs on the FPGAs are modelled by
/// the device specs). Deterministic given the config seed. Space-generic:
/// sampling, training, and IR lowering all route through the SpaceSim.
class DataCollector {
 public:
  DataCollector(const SpaceSim& sim, std::vector<Device> devices);

  /// MnasNet convenience: wraps the simulator in a MnasSpaceSim.
  DataCollector(const TrainingSimulator& simulator,
                std::vector<Device> devices);

  CollectedData collect(const CollectionConfig& config) const;

 private:
  std::unique_ptr<SpaceSim> owned_;  ///< set by the compat constructor
  const SpaceSim* sim_;
  std::vector<Device> devices_;
};

}  // namespace anb
