#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/hwsim/device.hpp"
#include "anb/surrogate/dataset.hpp"
#include "anb/trainsim/scheme.hpp"
#include "anb/trainsim/simulator.hpp"

namespace anb {

/// Configuration of the benchmark-construction data collection (§3.3).
struct CollectionConfig {
  int n_archs = 5200;        ///< paper: ~5.2k random architectures
  std::uint64_t seed = 7;
  TrainingScheme scheme;     ///< the proxy scheme p* used for training
  bool collect_perf = true;  ///< also run the 6-device measurement pipeline
  /// Also collect per-device energy (extension beyond the paper, E12).
  bool collect_energy = false;
};

/// The raw collected data: architectures plus their measured labels.
struct CollectedData {
  std::vector<Architecture> archs;
  std::vector<double> accuracy;  ///< ANB-Acc labels (proxified top-1)
  /// ANB-{device}-{metric} labels, keyed by dataset_name().
  std::map<std::string, std::vector<double>> perf;
  double total_gpu_hours = 0.0;  ///< simulated training cost of collection

  /// Feature-encoded dataset for a label vector.
  Dataset make_dataset(std::span<const double> labels) const;
  Dataset accuracy_dataset() const { return make_dataset(accuracy); }
  Dataset perf_dataset(DeviceKind kind, PerfMetric metric) const;
};

/// Runs the Fig. 2 (bottom) pipeline: sample unique random architectures,
/// train each with the proxy scheme, and measure throughput/latency on the
/// accelerator fleet (int8-quantized DPU runs on the FPGAs are modelled by
/// the device specs). Deterministic given the config seed.
class DataCollector {
 public:
  DataCollector(const TrainingSimulator& simulator,
                std::vector<Device> devices);

  CollectedData collect(const CollectionConfig& config) const;

 private:
  const TrainingSimulator& sim_;
  std::vector<Device> devices_;
};

}  // namespace anb
