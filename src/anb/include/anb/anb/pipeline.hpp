#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/anb/collection.hpp"
#include "anb/anb/proxy_search.hpp"
#include "anb/anb/tuning.hpp"

namespace anb {

/// End-to-end benchmark-construction options (Fig. 2's full pipeline).
struct PipelineOptions {
  std::uint64_t world_seed = 42;
  /// Search space the whole construction runs over. Every stage — proxy
  /// search, collection, surrogate fit, the assembled benchmark — is
  /// space-generic; MnasNet is the paper's space, FBNet the
  /// generalizability space (§4.2).
  SpaceId space = SpaceId::kMnasNet;
  int n_archs = 5200;           ///< architectures to collect (paper: ~5.2k)
  bool run_proxy_search = false;  ///< search for p* vs use the canonical one
  ProxySearchConfig proxy;      ///< used when run_proxy_search is true
  bool tune = false;            ///< SMAC-tune surrogates vs use defaults
  TuneOptions tuning;
  bool collect_perf = true;     ///< include the 6-device measurement pipeline
  /// Device fleet to measure on; empty means the paper's six-device
  /// catalog. The extension platforms (npu-mobile, cpu-server) are
  /// included by listing them here.
  std::vector<DeviceKind> devices;
  bool collect_energy = false;  ///< also build energy surrogates (E12 ext.)
  bool collect_peak_memory = false;  ///< also build peak-memory surrogates
  /// Fit the accuracy surrogate as a bootstrap ensemble of XGBs, enabling
  /// NB301-style noisy queries (AccelNASBench::query_accuracy_noisy).
  bool ensemble_accuracy = false;
  int ensemble_size = 5;
  double train_frac = 0.8;      ///< paper's 0.8/0.1/0.1 split
  double val_frac = 0.1;
  std::uint64_t split_seed = 13;
};

/// Everything the construction produces, including held-out test metrics
/// for each dataset (the numbers behind Tables 1 and 2).
struct PipelineResult {
  TrainingScheme p_star;
  ProxySearchOutcome proxy;  ///< populated when the proxy search ran
  CollectedData data;        ///< includes data.report (retry/quarantine)
  AccelNASBench bench;
  std::map<std::string, FitMetrics> test_metrics;  ///< per dataset id
  /// dataset_name() of every device×metric surrogate that was NOT fitted
  /// because its dataset failed collection (see CollectionReport
  /// ::failed_datasets): the benchmark degrades gracefully — the remaining
  /// surrogates are built and the gap is reported here instead of aborting
  /// the whole construction.
  std::vector<std::string> skipped_datasets;
};

/// A fixed, known-good proxy scheme close to what the grid search finds;
/// lets benches/examples skip the (slow) proxy search step.
TrainingScheme canonical_p_star();

/// Run the full construction: (optional) proxy search -> dataset collection
/// -> per-dataset surrogate fit (XGB; optionally SMAC-tuned) -> assembled
/// AccelNASBench + held-out test metrics.
PipelineResult construct_benchmark(const PipelineOptions& options);

}  // namespace anb
