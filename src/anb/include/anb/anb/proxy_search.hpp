#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/anb/space_sim.hpp"
#include "anb/hpo/configspace.hpp"
#include "anb/trainsim/scheme.hpp"
#include "anb/trainsim/simulator.hpp"

namespace anb {

/// Configuration of the training-proxy search (paper Eq. 1 / §3.2):
/// maximize Kendall's τ between proxified and reference rankings of a small
/// stratified model grid, subject to an average per-model training-time
/// budget t_spec.
struct ProxySearchConfig {
  int n_models = 20;          ///< FLOPs/params-stratified evaluation grid
  double t_spec_hours = 3.0;  ///< budget on the *average* per-model cost
  std::uint64_t seed = 1;
  ProxyDomains domains;
  /// Optional early stop: abort once a scheme reaches this τ within budget
  /// (<= 0 disables; the paper stops "when the desired τ and t_p are
  /// achieved").
  double early_stop_tau = 0.0;
};

/// One evaluated proxy scheme.
struct ProxyTrial {
  TrainingScheme scheme;
  double tau = 0.0;         ///< rank correlation with the reference ranking
  double cost_hours = 0.0;  ///< average per-model training cost
  bool feasible = false;    ///< cost <= t_spec
};

/// Outcome of a proxy search.
struct ProxySearchOutcome {
  TrainingScheme best;             ///< p*
  double best_tau = 0.0;
  double best_cost_hours = 0.0;
  double reference_cost_hours = 0.0;  ///< average per-model cost under r
  double speedup = 0.0;               ///< t_r / t_p*
  std::vector<ProxyTrial> trials;
};

/// Driver for the training-proxy search over the six scheme
/// hyperparameters. Space-generic: the model grid, training runs, and IR
/// statistics all route through the SpaceSim.
class ProxySearch {
 public:
  explicit ProxySearch(const SpaceSim& sim);
  /// MnasNet convenience: wraps the simulator in a MnasSpaceSim.
  explicit ProxySearch(const TrainingSimulator& simulator);

  /// The paper's stratified model grid: a pool of random architectures
  /// bucketed by FLOPs, picking per bucket the model whose parameter count
  /// is most spread out — an even coverage of the complexity range.
  std::vector<Arch> stratified_models(int n, Rng& rng) const;

  /// Evaluate one candidate scheme against the reference ranking.
  ProxyTrial evaluate_scheme(const TrainingScheme& scheme,
                             const std::vector<Arch>& models,
                             std::span<const double> reference_acc,
                             double t_spec_hours) const;

  /// Exhaustive grid search over the valid scheme grid (the paper's choice
  /// of optimizer; trivially parallel, low-dimensional).
  ProxySearchOutcome run_grid(const ProxySearchConfig& config) const;

  /// The same search via an arbitrary hpo optimizer ("grid", "random",
  /// "smac") — the E9 ablation. `budget` caps objective evaluations for the
  /// non-exhaustive optimizers.
  ProxySearchOutcome run_with(const std::string& optimizer,
                              const ProxySearchConfig& config,
                              int budget) const;

  /// Scheme hyperparameters as a ConfigSpace (six categoricals).
  static ConfigSpace scheme_space(const ProxyDomains& domains);
  static TrainingScheme scheme_from_config(const Configuration& config);
  static bool scheme_config_valid(const Configuration& config);

 private:
  ProxySearchOutcome finalize(std::vector<ProxyTrial> trials,
                              const std::vector<Arch>& models) const;

  std::unique_ptr<SpaceSim> owned_;  ///< set by the compat constructor
  const SpaceSim* sim_;
};

}  // namespace anb
