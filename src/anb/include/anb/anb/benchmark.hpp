#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "anb/hwsim/device.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/surrogate/surrogate.hpp"

namespace anb {

/// On-device performance metrics offered by the benchmark (§3.3.2):
/// throughput on every platform, latency on the FPGA DPUs. Energy is an
/// extension beyond the paper's dataset matrix (HW-NAS-Bench offers it;
/// Accel-NASBench does not) — see DESIGN.md E12.
enum class PerfMetric { kThroughput, kLatency, kEnergy };

const char* perf_metric_name(PerfMetric metric);  // "Thr" / "Lat" / "Enr"
PerfMetric perf_metric_from_name(const std::string& name);

/// Paper-style short device tag used in dataset names (ANB-ZCU-Thr, ...).
std::string device_short_name(DeviceKind kind);

/// Paper-style dataset id, e.g. "ANB-Acc", "ANB-ZCU-Thr".
std::string dataset_name(DeviceKind kind, PerfMetric metric);

/// The Accel-NASBench product: zero-cost queries for accuracy and on-device
/// performance of any architecture in the MnasNet search space, backed by
/// fitted surrogates. Query cost is microseconds instead of GPU-hours —
/// this is the object a NAS researcher downloads and runs optimizers
/// against (Fig. 1).
class AccelNASBench {
 public:
  AccelNASBench() = default;

  /// Install the accuracy surrogate (predicts proxified top-1 under p*).
  void set_accuracy_surrogate(std::unique_ptr<Surrogate> surrogate);

  /// Install a performance surrogate for one (device, metric) pair.
  void set_perf_surrogate(DeviceKind kind, PerfMetric metric,
                          std::unique_ptr<Surrogate> surrogate);

  bool has_accuracy() const { return accuracy_ != nullptr; }
  bool has_perf(DeviceKind kind, PerfMetric metric) const;

  /// Predicted top-1 accuracy in [0, 1] (under the proxy training scheme,
  /// as in the paper — rankings, not absolute values, are the contract).
  double query_accuracy(const Architecture& arch) const;

  /// Whether the accuracy surrogate is an ensemble (supports noisy queries).
  bool has_noisy_accuracy() const;

  /// NB301-style noisy query: a draw from the ensemble's predictive
  /// distribution, emulating the seed-to-seed variance of a real training
  /// run. Requires an EnsembleSurrogate accuracy model (see
  /// PipelineOptions::ensemble_accuracy); throws otherwise.
  double query_accuracy_noisy(const Architecture& arch, Rng& rng) const;

  /// Ensemble mean + std of the accuracy prediction (ensemble only).
  std::pair<double, double> query_accuracy_dist(const Architecture& arch) const;

  /// Predicted throughput (img/s) or latency (ms) on a device.
  double query_perf(const Architecture& arch, DeviceKind kind,
                    PerfMetric metric) const;

  /// All (device, metric) pairs with an installed surrogate.
  std::vector<std::pair<DeviceKind, PerfMetric>> perf_targets() const;

  /// Serialization of the whole benchmark (all surrogates) to one JSON file.
  void save(const std::string& path) const;
  static AccelNASBench load(const std::string& path);

  Json to_json() const;
  static AccelNASBench from_json(const Json& j);

 private:
  static std::string perf_key(DeviceKind kind, PerfMetric metric);

  std::unique_ptr<Surrogate> accuracy_;
  std::map<std::string, std::unique_ptr<Surrogate>> perf_;
};

}  // namespace anb
