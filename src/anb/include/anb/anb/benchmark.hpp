#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/hwsim/device.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/surrogate/surrogate.hpp"
#include "anb/util/io.hpp"

namespace anb {

/// Hit/miss counters of the benchmark's architecture-keyed query cache.
/// A miss is a query that ran a surrogate prediction; a hit was served
/// from the cache (including repeats within one batched query).
///
/// Since the obs redesign these are a shim over the process-wide registry
/// counters `anb.query.cache.hits` / `anb.query.cache.misses`: each
/// AccelNASBench remembers the registry values at construction (and at
/// clear_cache()) and reports the difference, so single-instance callers
/// see exactly the old per-instance semantics.
struct QueryCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// On-device performance metrics offered by the benchmark (§3.3.2):
/// throughput on every platform, latency on the FPGA DPUs. Energy and
/// peak memory are extensions beyond the paper's dataset matrix
/// (HW-NAS-Bench offers them; Accel-NASBench does not) — see DESIGN.md
/// E12 and the peak-memory model in anb/hwsim/device.hpp.
enum class PerfMetric { kThroughput, kLatency, kEnergy, kPeakMemory };

// "Thr" / "Lat" / "Enr" / "Mem"
const char* perf_metric_name(PerfMetric metric);
PerfMetric perf_metric_from_name(const std::string& name);

/// Paper-style short device tag used in dataset names (ANB-ZCU-Thr, ...).
std::string device_short_name(DeviceKind kind);
DeviceKind device_from_short_name(const std::string& name);

/// Typed address of one performance dataset: a (device, metric) pair.
/// Hashable and totally ordered, with to_string()/parse() round-tripping
/// through the paper-style dataset name ("ANB-ZCU-Thr"). This is the one
/// currency for naming perf targets across the benchmark, collection,
/// pipeline, and bench helpers. (The loose two-argument
/// (DeviceKind, PerfMetric) shims served their one-release grace period
/// and are gone.)
struct MetricKey {
  DeviceKind device = DeviceKind::kZcu102;
  PerfMetric metric = PerfMetric::kThroughput;

  friend bool operator==(const MetricKey&, const MetricKey&) = default;
  friend auto operator<=>(const MetricKey&, const MetricKey&) = default;

  /// Paper-style dataset id, e.g. "ANB-ZCU-Thr".
  std::string to_string() const;
  /// Inverse of to_string(); throws anb::Error on malformed input.
  static MetricKey parse(const std::string& name);
};

/// Paper-style dataset id, e.g. "ANB-Acc", "ANB-ZCU-Thr".
std::string dataset_name(MetricKey key);

/// Fault-injection sites in AccelNASBench::save/load (anb/util/fault.hpp).
/// When the save site fires, only a prefix of the serialized benchmark
/// reaches disk (length driven by the fire draw) and save throws
/// anb::Error — simulating a short write / full disk. When the load site
/// fires, only a prefix of the file is read, so the parse fails with
/// anb::Error — simulating a short read / truncated download. The binary
/// paths (save_binary/load_binary/open) route through the same two sites.
inline constexpr const char* kBenchmarkSaveFaultSite =
    "anb.benchmark.save.short_write";
inline constexpr const char* kBenchmarkLoadFaultSite =
    "anb.benchmark.load.short_read";

/// The Accel-NASBench product: zero-cost queries for accuracy and on-device
/// performance of any architecture in one search space, backed by fitted
/// surrogates. Query cost is microseconds instead of GPU-hours — this is
/// the object a NAS researcher downloads and runs optimizers against
/// (Fig. 1).
///
/// Each instance serves exactly one space (default: MnasNet, the paper's).
/// Genotypes are space-tagged Arch values; every query validates the tag
/// against space() and the cache keys on (space, to_index) — the stable
/// architecture address shared with the .anbb artifact and the serve
/// protocol. Typed Architecture overloads remain as MnasNet conveniences.
class AccelNASBench {
 public:
  AccelNASBench();
  ~AccelNASBench();
  AccelNASBench(AccelNASBench&&) noexcept;
  AccelNASBench& operator=(AccelNASBench&&) noexcept;
  AccelNASBench(const AccelNASBench&) = delete;
  AccelNASBench& operator=(const AccelNASBench&) = delete;

  /// The search space this benchmark answers queries for.
  SpaceId space() const { return space_; }
  /// Retarget the benchmark to another registered space. Only allowed
  /// before any surrogate is installed (surrogates are fitted to one
  /// space's feature encoding); throws anb::Error afterwards.
  void set_space(SpaceId space);

  /// Install the accuracy surrogate (predicts proxified top-1 under p*).
  void set_accuracy_surrogate(std::unique_ptr<Surrogate> surrogate);

  /// Install a performance surrogate for one metric key.
  void set_perf_surrogate(MetricKey key, std::unique_ptr<Surrogate> surrogate);

  bool has_accuracy() const { return accuracy_ != nullptr; }
  bool has_perf(MetricKey key) const;

  /// Predicted top-1 accuracy in [0, 1] (under the proxy training scheme,
  /// as in the paper — rankings, not absolute values, are the contract).
  /// Throws anb::Error when arch's space tag differs from space().
  double query_accuracy(const Arch& arch) const;
  double query_accuracy(const Architecture& arch) const;

  /// Whether the accuracy surrogate is an ensemble (supports noisy queries).
  bool has_noisy_accuracy() const;

  /// NB301-style noisy query: a draw from the ensemble's predictive
  /// distribution, emulating the seed-to-seed variance of a real training
  /// run. Requires an EnsembleSurrogate accuracy model (see
  /// PipelineOptions::ensemble_accuracy); throws otherwise.
  double query_accuracy_noisy(const Arch& arch, Rng& rng) const;
  double query_accuracy_noisy(const Architecture& arch, Rng& rng) const;

  /// Ensemble mean + std of the accuracy prediction (ensemble only).
  std::pair<double, double> query_accuracy_dist(const Arch& arch) const;
  std::pair<double, double> query_accuracy_dist(const Architecture& arch) const;

  /// Predicted throughput (img/s), latency (ms), energy (mJ/image) or
  /// peak memory (MB) on a device.
  double query_perf(const Arch& arch, MetricKey key) const;
  double query_perf(const Architecture& arch, MetricKey key) const;

  /// Batched accuracy query for a whole population: encodes the cache
  /// misses into one feature matrix, predicts them with the surrogate's
  /// parallel batch path, and serves repeats from the cache. Element i
  /// corresponds to archs[i] and equals query_accuracy(archs[i]) exactly
  /// (batched prediction is bit-identical to scalar prediction).
  std::vector<double> query_accuracy_batch(std::span<const Arch> archs) const;
  std::vector<double> query_accuracy_batch(
      std::span<const Architecture> archs) const;

  /// Batched performance query; element i equals
  /// query_perf(archs[i], key) exactly.
  std::vector<double> query_perf_batch(std::span<const Arch> archs,
                                       MetricKey key) const;
  std::vector<double> query_perf_batch(std::span<const Architecture> archs,
                                       MetricKey key) const;

  /// Query-cache control. The cache keys on (space(), to_index(arch)) —
  /// to_index is a bijection within a space and the instance serves one
  /// space, so two distinct architectures can never alias. Enabled by
  /// default: the deterministic surrogates make cached values exactly
  /// equal to recomputation. Noisy ensemble queries
  /// (query_accuracy_noisy) always bypass it.
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const;
  void clear_cache() const;
  /// Counters since construction / the last clear_cache() — a shim over
  /// the registry counters anb.query.cache.{hits,misses}, see
  /// QueryCacheStats.
  QueryCacheStats cache_stats() const;

  /// All metric keys with an installed surrogate, ascending.
  std::vector<MetricKey> perf_targets() const;

  /// Serialization of the whole benchmark (all surrogates) to one JSON file.
  void save(const std::string& path) const;
  static AccelNASBench load(const std::string& path);

  /// Binary .anbb artifact: a versioned, checksummed container holding
  /// every surrogate's arrays (forest nodes, support vectors) in their
  /// in-memory layout — see DESIGN.md "Binary artifact format". The
  /// reloaded benchmark's predictions are bit-identical to this one's for
  /// every installed surrogate, and save→load→save_binary reproduces the
  /// file byte for byte.
  void save_binary(const std::string& path) const;

  /// Reload a save_binary() artifact. MapMode::kMap (default) memory-maps
  /// the file and uses the array sections in place without copying —
  /// microsecond cold starts; kCopy reads it into heap memory. On
  /// platforms without mmap, kMap silently degrades to a heap read. Any
  /// corruption (truncation, bit-flips, table tampering) throws anb::Error
  /// naming `path`; nothing is ever read past the end of the file.
  static AccelNASBench load_binary(const std::string& path,
                                   io::MapMode mode = io::MapMode::kMap);

  /// Load either format: sniffs the .anbb magic and dispatches to the
  /// binary or the text loader. The file is read/mapped once.
  static AccelNASBench open(const std::string& path,
                            io::MapMode mode = io::MapMode::kMap);

  Json to_json() const;
  static AccelNASBench from_json(const Json& j);

 private:
  /// Shared tail of load()/open(): fault-injected truncation + JSON parse.
  static AccelNASBench load_text(std::string text);
  /// Shared tail of load_binary()/open(): fault-injected truncation +
  /// container validation + surrogate reconstruction.
  static AccelNASBench load_binary_buffer(
      std::shared_ptr<const io::Buffer> buffer);

  /// On-disk JSON key ("device/metric"); distinct from MetricKey::to_string
  /// so the serialized format predates — and survives — the key redesign.
  static std::string perf_json_key(MetricKey key);
  static MetricKey perf_json_key_parse(const std::string& key);

  struct CacheState;  // mutex-guarded maps + counter baselines (benchmark.cpp)

  /// The registered SearchSpace for space(); validates `arch` against it.
  const SearchSpace& space_obj() const;
  void check_space(const Arch& arch) const;

  /// `key == nullptr` addresses the accuracy cache map.
  double cached_query(const Surrogate& surrogate, const MetricKey* key,
                      const Arch& arch) const;
  std::vector<double> cached_query_batch(const Surrogate& surrogate,
                                         const MetricKey* key,
                                         std::span<const Arch> archs) const;

  SpaceId space_ = SpaceId::kMnasNet;
  std::unique_ptr<Surrogate> accuracy_;
  std::map<MetricKey, std::unique_ptr<Surrogate>> perf_;
  std::unique_ptr<CacheState> cache_;
};

}  // namespace anb

template <>
struct std::hash<anb::MetricKey> {
  std::size_t operator()(const anb::MetricKey& key) const noexcept {
    return (static_cast<std::size_t>(key.device) << 8) ^
           static_cast<std::size_t>(key.metric);
  }
};
