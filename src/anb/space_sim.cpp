#include "anb/anb/space_sim.hpp"

#include <utility>

#include "anb/fbnet/fbnet_sim.hpp"
#include "anb/fbnet/fbnet_space.hpp"
#include "anb/util/error.hpp"

namespace anb {

MnasSpaceSim::MnasSpaceSim(const TrainingSimulator& sim) : sim_(sim) {}

const SearchSpace& MnasSpaceSim::space() const { return MnasSpace::instance(); }

TrainResult MnasSpaceSim::train(const Arch& arch, const TrainingScheme& scheme,
                                std::uint64_t run_seed) const {
  return sim_.train(MnasSpace::to_blocks(arch), scheme, run_seed);
}

double MnasSpaceSim::reference_accuracy(const Arch& arch) const {
  return sim_.reference_accuracy(MnasSpace::to_blocks(arch));
}

double MnasSpaceSim::expected_accuracy(const Arch& arch,
                                       const TrainingScheme& scheme) const {
  return sim_.expected_accuracy(MnasSpace::to_blocks(arch), scheme);
}

double MnasSpaceSim::training_cost_hours(const Arch& arch,
                                         const TrainingScheme& scheme) const {
  return sim_.training_cost_hours(MnasSpace::to_blocks(arch), scheme);
}

double MnasSpaceSim::int8_accuracy_drop(const Arch& arch) const {
  return sim_.int8_accuracy_drop(MnasSpace::to_blocks(arch));
}

ModelIR MnasSpaceSim::lower(const Arch& arch, int resolution) const {
  return build_ir(MnasSpace::to_blocks(arch), resolution);
}

namespace {

/// Owning MnasNet stack for make_space_sim.
class OwnedMnasSpaceSim final : public SpaceSim {
 public:
  explicit OwnedMnasSpaceSim(std::uint64_t world_seed)
      : sim_(world_seed), facade_(sim_) {}

  const SearchSpace& space() const override { return facade_.space(); }
  TrainResult train(const Arch& arch, const TrainingScheme& scheme,
                    std::uint64_t run_seed) const override {
    return facade_.train(arch, scheme, run_seed);
  }
  double reference_accuracy(const Arch& arch) const override {
    return facade_.reference_accuracy(arch);
  }
  double expected_accuracy(const Arch& arch,
                           const TrainingScheme& scheme) const override {
    return facade_.expected_accuracy(arch, scheme);
  }
  double training_cost_hours(const Arch& arch,
                             const TrainingScheme& scheme) const override {
    return facade_.training_cost_hours(arch, scheme);
  }
  double int8_accuracy_drop(const Arch& arch) const override {
    return facade_.int8_accuracy_drop(arch);
  }
  ModelIR lower(const Arch& arch, int resolution) const override {
    return facade_.lower(arch, resolution);
  }

 private:
  TrainingSimulator sim_;
  MnasSpaceSim facade_;
};

class FbnetSpaceSim final : public SpaceSim {
 public:
  explicit FbnetSpaceSim(std::uint64_t world_seed) : sim_(world_seed) {}

  const SearchSpace& space() const override {
    return FbnetSpace::instance();
  }
  TrainResult train(const Arch& arch, const TrainingScheme& scheme,
                    std::uint64_t run_seed) const override {
    return sim_.train(FbnetSpace::to_ops(arch), scheme, run_seed);
  }
  double reference_accuracy(const Arch& arch) const override {
    return sim_.reference_accuracy(FbnetSpace::to_ops(arch));
  }
  double expected_accuracy(const Arch& arch,
                           const TrainingScheme& scheme) const override {
    return sim_.expected_accuracy(FbnetSpace::to_ops(arch), scheme);
  }
  double training_cost_hours(const Arch& arch,
                             const TrainingScheme& scheme) const override {
    return sim_.training_cost_hours(FbnetSpace::to_ops(arch), scheme);
  }
  double int8_accuracy_drop(const Arch& arch) const override {
    // The FBNet simulator has no quantization model; use the same
    // qualitative structure as MnasNet's: a small base drop that grows
    // with expansion-6 layers (wider activation ranges quantize worse)
    // and shrinks with skip connections (fewer quantized layers).
    const FbnetArchitecture fb = FbnetSpace::to_ops(arch);
    int wide = 0;
    int skips = 0;
    for (FbnetOp op : fb.ops) {
      if (op == FbnetOp::kE6K3 || op == FbnetOp::kE6K5) ++wide;
      if (op == FbnetOp::kSkip) ++skips;
    }
    return 0.002 + 0.0003 * wide - 0.0001 * skips;
  }
  ModelIR lower(const Arch& arch, int resolution) const override {
    return build_fbnet_ir(FbnetSpace::to_ops(arch), resolution);
  }

 private:
  FbnetTrainingSimulator sim_;
};

}  // namespace

std::unique_ptr<SpaceSim> make_space_sim(SpaceId id,
                                         std::uint64_t world_seed) {
  register_builtin_spaces();
  ANB_CHECK(space_registered(id),
            "make_space_sim: unknown space id " +
                std::to_string(static_cast<int>(id)));
  switch (id) {
    case SpaceId::kMnasNet:
      return std::make_unique<OwnedMnasSpaceSim>(world_seed);
    case SpaceId::kFbnet:
      return std::make_unique<FbnetSpaceSim>(world_seed);
  }
  throw Error("make_space_sim: unknown space id " +
              std::to_string(static_cast<int>(id)));
}

}  // namespace anb
