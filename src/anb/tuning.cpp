#include "anb/anb/tuning.hpp"

#include <algorithm>

#include "anb/hpo/optimizers.hpp"
#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/surrogate/train_context.hpp"
#include "anb/util/error.hpp"

namespace anb {

const char* surrogate_kind_name(SurrogateKind kind) {
  switch (kind) {
    case SurrogateKind::kXgb: return "xgb";
    case SurrogateKind::kLgb: return "lgb";
    case SurrogateKind::kRf: return "rf";
    case SurrogateKind::kEpsSvr: return "esvr";
    case SurrogateKind::kNuSvr: return "nusvr";
  }
  return "unknown";
}

const char* surrogate_kind_label(SurrogateKind kind) {
  switch (kind) {
    case SurrogateKind::kXgb: return "XGB";
    case SurrogateKind::kLgb: return "LGB";
    case SurrogateKind::kRf: return "RF";
    case SurrogateKind::kEpsSvr: return "eps-SVR";
    case SurrogateKind::kNuSvr: return "nu-SVR";
  }
  return "unknown";
}

std::vector<SurrogateKind> all_surrogate_kinds() {
  return {SurrogateKind::kXgb, SurrogateKind::kLgb, SurrogateKind::kRf,
          SurrogateKind::kEpsSvr, SurrogateKind::kNuSvr};
}

ConfigSpace surrogate_config_space(SurrogateKind kind) {
  ConfigSpace space;
  switch (kind) {
    case SurrogateKind::kXgb:
      space.add_int("n_estimators", 300, 2000);
      space.add_float("learning_rate", 0.01, 0.15, /*log_scale=*/true);
      space.add_int("max_depth", 2, 6);
      space.add_float("lambda", 0.1, 10.0, /*log_scale=*/true);
      space.add_float("min_child_weight", 0.5, 8.0, /*log_scale=*/true);
      space.add_float("subsample", 0.6, 1.0);
      space.add_float("colsample", 0.5, 1.0);
      break;
    case SurrogateKind::kLgb:
      space.add_int("n_estimators", 300, 2000);
      space.add_float("learning_rate", 0.01, 0.15, /*log_scale=*/true);
      space.add_int("max_leaves", 4, 31);
      space.add_int("max_bins", 16, 64);
      space.add_float("lambda", 0.1, 10.0, /*log_scale=*/true);
      space.add_float("min_child_weight", 0.5, 8.0, /*log_scale=*/true);
      space.add_float("subsample", 0.6, 1.0);
      space.add_float("colsample", 0.5, 1.0);
      break;
    case SurrogateKind::kRf:
      space.add_int("n_trees", 100, 400);
      space.add_int("max_depth", 8, 20);
      space.add_int("min_samples_leaf", 1, 8);
      space.add_float("max_features_frac", 0.2, 1.0);
      space.add_float("bootstrap_frac", 0.6, 1.0);
      break;
    case SurrogateKind::kEpsSvr:
      space.add_float("c", 0.1, 100.0, /*log_scale=*/true);
      space.add_float("epsilon", 0.005, 0.3, /*log_scale=*/true);
      space.add_float("gamma", 0.005, 0.5, /*log_scale=*/true);
      break;
    case SurrogateKind::kNuSvr:
      space.add_float("c", 0.1, 100.0, /*log_scale=*/true);
      space.add_float("nu", 0.1, 0.9);
      space.add_float("gamma", 0.005, 0.5, /*log_scale=*/true);
      break;
  }
  return space;
}

std::unique_ptr<Surrogate> make_surrogate(SurrogateKind kind,
                                          const Configuration& config) {
  switch (kind) {
    case SurrogateKind::kXgb: {
      GbdtParams p;
      p.n_estimators = config.get_int("n_estimators");
      p.learning_rate = config.get("learning_rate");
      p.max_depth = config.get_int("max_depth");
      p.lambda = config.get("lambda");
      p.min_child_weight = config.get("min_child_weight");
      p.subsample = config.get("subsample");
      p.colsample = config.get("colsample");
      return std::make_unique<Gbdt>(p);
    }
    case SurrogateKind::kLgb: {
      HistGbdtParams p;
      p.n_estimators = config.get_int("n_estimators");
      p.learning_rate = config.get("learning_rate");
      p.max_leaves = config.get_int("max_leaves");
      p.max_bins = config.get_int("max_bins");
      p.lambda = config.get("lambda");
      p.min_child_weight = config.get("min_child_weight");
      p.subsample = config.get("subsample");
      p.colsample = config.get("colsample");
      return std::make_unique<HistGbdt>(p);
    }
    case SurrogateKind::kRf: {
      RandomForestParams p;
      p.n_trees = config.get_int("n_trees");
      p.max_depth = config.get_int("max_depth");
      p.min_samples_leaf = config.get_int("min_samples_leaf");
      p.max_features_frac = config.get("max_features_frac");
      p.bootstrap_frac = config.get("bootstrap_frac");
      return std::make_unique<RandomForest>(p);
    }
    case SurrogateKind::kEpsSvr: {
      SvrParams p;
      p.kind = SvrKind::kEpsilon;
      p.c = config.get("c");
      p.epsilon = config.get("epsilon");
      p.gamma = config.get("gamma");
      return std::make_unique<Svr>(p);
    }
    case SurrogateKind::kNuSvr: {
      SvrParams p;
      p.kind = SvrKind::kNu;
      p.c = config.get("c");
      p.nu = config.get("nu");
      p.gamma = config.get("gamma");
      return std::make_unique<Svr>(p);
    }
  }
  throw Error("make_surrogate: unknown kind");
}

std::unique_ptr<Surrogate> make_default_surrogate(SurrogateKind kind) {
  switch (kind) {
    case SurrogateKind::kXgb: return std::make_unique<Gbdt>();
    case SurrogateKind::kLgb: return std::make_unique<HistGbdt>();
    case SurrogateKind::kRf: return std::make_unique<RandomForest>();
    case SurrogateKind::kEpsSvr: {
      SvrParams p;
      p.kind = SvrKind::kEpsilon;
      return std::make_unique<Svr>(p);
    }
    case SurrogateKind::kNuSvr: {
      SvrParams p;
      p.kind = SvrKind::kNu;
      return std::make_unique<Svr>(p);
    }
  }
  throw Error("make_default_surrogate: unknown kind");
}

TunedSurrogate tune_surrogate(SurrogateKind kind, const Dataset& train,
                              const Dataset& val, const TuneOptions& options) {
  ANB_CHECK(train.size() >= 8 && val.size() >= 2,
            "tune_surrogate: train/val too small");
  ANB_CHECK(options.n_trials >= 1, "tune_surrogate: n_trials must be >= 1");
  ANB_SPAN("anb.tune");
  obs::counter("anb.tune.count").add(1);
  obs::counter("anb.tune.trials")
      .add(static_cast<std::uint64_t>(options.n_trials));

  // Optional row cap for the tuning loop (the final refit is full-size).
  const Dataset* tune_train = &train;
  Dataset capped(train.num_features());
  if (options.tuning_subsample > 0 &&
      train.size() > static_cast<std::size_t>(options.tuning_subsample)) {
    Rng sub_rng(hash_combine(options.seed, 0x5AB5));
    const auto idx = sub_rng.sample_indices(
        train.size(), static_cast<std::size_t>(options.tuning_subsample));
    capped = train.subset(idx);
    tune_train = &capped;
  }

  const ConfigSpace space = surrogate_config_space(kind);
  // Shared per-dataset training structures (sorted columns, bin matrices
  // keyed by max_bins) built once and reused across all trials. The context
  // is internally synchronized and each trial derives its own rng from the
  // config, so the objective is pure and safe to evaluate concurrently.
  TrainContext tune_ctx(*tune_train);
  HpoObjective objective = [&](const Configuration& config) {
    auto model = make_surrogate(kind, config);
    Rng fit_rng(hash_combine(options.seed, config.to_string().size() * 31 +
                                               0xF17));
    try {
      model->fit(*tune_train, tune_ctx, fit_rng);
    } catch (const Error&) {
      return 1e6;  // degenerate config (e.g. ε tube swallowing all points)
    }
    return model->evaluate(val).rmse;
  };

  SmacLite::Options smac;
  smac.n_trials = options.n_trials;
  smac.n_init = std::min(8, options.n_trials);
  smac.parallel_objective = true;
  Rng rng(options.seed);
  const HpoResult result = SmacLite::run(space, objective, smac, rng);

  TunedSurrogate out;
  out.config = result.best;
  out.model = make_surrogate(kind, result.best);
  Rng refit_rng(hash_combine(options.seed, 0xF1E1D));
  out.model->fit(train, refit_rng);
  out.val_metrics = out.model->evaluate(val);
  return out;
}

}  // namespace anb
