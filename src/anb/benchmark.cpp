#include "anb/anb/benchmark.hpp"

#include "anb/surrogate/ensemble.hpp"
#include "anb/util/error.hpp"

namespace anb {

const char* perf_metric_name(PerfMetric metric) {
  switch (metric) {
    case PerfMetric::kThroughput: return "Thr";
    case PerfMetric::kLatency: return "Lat";
    case PerfMetric::kEnergy: return "Enr";
  }
  return "unknown";
}

PerfMetric perf_metric_from_name(const std::string& name) {
  if (name == "Thr") return PerfMetric::kThroughput;
  if (name == "Lat") return PerfMetric::kLatency;
  if (name == "Enr") return PerfMetric::kEnergy;
  throw Error("perf_metric_from_name: unknown metric '" + name + "'");
}

std::string device_short_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kTpuV2: return "TPUv2";
    case DeviceKind::kTpuV3: return "TPUv3";
    case DeviceKind::kA100: return "A100";
    case DeviceKind::kRtx3090: return "RTX";
    case DeviceKind::kZcu102: return "ZCU";
    case DeviceKind::kVck190: return "VCK";
  }
  return "unknown";
}

std::string dataset_name(DeviceKind kind, PerfMetric metric) {
  return "ANB-" + device_short_name(kind) + "-" + perf_metric_name(metric);
}

std::string AccelNASBench::perf_key(DeviceKind kind, PerfMetric metric) {
  return std::string(device_kind_name(kind)) + "/" + perf_metric_name(metric);
}

void AccelNASBench::set_accuracy_surrogate(
    std::unique_ptr<Surrogate> surrogate) {
  ANB_CHECK(surrogate != nullptr, "AccelNASBench: null accuracy surrogate");
  accuracy_ = std::move(surrogate);
}

void AccelNASBench::set_perf_surrogate(DeviceKind kind, PerfMetric metric,
                                       std::unique_ptr<Surrogate> surrogate) {
  ANB_CHECK(surrogate != nullptr, "AccelNASBench: null perf surrogate");
  ANB_CHECK(metric != PerfMetric::kLatency || device_supports_latency(kind),
            "AccelNASBench: latency is only offered for FPGA platforms");
  perf_[perf_key(kind, metric)] = std::move(surrogate);
}

bool AccelNASBench::has_perf(DeviceKind kind, PerfMetric metric) const {
  return perf_.count(perf_key(kind, metric)) > 0;
}

double AccelNASBench::query_accuracy(const Architecture& arch) const {
  ANB_CHECK(accuracy_ != nullptr,
            "AccelNASBench: accuracy surrogate not installed");
  return accuracy_->predict(SearchSpace::features(arch));
}

namespace {
const EnsembleSurrogate* as_ensemble(const Surrogate* surrogate) {
  return dynamic_cast<const EnsembleSurrogate*>(surrogate);
}
}  // namespace

bool AccelNASBench::has_noisy_accuracy() const {
  return as_ensemble(accuracy_.get()) != nullptr;
}

double AccelNASBench::query_accuracy_noisy(const Architecture& arch,
                                           Rng& rng) const {
  const auto* ensemble = as_ensemble(accuracy_.get());
  ANB_CHECK(ensemble != nullptr,
            "AccelNASBench: noisy queries need an ensemble accuracy "
            "surrogate (PipelineOptions::ensemble_accuracy)");
  return ensemble->sample(SearchSpace::features(arch), rng);
}

std::pair<double, double> AccelNASBench::query_accuracy_dist(
    const Architecture& arch) const {
  const auto* ensemble = as_ensemble(accuracy_.get());
  ANB_CHECK(ensemble != nullptr,
            "AccelNASBench: predictive distributions need an ensemble "
            "accuracy surrogate (PipelineOptions::ensemble_accuracy)");
  return ensemble->predict_dist(SearchSpace::features(arch));
}

double AccelNASBench::query_perf(const Architecture& arch, DeviceKind kind,
                                 PerfMetric metric) const {
  const auto it = perf_.find(perf_key(kind, metric));
  ANB_CHECK(it != perf_.end(),
            "AccelNASBench: no surrogate for " + dataset_name(kind, metric));
  return it->second->predict(SearchSpace::features(arch));
}

std::vector<std::pair<DeviceKind, PerfMetric>> AccelNASBench::perf_targets()
    const {
  std::vector<std::pair<DeviceKind, PerfMetric>> out;
  for (const auto& [key, surrogate] : perf_) {
    const auto slash = key.find('/');
    out.emplace_back(device_kind_from_name(key.substr(0, slash)),
                     perf_metric_from_name(key.substr(slash + 1)));
  }
  return out;
}

Json AccelNASBench::to_json() const {
  Json j = Json::object();
  j["format"] = "accel-nasbench-v1";
  if (accuracy_ != nullptr) j["accuracy"] = accuracy_->to_json();
  Json perf = Json::object();
  for (const auto& [key, surrogate] : perf_) perf[key] = surrogate->to_json();
  j["perf"] = std::move(perf);
  return j;
}

AccelNASBench AccelNASBench::from_json(const Json& j) {
  ANB_CHECK(j.at("format").as_string() == "accel-nasbench-v1",
            "AccelNASBench: unsupported format tag");
  AccelNASBench bench;
  if (j.contains("accuracy"))
    bench.accuracy_ = surrogate_from_json(j.at("accuracy"));
  for (const auto& [key, payload] : j.at("perf").as_object())
    bench.perf_[key] = surrogate_from_json(payload);
  return bench;
}

void AccelNASBench::save(const std::string& path) const {
  write_text_file(path, to_json().dump());
}

AccelNASBench AccelNASBench::load(const std::string& path) {
  return from_json(Json::parse(read_text_file(path)));
}

}  // namespace anb
