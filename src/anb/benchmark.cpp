#include "anb/anb/benchmark.hpp"

#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "anb/surrogate/ensemble.hpp"
#include "anb/util/error.hpp"
#include "anb/util/fault.hpp"

namespace anb {

namespace {
/// Epoch-style bound on each per-surrogate cache map: when an insert would
/// push past this, the map is dropped wholesale and refills. The MnasNet
/// space has ~10^13 points, so an unbounded map could grow without limit
/// under a long random search; 2^20 entries (~24 MiB/map) is far beyond any
/// optimizer budget in this repo, so eviction never fires in practice.
constexpr std::size_t kMaxCacheEntries = std::size_t{1} << 20;

/// Cache-map key for the accuracy surrogate. Performance surrogates are
/// keyed by AccelNASBench::perf_key ("device/metric"), which always
/// contains a '/', so "acc" cannot collide.
const char kAccuracyKey[] = "acc";
}  // namespace

/// Architecture-keyed query cache. Values are keyed by
/// SearchSpace::to_index(arch) — an exact bijection between architectures
/// and integers, so two distinct architectures can never alias. The map is
/// mutex-guarded; counters are atomics so hot-path hit accounting never
/// serializes more than the lookup itself. Predictions run *outside* the
/// lock: surrogates are deterministic, so two threads racing on the same
/// miss compute the same value and the duplicate insert is a no-op.
struct AccelNASBench::CacheState {
  std::mutex mu;
  std::atomic<bool> enabled{true};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::unordered_map<std::string, std::unordered_map<std::uint64_t, double>>
      maps;
};

AccelNASBench::AccelNASBench() : cache_(std::make_unique<CacheState>()) {}
AccelNASBench::~AccelNASBench() = default;
AccelNASBench::AccelNASBench(AccelNASBench&&) noexcept = default;
AccelNASBench& AccelNASBench::operator=(AccelNASBench&&) noexcept = default;

const char* perf_metric_name(PerfMetric metric) {
  switch (metric) {
    case PerfMetric::kThroughput: return "Thr";
    case PerfMetric::kLatency: return "Lat";
    case PerfMetric::kEnergy: return "Enr";
  }
  return "unknown";
}

PerfMetric perf_metric_from_name(const std::string& name) {
  if (name == "Thr") return PerfMetric::kThroughput;
  if (name == "Lat") return PerfMetric::kLatency;
  if (name == "Enr") return PerfMetric::kEnergy;
  throw Error("perf_metric_from_name: unknown metric '" + name + "'");
}

std::string device_short_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kTpuV2: return "TPUv2";
    case DeviceKind::kTpuV3: return "TPUv3";
    case DeviceKind::kA100: return "A100";
    case DeviceKind::kRtx3090: return "RTX";
    case DeviceKind::kZcu102: return "ZCU";
    case DeviceKind::kVck190: return "VCK";
  }
  return "unknown";
}

std::string dataset_name(DeviceKind kind, PerfMetric metric) {
  return "ANB-" + device_short_name(kind) + "-" + perf_metric_name(metric);
}

std::string AccelNASBench::perf_key(DeviceKind kind, PerfMetric metric) {
  return std::string(device_kind_name(kind)) + "/" + perf_metric_name(metric);
}

void AccelNASBench::set_accuracy_surrogate(
    std::unique_ptr<Surrogate> surrogate) {
  ANB_CHECK(surrogate != nullptr, "AccelNASBench: null accuracy surrogate");
  accuracy_ = std::move(surrogate);
}

void AccelNASBench::set_perf_surrogate(DeviceKind kind, PerfMetric metric,
                                       std::unique_ptr<Surrogate> surrogate) {
  ANB_CHECK(surrogate != nullptr, "AccelNASBench: null perf surrogate");
  ANB_CHECK(metric != PerfMetric::kLatency || device_supports_latency(kind),
            "AccelNASBench: latency is only offered for FPGA platforms");
  perf_[perf_key(kind, metric)] = std::move(surrogate);
}

bool AccelNASBench::has_perf(DeviceKind kind, PerfMetric metric) const {
  return perf_.count(perf_key(kind, metric)) > 0;
}

double AccelNASBench::query_accuracy(const Architecture& arch) const {
  ANB_CHECK(accuracy_ != nullptr,
            "AccelNASBench: accuracy surrogate not installed");
  return cached_query(*accuracy_, kAccuracyKey, arch);
}

std::vector<double> AccelNASBench::query_accuracy_batch(
    std::span<const Architecture> archs) const {
  ANB_CHECK(accuracy_ != nullptr,
            "AccelNASBench: accuracy surrogate not installed");
  return cached_query_batch(*accuracy_, kAccuracyKey, archs);
}

namespace {
const EnsembleSurrogate* as_ensemble(const Surrogate* surrogate) {
  return dynamic_cast<const EnsembleSurrogate*>(surrogate);
}
}  // namespace

bool AccelNASBench::has_noisy_accuracy() const {
  return as_ensemble(accuracy_.get()) != nullptr;
}

double AccelNASBench::query_accuracy_noisy(const Architecture& arch,
                                           Rng& rng) const {
  const auto* ensemble = as_ensemble(accuracy_.get());
  ANB_CHECK(ensemble != nullptr,
            "AccelNASBench: noisy queries need an ensemble accuracy "
            "surrogate (PipelineOptions::ensemble_accuracy)");
  return ensemble->sample(SearchSpace::features(arch), rng);
}

std::pair<double, double> AccelNASBench::query_accuracy_dist(
    const Architecture& arch) const {
  const auto* ensemble = as_ensemble(accuracy_.get());
  ANB_CHECK(ensemble != nullptr,
            "AccelNASBench: predictive distributions need an ensemble "
            "accuracy surrogate (PipelineOptions::ensemble_accuracy)");
  return ensemble->predict_dist(SearchSpace::features(arch));
}

double AccelNASBench::query_perf(const Architecture& arch, DeviceKind kind,
                                 PerfMetric metric) const {
  const auto it = perf_.find(perf_key(kind, metric));
  ANB_CHECK(it != perf_.end(),
            "AccelNASBench: no surrogate for " + dataset_name(kind, metric));
  return cached_query(*it->second, it->first, arch);
}

std::vector<double> AccelNASBench::query_perf_batch(
    std::span<const Architecture> archs, DeviceKind kind,
    PerfMetric metric) const {
  const auto it = perf_.find(perf_key(kind, metric));
  ANB_CHECK(it != perf_.end(),
            "AccelNASBench: no surrogate for " + dataset_name(kind, metric));
  return cached_query_batch(*it->second, it->first, archs);
}

double AccelNASBench::cached_query(const Surrogate& surrogate,
                                   const std::string& which,
                                   const Architecture& arch) const {
  if (cache_ == nullptr || !cache_->enabled.load(std::memory_order_relaxed))
    return surrogate.predict(SearchSpace::features(arch));
  const std::uint64_t key = SearchSpace::to_index(arch);
  {
    std::lock_guard<std::mutex> lock(cache_->mu);
    const auto map_it = cache_->maps.find(which);
    if (map_it != cache_->maps.end()) {
      const auto hit = map_it->second.find(key);
      if (hit != map_it->second.end()) {
        cache_->hits.fetch_add(1, std::memory_order_relaxed);
        return hit->second;
      }
    }
  }
  const double value = surrogate.predict(SearchSpace::features(arch));
  {
    std::lock_guard<std::mutex> lock(cache_->mu);
    auto& map = cache_->maps[which];
    if (map.size() >= kMaxCacheEntries) map.clear();
    map.emplace(key, value);
  }
  cache_->misses.fetch_add(1, std::memory_order_relaxed);
  return value;
}

std::vector<double> AccelNASBench::cached_query_batch(
    const Surrogate& surrogate, const std::string& which,
    std::span<const Architecture> archs) const {
  const std::size_t n = archs.size();
  std::vector<double> out(n);
  if (n == 0) return out;

  // Encodes the rows listed in `rows_to_encode` into one flat feature
  // matrix and predicts them with the surrogate's parallel batch path.
  const auto predict_rows = [&](std::span<const std::size_t> rows_to_encode,
                                std::span<double> pred) {
    const std::vector<double> first =
        SearchSpace::features(archs[rows_to_encode[0]]);
    const std::size_t num_features = first.size();
    std::vector<double> rows;
    rows.reserve(rows_to_encode.size() * num_features);
    rows.insert(rows.end(), first.begin(), first.end());
    for (std::size_t m = 1; m < rows_to_encode.size(); ++m) {
      const std::vector<double> f =
          SearchSpace::features(archs[rows_to_encode[m]]);
      rows.insert(rows.end(), f.begin(), f.end());
    }
    surrogate.predict_matrix(rows, num_features, pred);
  };

  if (cache_ == nullptr || !cache_->enabled.load(std::memory_order_relaxed)) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    predict_rows(all, out);
    return out;
  }

  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = SearchSpace::to_index(archs[i]);

  // Phase 1 (locked): resolve cache hits, collect one representative row
  // per unique missing key. Duplicates of a miss within the batch count as
  // hits — they are served without an extra prediction.
  std::vector<std::size_t> miss_rows;
  std::unordered_map<std::uint64_t, std::size_t> miss_slot;
  std::vector<char> filled(n, 0);
  std::uint64_t hits = 0;
  {
    std::lock_guard<std::mutex> lock(cache_->mu);
    auto& map = cache_->maps[which];
    for (std::size_t i = 0; i < n; ++i) {
      const auto hit = map.find(keys[i]);
      if (hit != map.end()) {
        out[i] = hit->second;
        filled[i] = 1;
        ++hits;
      } else if (miss_slot.emplace(keys[i], miss_rows.size()).second) {
        miss_rows.push_back(i);
      } else {
        ++hits;
      }
    }
  }
  if (hits > 0) cache_->hits.fetch_add(hits, std::memory_order_relaxed);
  if (miss_rows.empty()) return out;

  // Phase 2 (unlocked): one batched prediction over the unique misses.
  std::vector<double> pred(miss_rows.size());
  predict_rows(miss_rows, pred);

  // Phase 3 (locked): publish, then fan the predictions back out to every
  // row — including in-batch duplicates of a miss.
  {
    std::lock_guard<std::mutex> lock(cache_->mu);
    auto& map = cache_->maps[which];
    if (map.size() + pred.size() > kMaxCacheEntries) map.clear();
    for (std::size_t m = 0; m < miss_rows.size(); ++m)
      map.emplace(keys[miss_rows[m]], pred[m]);
  }
  cache_->misses.fetch_add(static_cast<std::uint64_t>(pred.size()),
                           std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i)
    if (filled[i] == 0) out[i] = pred[miss_slot.at(keys[i])];
  return out;
}

void AccelNASBench::set_cache_enabled(bool enabled) {
  if (cache_ != nullptr)
    cache_->enabled.store(enabled, std::memory_order_relaxed);
}

bool AccelNASBench::cache_enabled() const {
  return cache_ != nullptr && cache_->enabled.load(std::memory_order_relaxed);
}

void AccelNASBench::clear_cache() const {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(cache_->mu);
  cache_->maps.clear();
  cache_->hits.store(0, std::memory_order_relaxed);
  cache_->misses.store(0, std::memory_order_relaxed);
}

QueryCacheStats AccelNASBench::cache_stats() const {
  QueryCacheStats stats;
  if (cache_ == nullptr) return stats;
  stats.hits = cache_->hits.load(std::memory_order_relaxed);
  stats.misses = cache_->misses.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::pair<DeviceKind, PerfMetric>> AccelNASBench::perf_targets()
    const {
  std::vector<std::pair<DeviceKind, PerfMetric>> out;
  for (const auto& [key, surrogate] : perf_) {
    const auto slash = key.find('/');
    out.emplace_back(device_kind_from_name(key.substr(0, slash)),
                     perf_metric_from_name(key.substr(slash + 1)));
  }
  return out;
}

Json AccelNASBench::to_json() const {
  Json j = Json::object();
  j["format"] = "accel-nasbench-v1";
  if (accuracy_ != nullptr) j["accuracy"] = accuracy_->to_json();
  Json perf = Json::object();
  for (const auto& [key, surrogate] : perf_) perf[key] = surrogate->to_json();
  j["perf"] = std::move(perf);
  return j;
}

AccelNASBench AccelNASBench::from_json(const Json& j) {
  ANB_CHECK(j.at("format").as_string() == "accel-nasbench-v1",
            "AccelNASBench: unsupported format tag");
  AccelNASBench bench;
  if (j.contains("accuracy"))
    bench.accuracy_ = surrogate_from_json(j.at("accuracy"));
  for (const auto& [key, payload] : j.at("perf").as_object())
    bench.perf_[key] = surrogate_from_json(payload);
  return bench;
}

void AccelNASBench::save(const std::string& path) const {
  const std::string text = to_json().dump();
  if (fault::any_armed()) {
    if (const auto fire = fault::should_fire(kBenchmarkSaveFaultSite)) {
      // Short write: a prefix of the payload reaches disk, then the write
      // "fails". The truncated file must never load as a valid benchmark.
      const auto cut =
          static_cast<std::size_t>(fire->uniform() *
                                   static_cast<double>(text.size()));
      write_text_file(path, text.substr(0, cut));
      throw Error("AccelNASBench::save: injected short write to " + path);
    }
  }
  write_text_file(path, text);
}

AccelNASBench AccelNASBench::load(const std::string& path) {
  std::string text = read_text_file(path);
  if (fault::any_armed()) {
    if (const auto fire = fault::should_fire(kBenchmarkLoadFaultSite)) {
      // Short read: only a prefix of the file arrives; the JSON parse of
      // the truncated text throws anb::Error below.
      const auto cut =
          static_cast<std::size_t>(fire->uniform() *
                                   static_cast<double>(text.size()));
      text.resize(cut);
    }
  }
  return from_json(Json::parse(text));
}

}  // namespace anb
