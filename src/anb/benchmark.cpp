#include "anb/anb/benchmark.hpp"

#include <atomic>
#include <cstddef>
#include <unordered_map>
#include <utility>

#include "anb/fbnet/fbnet_space.hpp"
#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/surrogate/ensemble.hpp"
#include "anb/util/error.hpp"
#include "anb/util/fault.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/thread_annotations.hpp"

namespace anb {

namespace {
/// Epoch-style bound on each per-surrogate cache map: when an insert would
/// push past this, the map is dropped wholesale and refills. The MnasNet
/// space has ~10^13 points, so an unbounded map could grow without limit
/// under a long random search; 2^20 entries (~24 MiB/map) is far beyond any
/// optimizer budget in this repo, so eviction never fires in practice.
constexpr std::size_t kMaxCacheEntries = std::size_t{1} << 20;

/// Process-wide query counters (see DESIGN.md "Observability"). The cache
/// hit/miss counters back QueryCacheStats; per-instance accounting is
/// recovered by baseline subtraction in CacheState.
obs::Counter& query_count() {
  static obs::Counter& c = obs::counter("anb.query.count");
  return c;
}
obs::Counter& batch_count() {
  static obs::Counter& c = obs::counter("anb.query.batch.count");
  return c;
}
obs::Counter& batch_rows() {
  static obs::Counter& c = obs::counter("anb.query.batch.rows");
  return c;
}
obs::Histogram& batch_size_hist() {
  static obs::Histogram& h = obs::histogram("anb.query.batch.size");
  return h;
}
obs::Counter& cache_hits() {
  static obs::Counter& c = obs::counter("anb.query.cache.hits");
  return c;
}
obs::Counter& cache_misses() {
  static obs::Counter& c = obs::counter("anb.query.cache.misses");
  return c;
}
}  // namespace

/// Architecture-keyed query cache. Values are keyed by
/// SearchSpace::to_index(arch) — an exact bijection between architectures
/// and integers, so two distinct architectures can never alias. The maps
/// are mutex-guarded; hit/miss counts go to the process-wide registry
/// counters, with per-instance baselines captured here so cache_stats()
/// keeps its since-construction semantics. Predictions run *outside* the
/// lock: surrogates are deterministic, so two threads racing on the same
/// miss compute the same value and the duplicate insert is a no-op.
struct AccelNASBench::CacheState {
  Mutex mu;
  std::atomic<bool> enabled{true};
  std::uint64_t hits_baseline ANB_GUARDED_BY(mu) = 0;
  std::uint64_t misses_baseline ANB_GUARDED_BY(mu) = 0;
  std::unordered_map<std::uint64_t, double> accuracy_map ANB_GUARDED_BY(mu);
  std::unordered_map<MetricKey, std::unordered_map<std::uint64_t, double>>
      perf_maps ANB_GUARDED_BY(mu);

  CacheState() {
    hits_baseline = cache_hits().value();
    misses_baseline = cache_misses().value();
  }

  std::unordered_map<std::uint64_t, double>& map_for(const MetricKey* key)
      ANB_REQUIRES(mu) {
    return key == nullptr ? accuracy_map : perf_maps[*key];
  }
};

AccelNASBench::AccelNASBench() : cache_(std::make_unique<CacheState>()) {}
AccelNASBench::~AccelNASBench() = default;
AccelNASBench::AccelNASBench(AccelNASBench&&) noexcept = default;
AccelNASBench& AccelNASBench::operator=(AccelNASBench&&) noexcept = default;

const char* perf_metric_name(PerfMetric metric) {
  switch (metric) {
    case PerfMetric::kThroughput: return "Thr";
    case PerfMetric::kLatency: return "Lat";
    case PerfMetric::kEnergy: return "Enr";
    case PerfMetric::kPeakMemory: return "Mem";
  }
  return "unknown";
}

PerfMetric perf_metric_from_name(const std::string& name) {
  if (name == "Thr") return PerfMetric::kThroughput;
  if (name == "Lat") return PerfMetric::kLatency;
  if (name == "Enr") return PerfMetric::kEnergy;
  if (name == "Mem") return PerfMetric::kPeakMemory;
  throw Error("perf_metric_from_name: unknown metric '" + name + "'");
}

std::string device_short_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kTpuV2: return "TPUv2";
    case DeviceKind::kTpuV3: return "TPUv3";
    case DeviceKind::kA100: return "A100";
    case DeviceKind::kRtx3090: return "RTX";
    case DeviceKind::kZcu102: return "ZCU";
    case DeviceKind::kVck190: return "VCK";
    case DeviceKind::kMobileNpu: return "NPU";
    case DeviceKind::kServerCpu: return "CPU";
  }
  return "unknown";
}

DeviceKind device_from_short_name(const std::string& name) {
  if (name == "TPUv2") return DeviceKind::kTpuV2;
  if (name == "TPUv3") return DeviceKind::kTpuV3;
  if (name == "A100") return DeviceKind::kA100;
  if (name == "RTX") return DeviceKind::kRtx3090;
  if (name == "ZCU") return DeviceKind::kZcu102;
  if (name == "VCK") return DeviceKind::kVck190;
  if (name == "NPU") return DeviceKind::kMobileNpu;
  if (name == "CPU") return DeviceKind::kServerCpu;
  throw Error("device_from_short_name: unknown device '" + name + "'");
}

std::string MetricKey::to_string() const { return dataset_name(*this); }

MetricKey MetricKey::parse(const std::string& name) {
  // "ANB-<device>-<metric>"; the metric tag never contains '-', so split
  // at the last dash.
  const std::string prefix = "ANB-";
  ANB_CHECK(name.rfind(prefix, 0) == 0,
            "MetricKey::parse: expected 'ANB-' prefix in '" + name + "'");
  const auto last_dash = name.rfind('-');
  ANB_CHECK(last_dash != std::string::npos && last_dash > prefix.size(),
            "MetricKey::parse: malformed dataset name '" + name + "'");
  return MetricKey{
      device_from_short_name(
          name.substr(prefix.size(), last_dash - prefix.size())),
      perf_metric_from_name(name.substr(last_dash + 1))};
}

std::string dataset_name(MetricKey key) {
  return "ANB-" + device_short_name(key.device) + "-" +
         perf_metric_name(key.metric);
}

std::string AccelNASBench::perf_json_key(MetricKey key) {
  return std::string(device_kind_name(key.device)) + "/" +
         perf_metric_name(key.metric);
}

MetricKey AccelNASBench::perf_json_key_parse(const std::string& key) {
  const auto slash = key.find('/');
  ANB_CHECK(slash != std::string::npos,
            "AccelNASBench: malformed perf key '" + key + "'");
  return MetricKey{device_kind_from_name(key.substr(0, slash)),
                   perf_metric_from_name(key.substr(slash + 1))};
}

const SearchSpace& AccelNASBench::space_obj() const { return anb::space(space_); }

void AccelNASBench::check_space(const Arch& arch) const {
  ANB_CHECK(arch.space == space_,
            std::string("AccelNASBench: genotype is from space '") +
                space_name(arch.space) + "' but this benchmark serves '" +
                space_name(space_) + "'");
}

void AccelNASBench::set_space(SpaceId space) {
  ANB_CHECK(accuracy_ == nullptr && perf_.empty(),
            "AccelNASBench::set_space: surrogates already installed");
  register_builtin_spaces();
  anb::space(space);  // throws for unregistered ids
  space_ = space;
}

void AccelNASBench::set_accuracy_surrogate(
    std::unique_ptr<Surrogate> surrogate) {
  ANB_CHECK(surrogate != nullptr, "AccelNASBench: null accuracy surrogate");
  accuracy_ = std::move(surrogate);
}

void AccelNASBench::set_perf_surrogate(MetricKey key,
                                       std::unique_ptr<Surrogate> surrogate) {
  ANB_CHECK(surrogate != nullptr, "AccelNASBench: null perf surrogate");
  ANB_CHECK(key.metric != PerfMetric::kLatency ||
                device_supports_latency(key.device),
            "AccelNASBench: latency is only offered for FPGA platforms");
  perf_[key] = std::move(surrogate);
}

bool AccelNASBench::has_perf(MetricKey key) const {
  return perf_.count(key) > 0;
}

namespace {
/// MnasNet convenience overloads funnel through here.
std::vector<Arch> to_genotypes(std::span<const Architecture> archs) {
  std::vector<Arch> out;
  out.reserve(archs.size());
  for (const Architecture& arch : archs)
    out.push_back(MnasSpace::from_blocks(arch));
  return out;
}
}  // namespace

double AccelNASBench::query_accuracy(const Arch& arch) const {
  ANB_CHECK(accuracy_ != nullptr,
            "AccelNASBench: accuracy surrogate not installed");
  return cached_query(*accuracy_, nullptr, arch);
}

double AccelNASBench::query_accuracy(const Architecture& arch) const {
  return query_accuracy(MnasSpace::from_blocks(arch));
}

std::vector<double> AccelNASBench::query_accuracy_batch(
    std::span<const Arch> archs) const {
  ANB_CHECK(accuracy_ != nullptr,
            "AccelNASBench: accuracy surrogate not installed");
  return cached_query_batch(*accuracy_, nullptr, archs);
}

std::vector<double> AccelNASBench::query_accuracy_batch(
    std::span<const Architecture> archs) const {
  const std::vector<Arch> genotypes = to_genotypes(archs);
  return query_accuracy_batch(std::span<const Arch>(genotypes));
}

namespace {
const EnsembleSurrogate* as_ensemble(const Surrogate* surrogate) {
  return dynamic_cast<const EnsembleSurrogate*>(surrogate);
}
}  // namespace

bool AccelNASBench::has_noisy_accuracy() const {
  return as_ensemble(accuracy_.get()) != nullptr;
}

double AccelNASBench::query_accuracy_noisy(const Arch& arch, Rng& rng) const {
  const auto* ensemble = as_ensemble(accuracy_.get());
  ANB_CHECK(ensemble != nullptr,
            "AccelNASBench: noisy queries need an ensemble accuracy "
            "surrogate (PipelineOptions::ensemble_accuracy)");
  check_space(arch);
  return ensemble->sample(space_obj().features(arch), rng);
}

double AccelNASBench::query_accuracy_noisy(const Architecture& arch,
                                           Rng& rng) const {
  return query_accuracy_noisy(MnasSpace::from_blocks(arch), rng);
}

std::pair<double, double> AccelNASBench::query_accuracy_dist(
    const Arch& arch) const {
  const auto* ensemble = as_ensemble(accuracy_.get());
  ANB_CHECK(ensemble != nullptr,
            "AccelNASBench: predictive distributions need an ensemble "
            "accuracy surrogate (PipelineOptions::ensemble_accuracy)");
  check_space(arch);
  return ensemble->predict_dist(space_obj().features(arch));
}

std::pair<double, double> AccelNASBench::query_accuracy_dist(
    const Architecture& arch) const {
  return query_accuracy_dist(MnasSpace::from_blocks(arch));
}

double AccelNASBench::query_perf(const Arch& arch, MetricKey key) const {
  const auto it = perf_.find(key);
  ANB_CHECK(it != perf_.end(),
            "AccelNASBench: no surrogate for " + dataset_name(key));
  return cached_query(*it->second, &key, arch);
}

double AccelNASBench::query_perf(const Architecture& arch,
                                 MetricKey key) const {
  return query_perf(MnasSpace::from_blocks(arch), key);
}

std::vector<double> AccelNASBench::query_perf_batch(
    std::span<const Arch> archs, MetricKey key) const {
  const auto it = perf_.find(key);
  ANB_CHECK(it != perf_.end(),
            "AccelNASBench: no surrogate for " + dataset_name(key));
  return cached_query_batch(*it->second, &key, archs);
}

std::vector<double> AccelNASBench::query_perf_batch(
    std::span<const Architecture> archs, MetricKey key) const {
  const std::vector<Arch> genotypes = to_genotypes(archs);
  return query_perf_batch(std::span<const Arch>(genotypes), key);
}

double AccelNASBench::cached_query(const Surrogate& surrogate,
                                   const MetricKey* key,
                                   const Arch& arch) const {
  check_space(arch);
  const SearchSpace& sp = space_obj();
  query_count().add(1);
  if (cache_ == nullptr || !cache_->enabled.load(std::memory_order_relaxed))
    return surrogate.predict(sp.features(arch));
  const std::uint64_t cache_key = sp.to_index(arch);
  {
    MutexLock lock(cache_->mu);
    const auto& map = cache_->map_for(key);
    const auto hit = map.find(cache_key);
    if (hit != map.end()) {
      cache_hits().add(1);
      return hit->second;
    }
  }
  const double value = surrogate.predict(sp.features(arch));
  {
    MutexLock lock(cache_->mu);
    auto& map = cache_->map_for(key);
    if (map.size() >= kMaxCacheEntries) map.clear();
    map.emplace(cache_key, value);
  }
  cache_misses().add(1);
  return value;
}

std::vector<double> AccelNASBench::cached_query_batch(
    const Surrogate& surrogate, const MetricKey* key,
    std::span<const Arch> archs) const {
  const std::size_t n = archs.size();
  std::vector<double> out(n);
  if (n == 0) return out;
  for (const Arch& arch : archs) check_space(arch);
  const SearchSpace& sp = space_obj();
  ANB_SPAN("anb.query.batch");
  batch_count().add(1);
  batch_rows().add(n);
  batch_size_hist().observe(n);

  // Encodes the rows listed in `rows_to_encode` into one flat feature
  // matrix and predicts them with the surrogate's parallel batch path.
  // For the tree families that path auto-dispatches to the SIMD descent
  // engines (DESIGN.md "SIMD descent") — assembling misses into one
  // matrix here is what hands them vector-width batches instead of
  // per-arch scalar walks, at identical (bit-for-bit) results.
  const auto predict_rows = [&](std::span<const std::size_t> rows_to_encode,
                                std::span<double> pred) {
    const std::vector<double> first = sp.features(archs[rows_to_encode[0]]);
    const std::size_t num_features = first.size();
    std::vector<double> rows;
    rows.reserve(rows_to_encode.size() * num_features);
    rows.insert(rows.end(), first.begin(), first.end());
    for (std::size_t m = 1; m < rows_to_encode.size(); ++m) {
      const std::vector<double> f = sp.features(archs[rows_to_encode[m]]);
      rows.insert(rows.end(), f.begin(), f.end());
    }
    surrogate.predict_matrix(rows, num_features, pred);
  };

  if (cache_ == nullptr || !cache_->enabled.load(std::memory_order_relaxed)) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    predict_rows(all, out);
    return out;
  }

  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = sp.to_index(archs[i]);

  // Phase 1 (locked): resolve cache hits, collect one representative row
  // per unique missing key. Duplicates of a miss within the batch count as
  // hits — they are served without an extra prediction.
  std::vector<std::size_t> miss_rows;
  std::unordered_map<std::uint64_t, std::size_t> miss_slot;
  std::vector<char> filled(n, 0);
  std::uint64_t hits = 0;
  {
    MutexLock lock(cache_->mu);
    const auto& map = cache_->map_for(key);
    for (std::size_t i = 0; i < n; ++i) {
      const auto hit = map.find(keys[i]);
      if (hit != map.end()) {
        out[i] = hit->second;
        filled[i] = 1;
        ++hits;
      } else if (miss_slot.emplace(keys[i], miss_rows.size()).second) {
        miss_rows.push_back(i);
      } else {
        ++hits;
      }
    }
  }
  if (hits > 0) cache_hits().add(hits);
  if (miss_rows.empty()) return out;

  // Phase 2 (unlocked): one batched prediction over the unique misses.
  std::vector<double> pred(miss_rows.size());
  predict_rows(miss_rows, pred);

  // Phase 3 (locked): publish, then fan the predictions back out to every
  // row — including in-batch duplicates of a miss.
  {
    MutexLock lock(cache_->mu);
    auto& map = cache_->map_for(key);
    if (map.size() + pred.size() > kMaxCacheEntries) map.clear();
    for (std::size_t m = 0; m < miss_rows.size(); ++m)
      map.emplace(keys[miss_rows[m]], pred[m]);
  }
  cache_misses().add(static_cast<std::uint64_t>(pred.size()));
  for (std::size_t i = 0; i < n; ++i)
    if (filled[i] == 0) out[i] = pred[miss_slot.at(keys[i])];
  return out;
}

void AccelNASBench::set_cache_enabled(bool enabled) {
  if (cache_ != nullptr)
    cache_->enabled.store(enabled, std::memory_order_relaxed);
}

bool AccelNASBench::cache_enabled() const {
  return cache_ != nullptr && cache_->enabled.load(std::memory_order_relaxed);
}

void AccelNASBench::clear_cache() const {
  if (cache_ == nullptr) return;
  MutexLock lock(cache_->mu);
  cache_->accuracy_map.clear();
  cache_->perf_maps.clear();
  cache_->hits_baseline = cache_hits().value();
  cache_->misses_baseline = cache_misses().value();
}

QueryCacheStats AccelNASBench::cache_stats() const {
  QueryCacheStats stats;
  if (cache_ == nullptr) return stats;
  MutexLock lock(cache_->mu);
  stats.hits = cache_hits().value() - cache_->hits_baseline;
  stats.misses = cache_misses().value() - cache_->misses_baseline;
  return stats;
}

std::vector<MetricKey> AccelNASBench::perf_targets() const {
  std::vector<MetricKey> out;
  out.reserve(perf_.size());
  for (const auto& [key, surrogate] : perf_) out.push_back(key);
  return out;
}

Json AccelNASBench::to_json() const {
  Json j = Json::object();
  j["format"] = "accel-nasbench-v1";
  // The space key is always written; pre-interface artifacts lack it and
  // load as MnasNet (the only space that existed when they were saved).
  j["space"] = space_name(space_);
  if (accuracy_ != nullptr) j["accuracy"] = accuracy_->to_json();
  Json perf = Json::object();
  for (const auto& [key, surrogate] : perf_)
    perf[perf_json_key(key)] = surrogate->to_json();
  j["perf"] = std::move(perf);
  return j;
}

AccelNASBench AccelNASBench::from_json(const Json& j) {
  ANB_CHECK(j.at("format").as_string() == "accel-nasbench-v1",
            "AccelNASBench: unsupported format tag");
  AccelNASBench bench;
  if (j.contains("space"))
    bench.set_space(space_id_from_name(j.at("space").as_string()));
  if (j.contains("accuracy"))
    bench.accuracy_ = surrogate_from_json(j.at("accuracy"));
  for (const auto& [key, payload] : j.at("perf").as_object())
    bench.perf_[perf_json_key_parse(key)] = surrogate_from_json(payload);
  return bench;
}

void AccelNASBench::save(const std::string& path) const {
  const std::string text = to_json().dump();
  if (fault::any_armed()) {
    if (const auto fire = fault::should_fire(kBenchmarkSaveFaultSite)) {
      // Short write: a prefix of the payload reaches disk, then the write
      // "fails". The truncated file must never load as a valid benchmark.
      const auto cut =
          static_cast<std::size_t>(fire->uniform() *
                                   static_cast<double>(text.size()));
      write_text_file(path, text.substr(0, cut));
      throw Error("AccelNASBench::save: injected short write to " + path);
    }
  }
  write_text_file(path, text);
}

AccelNASBench AccelNASBench::load_text(std::string text) {
  if (fault::any_armed()) {
    if (const auto fire = fault::should_fire(kBenchmarkLoadFaultSite)) {
      // Short read: only a prefix of the file arrives; the JSON parse of
      // the truncated text throws anb::Error below.
      const auto cut =
          static_cast<std::size_t>(fire->uniform() *
                                   static_cast<double>(text.size()));
      text.resize(cut);
    }
  }
  return from_json(Json::parse(text));
}

AccelNASBench AccelNASBench::load(const std::string& path) {
  try {
    return load_text(read_text_file(path));
  } catch (const Error& e) {
    throw Error("AccelNASBench::load: cannot load '" + path +
                "': " + e.what());
  }
}

}  // namespace anb
