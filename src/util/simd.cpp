#include "anb/util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "anb/util/error.hpp"

namespace anb::simd {

namespace {

// Forced dispatch target: -1 = none. Process-wide so tests and benches
// can pin a path through public entry points without threading a
// parameter through every call site.
std::atomic<int> g_forced_target{-1};

bool read_env_disabled() {
  const char* v = std::getenv("ANB_SIMD");
  if (v == nullptr) return false;
  const std::string_view s(v);
  return s == "off" || s == "0" || s == "scalar" || s == "OFF";
}

}  // namespace

const char* target_name(Target t) {
  switch (t) {
    case Target::kScalar:
      return "scalar";
    case Target::kAvx2:
      return "avx2";
    case Target::kNeon:
      return "neon";
  }
  return "unknown";
}

bool cpu_supports(Target t) {
  switch (t) {
    case Target::kScalar:
      return true;
    case Target::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      // Compiler builtin: no <cpuid.h> include, no raw intrinsics — this
      // keeps simd.cpp itself clean under the raw-simd lint pass.
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Target::kNeon:
#if defined(__ARM_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Target best_cpu_target() {
  if (cpu_supports(Target::kAvx2)) return Target::kAvx2;
  if (cpu_supports(Target::kNeon)) return Target::kNeon;
  return Target::kScalar;
}

bool env_disabled() {
  // getenv once: the knob is a process-level configuration, and callers
  // sit on the query hot path.
  static const bool disabled = read_env_disabled();
  return disabled;
}

Target active_target() {
  const int forced = g_forced_target.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Target>(forced);
  if (env_disabled()) return Target::kScalar;
  return best_cpu_target();
}

void force_target(Target t) {
  ANB_CHECK(cpu_supports(t), "simd::force_target: CPU does not support the "
                             "requested target");
  g_forced_target.store(static_cast<int>(t), std::memory_order_relaxed);
}

void clear_forced_target() {
  g_forced_target.store(-1, std::memory_order_relaxed);
}

}  // namespace anb::simd
