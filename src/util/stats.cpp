#include "anb/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "anb/util/error.hpp"

namespace anb {

double mean(std::span<const double> xs) {
  ANB_CHECK(!xs.empty(), "mean: empty input");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  ANB_CHECK(xs.size() >= 2, "variance: need at least 2 samples");
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double population_variance(std::span<const double> xs) {
  ANB_CHECK(!xs.empty(), "population_variance: empty input");
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size());
}

double quantile(std::span<const double> xs, double q) {
  ANB_CHECK(!xs.empty(), "quantile: empty input");
  ANB_CHECK(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double min_value(std::span<const double> xs) {
  ANB_CHECK(!xs.empty(), "min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  ANB_CHECK(!xs.empty(), "max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<std::size_t> argsort(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  return idx;
}

std::vector<double> ranks_with_ties(std::span<const double> xs) {
  const auto order = argsort(xs);
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank over the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

std::vector<double> running_max(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  double best = -std::numeric_limits<double>::infinity();
  for (double x : xs) {
    best = std::max(best, x);
    out.push_back(best);
  }
  return out;
}

}  // namespace anb
