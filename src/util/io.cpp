#include "anb/util/io.hpp"

#include <fstream>

#include "anb/util/error.hpp"
#include "anb/util/json.hpp"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define ANB_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace anb::io {

bool mmap_supported() {
#if defined(ANB_HAS_MMAP)
  return true;
#else
  return false;
#endif
}

Buffer::~Buffer() {
#if defined(ANB_HAS_MMAP)
  if (mapped_ && map_base_ != nullptr) munmap(map_base_, map_len_);
#endif
}

std::shared_ptr<const Buffer> Buffer::from_bytes(std::vector<char> bytes) {
  auto buf = std::shared_ptr<Buffer>(new Buffer());
  buf->owned_ = std::move(bytes);
  buf->data_ = buf->owned_.data();
  buf->size_ = buf->owned_.size();
  return buf;
}

std::shared_ptr<const Buffer> Buffer::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ANB_CHECK(in.good(), "io::read_file: cannot open '" + path + "'");
  std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  ANB_CHECK(!in.bad(), "io::read_file: read error on '" + path + "'");
  return from_bytes(std::move(bytes));
}

std::shared_ptr<const Buffer> Buffer::map_file(const std::string& path) {
#if defined(ANB_HAS_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);  // ANB_LINT_ALLOW(raw-io)
  ANB_CHECK(fd >= 0, "io::map_file: cannot open '" + path + "'");
  struct stat st{};
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    throw Error("io::map_file: cannot stat '" + path + "'");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap of length 0 is invalid; an empty file is an empty heap buffer.
    ::close(fd);
    return from_bytes({});
  }
  void* base =
      mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);  // ANB_LINT_ALLOW(raw-io)
  ::close(fd);  // the mapping stays valid after close
  ANB_CHECK(base != MAP_FAILED, "io::map_file: mmap failed for '" + path + "'");
  auto buf = std::shared_ptr<Buffer>(new Buffer());
  buf->data_ = static_cast<const char*>(base);
  buf->size_ = size;
  buf->mapped_ = true;
  buf->map_base_ = base;
  buf->map_len_ = size;
  return buf;
#else
  return read_file(path);
#endif
}

void write_file(const std::string& path, std::span<const char> content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ANB_CHECK(out.good(), "io::write_file: cannot open '" + path + "'");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  ANB_CHECK(out.good(), "io::write_file: write error on '" + path + "'");
}

}  // namespace anb::io

namespace anb {

// read_text_file/write_text_file are declared in anb/util/json.hpp (they
// predate the io wrapper); their implementations live here so every file
// open in the library goes through this translation unit.
std::string read_text_file(const std::string& path) {
  const auto buf = io::Buffer::read_file(path);
  return std::string(buf->data(), buf->size());
}

void write_text_file(const std::string& path, const std::string& content) {
  io::write_file(path, {content.data(), content.size()});
}

}  // namespace anb
