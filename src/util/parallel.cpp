#include "anb/util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/error.hpp"
#include "anb/util/fault.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/thread_annotations.hpp"

namespace anb {

namespace {

/// First exception thrown by any worker, captured under its own mutex so
/// the rethrow on the calling thread is race-free (and provable so: the
/// slot is ANB_GUARDED_BY the mutex).
struct ErrorSlot {
  Mutex mu;
  std::exception_ptr first ANB_GUARDED_BY(mu);

  void capture(std::exception_ptr error) {
    MutexLock lock(mu);
    if (!first) first = std::move(error);
  }

  /// Safe after all workers joined (the join is the happens-before edge).
  void rethrow_if_set() {
    MutexLock lock(mu);
    if (first) std::rethrow_exception(first);
  }
};

/// ANB_NUM_THREADS, parsed once; 0 when unset/invalid.
unsigned env_num_threads() {
  static const unsigned value = [] {
    const char* env = std::getenv("ANB_NUM_THREADS");
    if (env == nullptr) return 0u;
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed <= 0 || parsed > 0xFFFF) return 0u;
    return static_cast<unsigned>(parsed);
  }();
  return value;
}

std::atomic<unsigned> g_default_num_threads{0};

}  // namespace

unsigned default_num_threads() {
  const unsigned installed =
      g_default_num_threads.load(std::memory_order_relaxed);
  if (installed != 0) return installed;
  const unsigned env = env_num_threads();
  if (env != 0) return env;
  return std::max(1u, std::thread::hardware_concurrency());
}

void set_default_num_threads(unsigned num_threads) {
  g_default_num_threads.store(num_threads, std::memory_order_relaxed);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  unsigned num_threads) {
  ANB_CHECK(static_cast<bool>(body), "parallel_for: null body");
  if (n == 0) return;
  if (num_threads == 0) num_threads = default_num_threads();
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, n));

  // Call/item counts depend only on the work submitted, never on the
  // thread count — both are covered by the obs determinism contract.
  static obs::Counter& calls = obs::counter("anb.parallel.calls");
  static obs::Counter& items = obs::counter("anb.parallel.items");
  calls.add(1);
  items.add(n);

  if (num_threads == 1) {
    ANB_SPAN("anb.parallel.worker");
    for (std::size_t i = 0; i < n; ++i) {
      if (fault::any_armed()) fault::maybe_throw(kParallelForWorkerFaultSite, i);
      body(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  ErrorSlot error;

  auto worker = [&] {
    // Per-worker busy time: one span covering the worker's whole drain of
    // the shared index. Durations are wall-clock and nondeterministic.
    ANB_SPAN("anb.parallel.worker");
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        if (fault::any_armed())
          fault::maybe_throw(kParallelForWorkerFaultSite, i);
        body(i);
      } catch (...) {
        error.capture(std::current_exception());
        // Drain remaining work quickly after a failure.
        next.store(n, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();
  error.rethrow_if_set();
}

void parallel_for_chunks(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body,
    unsigned num_threads) {
  ANB_CHECK(static_cast<bool>(body), "parallel_for_chunks: null body");
  ANB_CHECK(chunk > 0, "parallel_for_chunks: chunk must be > 0");
  if (n == 0) return;
  if (n <= chunk) {
    body(0, n);
    return;
  }
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  parallel_for(
      n_chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        body(begin, std::min(n, begin + chunk));
      },
      num_threads);
}

}  // namespace anb
