#include "anb/util/pareto.hpp"

#include <algorithm>
#include <limits>

#include "anb/util/error.hpp"

namespace anb {

std::vector<std::size_t> pareto_front(std::span<const double> obj1,
                                      std::span<const double> obj2,
                                      bool maximize1, bool maximize2) {
  ANB_CHECK(obj1.size() == obj2.size(), "pareto_front: size mismatch");
  const std::size_t n = obj1.size();
  if (n == 0) return {};

  // Normalize to maximization of both objectives.
  auto o1 = [&](std::size_t i) { return maximize1 ? obj1[i] : -obj1[i]; };
  auto o2 = [&](std::size_t i) { return maximize2 ? obj2[i] : -obj2[i]; };

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  // Sort by obj1 descending, obj2 descending as tiebreak.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (o1(a) != o1(b)) return o1(a) > o1(b);
    return o2(a) > o2(b);
  });

  // Sweep: a point survives iff its obj2 strictly exceeds the best obj2 seen
  // among points with >= obj1 — except exact duplicates of a survivor, which
  // are also kept (they represent distinct architectures with equal metrics).
  std::vector<std::size_t> front;
  double best_o2 = -std::numeric_limits<double>::infinity();
  double survivor_o1 = 0.0;
  for (std::size_t idx : order) {
    if (o2(idx) > best_o2) {
      best_o2 = o2(idx);
      survivor_o1 = o1(idx);
      front.push_back(idx);
    } else if (o2(idx) == best_o2 && o1(idx) == survivor_o1) {
      front.push_back(idx);  // exact duplicate of the last survivor
    }
  }
  // `front` is in descending obj1 order; return ascending-improvement order.
  std::reverse(front.begin(), front.end());
  return front;
}

double hypervolume_2d(std::span<const ParetoPoint> front, double ref1,
                      double ref2) {
  if (front.empty()) return 0.0;
  std::vector<ParetoPoint> pts(front.begin(), front.end());
  std::sort(pts.begin(), pts.end(), [](const ParetoPoint& a,
                                       const ParetoPoint& b) {
    if (a.obj1 != b.obj1) return a.obj1 > b.obj1;
    return a.obj2 > b.obj2;
  });
  double volume = 0.0;
  double prev_o2 = ref2;
  for (const auto& p : pts) {
    ANB_CHECK(p.obj1 >= ref1 && p.obj2 >= ref2,
              "hypervolume_2d: reference point must be dominated by the front");
    if (p.obj2 > prev_o2) {
      volume += (p.obj1 - ref1) * (p.obj2 - prev_o2);
      prev_o2 = p.obj2;
    }
  }
  return volume;
}

}  // namespace anb
