#pragma once

// The repo's single SIMD surface. Every raw intrinsic (AVX2, NEON) lives
// behind the Isa policy structs below; the raw-simd lint pass forbids
// <immintrin.h>/<arm_neon.h> and `_mm*`/NEON identifiers anywhere else in
// src/, so a grep for this header finds every data-parallel kernel.
//
// Two layers:
//  - Target / cpu_supports / active_target: *runtime* dispatch. One binary
//    carries a scalar build of every kernel plus (on x86) an AVX2 build
//    compiled in its own -mavx2 translation unit; the probe picks at run
//    time, so a binary built on an AVX2 box still runs on an older CPU.
//  - ScalarIsa / Avx2Isa / NeonIsa: *compile-time* policy structs with an
//    identical static interface (8 x i32 lanes), consumed by kernel
//    templates. The vector ISAs are only defined when the translation unit
//    is compiled with the matching -m flags, which makes it impossible to
//    instantiate an AVX2 kernel in a TU that could leak AVX2 instructions
//    into baseline code paths.
//
// Exactness: every op here is bit-exact against its scalar meaning —
// compares are IEEE `<` (ordered, quiet: NaN compares false), arithmetic
// on doubles is mul-then-add with contraction disabled in the vector TUs,
// so kernels built on these ops can promise bit-identical results to a
// scalar loop.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace anb::simd {

/// Instruction sets the dispatcher understands. kScalar is always
/// available; the others require both a capable CPU (runtime probe) and a
/// toolchain that could build the kernel TU (else dispatch falls back).
enum class Target : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

const char* target_name(Target t);

/// True if the running CPU can execute `t`. kScalar is always true; kAvx2
/// uses the compiler's CPU probe on x86 (false elsewhere); kNeon is true
/// exactly when the binary was built for a NEON-mandatory architecture.
bool cpu_supports(Target t);

/// Best target the CPU supports, ignoring overrides and ANB_SIMD.
Target best_cpu_target();

/// True when the environment disables SIMD (`ANB_SIMD` set to `off`, `0`
/// or `scalar`; read once per process).
bool env_disabled();

/// The dispatch decision: a forced target if one is set (test/bench
/// hook), else kScalar when ANB_SIMD disables SIMD, else
/// best_cpu_target().
Target active_target();

/// Process-wide forced target (checked against cpu_supports; throws
/// anb::Error on an impossible force). Tests and benches use the RAII
/// form below; the force wins over ANB_SIMD.
void force_target(Target t);
void clear_forced_target();

/// RAII force/restore of the dispatch target.
class ScopedTarget {
 public:
  explicit ScopedTarget(Target t) { force_target(t); }
  ~ScopedTarget() { clear_forced_target(); }
  ScopedTarget(const ScopedTarget&) = delete;
  ScopedTarget& operator=(const ScopedTarget&) = delete;
};

/// Hint the prefetcher at `p` (read, high locality). No-op semantics: a
/// wrong hint costs nothing, so callers may prefetch speculatively.
inline void prefetch(const void* p) { __builtin_prefetch(p, 0, 3); }

/// 64-byte-aligned zero-initialized heap array of a trivially copyable T,
/// with `pad_bytes` extra zeroed bytes past the end: AVX2 byte gathers
/// load 4 bytes per lane, so a gather whose last in-range byte is the
/// final element reads up to 3 bytes past it. Padding keeps that read
/// inside the allocation (ASan-clean by construction).
template <class T>
class AlignedBuf {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  AlignedBuf() = default;
  explicit AlignedBuf(std::size_t n, std::size_t pad_bytes = 0) : size_(n) {
    const std::size_t bytes = n * sizeof(T) + pad_bytes;
    if (bytes == 0) return;
    ptr_.reset(static_cast<T*>(
        ::operator new(bytes, std::align_val_t{kAlignment})));
    std::memset(ptr_.get(), 0, bytes);
  }

  T* data() { return ptr_.get(); }
  const T* data() const { return ptr_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return ptr_.get()[i]; }
  const T& operator[](std::size_t i) const { return ptr_.get()[i]; }

  static constexpr std::size_t kAlignment = 64;

 private:
  struct Free {
    void operator()(T* p) const {
      ::operator delete(p, std::align_val_t{kAlignment});
    }
  };
  std::unique_ptr<T, Free> ptr_;
  std::size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// Isa policy structs. Shared interface, 8 lanes of i32 state:
//
//   VI32                  vector of 8 x i32 (lane masks are -1/0)
//   splat/load/add        broadcast, unaligned load, lanewise add
//   low16/high16          w & 0xFFFF, unsigned w >> 16 (packed-field reads)
//   cmplt/cmpeq           signed compares -> lane masks
//   bit_and/select        mask combine, mask ? a : b
//   all_true              every lane mask set
//   gather_i32            base[idx] per lane
//   gather_u8             zero-extended base[off] per lane (callers pad +3B)
//   gather_u64            base[idx] split into low/high dword vectors
//   cmplt_f64             x[off] < t[idx] per lane (IEEE <, NaN -> false)
//   axpy_leaf             out[l] += scale * leaf[idx[l]] (mul then add)
//
// plus a 32 x u8 byte tier for the masked leaf-set kernel (compare a
// block of quantized row codes against one node threshold and fold the
// node's leaf mask into per-row accumulators):
//
//   VU8                   vector of 32 x u8
//   b_splat/b_load/b_store broadcast, unaligned load/store (32 bytes)
//   b_ones                all bits set (the leaf-mask identity)
//   b_and/b_or            bitwise combine
//   b_cmplt_s8            signed per-byte a < b -> 0xFF/0x00. Callers
//                         compare unsigned codes by pre-XORing both
//                         sides with 0x80 (order-preserving bias).
// ---------------------------------------------------------------------------

/// Reference implementation: plain loops over an 8-lane struct. Always
/// compiled, used both as the fallback kernel and as the semantics spec
/// the vector ISAs are tested against.
struct ScalarIsa {
  static constexpr Target kTarget = Target::kScalar;
  static constexpr std::size_t kLanes = 8;

  struct VI32 {
    std::int32_t v[8];
  };

  static VI32 splat(std::int32_t x) {
    VI32 r;
    for (auto& lane : r.v) lane = x;
    return r;
  }
  static VI32 load(const std::int32_t* p) {
    VI32 r;
    for (int i = 0; i < 8; ++i) r.v[i] = p[i];
    return r;
  }
  static VI32 add(VI32 a, VI32 b) {
    VI32 r;
    for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  static VI32 low16(VI32 a) {
    VI32 r;
    for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] & 0xFFFF;
    return r;
  }
  static VI32 high16(VI32 a) {
    VI32 r;
    for (int i = 0; i < 8; ++i)
      r.v[i] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(a.v[i]) >> 16);
    return r;
  }
  static VI32 cmplt(VI32 a, VI32 b) {
    VI32 r;
    for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] < b.v[i] ? -1 : 0;
    return r;
  }
  static VI32 cmpeq(VI32 a, VI32 b) {
    VI32 r;
    for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] == b.v[i] ? -1 : 0;
    return r;
  }
  static VI32 bit_and(VI32 a, VI32 b) {
    VI32 r;
    for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] & b.v[i];
    return r;
  }
  static VI32 select(VI32 mask, VI32 a, VI32 b) {
    VI32 r;
    for (int i = 0; i < 8; ++i) r.v[i] = mask.v[i] != 0 ? a.v[i] : b.v[i];
    return r;
  }
  static bool all_true(VI32 mask) {
    bool ok = true;
    for (int i = 0; i < 8; ++i) ok &= mask.v[i] == -1;
    return ok;
  }
  static VI32 gather_i32(const std::int32_t* base, VI32 idx) {
    VI32 r;
    for (int i = 0; i < 8; ++i) r.v[i] = base[idx.v[i]];
    return r;
  }
  static VI32 gather_u8(const std::uint8_t* base, VI32 off) {
    VI32 r;
    for (int i = 0; i < 8; ++i) r.v[i] = base[off.v[i]];
    return r;
  }
  static void gather_u64(const std::uint64_t* base, VI32 idx, VI32& lo,
                         VI32& hi) {
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t w = base[idx.v[i]];
      lo.v[i] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(w & 0xFFFFFFFFu));
      hi.v[i] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(w >> 32));
    }
  }
  static VI32 cmplt_f64(const double* xbase, VI32 xoff, const double* tbase,
                        VI32 tidx) {
    VI32 r;
    for (int i = 0; i < 8; ++i)
      r.v[i] = xbase[xoff.v[i]] < tbase[tidx.v[i]] ? -1 : 0;
    return r;
  }
  static void axpy_leaf(const double* leaf, VI32 idx, double scale,
                        double* out) {
    for (int i = 0; i < 8; ++i) out[i] += scale * leaf[idx.v[i]];
  }

  struct VU8 {
    std::uint8_t v[32];
  };

  static VU8 b_splat(std::uint8_t x) {
    VU8 r;
    for (auto& lane : r.v) lane = x;
    return r;
  }
  static VU8 b_ones() { return b_splat(0xFF); }
  static VU8 b_load(const std::uint8_t* p) {
    VU8 r;
    for (int i = 0; i < 32; ++i) r.v[i] = p[i];
    return r;
  }
  static void b_store(std::uint8_t* p, VU8 x) {
    for (int i = 0; i < 32; ++i) p[i] = x.v[i];
  }
  static VU8 b_and(VU8 a, VU8 b) {
    VU8 r;
    for (int i = 0; i < 32; ++i)
      r.v[i] = static_cast<std::uint8_t>(a.v[i] & b.v[i]);
    return r;
  }
  static VU8 b_or(VU8 a, VU8 b) {
    VU8 r;
    for (int i = 0; i < 32; ++i)
      r.v[i] = static_cast<std::uint8_t>(a.v[i] | b.v[i]);
    return r;
  }
  static VU8 b_cmplt_s8(VU8 a, VU8 b) {
    VU8 r;
    for (int i = 0; i < 32; ++i)
      r.v[i] = static_cast<std::int8_t>(a.v[i]) <
                       static_cast<std::int8_t>(b.v[i])
                   ? 0xFF
                   : 0x00;
    return r;
  }
};

#if defined(__AVX2__)
/// AVX2: only defined in TUs compiled with -mavx2 (the dedicated kernel
/// TU), so baseline TUs cannot even name it — the type system enforces
/// the "no AVX2 instructions outside the dispatched TU" rule. Gathers do
/// the heavy lifting: node fields, packed qnodes, feature values and leaf
/// values are all gathered per 8-lane step.
struct Avx2Isa {
  static constexpr Target kTarget = Target::kAvx2;
  static constexpr std::size_t kLanes = 8;

  using VI32 = __m256i;

  static VI32 splat(std::int32_t x) { return _mm256_set1_epi32(x); }
  static VI32 load(const std::int32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static VI32 add(VI32 a, VI32 b) { return _mm256_add_epi32(a, b); }
  static VI32 low16(VI32 a) {
    return _mm256_and_si256(a, _mm256_set1_epi32(0xFFFF));
  }
  static VI32 high16(VI32 a) { return _mm256_srli_epi32(a, 16); }
  static VI32 cmplt(VI32 a, VI32 b) { return _mm256_cmpgt_epi32(b, a); }
  static VI32 cmpeq(VI32 a, VI32 b) { return _mm256_cmpeq_epi32(a, b); }
  static VI32 bit_and(VI32 a, VI32 b) { return _mm256_and_si256(a, b); }
  static VI32 select(VI32 mask, VI32 a, VI32 b) {
    return _mm256_blendv_epi8(b, a, mask);
  }
  static bool all_true(VI32 mask) {
    return _mm256_movemask_epi8(mask) == -1;
  }
  static VI32 gather_i32(const std::int32_t* base, VI32 idx) {
    return _mm256_i32gather_epi32(base, idx, 4);
  }
  static VI32 gather_u8(const std::uint8_t* base, VI32 off) {
    // Scale-1 dword gather, then mask to the addressed byte. Reads up to
    // 3 bytes past base[off] — AlignedBuf's pad_bytes covers it.
    const VI32 w = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(base), off, 1);
    return _mm256_and_si256(w, _mm256_set1_epi32(0xFF));
  }
  static void gather_u64(const std::uint64_t* base, VI32 idx, VI32& lo,
                         VI32& hi) {
    const __m128i i0 = _mm256_castsi256_si128(idx);
    const __m128i i1 = _mm256_extracti128_si256(idx, 1);
    const __m256i q0 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(base), i0, 8);
    const __m256i q1 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(base), i1, 8);
    // Sort each gather's dwords into [low dwords | high dwords], then
    // splice the 128-bit halves: two cross-lane shuffles per output.
    const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
    const __m256i p0 = _mm256_permutevar8x32_epi32(q0, perm);
    const __m256i p1 = _mm256_permutevar8x32_epi32(q1, perm);
    lo = _mm256_permute2x128_si256(p0, p1, 0x20);
    hi = _mm256_permute2x128_si256(p0, p1, 0x31);
  }
  static VI32 cmplt_f64(const double* xbase, VI32 xoff, const double* tbase,
                        VI32 tidx) {
    const __m128i x0i = _mm256_castsi256_si128(xoff);
    const __m128i x1i = _mm256_extracti128_si256(xoff, 1);
    const __m128i t0i = _mm256_castsi256_si128(tidx);
    const __m128i t1i = _mm256_extracti128_si256(tidx, 1);
    const __m256d x0 = _mm256_i32gather_pd(xbase, x0i, 8);
    const __m256d x1 = _mm256_i32gather_pd(xbase, x1i, 8);
    const __m256d t0 = _mm256_i32gather_pd(tbase, t0i, 8);
    const __m256d t1 = _mm256_i32gather_pd(tbase, t1i, 8);
    // _CMP_LT_OQ: ordered quiet less-than — NaN compares false, exactly
    // the scalar `x < t`.
    const __m256i m0 = _mm256_castpd_si256(_mm256_cmp_pd(x0, t0, _CMP_LT_OQ));
    const __m256i m1 = _mm256_castpd_si256(_mm256_cmp_pd(x1, t1, _CMP_LT_OQ));
    // Each qword mask is all-ones/all-zeros; keeping the even dwords
    // narrows to i32 lane masks.
    const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
    const __m256i p0 = _mm256_permutevar8x32_epi32(m0, perm);
    const __m256i p1 = _mm256_permutevar8x32_epi32(m1, perm);
    return _mm256_permute2x128_si256(p0, p1, 0x20);
  }
  static void axpy_leaf(const double* leaf, VI32 idx, double scale,
                        double* out) {
    const __m128i i0 = _mm256_castsi256_si128(idx);
    const __m128i i1 = _mm256_extracti128_si256(idx, 1);
    const __m256d v0 = _mm256_i32gather_pd(leaf, i0, 8);
    const __m256d v1 = _mm256_i32gather_pd(leaf, i1, 8);
    const __m256d s = _mm256_set1_pd(scale);
    // Separate mul and add (never fused): bit-identical to the scalar
    // `out += scale * leaf`. The kernel TU also builds with
    // -mno-fma -ffp-contract=off as belt and braces.
    _mm256_storeu_pd(
        out, _mm256_add_pd(_mm256_loadu_pd(out), _mm256_mul_pd(s, v0)));
    _mm256_storeu_pd(
        out + 4,
        _mm256_add_pd(_mm256_loadu_pd(out + 4), _mm256_mul_pd(s, v1)));
  }

  using VU8 = __m256i;

  static VU8 b_splat(std::uint8_t x) {
    return _mm256_set1_epi8(static_cast<char>(x));
  }
  static VU8 b_ones() { return _mm256_set1_epi8(-1); }
  static VU8 b_load(const std::uint8_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void b_store(std::uint8_t* p, VU8 x) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x);
  }
  static VU8 b_and(VU8 a, VU8 b) { return _mm256_and_si256(a, b); }
  static VU8 b_or(VU8 a, VU8 b) { return _mm256_or_si256(a, b); }
  static VU8 b_cmplt_s8(VU8 a, VU8 b) { return _mm256_cmpgt_epi8(b, a); }
};
#endif  // __AVX2__

#if defined(__ARM_NEON)
/// NEON: two int32x4 halves per 8-lane vector. NEON has no gather, so the
/// memory-indirect ops go through small stack arrays (the compiler turns
/// these into lane loads); the lanewise compare/select core is vector.
/// Compares on doubles use scalar IEEE `<`, keeping the exactness
/// contract trivially.
struct NeonIsa {
  static constexpr Target kTarget = Target::kNeon;
  static constexpr std::size_t kLanes = 8;

  struct VI32 {
    int32x4_t a;
    int32x4_t b;
  };

  static VI32 splat(std::int32_t x) {
    return {vdupq_n_s32(x), vdupq_n_s32(x)};
  }
  static VI32 load(const std::int32_t* p) {
    return {vld1q_s32(p), vld1q_s32(p + 4)};
  }
  static VI32 add(VI32 x, VI32 y) {
    return {vaddq_s32(x.a, y.a), vaddq_s32(x.b, y.b)};
  }
  static VI32 low16(VI32 x) {
    const int32x4_t m = vdupq_n_s32(0xFFFF);
    return {vandq_s32(x.a, m), vandq_s32(x.b, m)};
  }
  static VI32 high16(VI32 x) {
    return {vreinterpretq_s32_u32(vshrq_n_u32(vreinterpretq_u32_s32(x.a), 16)),
            vreinterpretq_s32_u32(vshrq_n_u32(vreinterpretq_u32_s32(x.b), 16))};
  }
  static VI32 cmplt(VI32 x, VI32 y) {
    return {vreinterpretq_s32_u32(vcltq_s32(x.a, y.a)),
            vreinterpretq_s32_u32(vcltq_s32(x.b, y.b))};
  }
  static VI32 cmpeq(VI32 x, VI32 y) {
    return {vreinterpretq_s32_u32(vceqq_s32(x.a, y.a)),
            vreinterpretq_s32_u32(vceqq_s32(x.b, y.b))};
  }
  static VI32 bit_and(VI32 x, VI32 y) {
    return {vandq_s32(x.a, y.a), vandq_s32(x.b, y.b)};
  }
  static VI32 select(VI32 mask, VI32 x, VI32 y) {
    return {vbslq_s32(vreinterpretq_u32_s32(mask.a), x.a, y.a),
            vbslq_s32(vreinterpretq_u32_s32(mask.b), x.b, y.b)};
  }
  static bool all_true(VI32 mask) {
    const uint32x4_t both =
        vandq_u32(vreinterpretq_u32_s32(mask.a), vreinterpretq_u32_s32(mask.b));
#if defined(__aarch64__)
    return vminvq_u32(both) == 0xFFFFFFFFu;
#else
    std::uint32_t lanes[4];
    vst1q_u32(lanes, both);
    return (lanes[0] & lanes[1] & lanes[2] & lanes[3]) == 0xFFFFFFFFu;
#endif
  }
  static void store(std::int32_t* p, VI32 x) {
    vst1q_s32(p, x.a);
    vst1q_s32(p + 4, x.b);
  }
  static VI32 gather_i32(const std::int32_t* base, VI32 idx) {
    std::int32_t i[8], r[8];
    store(i, idx);
    for (int k = 0; k < 8; ++k) r[k] = base[i[k]];
    return load(r);
  }
  static VI32 gather_u8(const std::uint8_t* base, VI32 off) {
    std::int32_t i[8], r[8];
    store(i, off);
    for (int k = 0; k < 8; ++k) r[k] = base[i[k]];
    return load(r);
  }
  static void gather_u64(const std::uint64_t* base, VI32 idx, VI32& lo,
                         VI32& hi) {
    std::int32_t i[8], l[8], h[8];
    store(i, idx);
    for (int k = 0; k < 8; ++k) {
      const std::uint64_t w = base[i[k]];
      l[k] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(w & 0xFFFFFFFFu));
      h[k] = static_cast<std::int32_t>(static_cast<std::uint32_t>(w >> 32));
    }
    lo = load(l);
    hi = load(h);
  }
  static VI32 cmplt_f64(const double* xbase, VI32 xoff, const double* tbase,
                        VI32 tidx) {
    std::int32_t xo[8], ti[8], r[8];
    store(xo, xoff);
    store(ti, tidx);
    for (int k = 0; k < 8; ++k)
      r[k] = xbase[xo[k]] < tbase[ti[k]] ? -1 : 0;
    return load(r);
  }
  static void axpy_leaf(const double* leaf, VI32 idx, double scale,
                        double* out) {
    std::int32_t i[8];
    store(i, idx);
    for (int k = 0; k < 8; ++k) out[k] += scale * leaf[i[k]];
  }

  struct VU8 {
    uint8x16_t a;
    uint8x16_t b;
  };

  static VU8 b_splat(std::uint8_t x) {
    return {vdupq_n_u8(x), vdupq_n_u8(x)};
  }
  static VU8 b_ones() { return b_splat(0xFF); }
  static VU8 b_load(const std::uint8_t* p) {
    return {vld1q_u8(p), vld1q_u8(p + 16)};
  }
  static void b_store(std::uint8_t* p, VU8 x) {
    vst1q_u8(p, x.a);
    vst1q_u8(p + 16, x.b);
  }
  static VU8 b_and(VU8 x, VU8 y) {
    return {vandq_u8(x.a, y.a), vandq_u8(x.b, y.b)};
  }
  static VU8 b_or(VU8 x, VU8 y) {
    return {vorrq_u8(x.a, y.a), vorrq_u8(x.b, y.b)};
  }
  static VU8 b_cmplt_s8(VU8 x, VU8 y) {
    return {vcltq_s8(vreinterpretq_s8_u8(x.a), vreinterpretq_s8_u8(y.a)),
            vcltq_s8(vreinterpretq_s8_u8(x.b), vreinterpretq_s8_u8(y.b))};
  }
};
#endif  // __ARM_NEON

/// The best ISA this translation unit was *compiled* for. In the default
/// build this is ScalarIsa on x86 (AVX2 lives in its own TU) and NeonIsa
/// on AArch64 (NEON is mandatory there, so there is no dispatch risk).
#if defined(__AVX2__)
using NativeIsa = Avx2Isa;
#elif defined(__ARM_NEON)
using NativeIsa = NeonIsa;
#else
using NativeIsa = ScalarIsa;
#endif

}  // namespace anb::simd
