#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "anb/util/io.hpp"

// The .anbb binary-artifact container (modeled on LightGBM's binary
// dataset path: fixed header + per-section sizes + alignment). One file
// holds a small JSON "meta" section describing the artifact plus any
// number of raw array sections stored in their in-memory layout, so a
// reader can hand out zero-copy views straight into an mmap of the file.
//
// Layout (all integers little-endian, fixed width):
//
//   [0..24)   header: magic "ANBBIN\r\n" (8) + endian marker u32 +
//             format version u32 + section count u32 + pad u32
//   [24..40)  u64 file_size + u64 checksum
//   [40..)    section table: section_count x SectionEntry
//             { u32 tag, u32 align, u64 offset, u64 size }
//   ...       payload sections, each at offset % align == 0 (zero-filled
//             gaps between sections)
//
// The checksum is checksum64() over the whole file with the checksum
// field itself zeroed, so a single flipped bit anywhere — header, table,
// or payload — fails verification. file_size must equal the actual byte
// count, so truncation is detected before any offset is trusted; every
// section range is then validated against the real buffer size, which is
// what makes the mmap path safe against short files (no access is ever
// issued past the mapping).

namespace anb::bin {

inline constexpr std::size_t kMagicSize = 8;
inline constexpr char kMagic[kMagicSize] = {'A', 'N', 'B', 'B',
                                            'I', 'N', '\r', '\n'};
/// Written natively and compared on load: a byte-order mismatch between
/// writer and reader machines is rejected instead of misread.
inline constexpr std::uint32_t kEndianMarker = 0x01020304u;
/// Current .anbb format version. Readers reject anything newer or older;
/// the text format is the migration vehicle across versions.
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderSize = 40;
inline constexpr std::size_t kSectionEntrySize = 24;
/// Byte offset of the u64 checksum field within the file.
inline constexpr std::size_t kChecksumOffset = 32;

/// Fast non-cryptographic 64-bit checksum: splitmix64-mixed 8-byte words
/// (word-at-a-time, so verification runs far faster than a text parse).
/// Any single-bit corruption changes the result; collisions for random
/// corruption are ~2^-64.
std::uint64_t checksum64(std::span<const char> bytes);

/// Section payload kinds. The tag is checked on every access, so a
/// section-table entry pointing at the wrong payload throws instead of
/// reinterpreting bytes.
enum class Tag : std::uint32_t {
  kMeta = 1,      ///< JSON text (artifact descriptor)
  kF64 = 2,       ///< double[]
  kI32 = 3,       ///< int32[]
  kU8 = 4,        ///< uint8[]
  kU64 = 5,       ///< uint64[]
  kFlatNode = 6,  ///< FlatForest node records (24-byte PODs)
  kSpace = 7,     ///< search-space descriptor (2 u32: section version, id)
};

/// Assembles a .anbb file in memory. Sections are laid out in add order;
/// finish() prepends header + table and patches the checksum.
class Writer {
 public:
  /// Append a raw section; returns its index (referenced from the meta
  /// JSON). `align` must be a power of two (payload offset in the file is
  /// padded to it).
  std::uint32_t add_section(Tag tag, std::span<const char> payload,
                            std::uint32_t align);

  /// Append a trivially-copyable array in its in-memory layout.
  template <typename T>
  std::uint32_t add_array(Tag tag, std::span<const T> xs) {
    static_assert(std::is_trivially_copyable_v<T>);
    return add_section(
        tag, {reinterpret_cast<const char*>(xs.data()), xs.size() * sizeof(T)},
        alignof(T));
  }

  std::uint32_t num_sections() const {
    return static_cast<std::uint32_t>(sections_.size());
  }

  /// Assemble the final file image (header + table + payload + checksum).
  std::vector<char> finish() const;

 private:
  struct Pending {
    Tag tag;
    std::uint32_t align;
    std::vector<char> payload;
  };
  std::vector<Pending> sections_;
};

/// Validated view over a .anbb file image. The constructor verifies
/// magic, endianness, version, file size, checksum, and every section
/// range/alignment before any accessor hands out data; all failures throw
/// anb::Error. Array accessors return zero-copy views that pin the
/// underlying buffer (heap or mmap) alive.
class Reader {
 public:
  /// `buffer` is the whole file (from io::Buffer::read_file or map_file).
  explicit Reader(std::shared_ptr<const io::Buffer> buffer);

  std::uint32_t format_version() const { return version_; }
  std::size_t num_sections() const { return entries_.size(); }
  Tag tag(std::uint32_t index) const;

  /// Raw bytes of a section; throws on bad index or tag mismatch.
  std::span<const char> section(std::uint32_t index, Tag expected) const;

  /// Zero-copy typed view of a section. Checks the tag, that the size is
  /// a whole number of elements, and that the payload address satisfies
  /// alignof(T) (a corrupted/misaligned offset throws, never UB).
  template <typename T>
  io::ArrayRef<T> array(std::uint32_t index, Tag expected) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::span<const char> raw = section(index, expected);
    check_array(raw, sizeof(T), alignof(T), index);
    return io::ArrayRef<T>(
        {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)},
        buffer_);
  }

  /// The backing buffer (for lifetime plumbing / diagnostics).
  const std::shared_ptr<const io::Buffer>& buffer() const { return buffer_; }

 private:
  struct Entry {
    Tag tag;
    std::uint32_t align;
    std::uint64_t offset;
    std::uint64_t size;
  };

  void check_array(std::span<const char> raw, std::size_t elem_size,
                   std::size_t elem_align, std::uint32_t index) const;

  std::shared_ptr<const io::Buffer> buffer_;
  std::uint32_t version_ = 0;
  std::vector<Entry> entries_;
};

/// True when `bytes` starts with the .anbb magic (format sniffing for
/// APIs that accept either the text or the binary artifact).
bool has_magic(std::span<const char> bytes);

}  // namespace anb::bin
