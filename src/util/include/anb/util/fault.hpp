#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "anb/util/error.hpp"

namespace anb::fault {

/// Deterministic fault-injection framework.
///
/// Production code declares *injection sites* — named points where a fault
/// may be simulated — by calling should_fire()/maybe_throw() with the site
/// name and a caller-chosen key. Tests arm sites with a Policy; unarmed
/// sites cost a single relaxed atomic load (any_armed() below), so shipping
/// the checks in hot paths is free.
///
/// Determinism contract: a kBernoulli site's decision is a pure function of
/// (policy seed, site name, key) — independent of call order, thread count,
/// and how often other sites are checked. Callers that fire from parallel
/// loops must therefore derive the key from the work item (e.g. the
/// architecture index and attempt number), never from shared counters.
/// kOneShot and kEveryNth use a per-site counter and are only
/// order-deterministic at serial call sites (e.g. file I/O).
///
/// The site catalogue lives in DESIGN.md ("Fault injection & robust
/// collection"); site-name constants are declared next to the code that
/// checks them (device.hpp, benchmark.hpp, parallel.hpp).

namespace detail {
/// Number of currently armed sites. Read on every injection check; only
/// mutated (under the registry lock) by arm/disarm.
extern std::atomic<int> g_armed_count;
}  // namespace detail

/// True when at least one site is armed. The fast path of every injection
/// check: a single relaxed atomic load, no lock, no string hashing.
inline bool any_armed() {
  return detail::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// When an armed site fires.
enum class Trigger {
  kAlways,     ///< every check fires
  kOneShot,    ///< the first check fires, later checks never do
  kEveryNth,   ///< checks n, 2n, 3n, ... fire (per-site counter)
  kBernoulli,  ///< fires iff hash(seed, site, key) < probability
};

/// Per-site firing policy. Use the factories below.
struct Policy {
  Trigger trigger = Trigger::kAlways;
  double probability = 1.0;  ///< kBernoulli success probability in [0, 1]
  std::uint64_t n = 1;       ///< kEveryNth period (>= 1)
  std::uint64_t seed = 0;    ///< kBernoulli decision seed

  static Policy always();
  static Policy one_shot();
  static Policy every_nth(std::uint64_t n);
  static Policy bernoulli(double probability, std::uint64_t seed);
};

/// Returned when a site fires: a deterministic 64-bit draw derived from
/// (seed, site, key), for callers that need a fault *magnitude* (e.g. the
/// heavy-tail outlier multiplier) and not just a fault *decision*.
struct FireInfo {
  std::uint64_t draw = 0;
  /// The draw mapped to [0, 1).
  double uniform() const;
};

/// Arm `site` with `policy` (replaces any existing policy and resets the
/// site's counters). Thread-safe.
void arm(const std::string& site, const Policy& policy);

/// Disarm one site / all sites. Disarming an unarmed site is a no-op.
void disarm(const std::string& site);
void disarm_all();

bool is_armed(const std::string& site);

/// Currently armed policy of a site, if any.
std::optional<Policy> armed_policy(const std::string& site);

/// How many times the site fired / was checked since it was last armed.
std::uint64_t fire_count(const std::string& site);
std::uint64_t check_count(const std::string& site);

/// The injection point: returns the FireInfo when `site` is armed and its
/// policy fires for this check, std::nullopt otherwise. `key` identifies
/// the work item for kBernoulli determinism (ignored by the decision of the
/// other triggers, but still mixed into the draw).
std::optional<FireInfo> should_fire(std::string_view site,
                                    std::uint64_t key = 0);

/// The exception maybe_throw() raises. Derives from anb::Error so existing
/// error-propagation paths (parallel_for rethrow, ANB-style catch blocks)
/// treat injected faults exactly like real ones.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

/// Convenience injection point: throws InjectedFault when the site fires.
void maybe_throw(std::string_view site, std::uint64_t key = 0);

/// RAII arming: arms `site` on construction and, on destruction, restores
/// whatever policy was armed before (or disarms the site if none was).
/// Counters do not survive the restore. Guards may nest.
class ScopedFault {
 public:
  ScopedFault(std::string site, const Policy& policy);
  ~ScopedFault();
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
  std::optional<Policy> prior_;
};

}  // namespace anb::fault
