#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "anb/util/error.hpp"

namespace anb {

/// Minimal JSON document model used for benchmark and surrogate
/// serialization. Supports the full JSON grammar except surrogate-pair
/// \uXXXX escapes (non-BMP characters), which this library never emits.
///
/// Objects preserve a deterministic (sorted) key order so serialized
/// artifacts are stable across runs.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  /// Convenience: build an array of doubles.
  static Json array_of(const std::vector<double>& xs);
  /// Convenience: build an array of ints.
  static Json array_of(const std::vector<int>& xs);

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw anb::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  int as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member access. The const overload throws on a missing key;
  /// the non-const overload inserts null (like std::map).
  const Json& at(const std::string& key) const;
  Json& operator[](const std::string& key);
  bool contains(const std::string& key) const;

  /// Array element access with bounds checking.
  const Json& at(std::size_t i) const;
  std::size_t size() const;

  /// Extract a std::vector<double> from a numeric array.
  std::vector<double> as_double_vector() const;
  std::vector<int> as_int_vector() const;

  void push_back(Json v);

  /// Serialize. `indent` < 0 produces compact output.
  std::string dump(int indent = -1) const;

  /// Parse from text; throws anb::Error with position info on failure.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Read/write a whole file; throw anb::Error on I/O failure.
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& content);

}  // namespace anb
