#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace anb {

/// Console table formatter used by the bench harnesses to print paper-style
/// tables (e.g. Table 1 / Table 2 rows). Columns are auto-sized; cells are
/// stored as pre-formatted strings.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 3);

  /// Scientific notation, e.g. 3.06e-3 as in the paper's MAE columns.
  static std::string sci(double v, int precision = 2);

  /// Render with unicode-free ASCII borders.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anb
