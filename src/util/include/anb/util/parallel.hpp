#pragma once

#include <cstddef>
#include <functional>

namespace anb {

/// Fault-injection site checked once per parallel_for iteration (keyed by
/// the iteration index, so seeded-Bernoulli arming is thread-count
/// invariant): when it fires, the worker throws fault::InjectedFault
/// instead of running the body, exercising the capture-and-rethrow error
/// path under real concurrency. A no-op branch while the site is unarmed.
inline constexpr const char* kParallelForWorkerFaultSite =
    "util.parallel_for.worker";

/// Number of worker threads `parallel_for` uses when a call site passes
/// `num_threads = 0`. Resolution order: the value installed with
/// set_default_num_threads() if non-zero, else the ANB_NUM_THREADS
/// environment variable (read once at startup), else hardware concurrency.
/// Always returns >= 1.
///
/// This is the one knob the training engine exposes: every deterministic
/// parallel loop in the library produces bit-identical results at any
/// setting, so it only trades wall-clock for CPU (see DESIGN.md "Parallel
/// training & the binned matrix").
unsigned default_num_threads();

/// Install a process-wide thread-count override (0 = clear the override and
/// fall back to ANB_NUM_THREADS / hardware concurrency). Thread-safe.
void set_default_num_threads(unsigned num_threads);

/// Run `body(i)` for every i in [0, n) across up to `num_threads` worker
/// threads (0 = default_num_threads()). Blocks until all iterations finish.
///
/// The body must be safe to run concurrently for distinct i and must not
/// throw across the call boundary — exceptions are captured and the first
/// one is rethrown on the calling thread after all workers join. The join
/// provides the happens-before edge: workers' writes are visible to the
/// caller once parallel_for returns, with no extra synchronization.
///
/// Nested calls are supported: each invocation owns short-lived workers
/// and joins before returning, so there is no pool to re-enter and no
/// deadlock — the cost is thread oversubscription, which is why library
/// call sites parallelize only the outermost loop. Audited under TSan by
/// tests/util/parallel_stress_test.cpp.
///
/// Every simulator in this library derives its randomness from per-item
/// seeds rather than shared-stream order, so parallelizing loops like the
/// dataset collection changes nothing about the results — only wall-clock.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  unsigned num_threads = 0);

/// Run `body(begin, end)` over [0, n) carved into half-open chunks of at
/// most `chunk` items, across up to `num_threads` workers. The chunking is
/// a pure partition of the index range — results must not depend on which
/// worker runs which chunk, so any row-wise independent computation (e.g.
/// batched surrogate prediction) is deterministic under it. Small inputs
/// (a single chunk) run inline on the calling thread.
void parallel_for_chunks(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body,
    unsigned num_threads = 0);

}  // namespace anb
