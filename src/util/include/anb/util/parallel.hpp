#pragma once

#include <cstddef>
#include <functional>

namespace anb {

/// Run `body(i)` for every i in [0, n) across up to `num_threads` worker
/// threads (0 = hardware concurrency). Blocks until all iterations finish.
///
/// The body must be safe to run concurrently for distinct i and must not
/// throw across the call boundary — exceptions are captured and the first
/// one is rethrown on the calling thread after all workers join.
///
/// Every simulator in this library derives its randomness from per-item
/// seeds rather than shared-stream order, so parallelizing loops like the
/// dataset collection changes nothing about the results — only wall-clock.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  unsigned num_threads = 0);

}  // namespace anb
