#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace anb {

/// Simple CSV writer: quotes cells containing separators/quotes/newlines.
/// Used by the bench harnesses to emit the series behind each figure so they
/// can be re-plotted externally.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void add_row(const std::vector<double>& row);

  std::string to_string() const;
  void save(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parse CSV text (handles quoted cells, embedded quotes, CRLF).
/// Returns rows including the header row.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace anb
