#pragma once

#include <mutex>  // the one sanctioned use; lock-hygiene exempts this file

#include "anb/util/thread_annotations.hpp"

namespace anb {

/// std::mutex wearing Clang's `capability` attribute, so members declared
/// ANB_GUARDED_BY(mu) are compile-time checked under -Wthread-safety.
/// Drop-in for std::mutex everywhere in src/ (the lock-hygiene lint pass
/// enforces the swap): same semantics, same cost, but the analysis can see
/// it. Header-only so the bottom-of-DAG obs library can use it without
/// linking anb_util.
class ANB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ANB_ACQUIRE() { mu_.lock(); }
  void unlock() ANB_RELEASE() { mu_.unlock(); }
  bool try_lock() ANB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over anb::Mutex — the annotated replacement for
/// std::lock_guard. A `scoped_capability`, so Clang treats the guard's
/// lifetime as the extent over which the mutex is held.
class ANB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ANB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ANB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace anb
