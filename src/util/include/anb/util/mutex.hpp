#pragma once

#include <chrono>

// the one sanctioned use of the std locking vocabulary;
// lock-hygiene exempts this file
#include <condition_variable>
#include <mutex>

#include "anb/util/thread_annotations.hpp"

namespace anb {

/// std::mutex wearing Clang's `capability` attribute, so members declared
/// ANB_GUARDED_BY(mu) are compile-time checked under -Wthread-safety.
/// Drop-in for std::mutex everywhere in src/ (the lock-hygiene lint pass
/// enforces the swap): same semantics, same cost, but the analysis can see
/// it. Header-only so the bottom-of-DAG obs library can use it without
/// linking anb_util.
class ANB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ANB_ACQUIRE() { mu_.lock(); }
  void unlock() ANB_RELEASE() { mu_.unlock(); }
  bool try_lock() ANB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over anb::Mutex — the annotated replacement for
/// std::lock_guard. A `scoped_capability`, so Clang treats the guard's
/// lifetime as the extent over which the mutex is held.
class ANB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ANB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ANB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over anb::Mutex (std::condition_variable_any, which
/// accepts any BasicLockable — anb::Mutex qualifies). The wait overloads
/// take the Mutex itself and are annotated ANB_REQUIRES(mu): the caller
/// must already hold the lock, exactly like std::condition_variable's
/// unique_lock contract. The analysis cannot see the internal
/// unlock/re-lock inside wait, which is fine — the lock is held again by
/// the time wait returns, so the caller-visible capability state is
/// unchanged.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until `pred()` is true; `mu` must be held (it is released while
  /// waiting and re-acquired before return, as usual).
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) ANB_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// wait() with a relative timeout: returns pred() (false on timeout).
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Pred pred) ANB_REQUIRES(mu) {
    return cv_.wait_for(mu, dur, std::move(pred));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace anb
