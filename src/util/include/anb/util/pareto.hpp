#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace anb {

/// A point in a bi-objective trade-off. Both objectives are expressed so that
/// larger is better (negate latencies before use, or use the `maximize_*`
/// flags on the helpers below).
struct ParetoPoint {
  double obj1 = 0.0;  ///< e.g. top-1 accuracy
  double obj2 = 0.0;  ///< e.g. throughput (or -latency)
  std::size_t index = 0;  ///< caller-side identity of the point
};

/// Indices of the non-dominated subset of (obj1, obj2) pairs.
///
/// `maximize1` / `maximize2` select the direction of each objective
/// (false = smaller is better). A point is dominated if another point is at
/// least as good in both objectives and strictly better in one. Result is
/// sorted by obj1 in the *improving* direction. Duplicate points are all kept.
std::vector<std::size_t> pareto_front(std::span<const double> obj1,
                                      std::span<const double> obj2,
                                      bool maximize1 = true,
                                      bool maximize2 = true);

/// Hypervolume of a bi-objective maximization front w.r.t. a reference point
/// (ref1, ref2) that is dominated by every front point. Useful for comparing
/// the quality of search runs (Fig. 4-style experiments).
double hypervolume_2d(std::span<const ParetoPoint> front, double ref1,
                      double ref2);

}  // namespace anb
