#pragma once

/// Clang thread-safety analysis annotations (the lock-discipline model from
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), spelled with an
/// ANB_ prefix and compiled to nothing on other compilers. Annotating a
/// member with ANB_GUARDED_BY(mu) turns "this field is protected by mu" from
/// a comment into a compile-time proof: any access outside a critical
/// section is a -Wthread-safety error under Clang (CI builds the whole tree
/// with -Wthread-safety -Werror).
///
/// Use these through anb::Mutex / anb::MutexLock (anb/util/mutex.hpp) —
/// std::mutex carries no capability attributes, so the analysis cannot see
/// it (and the lock-hygiene lint pass rejects it in src/).
///
/// The macro set mirrors the canonical mutex.h from the Clang docs:
///
///   ANB_CAPABILITY(name)      — class is a lockable capability
///   ANB_SCOPED_CAPABILITY     — RAII class that acquires/releases one
///   ANB_GUARDED_BY(mu)        — field access requires holding mu
///   ANB_PT_GUARDED_BY(mu)     — pointee access requires holding mu
///   ANB_REQUIRES(mu...)       — caller must hold mu (function premise)
///   ANB_ACQUIRE(mu...)        — function acquires mu, does not release
///   ANB_RELEASE(mu...)        — function releases mu
///   ANB_TRY_ACQUIRE(ok, mu)   — acquires mu iff the return value is `ok`
///   ANB_EXCLUDES(mu...)       — caller must NOT hold mu (anti-deadlock)
///   ANB_ASSERT_CAPABILITY(mu) — runtime assertion that mu is held
///   ANB_RETURN_CAPABILITY(mu) — function returns a reference to mu
///   ANB_NO_THREAD_SAFETY_ANALYSIS — opt a function out (rare; justify)

#if defined(__clang__)
#define ANB_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ANB_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

#define ANB_CAPABILITY(x) ANB_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define ANB_SCOPED_CAPABILITY ANB_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define ANB_GUARDED_BY(x) ANB_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define ANB_PT_GUARDED_BY(x) ANB_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define ANB_ACQUIRED_BEFORE(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ANB_ACQUIRED_AFTER(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define ANB_REQUIRES(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define ANB_REQUIRES_SHARED(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ANB_ACQUIRE(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ANB_ACQUIRE_SHARED(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define ANB_RELEASE(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define ANB_RELEASE_SHARED(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define ANB_TRY_ACQUIRE(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define ANB_EXCLUDES(...) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ANB_ASSERT_CAPABILITY(x) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define ANB_RETURN_CAPABILITY(x) \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define ANB_NO_THREAD_SAFETY_ANALYSIS \
  ANB_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
