#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

// Local-socket wrapper for the serving layer. Like file IO (anb/util/io.hpp),
// raw socket system calls live in exactly one TU — src/util/net.cpp, the
// sanctioned socket TU of the anb_lint `raw-io` pass — so EINTR retries,
// partial send/recv handling, SIGPIPE suppression, and shutdown semantics
// are implemented once. Everything above (the anb::serve protocol layer,
// tools, benches) talks in whole byte spans against this interface.
//
// Only AF_UNIX stream sockets are offered: the benchmark server is a local
// daemon (one warm process amortizing mmap'd artifacts across searchers on
// the same host), and unix sockets keep the test matrix hermetic — no port
// allocation, no firewall interaction, cleanup is an unlink.

namespace anb::net {

/// A connected stream socket (RAII over the file descriptor). Movable,
/// not copyable; the destructor closes the descriptor. All operations
/// throw anb::Error on unrecoverable failures and retry EINTR internally.
class Socket {
 public:
  Socket() = default;
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connect to the unix-domain listener at `path`.
  static Socket connect_unix(const std::string& path);

  bool valid() const { return fd_ >= 0; }

  /// Send the whole span (looping over partial writes). Returns false —
  /// without throwing — when the peer is gone (EPIPE/ECONNRESET) or the
  /// socket was shut down; those are normal client-disconnect events for
  /// a server, not errors.
  bool send_all(std::span<const char> bytes);

  /// Receive up to `buf.size()` bytes; returns the count, or 0 on orderly
  /// peer shutdown / local shutdown(). Blocks until at least one byte is
  /// available.
  std::size_t recv_some(std::span<char> buf);

  /// Receive exactly `buf.size()` bytes; returns false if the stream
  /// ended first (a short read leaves the partial prefix in `buf`).
  bool recv_exact(std::span<char> buf);

  /// Wake any thread blocked in recv/send on this socket and make every
  /// later operation fail/EOF. Safe to call from another thread while a
  /// recv is in flight — this is how the server interrupts reader threads
  /// on stop. Idempotent; no-op on an invalid socket.
  void shutdown_both();

  /// Half-close: wake/EOF the receive side only, leaving queued outbound
  /// data deliverable (graceful server stop drains responses first).
  void shutdown_read();

  /// Half-close the send side: the peer sees EOF after consuming what was
  /// already sent, while this end can keep receiving (how the fuzz tests
  /// say "no more bytes coming" and still read the server's verdict).
  void shutdown_write();

  /// Close the descriptor now (also idempotent).
  void close();

 private:
  explicit Socket(int fd) : fd_(fd) {}
  friend class Listener;

  int fd_ = -1;
};

/// A bound, listening unix-domain socket. Binds at construction (unlinking
/// any stale socket file at `path` first) and unlinks the path again on
/// destruction.
class Listener {
 public:
  explicit Listener(const std::string& path);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  const std::string& path() const { return path_; }

  /// Wait up to `timeout_ms` for a pending connection, then accept it.
  /// Returns an invalid Socket on timeout or after interrupt(). The
  /// timeout exists so an accept loop can poll its stop flag; it is not a
  /// determinism-relevant quantity.
  Socket accept(int timeout_ms);

  /// Unblock pending/future accept() calls (they return invalid sockets).
  void interrupt();

 private:
  std::string path_;
  int fd_ = -1;
};

/// A fresh, process-unique socket path under the system temp directory
/// (for tests and benches that stand up throwaway servers). The file is
/// not created; the caller passes the path to Listener.
std::string unique_socket_path(const std::string& tag);

}  // namespace anb::net
