#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace anb {

/// Arithmetic mean. Requires a non-empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
double variance(std::span<const double> xs);

/// Unbiased sample standard deviation. Requires size >= 2.
double stddev(std::span<const double> xs);

/// Population variance (n denominator). Requires non-empty input.
double population_variance(std::span<const double> xs);

/// Median (average of middle two for even sizes). Requires non-empty input.
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Requires non-empty input.
double quantile(std::span<const double> xs, double q);

/// Minimum / maximum. Require non-empty input.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Ranks of the values (0-based, averaged over ties), e.g. for Spearman.
std::vector<double> ranks_with_ties(std::span<const double> xs);

/// Indices that would sort `xs` ascending (stable).
std::vector<std::size_t> argsort(std::span<const double> xs);

/// Cumulative running maximum (incumbent curve for search trajectories).
std::vector<double> running_max(std::span<const double> xs);

}  // namespace anb
