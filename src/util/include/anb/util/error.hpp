#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace anb {

/// Base exception for all Accel-NASBench errors.
///
/// Thrown on API misuse (bad arguments, out-of-range queries), I/O failures,
/// and malformed serialized data. Internal invariant violations use
/// ANB_ASSERT instead, which also throws Error but indicates a library bug.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << msg << " (" << file << ":" << line << ")";
  throw Error(os.str());
}

}  // namespace detail

}  // namespace anb

/// Validate a user-facing precondition; throws anb::Error with `msg` on
/// failure. Use for argument checking at public API boundaries.
#define ANB_CHECK(cond, msg)                                 \
  do {                                                       \
    if (!(cond)) {                                           \
      ::anb::detail::throw_error(__FILE__, __LINE__, (msg)); \
    }                                                        \
  } while (0)

/// Internal invariant check. Failure indicates a bug in this library rather
/// than caller error; kept enabled in release builds because the checked
/// conditions are cheap relative to the surrounding computation.
#define ANB_ASSERT(cond, msg)                                                  \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::anb::detail::throw_error(__FILE__, __LINE__,                           \
                                 std::string("internal invariant violated: ") \
                                     + (msg));                                 \
    }                                                                          \
  } while (0)
