#pragma once

#include <span>

namespace anb {

/// Kendall's tau-b rank correlation between two equal-length vectors.
///
/// This is the paper's headline fidelity metric for both the training-proxy
/// search (Eq. 1) and the surrogate evaluation (Tables 1 & 2). Implemented
/// with the Knight O(n log n) merge-sort algorithm and tie corrections
/// (tau-b), matching scipy.stats.kendalltau.
///
/// Requires both inputs non-empty and of equal size; returns a value in
/// [-1, 1]. Throws if all values in either vector are tied (undefined tau).
double kendall_tau(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson of the tie-averaged ranks).
double spearman_rho(std::span<const double> x, std::span<const double> y);

/// Pearson linear correlation.
double pearson_r(std::span<const double> x, std::span<const double> y);

/// Coefficient of determination of predictions vs ground truth.
/// r2 = 1 - SS_res / SS_tot. Requires y_true to have nonzero variance.
double r2_score(std::span<const double> y_true, std::span<const double> y_pred);

/// Mean absolute error.
double mae(std::span<const double> y_true, std::span<const double> y_pred);

/// Root mean squared error.
double rmse(std::span<const double> y_true, std::span<const double> y_pred);

}  // namespace anb
