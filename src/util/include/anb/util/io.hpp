#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

// File-IO wrapper for the whole tree. Library code opens files only
// through this layer (enforced by the anb_lint `raw-io` pass): it is the
// one place that touches fopen/mmap/fstream, so short reads, partial
// writes, and platform quirks are handled once. The obs sinks are the
// single sanctioned exception — obs sits *below* util in the layer DAG
// and cannot link back up to this wrapper.

namespace anb::io {

/// Whether this build can memory-map files (POSIX mmap). When false,
/// Buffer::map_file transparently falls back to a heap read.
bool mmap_supported();

/// An immutable byte buffer: either heap-owned bytes or a live read-only
/// file mapping. Shared (always held via shared_ptr) so zero-copy views
/// into it — ArrayRef, the binary-artifact Reader — keep the backing
/// storage alive for as long as any view exists. Heap-owned storage is
/// max_align_t-aligned; mappings are page-aligned; both satisfy the
/// alignment of any section payload the binary format emits.
class Buffer {
 public:
  /// Heap buffer taking ownership of `bytes`.
  static std::shared_ptr<const Buffer> from_bytes(std::vector<char> bytes);

  /// Read a whole file into a heap buffer; throws anb::Error on failure.
  static std::shared_ptr<const Buffer> read_file(const std::string& path);

  /// Map a file read-only (zero-copy). Falls back to read_file() on
  /// platforms without mmap. Throws anb::Error on failure. The mapping
  /// reflects the file at open time; truncating the file on disk while a
  /// mapping is live is outside the contract (POSIX would deliver SIGBUS
  /// on a fault past the new end of file).
  static std::shared_ptr<const Buffer> map_file(const std::string& path);

  ~Buffer();
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::span<const char> bytes() const { return {data_, size_}; }
  /// True when backed by a live file mapping rather than heap memory.
  bool mapped() const { return mapped_; }

 private:
  Buffer() = default;

  std::vector<char> owned_;  ///< heap storage (empty when mapped)
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;  ///< munmap target (page-aligned)
  std::size_t map_len_ = 0;
};

/// An owned-or-viewed immutable array. The owned form wraps a
/// std::vector<T>; the view form wraps a span into a shared Buffer (the
/// zero-copy mmap path) and pins the buffer alive. Copying an owned
/// ArrayRef copies the elements; copying a view copies the pointer and
/// the keepalive, never the payload.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  /// Owning form.
  explicit ArrayRef(std::vector<T> owned) : owned_(std::move(owned)) {}

  /// Viewing form; `keepalive` pins the storage behind `view`. A null
  /// keepalive is allowed when the caller guarantees the storage outlives
  /// the ArrayRef (e.g. a view into another ArrayRef).
  ArrayRef(std::span<const T> view, std::shared_ptr<const Buffer> keepalive)
      : is_view_(true), view_(view), keepalive_(std::move(keepalive)) {}

  bool is_view() const { return is_view_; }
  const T* data() const { return is_view() ? view_.data() : owned_.data(); }
  std::size_t size() const { return is_view() ? view_.size() : owned_.size(); }
  bool empty() const { return size() == 0; }
  std::span<const T> span() const { return {data(), size()}; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  auto begin() const { return data(); }
  auto end() const { return data() + size(); }

  /// Materialize to an owned vector (copies a view; copies owned too).
  std::vector<T> to_vector() const { return {begin(), end()}; }

 private:
  bool is_view_ = false;
  std::vector<T> owned_;
  std::span<const T> view_;
  std::shared_ptr<const Buffer> keepalive_;
};

/// How to load a binary artifact from disk.
enum class MapMode {
  kCopy,  ///< read the whole file into heap memory
  kMap,   ///< mmap and use array sections in place (fallback: kCopy)
};

/// Atomic-enough whole-file write: writes `content` and throws anb::Error
/// on any failure (open, short write, flush).
void write_file(const std::string& path, std::span<const char> content);

}  // namespace anb::io
