#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "anb/util/error.hpp"

namespace anb {

/// Deterministic, seedable pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component of the library takes an explicit
/// seed so that experiments are reproducible bit-for-bit across runs.
///
/// Not cryptographically secure; statistical quality is more than sufficient
/// for simulation workloads. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the stream from a new seed.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit draw.
  std::uint64_t operator()() { return next(); }

  /// Derive an independent child generator; used to give each simulated
  /// model/measurement its own stream without coupling to call order.
  Rng fork();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box-Muller; caches the second deviate).
  double normal();

  /// Normal with the given mean/stddev. Requires stddev >= 0.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Log-normal draw: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Pick one element index from non-negative weights (sum > 0).
  std::size_t weighted_index(std::span<const double> weights);

  /// Uniformly pick one element of a non-empty container.
  template <typename Container>
  const typename Container::value_type& pick(const Container& c) {
    ANB_CHECK(!c.empty(), "Rng::pick: empty container");
    return c[uniform_index(c.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      std::size_t j = uniform_index(i + 1);
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Sample k distinct indices from [0, n) in random order. Requires k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t next();

  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// SplitMix64 step — also useful on its own for hashing seeds together.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of two seeds into one (order-sensitive).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

}  // namespace anb
