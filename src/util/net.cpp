// The sanctioned socket TU (see the raw-io lint pass): every raw socket
// system call in the library lives here, mirroring how src/util/io.cpp
// owns file IO. Throws anb::Error with context on unrecoverable failures;
// peer-disconnect conditions surface as values (false / 0-byte reads), not
// exceptions, because a vanishing client is normal server load.

#include "anb/util/net.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "anb/util/error.hpp"

namespace anb::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + ::strerror(errno));
}

/// sockaddr_un for `path`, validating the length limit.
sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ANB_CHECK(path.size() + 1 <= sizeof(addr.sun_path),
            "unix socket path too long: " + path);
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  Socket sock(fd);
  const sockaddr_un addr = make_addr(path);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("connect(" + path + ")");
  return sock;
}

bool Socket::send_all(std::span<const char> bytes) {
  ANB_CHECK(valid(), "send_all on closed socket");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the
    // process with SIGPIPE — essential for a daemon.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET || errno == ENOTCONN ||
          errno == EBADF) {
        return false;  // peer gone / locally shut down
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t Socket::recv_some(std::span<char> buf) {
  ANB_CHECK(valid(), "recv_some on closed socket");
  for (;;) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET || errno == ENOTCONN || errno == EBADF) return 0;
    throw_errno("recv");
  }
}

bool Socket::recv_exact(std::span<char> buf) {
  std::size_t got = 0;
  while (got < buf.size()) {
    const std::size_t n = recv_some(buf.subspan(got));
    if (n == 0) return false;
    got += n;
  }
  return true;
}

void Socket::shutdown_both() {
  if (!valid()) return;
  // Failure is fine (the peer may already be gone); the point is to wake
  // any blocked recv/send.
  ::shutdown(fd_, SHUT_RDWR);
}

void Socket::shutdown_read() {
  if (!valid()) return;
  ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (!valid()) return;
  ::shutdown(fd_, SHUT_WR);
}

void Socket::close() {
  if (!valid()) return;
  ::close(fd_);
  fd_ = -1;
}

Listener::Listener(const std::string& path) : path_(path) {
  ANB_CHECK(!path.empty(), "Listener: empty socket path");
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket file from a crashed server
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd_, SOMAXCONN) < 0) {
    const int saved = errno;
    ::close(fd_);
    ::unlink(path.c_str());
    fd_ = -1;
    errno = saved;
    throw_errno("listen(" + path + ")");
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

Socket Listener::accept(int timeout_ms) {
  if (fd_ < 0) return Socket();
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("poll(listener)");
  if (rc == 0 || (pfd.revents & POLLIN) == 0) return Socket();
  int cfd;
  do {
    cfd = ::accept(fd_, nullptr, nullptr);
  } while (cfd < 0 && errno == EINTR);
  if (cfd < 0) {
    // The listener was shut down under us (interrupt()), or the pending
    // client aborted between poll and accept; both mean "no connection".
    if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED) {
      return Socket();
    }
    throw_errno("accept");
  }
  return Socket(cfd);
}

void Listener::interrupt() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::string unique_socket_path(const std::string& tag) {
  // One counter per process keeps concurrent servers (parallel ctest
  // shards, the bench's on/off pairs) from colliding; the pid isolates
  // processes. sun_path is ~108 bytes, so keep it short.
  static std::atomic<unsigned> counter{0};
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/tmp/anb-%s-%d-%u.sock", tag.c_str(),
                static_cast<int>(::getpid()),
                counter.fetch_add(1, std::memory_order_relaxed));
  return std::string(buf);
}

}  // namespace anb::net
