#include "anb/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "anb/util/error.hpp"

namespace anb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ANB_CHECK(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  ANB_CHECK(row.size() == header_.size(),
            "TextTable::add_row: cell count must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto hline = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    os << '\n';
  };

  hline();
  print_row(header_);
  hline();
  for (const auto& row : rows_) print_row(row);
  hline();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace anb
