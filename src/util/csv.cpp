#include "anb/util/csv.hpp"

#include <sstream>

#include "anb/util/error.hpp"
#include "anb/util/json.hpp"

namespace anb {

namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

void append_cell(std::string& out, const std::string& cell) {
  if (!needs_quoting(cell)) {
    out += cell;
    return;
  }
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  ANB_CHECK(!header_.empty(), "CsvWriter: header must be non-empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  ANB_CHECK(row.size() == header_.size(),
            "CsvWriter::add_row: cell count must match header");
  rows_.push_back(std::move(row));
}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  }
  add_row(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      append_cell(out, row[i]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void CsvWriter::save(const std::string& path) const {
  write_text_file(path, to_string());
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty() && !cell_started) {
      in_quotes = true;
      cell_started = true;
    } else if (c == ',') {
      end_cell();
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else {
      cell += c;
      cell_started = true;
    }
  }
  ANB_CHECK(!in_quotes, "parse_csv: unterminated quoted cell");
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace anb
