#include "anb/util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "anb/util/error.hpp"
#include "anb/util/stats.hpp"

namespace anb {

namespace {

/// Sum over tie groups of t*(t-1)/2 in a sorted vector.
std::uint64_t tie_pair_count(const std::vector<double>& sorted) {
  std::uint64_t ties = 0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const std::uint64_t t = j - i + 1;
    ties += t * (t - 1) / 2;
    i = j + 1;
  }
  return ties;
}

/// Count inversions (number of exchanges bubble sort would perform) while
/// merge-sorting `v` in place. O(n log n).
std::uint64_t count_inversions(std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<double> buf(n);
  std::uint64_t inversions = 0;
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo + width < n; lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if (v[j] < v[i]) {
          inversions += mid - i;  // v[j] jumps over the rest of the left run
          buf[k++] = v[j++];
        } else {
          buf[k++] = v[i++];
        }
      }
      while (i < mid) buf[k++] = v[i++];
      while (j < hi) buf[k++] = v[j++];
      std::copy(buf.begin() + static_cast<std::ptrdiff_t>(lo),
                buf.begin() + static_cast<std::ptrdiff_t>(hi),
                v.begin() + static_cast<std::ptrdiff_t>(lo));
    }
  }
  return inversions;
}

void check_paired(std::span<const double> x, std::span<const double> y,
                  const char* fn) {
  ANB_CHECK(!x.empty(), std::string(fn) + ": empty input");
  ANB_CHECK(x.size() == y.size(), std::string(fn) + ": size mismatch");
}

}  // namespace

double kendall_tau(std::span<const double> x, std::span<const double> y) {
  check_paired(x, y, "kendall_tau");
  const std::size_t n = x.size();
  ANB_CHECK(n >= 2, "kendall_tau: need at least 2 samples");

  // Knight's algorithm with tie corrections (tau-b), as in scipy.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  // Pairs tied in x, and tied in both x and y.
  std::uint64_t xtie = 0, xytie = 0;
  {
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
      const std::uint64_t t = j - i + 1;
      xtie += t * (t - 1) / 2;
      // Within the x-tie group, count y ties too.
      std::size_t a = i;
      while (a <= j) {
        std::size_t b = a;
        while (b + 1 <= j && y[order[b + 1]] == y[order[a]]) ++b;
        const std::uint64_t u = b - a + 1;
        xytie += u * (u - 1) / 2;
        a = b + 1;
      }
      i = j + 1;
    }
  }

  std::vector<double> y_by_x(n);
  for (std::size_t i = 0; i < n; ++i) y_by_x[i] = y[order[i]];
  const std::uint64_t discordant = count_inversions(y_by_x);

  std::vector<double> y_sorted(y.begin(), y.end());
  std::sort(y_sorted.begin(), y_sorted.end());
  const std::uint64_t ytie = tie_pair_count(y_sorted);

  const std::uint64_t tot = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  ANB_CHECK(xtie < tot, "kendall_tau: all x values tied; tau undefined");
  ANB_CHECK(ytie < tot, "kendall_tau: all y values tied; tau undefined");

  const double num = static_cast<double>(tot) - static_cast<double>(xtie) -
                     static_cast<double>(ytie) + static_cast<double>(xytie) -
                     2.0 * static_cast<double>(discordant);
  const double den =
      std::sqrt((static_cast<double>(tot) - static_cast<double>(xtie)) *
                (static_cast<double>(tot) - static_cast<double>(ytie)));
  return num / den;
}

double pearson_r(std::span<const double> x, std::span<const double> y) {
  check_paired(x, y, "pearson_r");
  ANB_CHECK(x.size() >= 2, "pearson_r: need at least 2 samples");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  ANB_CHECK(sxx > 0.0 && syy > 0.0, "pearson_r: zero variance input");
  return sxy / std::sqrt(sxx * syy);
}

double spearman_rho(std::span<const double> x, std::span<const double> y) {
  check_paired(x, y, "spearman_rho");
  const auto rx = ranks_with_ties(x);
  const auto ry = ranks_with_ties(y);
  return pearson_r(rx, ry);
}

double r2_score(std::span<const double> y_true,
                std::span<const double> y_pred) {
  check_paired(y_true, y_pred, "r2_score");
  const double m = mean(y_true);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - m) * (y_true[i] - m);
  }
  ANB_CHECK(ss_tot > 0.0, "r2_score: y_true has zero variance");
  return 1.0 - ss_res / ss_tot;
}

double mae(std::span<const double> y_true, std::span<const double> y_pred) {
  check_paired(y_true, y_pred, "mae");
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i)
    acc += std::abs(y_true[i] - y_pred[i]);
  return acc / static_cast<double>(y_true.size());
}

double rmse(std::span<const double> y_true, std::span<const double> y_pred) {
  check_paired(y_true, y_pred, "rmse");
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i)
    acc += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
  return std::sqrt(acc / static_cast<double>(y_true.size()));
}

}  // namespace anb
