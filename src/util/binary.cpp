#include "anb/util/binary.hpp"

#include <cstring>

#include "anb/util/error.hpp"

namespace anb::bin {

namespace {

/// splitmix64 finalizer: full-avalanche mixing of one 64-bit word.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void store_u64(char* p, std::uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
void store_u32(char* p, std::uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint64_t align_up(std::uint64_t offset, std::uint64_t align) {
  return (offset + align - 1) & ~(align - 1);
}

const char* tag_name(Tag t) {
  switch (t) {
    case Tag::kMeta: return "meta";
    case Tag::kF64: return "f64";
    case Tag::kI32: return "i32";
    case Tag::kU8: return "u8";
    case Tag::kU64: return "u64";
    case Tag::kFlatNode: return "flat_node";
    case Tag::kSpace: return "space";
  }
  return "unknown";
}

bool valid_tag(std::uint32_t raw) {
  return raw >= static_cast<std::uint32_t>(Tag::kMeta) &&
         raw <= static_cast<std::uint32_t>(Tag::kSpace);
}

}  // namespace

namespace {

/// Streaming form of checksum64: feed() spans whose sizes are multiples of
/// 8 except possibly the last, then take final(). Exists so the Reader can
/// hash "patched header + untouched payload" without copying the payload.
class ChecksumStream {
 public:
  void feed(std::span<const char> bytes) {
    std::size_t i = 0;
    for (; i + 8 <= bytes.size(); i += 8, ++word_index_) {
      h_ ^= mix64(load_u64(bytes.data() + i) + word_index_);
      h_ = mix64(h_);
    }
    for (; i < bytes.size(); ++i) {
      tail_ |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes[i]))
               << (8 * tail_len_++);
    }
    total_ += bytes.size();
  }

  std::uint64_t digest() const {
    std::uint64_t h = h_ ^ mix64(tail_ + word_index_);
    return mix64(h ^ static_cast<std::uint64_t>(total_));
  }

 private:
  std::uint64_t h_ = 0x736f6d6570736575ULL;
  std::uint64_t word_index_ = 0;
  std::uint64_t tail_ = 0;
  unsigned tail_len_ = 0;
  std::size_t total_ = 0;
};

}  // namespace

std::uint64_t checksum64(std::span<const char> bytes) {
  // Word-at-a-time: mix each 8-byte chunk with its position, then fold the
  // tail and the length in. Position-dependent so transposed words differ.
  ChecksumStream s;
  s.feed(bytes);
  return s.digest();
}

bool has_magic(std::span<const char> bytes) {
  return bytes.size() >= kMagicSize &&
         std::memcmp(bytes.data(), kMagic, kMagicSize) == 0;
}

std::uint32_t Writer::add_section(Tag tag, std::span<const char> payload,
                                  std::uint32_t align) {
  ANB_CHECK(is_pow2(align), "bin::Writer: section alignment must be a "
                            "power of two");
  Pending p;
  p.tag = tag;
  p.align = align;
  p.payload.assign(payload.begin(), payload.end());
  sections_.push_back(std::move(p));
  return static_cast<std::uint32_t>(sections_.size() - 1);
}

std::vector<char> Writer::finish() const {
  const std::uint64_t table_size =
      static_cast<std::uint64_t>(sections_.size()) * kSectionEntrySize;

  // First pass: lay out section offsets.
  std::vector<std::uint64_t> offsets(sections_.size());
  std::uint64_t cursor = kHeaderSize + table_size;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    cursor = align_up(cursor, sections_[i].align);
    offsets[i] = cursor;
    cursor += sections_[i].payload.size();
  }
  const std::uint64_t file_size = cursor;

  std::vector<char> out(static_cast<std::size_t>(file_size), '\0');

  // Header. Checksum stays zero until the very end.
  std::memcpy(out.data(), kMagic, kMagicSize);
  store_u32(out.data() + 8, kEndianMarker);
  store_u32(out.data() + 12, kFormatVersion);
  store_u32(out.data() + 16, static_cast<std::uint32_t>(sections_.size()));
  store_u32(out.data() + 20, 0);  // pad
  store_u64(out.data() + 24, file_size);
  store_u64(out.data() + kChecksumOffset, 0);

  // Section table + payloads.
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    char* entry = out.data() + kHeaderSize + i * kSectionEntrySize;
    store_u32(entry, static_cast<std::uint32_t>(sections_[i].tag));
    store_u32(entry + 4, sections_[i].align);
    store_u64(entry + 8, offsets[i]);
    store_u64(entry + 16, sections_[i].payload.size());
    if (!sections_[i].payload.empty()) {
      std::memcpy(out.data() + offsets[i], sections_[i].payload.data(),
                  sections_[i].payload.size());
    }
  }

  store_u64(out.data() + kChecksumOffset, checksum64(out));
  return out;
}

Reader::Reader(std::shared_ptr<const io::Buffer> buffer)
    : buffer_(std::move(buffer)) {
  ANB_CHECK(buffer_ != nullptr, "bin::Reader: null buffer");
  const std::span<const char> bytes = buffer_->bytes();

  // The actual buffer size is authoritative; nothing beyond it is ever
  // read, which keeps a truncated-file mmap from faulting past EOF.
  ANB_CHECK(bytes.size() >= kHeaderSize,
            "bin::Reader: file too small for header (" +
                std::to_string(bytes.size()) + " bytes)");
  ANB_CHECK(has_magic(bytes), "bin::Reader: bad magic (not a .anbb file)");
  const std::uint32_t endian = load_u32(bytes.data() + 8);
  ANB_CHECK(endian == kEndianMarker,
            "bin::Reader: endianness mismatch (artifact written on an "
            "incompatible machine)");
  version_ = load_u32(bytes.data() + 12);
  ANB_CHECK(version_ == kFormatVersion,
            "bin::Reader: unsupported format version " +
                std::to_string(version_) + " (expected " +
                std::to_string(kFormatVersion) + ")");
  const std::uint32_t section_count = load_u32(bytes.data() + 16);
  const std::uint64_t file_size = load_u64(bytes.data() + 24);
  ANB_CHECK(file_size == bytes.size(),
            "bin::Reader: file size mismatch (header says " +
                std::to_string(file_size) + ", file has " +
                std::to_string(bytes.size()) + " bytes — truncated?)");

  // Verify the whole-file checksum with the checksum field zeroed: hash a
  // patched copy of the 40-byte header, then chain the payload bytes in
  // place (header size is a multiple of 8, so word boundaries line up).
  {
    char prefix[kHeaderSize];
    std::memcpy(prefix, bytes.data(), kHeaderSize);
    store_u64(prefix + kChecksumOffset, 0);
    ChecksumStream s;
    s.feed({prefix, kHeaderSize});
    s.feed(bytes.subspan(kHeaderSize));
    const std::uint64_t want = load_u64(bytes.data() + kChecksumOffset);
    ANB_CHECK(s.digest() == want,
              "bin::Reader: checksum mismatch (file corrupt)");
  }

  const std::uint64_t table_size =
      static_cast<std::uint64_t>(section_count) * kSectionEntrySize;
  ANB_CHECK(kHeaderSize + table_size <= bytes.size(),
            "bin::Reader: section table exceeds file size");

  entries_.reserve(section_count);
  std::uint64_t min_offset = kHeaderSize + table_size;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const char* e = bytes.data() + kHeaderSize + i * kSectionEntrySize;
    Entry entry;
    const std::uint32_t raw_tag = load_u32(e);
    ANB_CHECK(valid_tag(raw_tag), "bin::Reader: section " +
                                      std::to_string(i) + " has unknown tag " +
                                      std::to_string(raw_tag));
    entry.tag = static_cast<Tag>(raw_tag);
    entry.align = load_u32(e + 4);
    entry.offset = load_u64(e + 8);
    entry.size = load_u64(e + 16);
    ANB_CHECK(is_pow2(entry.align),
              "bin::Reader: section " + std::to_string(i) +
                  " has non-power-of-two alignment");
    ANB_CHECK(entry.offset % entry.align == 0,
              "bin::Reader: section " + std::to_string(i) +
                  " offset violates its alignment");
    // Overflow-safe range check: both offset and size individually within
    // the file, and the sum too (size <= file - offset cannot overflow).
    ANB_CHECK(entry.offset >= min_offset && entry.offset <= bytes.size() &&
                  entry.size <= bytes.size() - entry.offset,
              "bin::Reader: section " + std::to_string(i) +
                  " range [" + std::to_string(entry.offset) + ", +" +
                  std::to_string(entry.size) + ") out of bounds");
    // Sections are laid out in order and must not overlap.
    min_offset = entry.offset + entry.size;
    entries_.push_back(entry);
  }
}

Tag Reader::tag(std::uint32_t index) const {
  ANB_CHECK(index < entries_.size(),
            "bin::Reader: section index " + std::to_string(index) +
                " out of range (have " + std::to_string(entries_.size()) +
                ")");
  return entries_[index].tag;
}

std::span<const char> Reader::section(std::uint32_t index, Tag expected) const {
  ANB_CHECK(index < entries_.size(),
            "bin::Reader: section index " + std::to_string(index) +
                " out of range (have " + std::to_string(entries_.size()) +
                ")");
  const Entry& e = entries_[index];
  ANB_CHECK(e.tag == expected, "bin::Reader: section " + std::to_string(index) +
                                   " has tag '" + tag_name(e.tag) +
                                   "', expected '" + tag_name(expected) + "'");
  return buffer_->bytes().subspan(static_cast<std::size_t>(e.offset),
                                  static_cast<std::size_t>(e.size));
}

void Reader::check_array(std::span<const char> raw, std::size_t elem_size,
                         std::size_t elem_align, std::uint32_t index) const {
  ANB_CHECK(raw.size() % elem_size == 0,
            "bin::Reader: section " + std::to_string(index) + " size " +
                std::to_string(raw.size()) +
                " is not a multiple of the element size " +
                std::to_string(elem_size));
  const auto addr = reinterpret_cast<std::uintptr_t>(raw.data());
  ANB_CHECK(addr % elem_align == 0,
            "bin::Reader: section " + std::to_string(index) +
                " payload is misaligned for its element type");
}

}  // namespace anb::bin
