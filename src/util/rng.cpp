#include "anb/util/rng.hpp"

#include <numbers>

namespace anb {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a;
  std::uint64_t h = splitmix64(s);
  s ^= b + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return splitmix64(s);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng(next()); }

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ANB_CHECK(lo < hi, "Rng::uniform: lo must be < hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ANB_CHECK(n > 0, "Rng::uniform_index: n must be > 0");
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return x % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ANB_CHECK(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller. u1 in (0, 1] to keep log() finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  ANB_CHECK(stddev >= 0.0, "Rng::normal: stddev must be >= 0");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  ANB_CHECK(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0, 1]");
  return uniform() < p;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  ANB_CHECK(!weights.empty(), "Rng::weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    ANB_CHECK(w >= 0.0, "Rng::weighted_index: negative weight");
    total += w;
  }
  ANB_CHECK(total > 0.0, "Rng::weighted_index: weights sum to zero");
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // guard against FP rounding
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  ANB_CHECK(k <= n, "Rng::sample_indices: k must be <= n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace anb
